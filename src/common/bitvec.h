// Dynamic bit vector used for PUF responses and configuration vectors.
//
// Responses in this library are short (tens to a few hundred bits) but are
// compared pairwise in large batches (Fig. 3, Tables III/IV need ~4.8M
// Hamming distances), so the representation packs bits into 64-bit words and
// computes Hamming distance with popcount.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ropuf {

/// Packed vector of bits with word-parallel Hamming distance.
class BitVec {
 public:
  BitVec() = default;

  /// Constructs an all-zero vector of `n` bits.
  explicit BitVec(std::size_t n);

  /// Parses a string of '0'/'1' characters, most significant first.
  static BitVec from_string(const std::string& bits);

  /// Builds from a vector<bool>-style container of bit values.
  static BitVec from_bits(const std::vector<int>& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);

  /// Appends one bit at the end.
  void push_back(bool value);

  /// Appends all bits of `other` at the end.
  void append(const BitVec& other);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance; both vectors must have equal size.
  std::size_t hamming_distance(const BitVec& other) const;

  /// String of '0'/'1', index 0 first.
  std::string to_string() const;

  /// Bitwise XOR; sizes must match.
  BitVec operator^(const BitVec& other) const;

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// Lexicographic order so BitVec can key std::map / sort for dedup.
  bool operator<(const BitVec& other) const;

  /// Bit values as ints (handy for tests and report code).
  std::vector<int> to_bits() const;

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t word_count() const { return (size_ + kWordBits - 1) / kWordBits; }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace ropuf

// Minimal fixed-width text-table renderer.
//
// Benches print the paper's tables with this; keeping the formatting in one
// place makes every reproduction table visually uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace ropuf {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with fixed precision.
  static std::string num(double value, int precision = 2);

  /// Renders with a header rule and two-space column gaps.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ropuf

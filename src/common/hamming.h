// Blocked popcount kernels over packed 64-bit words.
//
// The Hamming inner loop is the hottest few instructions in the repo: the
// verify path runs it once per authentication request (reference vs claimed
// response, via BitVec::hamming_distance) and the uniqueness experiments run
// it ~4.8M times per figure (analysis/hamming_stats.cpp all-pairs kernel).
// Both now share this one kernel instead of each rolling a scalar loop.
//
// The loop is blocked four words at a time into independent accumulators, so
// the popcounts of a block issue without a loop-carried dependency chain and
// superscalar cores overlap them; a scalar tail covers the remainder. The
// arithmetic is exact integer popcount either way, so switching between the
// blocked and scalar shapes can never change a result — verdicts and HD
// statistics stay bit-identical (tests/common_bitvec_test.cpp pins the
// kernel against a bit-by-bit oracle). A/B against the Release baselines:
// bench_auth_service (verify path) and bench_fig3_uniqueness (all-pairs).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace ropuf {

/// Popcount of (a[w] ^ b[w]) summed over `words` words — the Hamming
/// distance of two equal-length packed bit rows.
inline std::uint64_t hamming_distance_words(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t words) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[w + 1] ^ b[w + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[w + 2] ^ b[w + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[w + 3] ^ b[w + 3]));
  }
  for (; w < words; ++w) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return c0 + c1 + c2 + c3;
}

/// Popcount of a[w] summed over `words` words.
inline std::uint64_t popcount_words(const std::uint64_t* a, std::size_t words) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[w + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[w + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[w + 3]));
  }
  for (; w < words; ++w) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w]));
  }
  return c0 + c1 + c2 + c3;
}

}  // namespace ropuf

#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace ropuf {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  ROPUF_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  ROPUF_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule_len += width[c] + (c + 1 < width.size() ? 2 : 0);
  out += std::string(rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace ropuf

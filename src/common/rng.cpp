#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace ropuf {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> [0, 1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ROPUF_REQUIRE(lo <= hi, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  ROPUF_REQUIRE(n > 0, "uniform_below(0)");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  ROPUF_REQUIRE(sigma >= 0.0, "negative sigma");
  return mean + sigma * gaussian();
}

bool Rng::flip() { return (next_u64() >> 63) != 0; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ropuf

#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ropuf {
namespace {

std::atomic<std::size_t> g_budget_override{0};

// True on any thread currently executing chunks of a parallel region;
// nested parallel regions detect it and run inline.
thread_local bool tl_in_region = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t env_threads() {
  const char* raw = std::getenv("ROPUF_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  // Strict parse: the whole token must be a positive integer, mirroring the
  // CLI's numeric-option policy. stoull alone is not enough — it silently
  // wraps negative input — so the digits-only check comes first.
  const std::string text(raw);
  unsigned long long value = 0;
  try {
    ROPUF_REQUIRE(text.find_first_not_of("0123456789") == std::string::npos,
                  "ROPUF_THREADS is not a positive integer: '" + text + "'");
    value = std::stoull(text);
  } catch (const ropuf::Error&) {
    throw;
  } catch (const std::exception&) {
    ROPUF_REQUIRE(false, "ROPUF_THREADS is not a positive integer: '" + text + "'");
  }
  ROPUF_REQUIRE(value > 0, "ROPUF_THREADS is not a positive integer: '" + text + "'");
  return static_cast<std::size_t>(value);
}

/// One parallel region in flight. Chunks are claimed from an atomic cursor;
/// the claiming order is scheduling-dependent but harmless, because every
/// chunk writes only its own [begin, end) slice of caller-owned storage.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::atomic<bool> failed{false};
  // Guarded by the pool's post mutex:
  int extra_slots = 0;     ///< pool workers still allowed to join (budget cap)
  int active_workers = 0;  ///< pool workers currently inside run_chunks()
  std::mutex error_mutex;
  std::exception_ptr error;  ///< first chunk exception; written under error_mutex

  void run_chunks() {
    tl_in_region = true;
    std::size_t c;
    while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) < chunk_count) {
      if (!failed.load(std::memory_order_relaxed)) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        try {
          (*body)(begin, end);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (error == nullptr) error = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
      done_chunks.fetch_add(1, std::memory_order_acq_rel);
    }
    tl_in_region = false;
  }

  bool finished() const {
    return done_chunks.load(std::memory_order_acquire) >= chunk_count;
  }
};

/// Lazily-started shared pool. Workers sleep until a region is posted, help
/// drain its chunks, then sleep again. One region runs at a time (nested
/// regions never reach the pool — they run inline), so there is no queueing
/// and no deadlock.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs the region with at most `extra_workers` pool workers helping the
  /// caller, blocks until every chunk completed and every helper left the
  /// job, then rethrows the first chunk exception, if any.
  void run(Job& job, std::size_t extra_workers) {
    static obs::Gauge& pool_workers = obs::Registry::instance().gauge("parallel.pool_workers");
    static obs::Histogram& caller_wait_us =
        obs::Registry::instance().latency_histogram("parallel.caller_wait_us");
    pool_workers.set(static_cast<double>(workers_.size()));

    const std::lock_guard<std::mutex> job_lock(job_mutex_);
    {
      const std::lock_guard<std::mutex> post(post_mutex_);
      job.extra_slots = static_cast<int>(std::min(extra_workers, workers_.size()));
      current_ = &job;
      ++generation_;
    }
    wake_.notify_all();

    job.run_chunks();  // the caller always participates

    {
      // The caller's idle tail: time spent waiting for the last helpers to
      // drain their chunks after it ran out of work itself.
      const obs::ScopedLatency wait_timer(caller_wait_us);
      std::unique_lock<std::mutex> post(post_mutex_);
      done_.wait(post, [&job] { return job.finished() && job.active_workers == 0; });
      current_ = nullptr;
    }
    if (job.error != nullptr) std::rethrow_exception(job.error);
  }

 private:
  ThreadPool() {
    // At least one worker even on a single-core host: an explicit budget > 1
    // must exercise the real cross-thread dispatch path everywhere (the
    // default budget resolves to the core count and stays inline there).
    const std::size_t workers = hardware_threads() > 1 ? hardware_threads() - 1 : 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> post(post_mutex_);
      stopping_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> post(post_mutex_);
        wake_.wait(post, [&] { return stopping_ || generation_ != seen; });
        seen = generation_;
        if (stopping_) return;
        job = current_;
        // Joining is recorded under the post mutex so the caller in run()
        // observes either a joined worker (active_workers > 0) or a job
        // this worker will never touch — the Job can't be destroyed while
        // a worker is inside it.
        if (job == nullptr || job->finished() || job->extra_slots <= 0) continue;
        --job->extra_slots;
        ++job->active_workers;
      }
      job->run_chunks();
      {
        const std::lock_guard<std::mutex> post(post_mutex_);
        --job->active_workers;
      }
      done_.notify_all();
    }
  }

  std::mutex job_mutex_;   ///< serializes whole regions (one at a time)
  std::mutex post_mutex_;  ///< guards current_/generation_/stopping_/slots
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

std::size_t ThreadBudget::resolve() const {
  if (threads > 0) return threads;
  const std::size_t override_threads = g_budget_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  const std::size_t env = env_threads();
  if (env > 0) return env;
  return hardware_threads();
}

void set_thread_budget_override(std::size_t threads) {
  g_budget_override.store(threads, std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_region; }

void parallel_for_chunked(std::size_t n, std::size_t grain, ThreadBudget budget,
                          const std::function<void(std::size_t, std::size_t)>& body) {
  ROPUF_REQUIRE(grain > 0, "parallel grain must be positive");
  if (n == 0) return;
  // Scheduling-invariant region accounting: totals depend only on the work
  // submitted (and, for the inline/pooled split, on the resolved budget),
  // never on which thread claimed which chunk — so instrumented runs stay
  // deterministic and golden-file testable. Per-worker claim counters are
  // deliberately absent; see docs/observability.md.
  static obs::Counter& regions = obs::Registry::instance().counter("parallel.regions");
  static obs::Counter& items = obs::Registry::instance().counter("parallel.items");
  static obs::Counter& chunks = obs::Registry::instance().counter("parallel.chunks");
  static obs::Counter& inline_regions =
      obs::Registry::instance().counter("parallel.regions_inline");
  static obs::Counter& pooled_regions =
      obs::Registry::instance().counter("parallel.regions_pooled");
  static obs::Histogram& region_us =
      obs::Registry::instance().latency_histogram("parallel.region_us");
  regions.add(1);
  items.add(n);
  chunks.add((n + grain - 1) / grain);
  const obs::ScopedLatency region_timer(region_us);

  const std::size_t threads = budget.resolve();
  // Inline path: explicit single-thread budgets, single-chunk ranges, nested
  // regions, and single-core hosts all bypass the pool entirely.
  if (threads == 1 || n <= grain || tl_in_region ||
      ThreadPool::instance().worker_count() == 0) {
    inline_regions.add(1);
    // The body still observes in_parallel_region() == true, so code probing
    // it behaves identically whether the region was dispatched or inlined.
    struct RegionGuard {
      bool saved = tl_in_region;
      RegionGuard() { tl_in_region = true; }
      ~RegionGuard() { tl_in_region = saved; }
    } guard;
    for (std::size_t begin = 0; begin < n; begin += grain) {
      body(begin, std::min(n, begin + grain));
    }
    return;
  }

  pooled_regions.add(1);
  const obs::TraceSpan span("parallel.region");
  Job job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  job.chunk_count = (n + grain - 1) / grain;
  ThreadPool::instance().run(job, threads - 1);
}

}  // namespace ropuf

// Deterministic parallel execution over a shared lazily-started thread pool.
//
// Every fleet-scale experiment in this library (enrollment over 194 boards,
// ~4.8M pairwise Hamming distances, corner x stage reliability sweeps, the
// NIST batteries) is embarrassingly parallel over independent work items.
// This header provides the one execution primitive they all share, with a
// hard determinism contract:
//
//   The result of a parallel region is bit-identical to serial execution at
//   any thread count.
//
// The contract holds because (a) each work item writes only its own
// index-addressed slot, (b) anything order-sensitive — RNG forking, fault
// injector forking, floating-point reductions — is done serially by the
// caller before dispatch or after completion, and (c) a budget of 1 runs
// inline without touching the pool at all. See docs/parallelism.md.
//
// The pool is created on first use with one worker per hardware thread
// (minus the caller, which always participates) and is shared process-wide.
// Nested parallel regions execute inline on the calling thread, so library
// layers can parallelize independently without deadlock or oversubscription.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace ropuf {

/// How many threads a parallel region may use. The default (0) resolves, in
/// order, to: the process-wide override (set_thread_budget_override, used by
/// the CLI's --threads), the ROPUF_THREADS environment variable, and finally
/// the hardware concurrency.
struct ThreadBudget {
  std::size_t threads = 0;  ///< 0 = resolve from override / env / hardware

  constexpr ThreadBudget() = default;
  constexpr explicit ThreadBudget(std::size_t n) : threads(n) {}

  /// The effective thread count, always >= 1. Throws ropuf::Error if
  /// ROPUF_THREADS is set but is not a positive integer.
  std::size_t resolve() const;
};

/// Process-wide budget override; 0 clears it. Takes precedence over
/// ROPUF_THREADS. Not thread-safe against concurrent parallel regions —
/// call it from startup code (the CLI does).
void set_thread_budget_override(std::size_t threads);

/// True while the calling thread is executing inside a parallel region
/// (worker or participating caller). Nested regions run inline.
bool in_parallel_region();

/// Calls body(begin, end) over disjoint chunks covering [0, n), each at most
/// `grain` long, distributed over the budget's threads. Blocks until every
/// chunk completed. The first exception thrown by any chunk is rethrown on
/// the caller; remaining chunks are skipped (their slots are untouched).
void parallel_for_chunked(std::size_t n, std::size_t grain, ThreadBudget budget,
                          const std::function<void(std::size_t, std::size_t)>& body);

/// Per-index form: calls fn(i) for every i in [0, n).
inline void parallel_for(std::size_t n, ThreadBudget budget,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t grain = 1) {
  parallel_for_chunked(n, grain, budget, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Maps fn over [0, n) into a vector whose slot i holds fn(i) — results land
/// in index order regardless of scheduling, so the output is identical to
/// the serial loop. T only needs to be movable: results are staged in
/// optional slots and unwrapped in order once every chunk completed.
template <typename T, typename Fn>
std::vector<T> parallel_transform(std::size_t n, ThreadBudget budget, Fn&& fn,
                                  std::size_t grain = 1) {
  std::vector<std::optional<T>> staged(n);
  parallel_for_chunked(n, grain, budget,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) staged[i] = fn(i);
                       });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : staged) out.push_back(std::move(*slot));
  return out;
}

}  // namespace ropuf

#include "common/bitvec.h"

#include "common/error.h"
#include "common/hamming.h"

namespace ropuf {

BitVec::BitVec(std::size_t n) : words_((n + kWordBits - 1) / kWordBits, 0), size_(n) {}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ROPUF_REQUIRE(bits[i] == '0' || bits[i] == '1', "BitVec string must be 0/1");
    v.set(i, bits[i] == '1');
  }
  return v;
}

BitVec BitVec::from_bits(const std::vector<int>& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ROPUF_REQUIRE(bits[i] == 0 || bits[i] == 1, "bit values must be 0/1");
    v.set(i, bits[i] != 0);
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  ROPUF_REQUIRE(i < size_, "BitVec index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  ROPUF_REQUIRE(i < size_, "BitVec index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::push_back(bool value) {
  ++size_;
  if (word_count() > words_.size()) words_.push_back(0);
  set(size_ - 1, value);
}

void BitVec::append(const BitVec& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
}

std::size_t BitVec::popcount() const {
  return static_cast<std::size_t>(popcount_words(words_.data(), words_.size()));
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  ROPUF_REQUIRE(size_ == other.size_, "Hamming distance requires equal sizes");
  return static_cast<std::size_t>(
      hamming_distance_words(words_.data(), other.words_.data(), words_.size()));
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

BitVec BitVec::operator^(const BitVec& other) const {
  ROPUF_REQUIRE(size_ == other.size_, "XOR requires equal sizes");
  BitVec out(size_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] ^ other.words_[w];
  return out;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool BitVec::operator<(const BitVec& other) const {
  if (size_ != other.size_) return size_ < other.size_;
  return words_ < other.words_;
}

std::vector<int> BitVec::to_bits() const {
  std::vector<int> bits(size_);
  for (std::size_t i = 0; i < size_; ++i) bits[i] = get(i) ? 1 : 0;
  return bits;
}


}  // namespace ropuf

// Error handling primitives shared by every ropuf module.
//
// The library reports contract violations (bad arguments, impossible states)
// by throwing ropuf::Error. Benches and examples let the exception escape to
// a top-level handler; tests assert on it with EXPECT_THROW.
#pragma once

#include <stdexcept>
#include <string>

namespace ropuf {

/// Exception type for all ropuf library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed: " + expr;
  if (!msg.empty()) full += " (" + msg + ")";
  throw Error(full);
}

}  // namespace detail
}  // namespace ropuf

/// Precondition / invariant check that is always on (cheap checks only).
/// Usage: ROPUF_REQUIRE(n > 0, "stage count must be positive");
#define ROPUF_REQUIRE(expr, msg)                                    \
  do {                                                              \
    if (!(expr)) ::ropuf::detail::raise(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Error handling primitives shared by every ropuf module.
//
// The library reports contract violations (bad arguments, impossible states)
// by throwing ropuf::Error. Benches and examples let the exception escape to
// a top-level handler; tests assert on it with EXPECT_THROW.
//
// Transient hardware faults (a glitched or dropped counter read, a stuck
// measurement channel) are a different condition: they are *recoverable* by
// retrying or masking, so they carry their own subclass, MeasurementFault,
// tagged with the fault kind. Callers that want graceful degradation catch
// MeasurementFault specifically and let contract violations propagate.
#pragma once

#include <stdexcept>
#include <string>

namespace ropuf {

/// Exception type for all ropuf library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Taxonomy of hardware-fault conditions a measurement campaign can hit
/// (see docs/fault_model.md). kRetryExhausted is the terminal condition a
/// robust readout reports after its retry budget is spent.
enum class FaultKind {
  kNone,
  kStuckChannel,     ///< counter latched at a constant count
  kDroppedRead,      ///< gate closed with no count captured
  kTransientGlitch,  ///< heavy-tailed outlier on one read
  kAgingDrift,       ///< slow monotone delay drift over the campaign
  kBrownout,         ///< supply droop slowing a run of consecutive reads
  kRetryExhausted,   ///< robust readout gave up after its retry budget
};

/// Stable human-readable name for a fault kind.
inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStuckChannel: return "stuck-channel";
    case FaultKind::kDroppedRead: return "dropped-read";
    case FaultKind::kTransientGlitch: return "transient-glitch";
    case FaultKind::kAgingDrift: return "aging-drift";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kRetryExhausted: return "retry-exhausted";
  }
  return "unknown";
}

/// Recoverable measurement-path failure. Distinct from plain Error so that
/// hardened readout code can retry/mask hardware faults while still letting
/// genuine contract violations terminate the caller.
class MeasurementFault : public Error {
 public:
  MeasurementFault(FaultKind kind, const std::string& what)
      : Error(std::string("measurement fault [") + fault_kind_name(kind) + "]: " + what),
        kind_(kind) {}

  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

namespace detail {

[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed: " + expr;
  if (!msg.empty()) full += " (" + msg + ")";
  throw Error(full);
}

}  // namespace detail
}  // namespace ropuf

/// Precondition / invariant check that is always on (cheap checks only).
/// Usage: ROPUF_REQUIRE(n > 0, "stage count must be positive");
#define ROPUF_REQUIRE(expr, msg)                                    \
  do {                                                              \
    if (!(expr)) ::ropuf::detail::raise(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

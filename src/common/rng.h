// Deterministic random number generation.
//
// All stochastic behaviour in the library (process variation, measurement
// noise, workload generation) flows through ropuf::Rng so that every
// experiment is exactly reproducible from a 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64; Gaussian variates use the polar
// (Marsaglia) method. We deliberately avoid std::normal_distribution and
// friends because their output is not specified across standard-library
// implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ropuf {

/// SplitMix64 step; used for seed expansion and as a cheap stand-alone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the four 64-bit words of state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Standard normal variate (mean 0, variance 1), polar method.
  double gaussian();

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Fair coin flip.
  bool flip();

  /// Derives an independent child generator; used to give each board /
  /// experiment its own stream without coupling their consumption patterns.
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ropuf

#include "analysis/hamming_stats.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::analysis {

double HdStats::percent_at(std::size_t hd) const {
  if (pair_count == 0) return 0.0;
  const auto it = histogram.find(hd);
  if (it == histogram.end()) return 0.0;
  return 100.0 * static_cast<double>(it->second) / static_cast<double>(pair_count);
}

HdStats pairwise_hd(const std::vector<BitVec>& population) {
  ROPUF_REQUIRE(population.size() >= 2, "need at least two members");
  HdStats stats;
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    for (std::size_t j = i + 1; j < population.size(); ++j) {
      const std::size_t hd = population[i].hamming_distance(population[j]);
      ++stats.histogram[hd];
      ++stats.pair_count;
      if (hd == 0) ++stats.duplicates;
      sum += static_cast<double>(hd);
      sum2 += static_cast<double>(hd) * static_cast<double>(hd);
    }
  }
  const double n = static_cast<double>(stats.pair_count);
  stats.mean = sum / n;
  stats.stddev = std::sqrt(std::max(0.0, sum2 / n - stats.mean * stats.mean));
  return stats;
}

}  // namespace ropuf::analysis

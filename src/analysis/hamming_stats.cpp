#include "analysis/hamming_stats.h"

#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/hamming.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ropuf::analysis {
namespace {

// The kernel accumulates into integers (HD sums of ~4.8M pairs of <=2^16-bit
// vectors stay far below 2^63), so partial results merge exactly and the
// statistics are bit-identical at any thread count — and identical to the
// previous all-double serial accumulation, which never left the exact-integer
// range of IEEE doubles.
struct Partial {
  std::vector<std::uint64_t> histogram;  ///< indexed by HD, 0..bits
  std::uint64_t sum = 0;
  std::uint64_t sum2 = 0;
  std::uint64_t pairs = 0;
};

}  // namespace

double HdStats::percent_at(std::size_t hd) const {
  if (pair_count == 0) return 0.0;
  const auto it = histogram.find(hd);
  if (it == histogram.end()) return 0.0;
  return 100.0 * static_cast<double>(it->second) / static_cast<double>(pair_count);
}

HdStats pairwise_hd(const std::vector<BitVec>& population, ThreadBudget threads) {
  ROPUF_REQUIRE(population.size() >= 2, "need at least two members");
  static obs::Counter& hd_calls = obs::Registry::instance().counter("analysis.hd_calls");
  static obs::Counter& hd_population =
      obs::Registry::instance().counter("analysis.hd_population");
  static obs::Counter& hd_pairs = obs::Registry::instance().counter("analysis.hd_pairs");
  static obs::Histogram& hd_us = obs::Registry::instance().latency_histogram("analysis.hd_us");
  const obs::TraceSpan span("analysis.pairwise_hd");
  const obs::ScopedLatency hd_timer(hd_us);
  hd_calls.add(1);
  hd_population.add(population.size());
  const std::size_t n = population.size();
  const std::size_t bits = population.front().size();
  for (const BitVec& v : population) {
    ROPUF_REQUIRE(v.size() == bits, "bitvec size mismatch");
  }

  // Pack the population into one contiguous word matrix so the all-pairs
  // kernel runs over flat rows (popcount of XORed words) instead of chasing
  // per-BitVec heap allocations.
  const std::size_t words = (bits + 63) / 64;
  std::vector<std::uint64_t> packed(n * words, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<int> row = population[i].to_bits();
    for (std::size_t b = 0; b < bits; ++b) {
      if (row[b] != 0) packed[i * words + b / 64] |= std::uint64_t{1} << (b % 64);
    }
  }

  // Row-blocked kernel: block r owns rows [r*kRowBlock, ...) against all
  // later rows. The block size is fixed (independent of the thread count) and
  // every block writes its own Partial, so scheduling cannot affect results.
  constexpr std::size_t kRowBlock = 64;
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  std::vector<Partial> partials(blocks);
  parallel_for(blocks, threads, [&](std::size_t r) {
    Partial& p = partials[r];
    p.histogram.assign(bits + 1, 0);
    const std::size_t row_begin = r * kRowBlock;
    const std::size_t row_end = std::min(n, row_begin + kRowBlock);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const std::uint64_t* row_i = packed.data() + i * words;
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::uint64_t* row_j = packed.data() + j * words;
        const std::size_t hd =
            static_cast<std::size_t>(hamming_distance_words(row_i, row_j, words));
        ++p.histogram[hd];
        ++p.pairs;
        p.sum += hd;
        p.sum2 += static_cast<std::uint64_t>(hd) * static_cast<std::uint64_t>(hd);
      }
    }
  });

  // Exact merge in block order.
  std::uint64_t sum = 0, sum2 = 0;
  HdStats stats;
  for (const Partial& p : partials) {
    for (std::size_t hd = 0; hd <= bits; ++hd) {
      if (p.histogram[hd] != 0) stats.histogram[hd] += p.histogram[hd];
    }
    stats.pair_count += p.pairs;
    sum += p.sum;
    sum2 += p.sum2;
  }
  const auto zero = stats.histogram.find(0);
  stats.duplicates = zero == stats.histogram.end() ? 0 : zero->second;
  hd_pairs.add(stats.pair_count);

  const double count = static_cast<double>(stats.pair_count);
  stats.mean = static_cast<double>(sum) / count;
  stats.stddev = std::sqrt(
      std::max(0.0, static_cast<double>(sum2) / count - stats.mean * stats.mean));
  return stats;
}

}  // namespace ropuf::analysis

#include "analysis/reliability.h"

#include "common/error.h"

namespace ropuf::analysis {

std::size_t flipped_positions(const BitVec& baseline,
                              const std::vector<BitVec>& stress_responses) {
  ROPUF_REQUIRE(!baseline.empty(), "empty baseline response");
  BitVec changed(baseline.size());
  for (const BitVec& stress : stress_responses) {
    ROPUF_REQUIRE(stress.size() == baseline.size(), "response length mismatch");
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (stress.get(i) != baseline.get(i)) changed.set(i, true);
    }
  }
  return changed.popcount();
}

double flip_percentage(const BitVec& baseline,
                       const std::vector<BitVec>& stress_responses) {
  return 100.0 * static_cast<double>(flipped_positions(baseline, stress_responses)) /
         static_cast<double>(baseline.size());
}

}  // namespace ropuf::analysis

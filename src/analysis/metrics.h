// The standard PUF quality-metric trio (Maiti et al.'s framework, the de
// facto benchmark vocabulary for RO PUFs):
//
//   uniqueness  — mean normalized inter-chip HD of responses (ideal 50%);
//   reliability — 100% minus the mean normalized intra-chip HD between a
//                 reference response and re-evaluations (ideal 100%);
//   uniformity  — mean fraction of 1s per response (ideal 50%).
//
// The paper reports these implicitly (Fig. 3 is uniqueness, Fig. 4/5 are
// the reliability complement, IV.A is uniformity via NIST); this module
// makes them first-class so schemes can be compared on one scoreboard
// (bench_puf_metrics).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"

namespace ropuf::analysis {

/// Mean normalized pairwise inter-chip HD, in percent. Needs >= 2 responses
/// of equal length.
double uniqueness_percent(const std::vector<BitVec>& responses);

/// Mean normalized intra-chip HD between `reference` and each re-evaluation,
/// in percent (0 = perfectly stable).
double intra_distance_percent(const BitVec& reference,
                              const std::vector<BitVec>& reevaluations);

/// 100 - intra_distance_percent: the usual "reliability" figure.
double reliability_percent(const BitVec& reference,
                           const std::vector<BitVec>& reevaluations);

/// Mean fraction of 1s over all bits of all responses, in percent.
double uniformity_percent(const std::vector<BitVec>& responses);

}  // namespace ropuf::analysis

#include "analysis/flip_model.h"

#include <cmath>

#include "common/error.h"
#include "numeric/special_functions.h"

namespace ropuf::analysis {

EnvPerturbation estimate_perturbation(const std::vector<double>& enroll_values,
                                      const std::vector<double>& stress_values) {
  ROPUF_REQUIRE(enroll_values.size() == stress_values.size() && enroll_values.size() >= 2,
                "need >= 2 paired comparison values");
  // Slope through the origin: a = sum(x*y) / sum(x*x). The comparison values
  // are zero-mean by construction (signed pair differences), so no
  // intercept term is fitted.
  double xy = 0.0, xx = 0.0;
  for (std::size_t i = 0; i < enroll_values.size(); ++i) {
    xy += enroll_values[i] * stress_values[i];
    xx += enroll_values[i] * enroll_values[i];
  }
  ROPUF_REQUIRE(xx > 0.0, "degenerate enrollment values");
  EnvPerturbation env;
  env.scale = xy / xx;

  double var = 0.0;
  for (std::size_t i = 0; i < enroll_values.size(); ++i) {
    const double resid = stress_values[i] - env.scale * enroll_values[i];
    var += resid * resid;
  }
  var /= static_cast<double>(enroll_values.size());
  ROPUF_REQUIRE(var > 0.0, "degenerate perturbation population");
  env.sigma = std::sqrt(var);
  return env;
}

double pair_flip_probability(double margin, const EnvPerturbation& env) {
  ROPUF_REQUIRE(env.sigma > 0.0 && env.scale > 0.0, "invalid perturbation model");
  return num::normal_cdf(-env.scale * std::fabs(margin) / env.sigma);
}

double predicted_flip_percent(const std::vector<double>& margins,
                              const EnvPerturbation& env) {
  ROPUF_REQUIRE(!margins.empty(), "empty margin population");
  double total = 0.0;
  for (const double m : margins) total += pair_flip_probability(m, env);
  return 100.0 * total / static_cast<double>(margins.size());
}

}  // namespace ropuf::analysis

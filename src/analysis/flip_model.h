// Analytical bit-flip model.
//
// Between the enrollment corner and a stress corner, a pair's comparison
// value transforms (to first order) as
//
//   stress = a * enroll + eps,   eps ~ N(0, sigma^2)
//
// where `a` is the common environmental scaling (harmless: it preserves
// signs) and eps the device-sensitivity mismatch (the flip mechanism).
// The pair flips when sign(a*m + eps) != sign(m), i.e. with probability
// Phi(-a |m| / sigma); a scheme's expected flip fraction is the average
// over its margin population.
//
// This closes the loop between the simulator and first-order theory: the
// same margins enrollment produces predict Fig. 4's bars without running
// the stress corners (bench_ext_flip_model compares prediction against
// simulation), and the formula makes the paper's observation 3 (flips
// vanish as n grows) quantitative — margins grow ~linearly in n while
// sigma grows ~sqrt(n).
#pragma once

#include <vector>

namespace ropuf::analysis {

/// First-order model of one enrollment->stress corner transition.
struct EnvPerturbation {
  double scale = 1.0;   ///< a: common multiplicative factor
  double sigma = 0.0;   ///< eps std: the sign-flipping mismatch
};

/// Least-squares fit of (scale, sigma) from paired comparison values.
EnvPerturbation estimate_perturbation(const std::vector<double>& enroll_values,
                                      const std::vector<double>& stress_values);

/// P(flip) of one pair under the model: Phi(-scale * |margin| / sigma).
double pair_flip_probability(double margin, const EnvPerturbation& env);

/// Expected flipped fraction of a margin population, in percent.
double predicted_flip_percent(const std::vector<double>& margins,
                              const EnvPerturbation& env);

}  // namespace ropuf::analysis

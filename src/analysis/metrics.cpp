#include "analysis/metrics.h"

#include "analysis/hamming_stats.h"
#include "common/error.h"

namespace ropuf::analysis {

double uniqueness_percent(const std::vector<BitVec>& responses) {
  const HdStats stats = pairwise_hd(responses);
  ROPUF_REQUIRE(!responses.front().empty(), "empty responses");
  return 100.0 * stats.mean / static_cast<double>(responses.front().size());
}

double intra_distance_percent(const BitVec& reference,
                              const std::vector<BitVec>& reevaluations) {
  ROPUF_REQUIRE(!reference.empty(), "empty reference");
  ROPUF_REQUIRE(!reevaluations.empty(), "no re-evaluations");
  double total = 0.0;
  for (const BitVec& sample : reevaluations) {
    total += static_cast<double>(reference.hamming_distance(sample));
  }
  return 100.0 * total /
         (static_cast<double>(reevaluations.size()) *
          static_cast<double>(reference.size()));
}

double reliability_percent(const BitVec& reference,
                           const std::vector<BitVec>& reevaluations) {
  return 100.0 - intra_distance_percent(reference, reevaluations);
}

double uniformity_percent(const std::vector<BitVec>& responses) {
  ROPUF_REQUIRE(!responses.empty(), "empty population");
  double ones = 0.0, bits = 0.0;
  for (const BitVec& response : responses) {
    ROPUF_REQUIRE(!response.empty(), "empty response");
    ones += static_cast<double>(response.popcount());
    bits += static_cast<double>(response.size());
  }
  return 100.0 * ones / bits;
}

}  // namespace ropuf::analysis

// Pairwise Hamming-distance statistics.
//
// Used for the paper's uniqueness study (Fig. 3: inter-chip HD of the
// response streams) and configuration-information study (Tables III/IV:
// pairwise HD of the per-pair best configurations, including the
// "no duplicates" claim).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/bitvec.h"
#include "common/parallel.h"

namespace ropuf::analysis {

/// Summary of all C(n,2) pairwise Hamming distances of a population.
struct HdStats {
  std::map<std::size_t, std::size_t> histogram;  ///< HD -> pair count
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t pair_count = 0;
  std::size_t duplicates = 0;  ///< pairs at HD 0

  /// Fraction of pairs at a given distance (Tables III/IV rows).
  double percent_at(std::size_t hd) const;
};

/// Computes the statistics; all vectors must have equal bit length and the
/// population must have at least two members. The all-pairs kernel packs the
/// population into a flat word matrix and runs row-blocked over the thread
/// budget; accumulation is exact (integer), so the result is bit-identical
/// at any thread count.
HdStats pairwise_hd(const std::vector<BitVec>& population,
                    ThreadBudget threads = ThreadBudget());

}  // namespace ropuf::analysis

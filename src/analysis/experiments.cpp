#include "analysis/experiments.h"

#include <cmath>
#include <optional>

#include "analysis/reliability.h"
#include "common/error.h"
#include "common/parallel.h"
#include "puf/distiller.h"

namespace ropuf::analysis {
namespace {

/// Measured (and optionally distilled) per-unit values of one board. The
/// distiller is passed in so loops construct it once per experiment instead
/// of once per board.
std::vector<double> unit_values(const sil::Chip& board, const sil::OperatingPoint& op,
                                const DatasetOptions& opts, Rng& rng,
                                sil::FaultInjector* injector,
                                const puf::RegressionDistiller* distiller) {
  std::vector<double> values;
  if (injector != nullptr && opts.hardened) {
    values = puf::robust_unit_ddiffs(board, op, opts.measurement, rng, *injector,
                                     opts.retry)
                 .values;
  } else {
    values = puf::measure_unit_ddiffs(board, op, opts.measurement, rng, injector);
  }
  if (distiller != nullptr) values = distiller->distill_chip(board, values);
  return values;
}

/// Per-board streams for a fleet campaign, forked serially up front so that
/// parallel dispatch order cannot perturb them. With a campaign injector
/// attached, every board gets its own forked fault stream (salt = board
/// index); the children's counters are merged back after the run.
struct BoardStreams {
  std::vector<Rng> rngs;
  std::vector<sil::FaultInjector> injectors;  ///< empty when no injector

  BoardStreams(std::size_t boards, std::uint64_t seed, sil::FaultInjector* campaign) {
    Rng master(seed);
    rngs.reserve(boards);
    for (std::size_t b = 0; b < boards; ++b) rngs.push_back(master.fork());
    if (campaign != nullptr) {
      injectors.reserve(boards);
      for (std::size_t b = 0; b < boards; ++b) injectors.push_back(campaign->fork(b));
    }
  }

  sil::FaultInjector* injector(std::size_t b) {
    return injectors.empty() ? nullptr : &injectors[b];
  }

  void merge_into(sil::FaultInjector* campaign) const {
    if (campaign == nullptr) return;
    for (const auto& child : injectors) campaign->merge_counts(child.counts());
  }
};

/// The hoisted per-experiment distiller, or nullptr when distillation is off.
std::optional<puf::RegressionDistiller> make_distiller(const DatasetOptions& opts) {
  if (!opts.distill) return std::nullopt;
  return puf::RegressionDistiller(opts.distiller_degree);
}

}  // namespace

std::vector<double> board_unit_values(const sil::Chip& board,
                                      const sil::OperatingPoint& op,
                                      const DatasetOptions& opts, Rng& rng) {
  const auto distiller = make_distiller(opts);
  return unit_values(board, op, opts, rng, opts.injector,
                     distiller ? &*distiller : nullptr);
}

std::vector<BitVec> board_responses(const std::vector<sil::Chip>& boards,
                                    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  BoardStreams streams(boards.size(), opts.noise_seed, opts.injector);
  const auto distiller = make_distiller(opts);
  auto responses = parallel_transform<BitVec>(
      boards.size(), opts.threads, [&](std::size_t b) {
        const auto values = unit_values(boards[b], sil::nominal_op(), opts,
                                        streams.rngs[b], streams.injector(b),
                                        distiller ? &*distiller : nullptr);
        const puf::BoardLayout layout =
            puf::paper_layout(opts.stages, boards[b].unit_count());
        return puf::configurable_enroll(values, layout, opts.mode).response();
      });
  streams.merge_into(opts.injector);
  return responses;
}

std::vector<BitVec> table_responses(const sil::MeasurementTable& table,
                                    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!table.boards.empty(), "empty measurement table");
  std::vector<sil::DieLocation> locations(table.units_per_board());
  for (std::size_t i = 0; i < locations.size(); ++i) locations[i] = table.location(i);

  const auto distiller = make_distiller(opts);
  const puf::BoardLayout layout = puf::paper_layout(opts.stages, table.units_per_board());
  return parallel_transform<BitVec>(
      table.boards.size(), opts.threads, [&](std::size_t b) {
        std::vector<double> values = table.boards[b];
        if (distiller) values = distiller->distill(values, locations);
        return puf::configurable_enroll(values, layout, opts.mode).response();
      });
}

std::vector<BitVec> combine_board_pairs(const std::vector<BitVec>& responses) {
  std::vector<BitVec> streams;
  streams.reserve(responses.size() / 2);
  for (std::size_t i = 0; i + 1 < responses.size(); i += 2) {
    BitVec stream = responses[i];
    stream.append(responses[i + 1]);
    streams.push_back(std::move(stream));
  }
  return streams;
}

std::vector<BitVec> configuration_streams(const std::vector<sil::Chip>& boards,
                                          const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  constexpr std::size_t kStages = 15;  // Section IV.C setup
  BoardStreams streams(boards.size(), opts.noise_seed, opts.injector);
  const auto distiller = make_distiller(opts);
  // Per-board stream bundles computed in parallel, flattened in board order.
  const auto per_board = parallel_transform<std::vector<BitVec>>(
      boards.size(), opts.threads, [&](std::size_t b) {
        const auto values = unit_values(boards[b], sil::nominal_op(), opts,
                                        streams.rngs[b], streams.injector(b),
                                        distiller ? &*distiller : nullptr);
        const puf::BoardLayout layout =
            puf::paper_layout(kStages, boards[b].unit_count());
        const auto enrollment = puf::configurable_enroll(values, layout, opts.mode);
        std::vector<BitVec> board_streams;
        board_streams.reserve(enrollment.selections.size());
        for (const puf::Selection& sel : enrollment.selections) {
          if (opts.mode == puf::SelectionCase::kSameConfig) {
            board_streams.push_back(sel.top_config);
          } else {
            BitVec combined = sel.top_config;
            combined.append(sel.bottom_config);
            board_streams.push_back(std::move(combined));
          }
        }
        return board_streams;
      });
  streams.merge_into(opts.injector);

  std::vector<BitVec> flat;
  for (const auto& bundle : per_board) {
    for (const auto& s : bundle) flat.push_back(s);
  }
  return flat;
}

std::vector<EnvReliabilityCell> environment_reliability(
    const std::vector<sil::Chip>& boards, const std::vector<std::size_t>& stage_counts,
    const std::vector<sil::OperatingPoint>& corners, std::size_t baseline_corner,
    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty() && !corners.empty(), "empty boards or corners");
  ROPUF_REQUIRE(baseline_corner < corners.size(), "baseline corner out of range");

  BoardStreams streams(boards.size(), opts.noise_seed, opts.injector);
  const auto distiller = make_distiller(opts);
  const auto per_board = parallel_transform<std::vector<EnvReliabilityCell>>(
      boards.size(), opts.threads, [&](std::size_t b) {
        Rng& rng = streams.rngs[b];
        // One measurement snapshot per corner, shared by all schemes.
        std::vector<std::vector<double>> values;
        values.reserve(corners.size());
        for (const auto& corner : corners) {
          values.push_back(unit_values(boards[b], corner, opts, rng,
                                       streams.injector(b),
                                       distiller ? &*distiller : nullptr));
        }

        std::vector<EnvReliabilityCell> cells;
        cells.reserve(stage_counts.size());
        for (const std::size_t stages : stage_counts) {
          const puf::BoardLayout layout =
              puf::paper_layout(stages, boards[b].unit_count());
          EnvReliabilityCell cell;
          cell.board_index = b;
          cell.stages = stages;
          cell.bits = layout.pair_count;
          cell.one8_bits = puf::one_of_eight_bits(layout);

          // Configurable PUF: enroll at each corner, stress against the others.
          for (std::size_t e = 0; e < corners.size(); ++e) {
            const auto enrollment = puf::configurable_enroll(values[e], layout, opts.mode);
            const BitVec baseline = enrollment.response();
            std::vector<BitVec> stress;
            for (std::size_t c = 0; c < corners.size(); ++c) {
              if (c == e) continue;
              stress.push_back(puf::configurable_respond(values[c], enrollment));
            }
            cell.configurable_flip_pct.push_back(flip_percentage(baseline, stress));
          }

          // Traditional PUF: baseline at the designated corner.
          {
            const BitVec baseline =
                puf::traditional_respond(values[baseline_corner], layout).response;
            std::vector<BitVec> stress;
            for (std::size_t c = 0; c < corners.size(); ++c) {
              if (c == baseline_corner) continue;
              stress.push_back(puf::traditional_respond(values[c], layout).response);
            }
            cell.traditional_flip_pct = flip_percentage(baseline, stress);
          }

          // 1-out-of-8: enrollment picks at the designated corner.
          {
            const auto enrollment =
                puf::one_of_eight_enroll(values[baseline_corner], layout);
            const BitVec baseline =
                puf::one_of_eight_respond(values[baseline_corner], enrollment);
            std::vector<BitVec> stress;
            for (std::size_t c = 0; c < corners.size(); ++c) {
              if (c == baseline_corner) continue;
              stress.push_back(puf::one_of_eight_respond(values[c], enrollment));
            }
            cell.one_of_eight_flip_pct = flip_percentage(baseline, stress);
          }

          cells.push_back(std::move(cell));
        }
        return cells;
      });
  streams.merge_into(opts.injector);

  std::vector<EnvReliabilityCell> flat;
  flat.reserve(boards.size() * stage_counts.size());
  for (const auto& bundle : per_board) {
    for (const auto& cell : bundle) flat.push_back(cell);
  }
  return flat;
}

std::vector<ThresholdSweepPoint> threshold_sweep(const std::vector<sil::Chip>& boards,
                                                 const puf::DeviceSpec& device_spec,
                                                 const std::vector<double>& rth_values_ps,
                                                 std::uint64_t seed,
                                                 ThreadBudget threads) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  BoardStreams streams(boards.size(), seed, nullptr);

  // Collect per-board margins in parallel; the sweep is pure counting.
  struct BoardMargins {
    std::vector<double> traditional;
    std::vector<double> configurable;
  };
  const auto margins = parallel_transform<BoardMargins>(
      boards.size(), threads, [&](std::size_t b) {
        Rng& rng = streams.rngs[b];
        puf::ConfigurableRoPufDevice device(&boards[b], device_spec, rng);
        device.enroll(sil::nominal_op(), rng);
        BoardMargins m;
        m.configurable.reserve(device.selections().size());
        for (const puf::Selection& sel : device.selections()) {
          m.configurable.push_back(sel.margin);
        }
        m.traditional = device.traditional_response(sil::nominal_op(), rng).margins_ps;
        return m;
      });

  std::vector<ThresholdSweepPoint> sweep;
  sweep.reserve(rth_values_ps.size());
  for (const double rth : rth_values_ps) {
    ThresholdSweepPoint point;
    point.rth_ps = rth;
    for (const BoardMargins& m : margins) {
      for (const double v : m.traditional) {
        if (std::fabs(v) >= rth) point.traditional_reliable_bits += 1.0;
      }
      for (const double v : m.configurable) {
        if (std::fabs(v) >= rth) point.configurable_reliable_bits += 1.0;
      }
    }
    point.traditional_reliable_bits /= static_cast<double>(boards.size());
    point.configurable_reliable_bits /= static_cast<double>(boards.size());
    sweep.push_back(point);
  }
  return sweep;
}

}  // namespace ropuf::analysis

#include "analysis/experiments.h"

#include <cmath>

#include "analysis/reliability.h"
#include "common/error.h"
#include "puf/distiller.h"

namespace ropuf::analysis {

std::vector<double> board_unit_values(const sil::Chip& board,
                                      const sil::OperatingPoint& op,
                                      const DatasetOptions& opts, Rng& rng) {
  std::vector<double> values;
  if (opts.injector != nullptr && opts.hardened) {
    values = puf::robust_unit_ddiffs(board, op, opts.measurement, rng, *opts.injector,
                                     opts.retry)
                 .values;
  } else {
    values = puf::measure_unit_ddiffs(board, op, opts.measurement, rng, opts.injector);
  }
  if (opts.distill) {
    const puf::RegressionDistiller distiller(opts.distiller_degree);
    values = distiller.distill_chip(board, values);
  }
  return values;
}

std::vector<BitVec> board_responses(const std::vector<sil::Chip>& boards,
                                    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  Rng master(opts.noise_seed);
  std::vector<BitVec> responses;
  responses.reserve(boards.size());
  for (const sil::Chip& board : boards) {
    Rng rng = master.fork();
    const auto values = board_unit_values(board, sil::nominal_op(), opts, rng);
    const puf::BoardLayout layout = puf::paper_layout(opts.stages, board.unit_count());
    responses.push_back(puf::configurable_enroll(values, layout, opts.mode).response());
  }
  return responses;
}

std::vector<BitVec> table_responses(const sil::MeasurementTable& table,
                                    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!table.boards.empty(), "empty measurement table");
  std::vector<sil::DieLocation> locations(table.units_per_board());
  for (std::size_t i = 0; i < locations.size(); ++i) locations[i] = table.location(i);

  std::vector<BitVec> responses;
  responses.reserve(table.boards.size());
  const puf::BoardLayout layout = puf::paper_layout(opts.stages, table.units_per_board());
  for (const auto& board : table.boards) {
    std::vector<double> values = board;
    if (opts.distill) {
      const puf::RegressionDistiller distiller(opts.distiller_degree);
      values = distiller.distill(values, locations);
    }
    responses.push_back(puf::configurable_enroll(values, layout, opts.mode).response());
  }
  return responses;
}

std::vector<BitVec> combine_board_pairs(const std::vector<BitVec>& responses) {
  std::vector<BitVec> streams;
  streams.reserve(responses.size() / 2);
  for (std::size_t i = 0; i + 1 < responses.size(); i += 2) {
    BitVec stream = responses[i];
    stream.append(responses[i + 1]);
    streams.push_back(std::move(stream));
  }
  return streams;
}

std::vector<BitVec> configuration_streams(const std::vector<sil::Chip>& boards,
                                          const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  constexpr std::size_t kStages = 15;  // Section IV.C setup
  Rng master(opts.noise_seed);
  std::vector<BitVec> streams;
  for (const sil::Chip& board : boards) {
    Rng rng = master.fork();
    const auto values = board_unit_values(board, sil::nominal_op(), opts, rng);
    const puf::BoardLayout layout = puf::paper_layout(kStages, board.unit_count());
    const auto enrollment = puf::configurable_enroll(values, layout, opts.mode);
    for (const puf::Selection& sel : enrollment.selections) {
      if (opts.mode == puf::SelectionCase::kSameConfig) {
        streams.push_back(sel.top_config);
      } else {
        BitVec combined = sel.top_config;
        combined.append(sel.bottom_config);
        streams.push_back(std::move(combined));
      }
    }
  }
  return streams;
}

std::vector<EnvReliabilityCell> environment_reliability(
    const std::vector<sil::Chip>& boards, const std::vector<std::size_t>& stage_counts,
    const std::vector<sil::OperatingPoint>& corners, std::size_t baseline_corner,
    const DatasetOptions& opts) {
  ROPUF_REQUIRE(!boards.empty() && !corners.empty(), "empty boards or corners");
  ROPUF_REQUIRE(baseline_corner < corners.size(), "baseline corner out of range");

  Rng master(opts.noise_seed);
  std::vector<EnvReliabilityCell> cells;
  for (std::size_t b = 0; b < boards.size(); ++b) {
    Rng rng = master.fork();
    // One measurement snapshot per corner, shared by all schemes.
    std::vector<std::vector<double>> values;
    values.reserve(corners.size());
    for (const auto& corner : corners) {
      values.push_back(board_unit_values(boards[b], corner, opts, rng));
    }

    for (const std::size_t stages : stage_counts) {
      const puf::BoardLayout layout = puf::paper_layout(stages, boards[b].unit_count());
      EnvReliabilityCell cell;
      cell.board_index = b;
      cell.stages = stages;
      cell.bits = layout.pair_count;
      cell.one8_bits = puf::one_of_eight_bits(layout);

      // Configurable PUF: enroll at each corner, stress against the others.
      for (std::size_t e = 0; e < corners.size(); ++e) {
        const auto enrollment = puf::configurable_enroll(values[e], layout, opts.mode);
        const BitVec baseline = enrollment.response();
        std::vector<BitVec> stress;
        for (std::size_t c = 0; c < corners.size(); ++c) {
          if (c == e) continue;
          stress.push_back(puf::configurable_respond(values[c], enrollment));
        }
        cell.configurable_flip_pct.push_back(flip_percentage(baseline, stress));
      }

      // Traditional PUF: baseline at the designated corner.
      {
        const BitVec baseline =
            puf::traditional_respond(values[baseline_corner], layout).response;
        std::vector<BitVec> stress;
        for (std::size_t c = 0; c < corners.size(); ++c) {
          if (c == baseline_corner) continue;
          stress.push_back(puf::traditional_respond(values[c], layout).response);
        }
        cell.traditional_flip_pct = flip_percentage(baseline, stress);
      }

      // 1-out-of-8: enrollment picks at the designated corner.
      {
        const auto enrollment = puf::one_of_eight_enroll(values[baseline_corner], layout);
        const BitVec baseline = puf::one_of_eight_respond(values[baseline_corner], enrollment);
        std::vector<BitVec> stress;
        for (std::size_t c = 0; c < corners.size(); ++c) {
          if (c == baseline_corner) continue;
          stress.push_back(puf::one_of_eight_respond(values[c], enrollment));
        }
        cell.one_of_eight_flip_pct = flip_percentage(baseline, stress);
      }

      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::vector<ThresholdSweepPoint> threshold_sweep(const std::vector<sil::Chip>& boards,
                                                 const puf::DeviceSpec& device_spec,
                                                 const std::vector<double>& rth_values_ps,
                                                 std::uint64_t seed) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  Rng master(seed);

  // Collect per-board margins once; the sweep is pure counting.
  std::vector<std::vector<double>> traditional_margins, configurable_margins;
  for (const sil::Chip& board : boards) {
    Rng rng = master.fork();
    puf::ConfigurableRoPufDevice device(&board, device_spec, rng);
    device.enroll(sil::nominal_op(), rng);
    std::vector<double> conf;
    conf.reserve(device.selections().size());
    for (const puf::Selection& sel : device.selections()) conf.push_back(sel.margin);
    configurable_margins.push_back(std::move(conf));
    traditional_margins.push_back(
        device.traditional_response(sil::nominal_op(), rng).margins_ps);
  }

  std::vector<ThresholdSweepPoint> sweep;
  sweep.reserve(rth_values_ps.size());
  for (const double rth : rth_values_ps) {
    ThresholdSweepPoint point;
    point.rth_ps = rth;
    for (std::size_t b = 0; b < boards.size(); ++b) {
      for (const double m : traditional_margins[b]) {
        if (std::fabs(m) >= rth) point.traditional_reliable_bits += 1.0;
      }
      for (const double m : configurable_margins[b]) {
        if (std::fabs(m) >= rth) point.configurable_reliable_bits += 1.0;
      }
    }
    point.traditional_reliable_bits /= static_cast<double>(boards.size());
    point.configurable_reliable_bits /= static_cast<double>(boards.size());
    sweep.push_back(point);
  }
  return sweep;
}

}  // namespace ropuf::analysis

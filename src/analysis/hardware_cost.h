// Hardware-cost accounting behind the paper's efficiency claims.
//
// The abstract claims the configurable RO PUF is "4X more hardware
// efficient than the robust 1-out-of-8 RO PUF": both schemes' ROs cost the
// same silicon, but 1-out-of-8 consumes 8 ROs per output bit against the
// configurable scheme's 2. This module makes the accounting explicit,
// including the per-stage MUX overhead of the configurable design and the
// CLB figures quoted in Related Work for the Maiti-Schaumont configurable
// RO [14].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ropuf::analysis {

/// Cost figures for one scheme at a given RO length.
struct SchemeCost {
  std::string scheme;
  double ros_per_bit = 0.0;         ///< ring oscillators consumed per output bit
  double inverters_per_bit = 0.0;   ///< inverter count per bit
  double muxes_per_bit = 0.0;       ///< 2-to-1 MUX count per bit
  double luts_per_bit = 0.0;        ///< FPGA LUT proxy (inverter+MUX packs in 1 LUT)
  double bits_per_512_units = 0.0;  ///< yield on the paper's 512-unit board
  double efficiency_vs_one8 = 0.0;  ///< bit yield normalized to 1-out-of-8
};

/// The comparison table for RO length `stages` on a board with
/// `board_units` delay units (defaults to the paper's 512).
std::vector<SchemeCost> hardware_cost_table(std::size_t stages,
                                            std::size_t board_units = 512);

}  // namespace ropuf::analysis

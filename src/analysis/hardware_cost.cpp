#include "analysis/hardware_cost.h"

#include "common/error.h"
#include "puf/schemes.h"

namespace ropuf::analysis {

std::vector<SchemeCost> hardware_cost_table(std::size_t stages, std::size_t board_units) {
  const puf::BoardLayout layout = puf::paper_layout(stages, board_units);
  const double n = static_cast<double>(stages);
  const double trad_bits = static_cast<double>(layout.pair_count);
  const double one8_bits = static_cast<double>(puf::one_of_eight_bits(layout));

  std::vector<SchemeCost> table;

  SchemeCost configurable;
  configurable.scheme = "configurable (this paper)";
  configurable.ros_per_bit = 2.0;
  configurable.inverters_per_bit = 2.0 * n;
  configurable.muxes_per_bit = 2.0 * n;      // one MUX per delay unit
  configurable.luts_per_bit = 2.0 * n;       // inverter+MUX pair packs per LUT
  configurable.bits_per_512_units = trad_bits;
  table.push_back(configurable);

  SchemeCost traditional;
  traditional.scheme = "traditional RO PUF";
  traditional.ros_per_bit = 2.0;
  traditional.inverters_per_bit = 2.0 * n;
  traditional.muxes_per_bit = 0.0;
  traditional.luts_per_bit = 2.0 * n;
  traditional.bits_per_512_units = trad_bits;
  table.push_back(traditional);

  SchemeCost one8;
  one8.scheme = "1-out-of-8 [1]";
  one8.ros_per_bit = 8.0;
  one8.inverters_per_bit = 8.0 * n;
  one8.muxes_per_bit = 0.0;
  one8.luts_per_bit = 8.0 * n;
  one8.bits_per_512_units = one8_bits;
  table.push_back(one8);

  for (SchemeCost& cost : table) {
    ROPUF_REQUIRE(one8_bits > 0.0, "degenerate 1-out-of-8 yield");
    cost.efficiency_vs_one8 = cost.bits_per_512_units / one8_bits;
  }
  return table;
}

}  // namespace ropuf::analysis

// Experiment drivers for the paper's evaluation (Section IV).
//
// Each bench binary (bench/) is a thin wrapper over one of these functions,
// which keeps the experiment logic unit-testable. The dataset-style
// experiments (IV.A-IV.D) operate on per-unit measurement snapshots, exactly
// as the paper operates on the Virginia Tech dataset; the Section IV.E
// experiment uses the full-circuit device (inverter-level measurement, as
// the paper's in-house data does).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "puf/chip_puf.h"
#include "puf/measurement.h"
#include "puf/robust_measure.h"
#include "puf/schemes.h"
#include "puf/selection.h"
#include "silicon/chip.h"
#include "silicon/dataset_io.h"

namespace ropuf::analysis {

/// Options shared by the dataset-style experiments.
struct DatasetOptions {
  puf::SelectionCase mode = puf::SelectionCase::kSameConfig;
  std::size_t stages = 5;
  bool distill = true;                   ///< IV.A/IV.B run distilled; IV.D raw
  std::size_t distiller_degree = 2;
  puf::UnitMeasurementSpec measurement;  ///< unit-level readout noise
  std::uint64_t noise_seed = 0x5eed;
  /// Optional fault source for the unit readout campaign (non-owning;
  /// nullptr = fault-free, the default). With `hardened` the campaign runs
  /// through the robust readout and units that exhaust the retry budget
  /// read back as dark (0.0) units; without it faults corrupt values
  /// silently and a dropped read throws MeasurementFault.
  ///
  /// In the fleet-scale experiments every board measures through its own
  /// deterministically forked child injector (salt = board index), so the
  /// campaign is bit-identical at any thread count; the children's fault
  /// counters are merged back into this injector when the experiment
  /// returns. board_unit_values (single board) uses the injector directly.
  sil::FaultInjector* injector = nullptr;
  bool hardened = false;
  puf::RetryPolicy retry;
  /// Parallelism of the fleet loop (default: ROPUF_THREADS / hardware).
  /// Outputs are bit-identical for every value; see docs/parallelism.md.
  ThreadBudget threads;
};

/// Measured (and, if configured, distilled) per-unit values of one board.
std::vector<double> board_unit_values(const sil::Chip& board,
                                      const sil::OperatingPoint& op,
                                      const DatasetOptions& opts, Rng& rng);

/// One configurable-PUF response per board at the nominal corner — the
/// IV.A pipeline: measure, distill, select, emit bits.
std::vector<BitVec> board_responses(const std::vector<sil::Chip>& boards,
                                    const DatasetOptions& opts);

/// The same pipeline over an imported measurement table (e.g. the real VT
/// dataset loaded via sil::from_csv): distill per board over the table's
/// grid, select, emit. Measurement noise options are ignored (the table
/// already is a measurement).
std::vector<BitVec> table_responses(const sil::MeasurementTable& table,
                                    const DatasetOptions& opts);

/// Concatenates responses of consecutive board pairs: 194 boards x 48 bits
/// become 97 streams x 96 bits (paper Section IV.A).
std::vector<BitVec> combine_board_pairs(const std::vector<BitVec>& responses);

/// Best-configuration bitstreams of every RO pair across boards (Tables
/// III/IV): n = 15, 16 pairs per board. Case-1 yields the shared 15-bit
/// configuration; Case-2 the 30-bit top|bottom concatenation.
std::vector<BitVec> configuration_streams(const std::vector<sil::Chip>& boards,
                                          const DatasetOptions& opts);

/// One subplot cell of Fig. 4 / Fig. 5: flip percentages for one board and
/// one RO length, under one family of stress corners.
struct EnvReliabilityCell {
  std::size_t board_index = 0;
  std::size_t stages = 0;
  std::size_t bits = 0;       ///< configurable/traditional bits per board
  std::size_t one8_bits = 0;  ///< 1-out-of-8 bits per board
  /// Configurable-PUF flip %, one entry per enrollment corner (the paper's
  /// first five bars).
  std::vector<double> configurable_flip_pct;
  double traditional_flip_pct = 0.0;   ///< bar 6
  double one_of_eight_flip_pct = 0.0;  ///< bar 7
};

/// Runs the Fig. 4 (voltage) / Fig. 5 (temperature) experiment: for every
/// board and stage count, enroll the configurable PUF at each corner and
/// count flips against the other corners; traditional and 1-out-of-8 use
/// `baseline_corner` for enrollment.
std::vector<EnvReliabilityCell> environment_reliability(
    const std::vector<sil::Chip>& boards, const std::vector<std::size_t>& stage_counts,
    const std::vector<sil::OperatingPoint>& corners, std::size_t baseline_corner,
    const DatasetOptions& opts);

/// One point of the Section IV.E reliability-threshold sweep.
struct ThresholdSweepPoint {
  double rth_ps = 0.0;
  double traditional_reliable_bits = 0.0;   ///< mean bits/board above Rth
  double configurable_reliable_bits = 0.0;
};

/// Runs the in-house experiment: per board, a full-circuit device is
/// enrolled at nominal; reliable-bit counts are averaged over boards.
std::vector<ThresholdSweepPoint> threshold_sweep(const std::vector<sil::Chip>& boards,
                                                 const puf::DeviceSpec& device_spec,
                                                 const std::vector<double>& rth_values_ps,
                                                 std::uint64_t seed,
                                                 ThreadBudget threads = ThreadBudget());

}  // namespace ropuf::analysis

#include "analysis/entropy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ropuf::analysis {
namespace {

std::vector<double> ones_fraction(const std::vector<BitVec>& population) {
  ROPUF_REQUIRE(!population.empty(), "empty population");
  const std::size_t width = population.front().size();
  ROPUF_REQUIRE(width > 0, "empty responses");
  std::vector<double> fraction(width, 0.0);
  for (const BitVec& response : population) {
    ROPUF_REQUIRE(response.size() == width, "response length mismatch");
    for (std::size_t i = 0; i < width; ++i) {
      if (response.get(i)) fraction[i] += 1.0;
    }
  }
  for (auto& f : fraction) f /= static_cast<double>(population.size());
  return fraction;
}

}  // namespace

BitPositionStats bit_position_stats(const std::vector<BitVec>& population) {
  BitPositionStats stats;
  stats.ones_fraction = ones_fraction(population);
  for (const double p : stats.ones_fraction) {
    const double bias = std::fabs(p - 0.5);
    stats.worst_bias = std::max(stats.worst_bias, bias);
    stats.mean_bias += bias;
  }
  stats.mean_bias /= static_cast<double>(stats.ones_fraction.size());
  return stats;
}

double binary_entropy(double p) {
  ROPUF_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  if (p == 0.0 || p == 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double mean_shannon_entropy(const std::vector<BitVec>& population) {
  const auto fraction = ones_fraction(population);
  double total = 0.0;
  for (const double p : fraction) total += binary_entropy(p);
  return total / static_cast<double>(fraction.size());
}

double mean_min_entropy(const std::vector<BitVec>& population) {
  const auto fraction = ones_fraction(population);
  double total = 0.0;
  for (const double p : fraction) {
    total += -std::log2(std::max(p, 1.0 - p));
  }
  return total / static_cast<double>(fraction.size());
}

}  // namespace ropuf::analysis

// Bit-flip accounting, following the paper's definition (Section IV.D):
// re-generate the response at every stress corner and count the bit
// *positions* that differ from the baseline in at least one corner.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"

namespace ropuf::analysis {

/// Number of positions that flipped in >= 1 of the stress responses.
std::size_t flipped_positions(const BitVec& baseline,
                              const std::vector<BitVec>& stress_responses);

/// Same, as a percentage of the response length.
double flip_percentage(const BitVec& baseline,
                       const std::vector<BitVec>& stress_responses);

}  // namespace ropuf::analysis

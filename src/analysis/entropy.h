// Entropy estimation for PUF response populations.
//
// Complements the NIST battery (Section IV.A) with the estimators PUF
// evaluations usually report alongside it: per-bit-position bias across a
// fleet, Shannon and min-entropy per bit, and the fleet-level uniqueness
// entropy. All operate on a population of equal-length responses, one per
// chip.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"

namespace ropuf::analysis {

/// Per-position statistics over a response population.
struct BitPositionStats {
  std::vector<double> ones_fraction;  ///< P(bit = 1) per position
  double worst_bias = 0.0;            ///< max |P(1) - 0.5| over positions
  double mean_bias = 0.0;             ///< mean |P(1) - 0.5|
};

BitPositionStats bit_position_stats(const std::vector<BitVec>& population);

/// Shannon entropy of a Bernoulli(p) bit, in bits (0 for p in {0,1}).
double binary_entropy(double p);

/// Average per-bit Shannon entropy across positions, in bits/bit.
double mean_shannon_entropy(const std::vector<BitVec>& population);

/// Average per-bit min-entropy across positions: -log2(max(p, 1-p)).
double mean_min_entropy(const std::vector<BitVec>& population);

}  // namespace ropuf::analysis

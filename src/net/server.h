// Online authentication server: a single-threaded poll() event loop in
// front of service::AuthService (see docs/serving.md).
//
// The loop owns every connection and never blocks on any one of them:
// sockets are non-blocking, reads buffer into per-connection byte streams,
// and complete frames (net/wire.h) are decoded as they arrive. Ready
// requests collect into a *bounded* pending queue; once per sweep the queue
// drains through AuthService::verify_batch on the deterministic parallel
// pool, so the verdicts a connection receives are bit-identical to an
// offline batch over the same requests — at any thread budget.
//
// Adversary-facing behavior is explicit:
//  * Every frame decode error maps to an error response or a clean close —
//    never a crash, never an exception escaping the loop. Recoverable
//    defects (bad CRC, bad type, bad payload) answer kBadFrame and keep
//    the connection; fatal ones (bad magic/version/oversized length) answer
//    kBadFrame and close, because stream framing is lost.
//  * The pending queue is bounded: past max_pending the server answers
//    kOverloaded immediately (reject-with-status backpressure) instead of
//    buffering without bound. Write buffers are bounded too — a peer that
//    stops reading its responses is closed as a slow consumer.
//  * Idle connections past the read deadline are closed.
//  * request_stop() (async-signal-safe; ropuf_serve wires SIGINT to it)
//    triggers a graceful drain: stop accepting, answer everything already
//    read, flush, then return from run().
//
// Metrics land under "net.*" and spans under "net.*" (docs/serving.md has
// the catalogue); the loop is observational-only like every other layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/auth_service.h"

namespace ropuf::net {

struct ServerOptions {
  /// Loopback by default: exposing a verifier beyond localhost is a
  /// deployment decision the operator makes explicitly.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  int backlog = 64;
  std::size_t max_connections = 256;
  /// Bounded pending-request queue; requests past this answer kOverloaded.
  std::size_t max_pending = 1024;
  /// Requests per verify_batch call when draining the queue.
  std::size_t max_batch = 256;
  /// Per-connection write-buffer bound; a slower consumer is closed.
  std::size_t max_write_buffer = 1u << 20;
  /// Close a connection with no readable traffic for this long.
  int read_deadline_ms = 5000;
  /// poll() timeout: bounds stop-request and deadline-check latency.
  int poll_interval_ms = 50;
  /// Hard cap on the graceful drain after request_stop().
  int drain_timeout_ms = 2000;
};

/// The event loop. Construction does not touch the network; bind_and_listen
/// opens the socket and run() serves until request_stop(). One thread runs
/// the loop; request_stop() may be called from any thread or signal handler.
class AuthServer {
 public:
  /// `service` must outlive the server.
  AuthServer(const service::AuthService* service, ServerOptions options);
  ~AuthServer();
  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Binds and listens; returns the bound port (resolves port 0).
  /// Throws ropuf::Error on any socket failure.
  std::uint16_t bind_and_listen();

  /// The bound port; 0 before bind_and_listen().
  std::uint16_t port() const { return port_; }

  /// Serves until request_stop(), then drains gracefully and returns.
  void run();

  /// Requests the loop to stop; one relaxed atomic store, safe from any
  /// thread and from signal handlers.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Requests served over the server's lifetime (including degraded
  /// answers). Read after run() returned.
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;       ///< buffered unparsed stream bytes
    std::string out;      ///< buffered unwritten response bytes
    std::chrono::steady_clock::time_point last_read;
    bool close_after_flush = false;  ///< fatal defect: answer, flush, close
    bool alive = true;
  };
  struct PendingRequest {
    std::size_t connection;  ///< index into connections_
    service::AuthRequest request;
  };

  void accept_ready();
  /// Reads everything available, extracts frames, enqueues/answers.
  void service_readable(std::size_t index);
  /// Decodes one frame into the pending queue or an immediate answer.
  void handle_frame(std::size_t index, const FrameView& frame);
  void enqueue_response(Connection& connection, const WireResponse& response);
  /// Drains the pending queue through verify_batch, max_batch at a time.
  void drain_pending();
  void flush_writable(std::size_t index);
  void close_connection(std::size_t index);
  void close_idle_connections();
  bool draining_complete() const;

  const service::AuthService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<Connection> connections_;
  std::deque<PendingRequest> pending_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace ropuf::net

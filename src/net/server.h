// Online authentication server: a single-threaded poll() event loop in
// front of service::AuthService (see docs/serving.md).
//
// The loop owns every connection and never blocks on any one of them:
// sockets are non-blocking, reads buffer into per-connection byte streams,
// and complete frames (net/wire.h) are decoded as they arrive. Ready
// requests collect into a *bounded* pending queue; once per sweep the queue
// drains through AuthService::verify_batch on the deterministic parallel
// pool, so the verdicts a connection receives are bit-identical to an
// offline batch over the same requests — at any thread budget.
//
// Responses leave each connection in request arrival order, with no request
// ids on the wire: answer N pairs with request N, always. Degradation
// answers the loop produces itself (kBadFrame, kOverloaded) therefore do
// NOT jump the queue — they enter the pending queue as pre-resolved entries
// and drain in sequence with the verdicts around them, so a pipelining
// client can never misattribute an answer.
//
// Adversary-facing behavior is explicit:
//  * Every frame decode error maps to an error response or a clean close —
//    never a crash, never an exception escaping the loop. Recoverable
//    defects (bad CRC, bad type, bad payload) answer kBadFrame and keep
//    the connection; fatal ones (bad magic/version/oversized length) answer
//    kBadFrame and close, because stream framing is lost.
//  * The pending queue is bounded: past max_pending unverified requests the
//    server answers kOverloaded immediately (reject-with-status
//    backpressure) instead of buffering without bound. Write buffers are
//    bounded too — a peer that stops reading its responses is closed as a
//    slow consumer. Reads are bounded *per sweep* (max_read_per_sweep), so
//    one fast talker can neither grow its input buffer without limit nor
//    starve the other connections out of the loop.
//  * Idle connections past the read deadline are closed.
//  * Descriptor exhaustion (accept() failing with EMFILE/ENFILE) backs the
//    listener off for accept_backoff_ms instead of busy-spinning on a
//    level-triggered listener that stays readable.
//  * request_stop() (async-signal-safe; ropuf_serve wires SIGINT to it)
//    triggers a graceful drain: stop accepting, answer everything already
//    read, flush, then return from run().
//
// Metrics land under "net.*" and spans under "net.*" (docs/serving.md has
// the catalogue); the loop is observational-only like every other layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/auth_service.h"

namespace ropuf::net {

struct ServerOptions {
  /// Loopback by default: exposing a verifier beyond localhost is a
  /// deployment decision the operator makes explicitly.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  int backlog = 64;
  std::size_t max_connections = 256;
  /// Bounded pending-request queue; requests past this answer kOverloaded.
  std::size_t max_pending = 1024;
  /// Requests per verify_batch call when draining the queue.
  std::size_t max_batch = 256;
  /// Per-connection write-buffer bound; a slower consumer is closed.
  std::size_t max_write_buffer = 1u << 20;
  /// Bytes read from one connection per poll sweep. Bounds how far the
  /// unparsed input buffer can grow between frame extractions and keeps a
  /// firehose peer from starving the rest of the loop (poll() stays
  /// level-triggered, so unread bytes re-arm the next sweep).
  std::size_t max_read_per_sweep = 64u << 10;
  /// Close a connection with no readable traffic for this long.
  int read_deadline_ms = 5000;
  /// Stop polling the listener for this long after accept() fails with
  /// descriptor/buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM); the
  /// listener would otherwise stay readable and spin the loop at full CPU.
  int accept_backoff_ms = 100;
  /// poll() timeout: bounds stop-request and deadline-check latency.
  int poll_interval_ms = 50;
  /// Hard cap on the graceful drain after request_stop().
  int drain_timeout_ms = 2000;
};

/// The event loop. Construction does not touch the network; bind_and_listen
/// opens the socket and run() serves until request_stop(). One thread runs
/// the loop; request_stop() may be called from any thread or signal handler.
class AuthServer {
 public:
  /// `service` must outlive the server.
  AuthServer(const service::AuthService* service, ServerOptions options);
  ~AuthServer();
  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Binds and listens; returns the bound port (resolves port 0).
  /// Throws ropuf::Error on any socket failure.
  std::uint16_t bind_and_listen();

  /// The bound port; 0 before bind_and_listen().
  std::uint16_t port() const { return port_; }

  /// Serves until request_stop(), then drains gracefully and returns.
  void run();

  /// Requests the loop to stop; one relaxed atomic store, safe from any
  /// thread and from signal handlers.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Requests served over the server's lifetime (including degraded
  /// answers). Read after run() returned.
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;       ///< buffered unparsed stream bytes
    std::string out;      ///< buffered unwritten response bytes
    std::chrono::steady_clock::time_point last_read;
    bool close_after_flush = false;  ///< fatal defect: answer, flush, close
    bool alive = true;
  };
  /// One slot in the per-arrival-order answer sequence. Most entries carry
  /// a request awaiting verification; entries the loop answered itself
  /// (kBadFrame, kOverloaded) carry the pre-resolved response instead, so
  /// drain_pending can emit every answer in the order its frame arrived.
  struct PendingEntry {
    std::size_t connection;  ///< index into connections_
    bool resolved = false;   ///< true: `response` is the answer already
    WireResponse response;
    service::AuthRequest request;
  };

  void accept_ready();
  /// Reads everything available (up to max_read_per_sweep), extracts
  /// frames, enqueues/answers.
  void service_readable(std::size_t index);
  /// Decodes one frame into the pending queue or a pre-resolved answer.
  void handle_frame(std::size_t index, const FrameView& frame);
  void enqueue_response(Connection& connection, const WireResponse& response);
  /// Queues an answer the loop produced itself, in arrival order.
  void enqueue_immediate(std::size_t index, const WireResponse& response);
  /// Drains the pending queue through verify_batch, max_batch at a time,
  /// emitting responses in arrival order.
  void drain_pending();
  void flush_writable(std::size_t index);
  void close_connection(std::size_t index);
  void close_idle_connections();
  bool draining_complete() const;

  const service::AuthService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<Connection> connections_;
  std::deque<PendingEntry> pending_;
  /// Unverified entries in pending_ (the max_pending backpressure bound
  /// counts verification work, not pre-resolved answers riding along).
  std::size_t pending_unresolved_ = 0;
  /// Listener poll resumes after this instant (accept_backoff_ms).
  std::chrono::steady_clock::time_point accept_backoff_until_{};
  std::uint64_t requests_served_ = 0;
};

}  // namespace ropuf::net

// Online authentication server: N sharded poll() event loops ("reactors")
// in front of service::AuthService (see docs/serving.md).
//
// Each shard is the PR-5 single-threaded loop, verbatim in behavior: it
// owns its connections, read/write buffers, bounded pending queue and
// accept backoff, and never blocks on any one socket. Sockets are
// non-blocking, reads buffer into per-connection byte streams, and complete
// frames (net/wire.h) are decoded as they arrive. Ready requests collect
// into a *bounded* per-shard pending queue; once per sweep the queue drains
// through AuthService::verify_batch on the deterministic parallel pool, so
// the verdicts a connection receives are bit-identical to an offline batch
// over the same requests — at any thread budget and any shard count
// (connections never migrate between shards, so each connection's request
// stream is one shard's arrival order).
//
// shards == 1 (the default) is exactly the PR-5 server: one loop, one plain
// listener, no threads, no SO_REUSEPORT. shards > 1 spawns one reactor
// thread per shard and distributes connections one of two ways:
//  * kReusePort — every shard binds its own SO_REUSEPORT listener on the
//    same address; the kernel's 4-tuple hash spreads incoming connections
//    across the listeners with no cross-thread handoff at all.
//  * kRoundRobin — one listener owned by shard 0, which accepts and hands
//    each new fd to shard (next++ % shards) through a mutex-protected
//    handoff vector plus a self-pipe wakeup. The fallback for stacks
//    without SO_REUSEPORT, and the deterministic choice for tests.
//  * kAuto resolves to kReusePort when the platform supports it, else
//    kRoundRobin. bind_and_listen() reports the resolved mode.
// Either way ALL listeners are bound and listening when bind_and_listen()
// returns, so a port-file handshake written after it cannot race a
// connection against a half-started server.
//
// Responses leave each v1 connection in request arrival order, with no
// request ids on the wire: answer N pairs with request N, always.
// Degradation answers the loop produces itself (kBadFrame, kOverloaded)
// therefore do NOT jump the queue — they enter the owning shard's pending
// queue as pre-resolved entries and drain in sequence with the verdicts
// around them, so a pipelining client can never misattribute an answer.
//
// Protocol v2 (docs/protocol_v2.md) rides the same loop. A kClientHello
// pins the connection's version; v2 requests carry request ids, so their
// challenge/response traffic bypasses the arrival-order pending queue and
// completes in proof-arrival order — the request id, not the position,
// attributes the answer. Each connection keeps a bounded session map of
// outstanding challenges (max_sessions; past it a v2 request answers
// kOverloaded), a proof consumes its session on arrival (a replayed proof
// finds no session and answers kReject), and verification itself is
// AuthService::verify_proof — pure HMAC recomputation, no admission
// counters, so the verdict for a given (device, nonce, tag) triple is
// bit-identical at any shard count and thread budget.
//
// Admission stays device-sticky under sharding: AuthService partitions its
// per-device admission states by device-id hash (admission_shards), NOT by
// reactor shard, so the same device hits the same token bucket no matter
// which reactor owns its connection.
//
// Adversary-facing behavior is explicit (all per shard):
//  * Every frame decode error maps to an error response or a clean close —
//    never a crash, never an exception escaping the loop. Recoverable
//    defects (bad CRC, bad type, bad payload) answer kBadFrame and keep
//    the connection; fatal ones (bad magic/version/oversized length) answer
//    kBadFrame and close, because stream framing is lost.
//  * The pending queue is bounded: past max_pending unverified requests the
//    shard answers kOverloaded immediately (reject-with-status
//    backpressure) instead of buffering without bound. Write buffers are
//    bounded too — a peer that stops reading its responses is closed as a
//    slow consumer. Reads are bounded *per sweep* (max_read_per_sweep), so
//    one fast talker can neither grow its input buffer without limit nor
//    starve the other connections out of its shard's loop.
//  * max_connections splits evenly across shards; a shard at its share
//    closes new arrivals immediately rather than queueing them.
//  * Idle connections past the read deadline are closed.
//  * Descriptor exhaustion (accept() failing with EMFILE/ENFILE) backs the
//    accepting shard off for accept_backoff_ms instead of busy-spinning on
//    a level-triggered listener that stays readable.
//  * request_stop() (async-signal-safe; ropuf_serve wires SIGINT to it)
//    triggers a graceful drain on every shard: stop accepting, answer
//    everything already read, flush, then return from run() once all
//    shards have drained.
//
// Metrics land under "net.*" (totals across shards, merged by the shared
// registry instruments) plus "net.shard<i>.*" per-shard counters when
// shards > 1; spans under "net.*" (docs/observability.md has the
// catalogue). The loop is observational-only like every other layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "auth/auth.h"
#include "net/wire.h"
#include "service/auth_service.h"

namespace ropuf::obs {
class Counter;
}  // namespace ropuf::obs

namespace ropuf::net {

/// How a multi-shard server spreads incoming connections over its reactors.
enum class DispatchMode {
  kAuto,       ///< kReusePort when available, else kRoundRobin
  kReusePort,  ///< per-shard SO_REUSEPORT listeners, kernel balancing
  kRoundRobin  ///< shard 0 accepts, hands fds round-robin via self-pipe
};

struct ServerOptions {
  /// Loopback by default: exposing a verifier beyond localhost is a
  /// deployment decision the operator makes explicitly.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  int backlog = 64;
  std::size_t max_connections = 256;
  /// Bounded pending-request queue *per shard*; requests past this answer
  /// kOverloaded.
  std::size_t max_pending = 1024;
  /// Requests per verify_batch call when draining a shard's queue.
  std::size_t max_batch = 256;
  /// Per-connection write-buffer bound; a slower consumer is closed.
  std::size_t max_write_buffer = 1u << 20;
  /// Bytes read from one connection per poll sweep. Bounds how far the
  /// unparsed input buffer can grow between frame extractions and keeps a
  /// firehose peer from starving the rest of the loop (poll() stays
  /// level-triggered, so unread bytes re-arm the next sweep).
  std::size_t max_read_per_sweep = 64u << 10;
  /// Close a connection with no readable traffic for this long.
  int read_deadline_ms = 5000;
  /// Stop polling the listener for this long after accept() fails with
  /// descriptor/buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM); the
  /// listener would otherwise stay readable and spin the loop at full CPU.
  int accept_backoff_ms = 100;
  /// poll() timeout: bounds stop-request and deadline-check latency.
  int poll_interval_ms = 50;
  /// Hard cap on the graceful drain after request_stop().
  int drain_timeout_ms = 2000;
  /// Seed for the v2 challenge-nonce stream (auth::NonceFactory). The
  /// deterministic default keeps tests and parity harnesses reproducible;
  /// a production deployment sets an unpredictable value.
  std::uint64_t nonce_seed = 0x520c0de5eedull;
  /// Outstanding v2 challenges per connection; a v2 request past this
  /// answers kOverloaded (the v2 analogue of the pending-queue bound).
  std::size_t max_sessions = 1024;
  /// Reactor shards. 1 = the single-threaded PR-5 loop, no extra threads.
  std::size_t shards = 1;
  /// Connection dispatch across shards; ignored when shards == 1.
  DispatchMode dispatch = DispatchMode::kAuto;
};

/// The sharded event loop. Construction does not touch the network;
/// bind_and_listen opens every listener and run() serves until
/// request_stop(). run()'s calling thread drives shard 0 and spawns one
/// thread per additional shard; request_stop() may be called from any
/// thread or signal handler.
class AuthServer {
 public:
  /// `service` must outlive the server.
  AuthServer(const service::AuthService* service, ServerOptions options);
  ~AuthServer();
  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Binds and listens on every shard; returns the bound port (resolves
  /// port 0 — all shards share it). Throws ropuf::Error on any socket
  /// failure. When this returns, every listener accepts connections, so a
  /// readiness handshake (e.g. --port-file) written afterwards is sound at
  /// any shard count.
  std::uint16_t bind_and_listen();

  /// The bound port; 0 before bind_and_listen().
  std::uint16_t port() const { return port_; }

  std::size_t shard_count() const { return shards_.size(); }

  /// The dispatch mode actually in effect (kAuto resolved); meaningful
  /// after bind_and_listen().
  DispatchMode dispatch() const { return dispatch_; }

  /// Serves until request_stop(), then drains every shard gracefully and
  /// returns.
  void run();

  /// Requests every shard to stop; one relaxed atomic store, safe from any
  /// thread and from signal handlers.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Requests a registry reload: one relaxed atomic increment, safe from
  /// any thread and from signal handlers (ropuf_serve wires SIGHUP here,
  /// the same pattern request_stop uses for SIGINT/SIGTERM). Shard 0's
  /// loop runs the reload handler on its next sweep; bursts coalesce into
  /// one application. Every shard picks the published generation up at its
  /// next batch — EpochRegistry readers pin snapshots, so nothing pauses.
  void request_reload() {
    reload_requested_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Installs the reload action (re-reading registry files and publishing
  /// them on the EpochRegistry, in ropuf_serve's case). Set before run().
  /// The handler runs on shard 0's reactor thread; an exception it throws
  /// is counted under net.reload_failures and swallowed — a bad file on
  /// disk must not take down a serving fleet.
  void set_reload_handler(std::function<void()> handler);

  /// Reload batches applied so far (requests coalesce, so <= requested).
  std::uint64_t reloads_applied() const {
    return reloads_applied_.load(std::memory_order_relaxed);
  }

  /// Requests served over the server's lifetime (including degraded
  /// answers), summed across shards. Read after run() returned.
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  /// One outstanding v2 challenge: what the server must remember between
  /// issuing a nonce and judging the proof that answers it.
  struct PendingChallenge {
    std::uint64_t device_id = 0;
    auth::Nonce nonce{};
  };
  struct Connection {
    int fd = -1;
    std::string in;       ///< buffered unparsed stream bytes
    std::string out;      ///< buffered unwritten response bytes
    std::chrono::steady_clock::time_point last_read;
    bool close_after_flush = false;  ///< fatal defect: answer, flush, close
    bool alive = true;
    /// Version pinned by hello negotiation; kWireVersion until a
    /// kClientHello arrives (v1 peers never send one).
    std::uint16_t version = kWireVersion;
    /// Outstanding v2 challenges keyed by request id; bounded by
    /// max_sessions. A proof consumes its entry — replays find nothing.
    std::unordered_map<std::uint64_t, PendingChallenge> sessions;
  };
  /// One slot in the per-arrival-order answer sequence. Most entries carry
  /// a request awaiting verification; entries the loop answered itself
  /// (kBadFrame, kOverloaded) carry the pre-resolved response instead, so
  /// drain_pending can emit every answer in the order its frame arrived.
  struct PendingEntry {
    std::size_t connection;  ///< index into the owning shard's connections
    bool resolved = false;   ///< true: `response` is the answer already
    WireResponse response;
    service::AuthRequest request;
  };
  /// Per-shard counters ("net.shard<i>.*"); resolved once at construction
  /// when shards > 1, null in single-shard servers so the hot path pays
  /// nothing for the feature it isn't using. Each bumps alongside the
  /// matching global "net.*" counter, so global = sum of shards.
  struct ShardMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* enqueued = nullptr;
    obs::Counter* batches = nullptr;
  };
  /// Everything one reactor thread owns. No state in here is ever touched
  /// by another shard's thread, with one exception: the handoff vector
  /// (mutex-protected) and its wake pipe, which round-robin dispatch uses
  /// to pass freshly accepted fds from shard 0 to their owner.
  struct Shard {
    std::size_t index = 0;
    int listen_fd = -1;  ///< own listener; -1 for round-robin shards > 0
    std::size_t max_connections = 0;  ///< this shard's share of the cap
    std::vector<Connection> connections;
    std::deque<PendingEntry> pending;
    /// Unverified entries in pending (the max_pending backpressure bound
    /// counts verification work, not pre-resolved answers riding along).
    std::size_t pending_unresolved = 0;
    /// Listener poll resumes after this instant (accept_backoff_ms).
    std::chrono::steady_clock::time_point accept_backoff_until{};
    std::uint64_t requests_served = 0;
    /// Round-robin handoff: shard 0 deposits accepted fds under the mutex
    /// and writes one byte to the pipe so the owner's poll() wakes now
    /// rather than at the next timeout.
    std::mutex handoff_mutex;
    std::vector<int> handoff;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    ShardMetrics metrics;
  };

  /// Accepts on `shard`'s own listener and installs locally (single-shard
  /// and reuseport modes).
  void accept_ready(Shard& shard);
  /// Shard 0, round-robin mode: accepts and hands each fd to the next
  /// shard in rotation (installing locally when it is its own turn).
  void accept_dispatch(Shard& shard);
  /// Installs one accepted fd into a connection slot, enforcing the
  /// shard's connection share.
  void adopt_fd(Shard& shard, int fd);
  /// Drains the wake pipe and adopts every handed-off fd.
  void adopt_handoff(Shard& shard);
  /// Reads everything available (up to max_read_per_sweep), extracts
  /// frames, enqueues/answers.
  void service_readable(Shard& shard, std::size_t index);
  /// Decodes one frame into the pending queue or a pre-resolved answer.
  void handle_frame(Shard& shard, std::size_t index, const FrameView& frame);
  /// Appends already-encoded frame bytes to a connection's write buffer,
  /// enforcing the slow-consumer bound. The v2 paths (hello replies,
  /// challenges, out-of-order v2 responses) write through here directly;
  /// the v1 response path layers arrival-order queueing on top.
  void enqueue_frame(Shard& shard, std::size_t index, std::string frame_bytes);
  void enqueue_response(Shard& shard, std::size_t index, const WireResponse& response);
  /// Queues an answer the loop produced itself, in arrival order.
  void enqueue_immediate(Shard& shard, std::size_t index, const WireResponse& response);
  /// Drains the shard's pending queue through verify_batch, max_batch at a
  /// time, emitting responses in arrival order.
  void drain_pending(Shard& shard);
  void flush_writable(Shard& shard, std::size_t index);
  void close_connection(Shard& shard, std::size_t index);
  void close_idle_connections(Shard& shard);
  bool draining_complete(const Shard& shard) const;
  /// Shard 0 only: applies coalesced reload requests (runs the handler).
  void apply_pending_reloads();
  /// One reactor: the PR-5 event loop over this shard's fds.
  void run_shard(Shard& shard);

  const service::AuthService* service_;
  ServerOptions options_;
  /// v2 challenge nonces; thread-safe, shared by all shards.
  auth::NonceFactory nonce_factory_;
  DispatchMode dispatch_ = DispatchMode::kAuto;  ///< resolved by bind_and_listen
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> reload_requested_{0};
  std::atomic<std::uint64_t> reloads_applied_{0};
  std::function<void()> reload_handler_;  ///< set before run(), shard 0 runs it
  std::size_t round_robin_next_ = 0;  ///< only shard 0's thread touches this
  std::uint64_t requests_served_ = 0;
};

}  // namespace ropuf::net

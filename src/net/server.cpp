#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ropuf::net {
namespace {

constexpr std::size_t kReadChunkBytes = 4096;

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ROPUF_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
}

/// Pending-queue depth buckets: powers of two up to the default bound.
const std::vector<double>& queue_depth_bounds() {
  static const std::vector<double> bounds = {1,  2,   4,   8,   16,  32,
                                             64, 128, 256, 512, 1024, 4096};
  return bounds;
}

}  // namespace

AuthServer::AuthServer(const service::AuthService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  ROPUF_REQUIRE(service_ != nullptr, "null auth service");
  ROPUF_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  ROPUF_REQUIRE(options_.max_pending > 0, "max_pending must be positive");
  ROPUF_REQUIRE(options_.max_connections > 0, "max_connections must be positive");
  ROPUF_REQUIRE(options_.max_read_per_sweep > 0, "max_read_per_sweep must be positive");
  // Misconfiguration fails here, eagerly, instead of producing a wedged
  // loop: a zero/negative poll interval would spin or block forever, a
  // non-positive deadline closes every connection on its first sweep, and
  // listen(2) treats a negative backlog as implementation-defined.
  ROPUF_REQUIRE(options_.backlog > 0, "backlog must be positive");
  ROPUF_REQUIRE(options_.max_write_buffer > 0, "max_write_buffer must be positive");
  ROPUF_REQUIRE(options_.read_deadline_ms > 0, "read_deadline_ms must be positive");
  ROPUF_REQUIRE(options_.accept_backoff_ms >= 0,
                "accept_backoff_ms must be non-negative");
  ROPUF_REQUIRE(options_.poll_interval_ms > 0, "poll_interval_ms must be positive");
  ROPUF_REQUIRE(options_.drain_timeout_ms >= 0,
                "drain_timeout_ms must be non-negative");
}

AuthServer::~AuthServer() {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].alive) ::close(connections_[i].fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::uint16_t AuthServer::bind_and_listen() {
  ROPUF_REQUIRE(listen_fd_ < 0, "bind_and_listen() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ROPUF_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));
  listen_fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  ROPUF_REQUIRE(::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) == 1,
                "bad bind address '" + options_.bind_address + "'");
  ROPUF_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
                std::string("bind ") + options_.bind_address + ":" +
                    std::to_string(options_.port) + ": " + std::strerror(errno));
  ROPUF_REQUIRE(::listen(fd, options_.backlog) == 0,
                std::string("listen: ") + std::strerror(errno));
  set_nonblocking(fd);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ROPUF_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
                std::string("getsockname: ") + std::strerror(errno));
  port_ = ntohs(bound.sin_port);
  return port_;
}

void AuthServer::accept_ready() {
  static obs::Counter& accepted =
      obs::Registry::instance().counter("net.connections_accepted");
  static obs::Counter& limit_closes =
      obs::Registry::instance().counter("net.connection_limit_closes");
  static obs::Counter& backoffs =
      obs::Registry::instance().counter("net.accept_backoffs");
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion persists across sweeps while the
        // listener stays readable; without a backoff the loop busy-spins at
        // full CPU until a descriptor frees up.
        backoffs.add(1);
        accept_backoff_until_ = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(options_.accept_backoff_ms);
      }
      return;  // EAGAIN/EWOULDBLOCK or transient failure: next sweep
    }
    std::size_t live = 0;
    for (const Connection& connection : connections_) live += connection.alive ? 1 : 0;
    if (live >= options_.max_connections) {
      // At capacity the cheapest honest answer is an immediate close: the
      // peer sees a refused session rather than an unbounded accept queue.
      ::close(fd);
      limit_closes.add(1);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::size_t slot = connections_.size();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      if (!connections_[i].alive) {
        slot = i;
        break;
      }
    }
    if (slot == connections_.size()) connections_.emplace_back();
    Connection& connection = connections_[slot];
    connection = Connection{};
    connection.fd = fd;
    connection.last_read = std::chrono::steady_clock::now();
    accepted.add(1);
  }
}

void AuthServer::enqueue_response(Connection& connection, const WireResponse& response) {
  static obs::Counter& frames_out = obs::Registry::instance().counter("net.frames_out");
  static obs::Counter& slow_closes =
      obs::Registry::instance().counter("net.slow_consumer_closes");
  if (!connection.alive) return;
  connection.out.append(encode_response_frame(response));
  frames_out.add(1);
  if (connection.out.size() > options_.max_write_buffer) {
    // The peer stopped reading its answers; dropping it is the bounded
    // alternative to buffering responses without limit.
    slow_closes.add(1);
    const std::size_t index = static_cast<std::size_t>(&connection - connections_.data());
    close_connection(index);
  }
}

void AuthServer::enqueue_immediate(std::size_t index, const WireResponse& response) {
  // Answers the loop produces itself must not jump ahead of verdicts for
  // requests that arrived earlier on the same connection: the wire carries
  // no request ids, so per-connection response order IS the attribution.
  // Pre-resolved entries drain through the same queue as everything else.
  PendingEntry entry;
  entry.connection = index;
  entry.resolved = true;
  entry.response = response;
  pending_.push_back(std::move(entry));
}

void AuthServer::handle_frame(std::size_t index, const FrameView& frame) {
  static obs::Counter& frames_in = obs::Registry::instance().counter("net.frames_in");
  static obs::Counter& bad_frames =
      obs::Registry::instance().counter("net.bad_frame_answers");
  static obs::Counter& overloads =
      obs::Registry::instance().counter("net.overload_rejections");
  static obs::Counter& enqueued =
      obs::Registry::instance().counter("net.requests_enqueued");
  frames_in.add(1);
  if (frame.type != FrameType::kAuthRequest) {
    // A response frame arriving at the server is well-formed but
    // nonsensical; answer and keep the (still framed) connection.
    bad_frames.add(1);
    enqueue_immediate(index, WireResponse{WireStatus::kBadFrame, 0, 0});
    return;
  }
  service::AuthRequest request;
  try {
    request = decode_request_payload(frame.payload);
  } catch (const WireError&) {
    bad_frames.add(1);
    enqueue_immediate(index, WireResponse{WireStatus::kBadFrame, 0, 0});
    return;
  }
  if (pending_unresolved_ >= options_.max_pending) {
    overloads.add(1);
    enqueue_immediate(index, WireResponse{WireStatus::kOverloaded, 0, 0});
    return;
  }
  PendingEntry entry;
  entry.connection = index;
  entry.request = std::move(request);
  pending_.push_back(std::move(entry));
  ++pending_unresolved_;
  enqueued.add(1);
}

void AuthServer::service_readable(std::size_t index) {
  static obs::Counter& frame_errors =
      obs::Registry::instance().counter("net.frame_errors");
  Connection& connection = connections_[index];
  char chunk[kReadChunkBytes];
  std::size_t read_this_sweep = 0;
  while (connection.alive && !connection.close_after_flush &&
         read_this_sweep < options_.max_read_per_sweep) {
    const ssize_t n = ::recv(connection.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      connection.in.append(chunk, static_cast<std::size_t>(n));
      connection.last_read = std::chrono::steady_clock::now();
      read_this_sweep += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      // Peer finished sending: answer what already arrived, flush, close.
      connection.close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(index);
    return;
  }

  while (connection.alive) {
    const ExtractResult extracted = try_extract_frame(connection.in);
    if (extracted.status == ExtractResult::Status::kNeedMore) break;
    if (extracted.status == ExtractResult::Status::kDefect) {
      frame_errors.add(1);
      enqueue_immediate(index, WireResponse{WireStatus::kBadFrame, 0, 0});
      if (frame_defect_is_fatal(extracted.defect)) {
        // Stream framing is lost: the buffered bytes are untrustworthy and
        // the only clean exit is answering, flushing and closing.
        connection.in.clear();
        connection.close_after_flush = true;
        break;
      }
      connection.in.erase(0, extracted.consume);
      continue;
    }
    handle_frame(index, extracted.frame);
    connection.in.erase(0, extracted.frame.frame_bytes);
  }
}

void AuthServer::drain_pending() {
  if (pending_.empty()) return;
  static obs::Counter& batches = obs::Registry::instance().counter("net.batches");
  static obs::Histogram& queue_depth =
      obs::Registry::instance().histogram("net.queue_depth", queue_depth_bounds());
  static obs::Histogram& batch_us =
      obs::Registry::instance().latency_histogram("net.batch_us");
  queue_depth.record(static_cast<double>(pending_.size()));
  const obs::TraceSpan span("net.drain");
  while (!pending_.empty()) {
    // Take a front run holding at most max_batch unverified requests;
    // pre-resolved answers (kBadFrame/kOverloaded) ride along so every
    // response leaves in the order its frame arrived.
    std::vector<PendingEntry> entries;
    std::vector<service::AuthRequest> requests;
    while (!pending_.empty() && requests.size() < options_.max_batch) {
      entries.push_back(std::move(pending_.front()));
      pending_.pop_front();
      if (!entries.back().resolved) {
        requests.push_back(std::move(entries.back().request));
        --pending_unresolved_;
      }
    }
    std::vector<service::AuthVerdict> verdicts;
    if (!requests.empty()) {
      batches.add(1);
      const obs::ScopedLatency batch_timer(batch_us);
      verdicts = service_->verify_batch(requests);
      requests_served_ += verdicts.size();
    }
    std::size_t next_verdict = 0;
    for (const PendingEntry& entry : entries) {
      const WireResponse response =
          entry.resolved ? entry.response : wire_response(verdicts[next_verdict++]);
      enqueue_response(connections_[entry.connection], response);
    }
  }
}

void AuthServer::flush_writable(std::size_t index) {
  Connection& connection = connections_[index];
  while (connection.alive && !connection.out.empty()) {
    const ssize_t n = ::send(connection.fd, connection.out.data(),
                             connection.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_connection(index);
    return;
  }
  if (connection.alive && connection.out.empty() && connection.close_after_flush) {
    close_connection(index);
  }
}

void AuthServer::close_connection(std::size_t index) {
  static obs::Counter& closed =
      obs::Registry::instance().counter("net.connections_closed");
  Connection& connection = connections_[index];
  if (!connection.alive) return;
  ::close(connection.fd);
  connection = Connection{};
  connection.alive = false;
  closed.add(1);
}

void AuthServer::close_idle_connections() {
  static obs::Counter& deadline_closes =
      obs::Registry::instance().counter("net.deadline_closes");
  const auto now = std::chrono::steady_clock::now();
  const auto deadline = std::chrono::milliseconds(options_.read_deadline_ms);
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Connection& connection = connections_[i];
    // Anything with buffered output is still being answered; the read
    // deadline only reaps connections that are silent *and* owed nothing.
    if (!connection.alive || !connection.out.empty()) continue;
    if (now - connection.last_read > deadline) {
      deadline_closes.add(1);
      close_connection(i);
    }
  }
}

bool AuthServer::draining_complete() const {
  if (!pending_.empty()) return false;
  for (const Connection& connection : connections_) {
    if (connection.alive && !connection.out.empty()) return false;
  }
  return true;
}

void AuthServer::run() {
  ROPUF_REQUIRE(listen_fd_ >= 0, "run() called before bind_and_listen()");
  bool draining = false;
  std::chrono::steady_clock::time_point drain_began;

  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_owner;  ///< connection index per pollfd slot
  while (true) {
    if (!draining && stop_.load(std::memory_order_relaxed)) {
      // Graceful drain: stop accepting and reading, answer everything that
      // was already read, flush, then leave the loop.
      draining = true;
      drain_began = std::chrono::steady_clock::now();
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (draining) {
      const bool timed_out = std::chrono::steady_clock::now() - drain_began >
                             std::chrono::milliseconds(options_.drain_timeout_ms);
      if (draining_complete() || timed_out) break;
    }

    fds.clear();
    fd_owner.clear();
    if (!draining &&
        std::chrono::steady_clock::now() >= accept_backoff_until_) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_owner.push_back(connections_.size());  // sentinel: the listener
    }
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      const Connection& connection = connections_[i];
      if (!connection.alive) continue;
      short events = 0;
      if (!draining && !connection.close_after_flush) events |= POLLIN;
      if (!connection.out.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{connection.fd, events, 0});
      fd_owner.push_back(i);
    }

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ROPUF_REQUIRE(false, std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t slot = 0; slot < fds.size(); ++slot) {
      if (fds[slot].revents == 0) continue;
      if (fd_owner[slot] == connections_.size()) {
        accept_ready();
        continue;
      }
      const std::size_t index = fd_owner[slot];
      if (!connections_[index].alive) continue;
      if ((fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !draining) {
        service_readable(index);
      }
    }

    drain_pending();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      if (connections_[i].alive && (!connections_[i].out.empty() ||
                                    connections_[i].close_after_flush)) {
        flush_writable(i);
      }
    }
    if (!draining) close_idle_connections();
  }

  for (std::size_t i = 0; i < connections_.size(); ++i) close_connection(i);
}

}  // namespace ropuf::net

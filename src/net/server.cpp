#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ropuf::net {
namespace {

constexpr std::size_t kReadChunkBytes = 4096;

/// fd_owner sentinels for the per-shard pollfd list (connection indexes are
/// always far below these).
constexpr std::size_t kListenerSlot = static_cast<std::size_t>(-1);
constexpr std::size_t kWakeSlot = static_cast<std::size_t>(-2);

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ROPUF_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
}

bool try_set_reuseport(int fd) {
#ifdef SO_REUSEPORT
  const int one = 1;
  return ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0;
#else
  (void)fd;
  return false;
#endif
}

/// Global total plus the shard's own counter when per-shard metrics are on.
void bump(obs::Counter& global, obs::Counter* per_shard) {
  global.add(1);
  if (per_shard != nullptr) per_shard->add(1);
}

/// Pending-queue depth buckets: powers of two up to the default bound.
const std::vector<double>& queue_depth_bounds() {
  static const std::vector<double> bounds = {1,  2,   4,   8,   16,  32,
                                             64, 128, 256, 512, 1024, 4096};
  return bounds;
}

}  // namespace

AuthServer::AuthServer(const service::AuthService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      nonce_factory_(options_.nonce_seed) {
  ROPUF_REQUIRE(service_ != nullptr, "null auth service");
  ROPUF_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  ROPUF_REQUIRE(options_.max_pending > 0, "max_pending must be positive");
  ROPUF_REQUIRE(options_.max_sessions > 0, "max_sessions must be positive");
  ROPUF_REQUIRE(options_.max_connections > 0, "max_connections must be positive");
  ROPUF_REQUIRE(options_.max_read_per_sweep > 0, "max_read_per_sweep must be positive");
  // Misconfiguration fails here, eagerly, instead of producing a wedged
  // loop: a zero/negative poll interval would spin or block forever, a
  // non-positive deadline closes every connection on its first sweep, and
  // listen(2) treats a negative backlog as implementation-defined.
  ROPUF_REQUIRE(options_.backlog > 0, "backlog must be positive");
  ROPUF_REQUIRE(options_.max_write_buffer > 0, "max_write_buffer must be positive");
  ROPUF_REQUIRE(options_.read_deadline_ms > 0, "read_deadline_ms must be positive");
  ROPUF_REQUIRE(options_.accept_backoff_ms >= 0,
                "accept_backoff_ms must be non-negative");
  ROPUF_REQUIRE(options_.poll_interval_ms > 0, "poll_interval_ms must be positive");
  ROPUF_REQUIRE(options_.drain_timeout_ms >= 0,
                "drain_timeout_ms must be non-negative");
  ROPUF_REQUIRE(options_.shards > 0, "shards must be positive");
  // Every shard needs a nonzero connection share or it could only refuse.
  ROPUF_REQUIRE(options_.max_connections >= options_.shards,
                "max_connections must be at least the shard count");

  const std::size_t shard_count = options_.shards;
  const std::size_t base = options_.max_connections / shard_count;
  const std::size_t remainder = options_.max_connections % shard_count;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->max_connections = base + (s < remainder ? 1 : 0);
    if (shard_count > 1) {
      obs::Registry& registry = obs::Registry::instance();
      const std::string prefix = "net.shard" + std::to_string(s) + ".";
      shard->metrics.accepted = &registry.counter(prefix + "connections_accepted");
      shard->metrics.closed = &registry.counter(prefix + "connections_closed");
      shard->metrics.frames_in = &registry.counter(prefix + "frames_in");
      shard->metrics.frames_out = &registry.counter(prefix + "frames_out");
      shard->metrics.enqueued = &registry.counter(prefix + "requests_enqueued");
      shard->metrics.batches = &registry.counter(prefix + "batches");
    }
    shards_.push_back(std::move(shard));
  }
}

AuthServer::~AuthServer() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const Connection& connection : shard->connections) {
      if (connection.alive) ::close(connection.fd);
    }
    if (shard->listen_fd >= 0) ::close(shard->listen_fd);
    if (shard->wake_read_fd >= 0) ::close(shard->wake_read_fd);
    if (shard->wake_write_fd >= 0) ::close(shard->wake_write_fd);
    for (const int fd : shard->handoff) ::close(fd);
  }
}

std::uint16_t AuthServer::bind_and_listen() {
  ROPUF_REQUIRE(shards_[0]->listen_fd < 0, "bind_and_listen() called twice");

  // Opens one listener, stores the fd in the shard (so the destructor owns
  // it even if a later step throws), and returns the bound port.
  const auto open_listener = [this](Shard& shard, std::uint16_t bind_port,
                                    bool reuseport) -> std::uint16_t {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ROPUF_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));
    shard.listen_fd = fd;

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuseport) {
      ROPUF_REQUIRE(try_set_reuseport(fd),
                    std::string("setsockopt(SO_REUSEPORT): ") + std::strerror(errno));
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(bind_port);
    ROPUF_REQUIRE(
        ::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) == 1,
        "bad bind address '" + options_.bind_address + "'");
    ROPUF_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
                  std::string("bind ") + options_.bind_address + ":" +
                      std::to_string(bind_port) + ": " + std::strerror(errno));
    ROPUF_REQUIRE(::listen(fd, options_.backlog) == 0,
                  std::string("listen: ") + std::strerror(errno));
    set_nonblocking(fd);

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ROPUF_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
                  std::string("getsockname: ") + std::strerror(errno));
    return ntohs(bound.sin_port);
  };

  // Resolve the dispatch mode. A single shard always uses one plain
  // listener with local installs (degenerate round-robin), exactly the
  // pre-shard server. Multi-shard kAuto probes SO_REUSEPORT with a
  // throwaway socket and falls back to round-robin handoff; an explicit
  // kReusePort on a platform without it is a configuration error.
  bool reuseport = false;
  if (shards_.size() > 1 && options_.dispatch != DispatchMode::kRoundRobin) {
    const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    ROPUF_REQUIRE(probe >= 0, std::string("socket: ") + std::strerror(errno));
    reuseport = try_set_reuseport(probe);
    ::close(probe);
    ROPUF_REQUIRE(reuseport || options_.dispatch == DispatchMode::kAuto,
                  "dispatch=reuseport requested but SO_REUSEPORT is unavailable");
  }
  dispatch_ = reuseport ? DispatchMode::kReusePort : DispatchMode::kRoundRobin;

  // Shard 0 binds first and resolves an ephemeral port request; the other
  // shards then share that port (reuseport) or that listener (round-robin).
  port_ = open_listener(*shards_[0], options_.port, reuseport);
  if (reuseport) {
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      open_listener(*shards_[s], port_, true);
    }
  } else {
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      int pipe_fds[2] = {-1, -1};
      ROPUF_REQUIRE(::pipe(pipe_fds) == 0,
                    std::string("pipe: ") + std::strerror(errno));
      shards_[s]->wake_read_fd = pipe_fds[0];
      shards_[s]->wake_write_fd = pipe_fds[1];
      set_nonblocking(pipe_fds[0]);
      set_nonblocking(pipe_fds[1]);
    }
  }
  return port_;
}

void AuthServer::adopt_fd(Shard& shard, int fd) {
  static obs::Counter& accepted =
      obs::Registry::instance().counter("net.connections_accepted");
  static obs::Counter& limit_closes =
      obs::Registry::instance().counter("net.connection_limit_closes");
  std::size_t live = 0;
  for (const Connection& connection : shard.connections) live += connection.alive ? 1 : 0;
  if (live >= shard.max_connections) {
    // At capacity the cheapest honest answer is an immediate close: the
    // peer sees a refused session rather than an unbounded accept queue.
    ::close(fd);
    limit_closes.add(1);
    return;
  }
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::size_t slot = shard.connections.size();
  for (std::size_t i = 0; i < shard.connections.size(); ++i) {
    if (!shard.connections[i].alive) {
      slot = i;
      break;
    }
  }
  if (slot == shard.connections.size()) shard.connections.emplace_back();
  Connection& connection = shard.connections[slot];
  connection = Connection{};
  connection.fd = fd;
  connection.last_read = std::chrono::steady_clock::now();
  bump(accepted, shard.metrics.accepted);
}

void AuthServer::accept_ready(Shard& shard) {
  static obs::Counter& backoffs =
      obs::Registry::instance().counter("net.accept_backoffs");
  while (true) {
    const int fd = ::accept(shard.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion persists across sweeps while the
        // listener stays readable; without a backoff the loop busy-spins at
        // full CPU until a descriptor frees up.
        backoffs.add(1);
        shard.accept_backoff_until =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.accept_backoff_ms);
      }
      return;  // EAGAIN/EWOULDBLOCK or transient failure: next sweep
    }
    adopt_fd(shard, fd);
  }
}

void AuthServer::accept_dispatch(Shard& shard) {
  static obs::Counter& backoffs =
      obs::Registry::instance().counter("net.accept_backoffs");
  static obs::Counter& handoffs =
      obs::Registry::instance().counter("net.shard_handoffs");
  while (true) {
    const int fd = ::accept(shard.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        backoffs.add(1);
        shard.accept_backoff_until =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.accept_backoff_ms);
      }
      return;
    }
    const std::size_t target = round_robin_next_++ % shards_.size();
    if (target == shard.index) {
      adopt_fd(shard, fd);
      continue;
    }
    Shard& owner = *shards_[target];
    {
      const std::lock_guard<std::mutex> lock(owner.handoff_mutex);
      owner.handoff.push_back(fd);
    }
    handoffs.add(1);
    // One byte per deposit; if the pipe is ever full the pending bytes
    // already keep the owner's poll() readable, so a failed write cannot
    // lose a wakeup.
    const char token = 1;
    [[maybe_unused]] const ssize_t written = ::write(owner.wake_write_fd, &token, 1);
  }
}

void AuthServer::adopt_handoff(Shard& shard) {
  char drain[64];
  while (::read(shard.wake_read_fd, drain, sizeof(drain)) > 0) {
  }
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(shard.handoff_mutex);
    fds.swap(shard.handoff);
  }
  for (const int fd : fds) adopt_fd(shard, fd);
}

void AuthServer::enqueue_frame(Shard& shard, std::size_t index,
                               std::string frame_bytes) {
  static obs::Counter& frames_out = obs::Registry::instance().counter("net.frames_out");
  static obs::Counter& slow_closes =
      obs::Registry::instance().counter("net.slow_consumer_closes");
  Connection& connection = shard.connections[index];
  if (!connection.alive) return;
  connection.out.append(frame_bytes);
  bump(frames_out, shard.metrics.frames_out);
  if (connection.out.size() > options_.max_write_buffer) {
    // The peer stopped reading its answers; dropping it is the bounded
    // alternative to buffering responses without limit.
    slow_closes.add(1);
    close_connection(shard, index);
  }
}

void AuthServer::enqueue_response(Shard& shard, std::size_t index,
                                  const WireResponse& response) {
  enqueue_frame(shard, index, encode_response_frame(response));
}

void AuthServer::enqueue_immediate(Shard& shard, std::size_t index,
                                   const WireResponse& response) {
  // Answers the loop produces itself must not jump ahead of verdicts for
  // requests that arrived earlier on the same connection: the wire carries
  // no request ids, so per-connection response order IS the attribution.
  // Pre-resolved entries drain through the same queue as everything else.
  PendingEntry entry;
  entry.connection = index;
  entry.resolved = true;
  entry.response = response;
  shard.pending.push_back(std::move(entry));
}

void AuthServer::handle_frame(Shard& shard, std::size_t index, const FrameView& frame) {
  static obs::Counter& frames_in = obs::Registry::instance().counter("net.frames_in");
  static obs::Counter& bad_frames =
      obs::Registry::instance().counter("net.bad_frame_answers");
  static obs::Counter& overloads =
      obs::Registry::instance().counter("net.overload_rejections");
  static obs::Counter& enqueued =
      obs::Registry::instance().counter("net.requests_enqueued");
  static obs::Counter& hellos = obs::Registry::instance().counter("net.hellos");
  static obs::Counter& challenges =
      obs::Registry::instance().counter("net.challenges_issued");
  static obs::Counter& proofs =
      obs::Registry::instance().counter("net.proofs_verified");
  static obs::Counter& replays =
      obs::Registry::instance().counter("net.replays_rejected");
  bump(frames_in, shard.metrics.frames_in);
  Connection& connection = shard.connections[index];

  if (frame.type == FrameType::kClientHello) {
    // Capability negotiation: pin min(advertised, ours) and answer. The
    // reply writes straight to the buffer — a hello precedes the requests
    // whose answers it could otherwise jump.
    std::uint16_t advertised = 0;
    try {
      advertised = decode_hello_payload(frame.payload);
    } catch (const WireError&) {
      bad_frames.add(1);
      enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
      return;
    }
    connection.version = std::min(advertised, kWireMaxVersion);
    hellos.add(1);
    enqueue_frame(shard, index, encode_server_hello(connection.version));
    return;
  }

  if (frame.type == FrameType::kAuthRequest && frame.version == kWireVersionV2) {
    // v2 request: remember the session and answer with a fresh challenge.
    // The challenge bypasses both the pending queue (the request id carries
    // the attribution) and admission (v2's defense is cryptographic — a
    // challenge is cheap and a harvested transcript is worthless).
    if (connection.version != kWireVersionV2) {
      bad_frames.add(1);
      enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
      return;
    }
    V2Request request;
    try {
      request = decode_request_payload_v2(frame.payload);
    } catch (const WireError&) {
      // No request id survived the decode; 0 marks an unattributable answer.
      bad_frames.add(1);
      enqueue_frame(shard, index,
                    encode_response_frame_v2(0, WireResponse{WireStatus::kBadFrame, 0, 0}));
      return;
    }
    if (connection.sessions.size() >= options_.max_sessions) {
      overloads.add(1);
      enqueue_frame(shard, index,
                    encode_response_frame_v2(
                        request.request_id, WireResponse{WireStatus::kOverloaded, 0, 0}));
      return;
    }
    const auth::Nonce nonce =
        nonce_factory_.next(request.device_id, request.request_id);
    // A repeated request id overwrites its session: the newest challenge is
    // the only one a proof can answer.
    connection.sessions[request.request_id] =
        PendingChallenge{request.device_id, nonce};
    challenges.add(1);
    enqueue_frame(shard, index, encode_challenge_frame(request.request_id, nonce));
    return;
  }

  if (frame.type == FrameType::kAuthProof) {
    if (connection.version != kWireVersionV2) {
      bad_frames.add(1);
      enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
      return;
    }
    ProofPayload proof;
    try {
      proof = decode_proof_payload(frame.payload);
    } catch (const WireError&) {
      bad_frames.add(1);
      enqueue_frame(shard, index,
                    encode_response_frame_v2(0, WireResponse{WireStatus::kBadFrame, 0, 0}));
      return;
    }
    const auto session = connection.sessions.find(proof.request_id);
    if (session == connection.sessions.end()) {
      // No outstanding challenge for this id: a replayed or fabricated
      // proof. The nonce it was computed over is gone, so reject.
      replays.add(1);
      enqueue_frame(shard, index,
                    encode_response_frame_v2(proof.request_id,
                                             WireResponse{WireStatus::kReject, 0, 0}));
      return;
    }
    service::ProofRequest request;
    request.request_id = proof.request_id;
    request.device_id = session->second.device_id;
    request.nonce = session->second.nonce;
    request.tag = proof.tag;
    // Consume the session before judging: even a valid proof verifies at
    // most once per challenge.
    connection.sessions.erase(session);
    const service::AuthVerdict verdict = service_->verify_proof(request);
    proofs.add(1);
    shard.requests_served += 1;
    enqueue_frame(shard, index,
                  encode_response_frame_v2(proof.request_id, wire_response(verdict)));
    return;
  }

  if (frame.type != FrameType::kAuthRequest) {
    // A response/challenge/server-hello frame arriving at the server is
    // well-formed but nonsensical; answer and keep the (still framed)
    // connection.
    bad_frames.add(1);
    enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
    return;
  }
  service::AuthRequest request;
  try {
    request = decode_request_payload(frame.payload);
  } catch (const WireError&) {
    bad_frames.add(1);
    enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
    return;
  }
  if (shard.pending_unresolved >= options_.max_pending) {
    overloads.add(1);
    enqueue_immediate(shard, index, WireResponse{WireStatus::kOverloaded, 0, 0});
    return;
  }
  PendingEntry entry;
  entry.connection = index;
  entry.request = std::move(request);
  shard.pending.push_back(std::move(entry));
  ++shard.pending_unresolved;
  bump(enqueued, shard.metrics.enqueued);
}

void AuthServer::service_readable(Shard& shard, std::size_t index) {
  static obs::Counter& frame_errors =
      obs::Registry::instance().counter("net.frame_errors");
  Connection& connection = shard.connections[index];
  char chunk[kReadChunkBytes];
  std::size_t read_this_sweep = 0;
  while (connection.alive && !connection.close_after_flush &&
         read_this_sweep < options_.max_read_per_sweep) {
    const ssize_t n = ::recv(connection.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      connection.in.append(chunk, static_cast<std::size_t>(n));
      connection.last_read = std::chrono::steady_clock::now();
      read_this_sweep += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      // Peer finished sending: answer what already arrived, flush, close.
      connection.close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(shard, index);
    return;
  }

  while (connection.alive) {
    const ExtractResult extracted = try_extract_frame(connection.in);
    if (extracted.status == ExtractResult::Status::kNeedMore) break;
    if (extracted.status == ExtractResult::Status::kDefect) {
      frame_errors.add(1);
      enqueue_immediate(shard, index, WireResponse{WireStatus::kBadFrame, 0, 0});
      if (frame_defect_is_fatal(extracted.defect)) {
        // Stream framing is lost: the buffered bytes are untrustworthy and
        // the only clean exit is answering, flushing and closing.
        connection.in.clear();
        connection.close_after_flush = true;
        break;
      }
      connection.in.erase(0, extracted.consume);
      continue;
    }
    handle_frame(shard, index, extracted.frame);
    connection.in.erase(0, extracted.frame.frame_bytes);
  }
}

void AuthServer::drain_pending(Shard& shard) {
  if (shard.pending.empty()) return;
  static obs::Counter& batches = obs::Registry::instance().counter("net.batches");
  static obs::Histogram& queue_depth =
      obs::Registry::instance().histogram("net.queue_depth", queue_depth_bounds());
  static obs::Histogram& batch_us =
      obs::Registry::instance().latency_histogram("net.batch_us");
  queue_depth.record(static_cast<double>(shard.pending.size()));
  const obs::TraceSpan span("net.drain");
  while (!shard.pending.empty()) {
    // Take a front run holding at most max_batch unverified requests;
    // pre-resolved answers (kBadFrame/kOverloaded) ride along so every
    // response leaves in the order its frame arrived.
    std::vector<PendingEntry> entries;
    std::vector<service::AuthRequest> requests;
    while (!shard.pending.empty() && requests.size() < options_.max_batch) {
      entries.push_back(std::move(shard.pending.front()));
      shard.pending.pop_front();
      if (!entries.back().resolved) {
        requests.push_back(std::move(entries.back().request));
        --shard.pending_unresolved;
      }
    }
    std::vector<service::AuthVerdict> verdicts;
    if (!requests.empty()) {
      bump(batches, shard.metrics.batches);
      const obs::ScopedLatency batch_timer(batch_us);
      verdicts = service_->verify_batch(requests);
      shard.requests_served += verdicts.size();
    }
    std::size_t next_verdict = 0;
    for (const PendingEntry& entry : entries) {
      const WireResponse response =
          entry.resolved ? entry.response : wire_response(verdicts[next_verdict++]);
      enqueue_response(shard, entry.connection, response);
    }
  }
}

void AuthServer::flush_writable(Shard& shard, std::size_t index) {
  Connection& connection = shard.connections[index];
  while (connection.alive && !connection.out.empty()) {
    const ssize_t n = ::send(connection.fd, connection.out.data(),
                             connection.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      connection.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_connection(shard, index);
    return;
  }
  if (connection.alive && connection.out.empty() && connection.close_after_flush) {
    close_connection(shard, index);
  }
}

void AuthServer::close_connection(Shard& shard, std::size_t index) {
  static obs::Counter& closed =
      obs::Registry::instance().counter("net.connections_closed");
  Connection& connection = shard.connections[index];
  if (!connection.alive) return;
  ::close(connection.fd);
  connection = Connection{};
  connection.alive = false;
  bump(closed, shard.metrics.closed);
}

void AuthServer::close_idle_connections(Shard& shard) {
  static obs::Counter& deadline_closes =
      obs::Registry::instance().counter("net.deadline_closes");
  const auto now = std::chrono::steady_clock::now();
  const auto deadline = std::chrono::milliseconds(options_.read_deadline_ms);
  for (std::size_t i = 0; i < shard.connections.size(); ++i) {
    Connection& connection = shard.connections[i];
    // Anything with buffered output is still being answered; the read
    // deadline only reaps connections that are silent *and* owed nothing.
    if (!connection.alive || !connection.out.empty()) continue;
    if (now - connection.last_read > deadline) {
      deadline_closes.add(1);
      close_connection(shard, i);
    }
  }
}

bool AuthServer::draining_complete(const Shard& shard) const {
  if (!shard.pending.empty()) return false;
  for (const Connection& connection : shard.connections) {
    if (connection.alive && !connection.out.empty()) return false;
  }
  return true;
}

void AuthServer::set_reload_handler(std::function<void()> handler) {
  reload_handler_ = std::move(handler);
}

void AuthServer::apply_pending_reloads() {
  static obs::Counter& reloads = obs::Registry::instance().counter("net.reloads");
  static obs::Counter& failures =
      obs::Registry::instance().counter("net.reload_failures");
  const std::uint64_t wanted = reload_requested_.load(std::memory_order_relaxed);
  if (wanted == reloads_applied_.load(std::memory_order_relaxed)) return;
  // One handler invocation covers every request observed so far: a SIGHUP
  // burst reloads the files once, which is what the sender meant.
  if (reload_handler_) {
    try {
      reload_handler_();
    } catch (...) {
      // A reload that fails (corrupt or missing file mid-rewrite) keeps the
      // current generation serving; the operator retries after fixing it.
      failures.add(1);
    }
  }
  reloads.add(1);
  reloads_applied_.store(wanted, std::memory_order_relaxed);
}

void AuthServer::run_shard(Shard& shard) {
  const bool round_robin_acceptor =
      dispatch_ == DispatchMode::kRoundRobin && shards_.size() > 1 && shard.index == 0;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_began;

  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_owner;  ///< connection index (or sentinel) per slot
  while (true) {
    // Reloads apply on shard 0's sweep (poll_interval_ms bounds latency
    // like stop requests); sibling shards see the published generation on
    // their next batch without any cross-shard coordination.
    if (shard.index == 0 && !draining) apply_pending_reloads();
    if (!draining && stop_.load(std::memory_order_relaxed)) {
      // Graceful drain: stop accepting and reading, answer everything that
      // was already read, flush, then leave the loop.
      draining = true;
      drain_began = std::chrono::steady_clock::now();
      if (shard.listen_fd >= 0) {
        ::close(shard.listen_fd);
        shard.listen_fd = -1;
      }
      // Handed-off fds never adopted would serve requests past the stop
      // request; refuse them instead. (Shard 0 stops dispatching on its own
      // next sweep; anything it deposits after this point is closed by the
      // destructor.)
      const std::lock_guard<std::mutex> lock(shard.handoff_mutex);
      for (const int fd : shard.handoff) ::close(fd);
      shard.handoff.clear();
    }
    if (draining) {
      const bool timed_out = std::chrono::steady_clock::now() - drain_began >
                             std::chrono::milliseconds(options_.drain_timeout_ms);
      if (draining_complete(shard) || timed_out) break;
    }

    fds.clear();
    fd_owner.clear();
    if (!draining && shard.listen_fd >= 0 &&
        std::chrono::steady_clock::now() >= shard.accept_backoff_until) {
      fds.push_back(pollfd{shard.listen_fd, POLLIN, 0});
      fd_owner.push_back(kListenerSlot);
    }
    if (!draining && shard.wake_read_fd >= 0) {
      fds.push_back(pollfd{shard.wake_read_fd, POLLIN, 0});
      fd_owner.push_back(kWakeSlot);
    }
    for (std::size_t i = 0; i < shard.connections.size(); ++i) {
      const Connection& connection = shard.connections[i];
      if (!connection.alive) continue;
      short events = 0;
      if (!draining && !connection.close_after_flush) events |= POLLIN;
      if (!connection.out.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{connection.fd, events, 0});
      fd_owner.push_back(i);
    }

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ROPUF_REQUIRE(false, std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t slot = 0; slot < fds.size(); ++slot) {
      if (fds[slot].revents == 0) continue;
      if (fd_owner[slot] == kListenerSlot) {
        if (round_robin_acceptor) {
          accept_dispatch(shard);
        } else {
          accept_ready(shard);
        }
        continue;
      }
      if (fd_owner[slot] == kWakeSlot) {
        adopt_handoff(shard);
        continue;
      }
      const std::size_t index = fd_owner[slot];
      if (!shard.connections[index].alive) continue;
      if ((fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !draining) {
        service_readable(shard, index);
      }
    }

    drain_pending(shard);
    for (std::size_t i = 0; i < shard.connections.size(); ++i) {
      if (shard.connections[i].alive && (!shard.connections[i].out.empty() ||
                                         shard.connections[i].close_after_flush)) {
        flush_writable(shard, i);
      }
    }
    if (!draining) close_idle_connections(shard);
  }

  for (std::size_t i = 0; i < shard.connections.size(); ++i) close_connection(shard, i);
}

void AuthServer::run() {
  ROPUF_REQUIRE(shards_[0]->listen_fd >= 0, "run() called before bind_and_listen()");
  if (shards_.size() == 1) {
    run_shard(*shards_[0]);
    requests_served_ = shards_[0]->requests_served;
    return;
  }

  // Shards 1..N-1 get their own reactor threads; the calling thread drives
  // shard 0 (in round-robin mode, the acceptor). A shard that throws takes
  // the whole server down gracefully: it requests stop so its siblings
  // drain and join, then the first exception rethrows out of run().
  std::vector<std::exception_ptr> errors(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    threads.emplace_back([this, s, &errors] {
      try {
        run_shard(*shards_[s]);
      } catch (...) {
        errors[s] = std::current_exception();
        request_stop();
      }
    });
  }
  try {
    run_shard(*shards_[0]);
  } catch (...) {
    errors[0] = std::current_exception();
    request_stop();
  }
  for (std::thread& thread : threads) thread.join();

  requests_served_ = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    requests_served_ += shard->requests_served;
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace ropuf::net

#include "net/wire.h"

#include "registry/format.h"

namespace ropuf::net {
namespace {

/// ByteReader defect for reads that cannot overrun (sizes pre-validated);
/// if it ever fires the caller has a bug, not the peer.
constexpr registry::Defect kNeverOverruns = registry::Defect::kTruncated;

/// Request payload byte count for a given response bit count.
std::size_t request_payload_bytes(std::size_t bits) {
  return 8 + 8 + 4 + (bits + 7) / 8;
}

constexpr std::size_t kResponsePayloadBytes = 1 + 8 + 4;
constexpr std::size_t kHelloPayloadBytes = 2;
constexpr std::size_t kRequestV2PayloadBytes = 8 + 8;
constexpr std::size_t kChallengePayloadBytes = 8 + 16;
constexpr std::size_t kProofPayloadBytes = 8 + 32;
constexpr std::size_t kResponseV2PayloadBytes = 8 + kResponsePayloadBytes;

std::string finish_frame(FrameType type, std::string payload,
                         std::uint16_t version = kWireVersion) {
  registry::ByteWriter header;
  header.u32(kFrameMagic);
  header.u16(version);
  header.u16(static_cast<std::uint16_t>(type));
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(registry::crc32(payload));
  std::string frame = header.take();
  frame.append(payload);
  return frame;
}

WireError bad_payload_size(const char* what, std::size_t want, std::size_t got) {
  return WireError(FrameDefect::kBadPayload,
                   std::string(what) + " payload must be " + std::to_string(want) +
                       " bytes, got " + std::to_string(got));
}

}  // namespace

const char* frame_defect_name(FrameDefect defect) {
  switch (defect) {
    case FrameDefect::kBadMagic: return "bad-magic";
    case FrameDefect::kBadVersion: return "bad-version";
    case FrameDefect::kBadType: return "bad-type";
    case FrameDefect::kBadLength: return "bad-length";
    case FrameDefect::kBadCrc: return "bad-crc";
    case FrameDefect::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

bool frame_defect_is_fatal(FrameDefect defect) {
  switch (defect) {
    case FrameDefect::kBadMagic:
    case FrameDefect::kBadVersion:
    case FrameDefect::kBadLength:
      return true;  // the announced length cannot be trusted
    case FrameDefect::kBadType:
    case FrameDefect::kBadCrc:
    case FrameDefect::kBadPayload:
      return false;  // the frame boundary is known; skip and continue
  }
  return true;
}

const char* wire_status_name(WireStatus status) {
  switch (status) {
    case WireStatus::kAccept: return "accept";
    case WireStatus::kReject: return "reject";
    case WireStatus::kUnknownDevice: return "unknown-device";
    case WireStatus::kCorruptRecord: return "corrupt-record";
    case WireStatus::kMalformedRequest: return "malformed-request";
    case WireStatus::kBadFrame: return "bad-frame";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kRateLimited: return "rate-limited";
    case WireStatus::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

bool wire_status_is_transport(WireStatus status) {
  return status == WireStatus::kBadFrame || status == WireStatus::kOverloaded;
}

WireStatus wire_status(service::AuthStatus status) {
  switch (status) {
    // The original five verification statuses keep their shipped wire
    // values; the admission statuses were appended past the transport
    // degradations, so they translate explicitly.
    case service::AuthStatus::kAccept: return WireStatus::kAccept;
    case service::AuthStatus::kReject: return WireStatus::kReject;
    case service::AuthStatus::kUnknownDevice: return WireStatus::kUnknownDevice;
    case service::AuthStatus::kCorruptRecord: return WireStatus::kCorruptRecord;
    case service::AuthStatus::kMalformedRequest:
      return WireStatus::kMalformedRequest;
    case service::AuthStatus::kRateLimited: return WireStatus::kRateLimited;
    case service::AuthStatus::kBudgetExhausted:
      return WireStatus::kBudgetExhausted;
  }
  return WireStatus::kReject;
}

WireResponse wire_response(const service::AuthVerdict& verdict) {
  WireResponse response;
  response.status = wire_status(verdict.status);
  response.distance = verdict.distance;
  response.response_bits = static_cast<std::uint32_t>(verdict.response_bits);
  return response;
}

service::AuthVerdict auth_verdict(const WireResponse& response) {
  ROPUF_REQUIRE(!wire_status_is_transport(response.status),
                std::string("wire status '") + wire_status_name(response.status) +
                    "' has no verification verdict");
  service::AuthVerdict verdict;
  switch (response.status) {
    case WireStatus::kAccept: verdict.status = service::AuthStatus::kAccept; break;
    case WireStatus::kReject: verdict.status = service::AuthStatus::kReject; break;
    case WireStatus::kUnknownDevice:
      verdict.status = service::AuthStatus::kUnknownDevice;
      break;
    case WireStatus::kCorruptRecord:
      verdict.status = service::AuthStatus::kCorruptRecord;
      break;
    case WireStatus::kMalformedRequest:
      verdict.status = service::AuthStatus::kMalformedRequest;
      break;
    case WireStatus::kRateLimited:
      verdict.status = service::AuthStatus::kRateLimited;
      break;
    case WireStatus::kBudgetExhausted:
      verdict.status = service::AuthStatus::kBudgetExhausted;
      break;
    case WireStatus::kBadFrame:
    case WireStatus::kOverloaded:
      break;  // unreachable: rejected above
  }
  verdict.distance = static_cast<std::size_t>(response.distance);
  verdict.response_bits = response.response_bits;
  return verdict;
}

// -------------------------------------------------------------------- encode

std::string encode_request_frame(const service::AuthRequest& request) {
  registry::ByteWriter payload;
  payload.u64(request.device_id);
  payload.u64(request.challenge);
  payload.u32(static_cast<std::uint32_t>(request.response.size()));
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < request.response.size(); ++i) {
    if (request.response.get(i)) byte |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      payload.u8(byte);
      byte = 0;
    }
  }
  if (request.response.size() % 8 != 0) payload.u8(byte);
  return finish_frame(FrameType::kAuthRequest, payload.take());
}

std::string encode_response_frame(const WireResponse& response) {
  registry::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(response.status));
  payload.u64(response.distance);
  payload.u32(response.response_bits);
  return finish_frame(FrameType::kAuthResponse, payload.take());
}

std::string encode_client_hello(std::uint16_t max_version) {
  registry::ByteWriter payload;
  payload.u16(max_version);
  // Header version 1: a pre-v2 server must classify this as a recoverable
  // unknown type, not a fatal unknown version, so the connection survives
  // for the v1 fallback.
  return finish_frame(FrameType::kClientHello, payload.take(), kWireVersion);
}

std::string encode_server_hello(std::uint16_t version) {
  registry::ByteWriter payload;
  payload.u16(version);
  return finish_frame(FrameType::kServerHello, payload.take(), kWireVersion);
}

std::string encode_request_frame_v2(std::uint64_t request_id,
                                    std::uint64_t device_id) {
  registry::ByteWriter payload;
  payload.u64(request_id);
  payload.u64(device_id);
  return finish_frame(FrameType::kAuthRequest, payload.take(), kWireVersionV2);
}

std::string encode_challenge_frame(std::uint64_t request_id,
                                   const auth::Nonce& nonce) {
  registry::ByteWriter payload;
  payload.u64(request_id);
  for (const std::uint8_t byte : nonce) payload.u8(byte);
  return finish_frame(FrameType::kAuthChallenge, payload.take(), kWireVersionV2);
}

std::string encode_proof_frame(std::uint64_t request_id, const auth::Tag& tag) {
  registry::ByteWriter payload;
  payload.u64(request_id);
  for (const std::uint8_t byte : tag) payload.u8(byte);
  return finish_frame(FrameType::kAuthProof, payload.take(), kWireVersionV2);
}

std::string encode_response_frame_v2(std::uint64_t request_id,
                                     const WireResponse& response) {
  registry::ByteWriter payload;
  payload.u64(request_id);
  payload.u8(static_cast<std::uint8_t>(response.status));
  payload.u64(response.distance);
  payload.u32(response.response_bits);
  return finish_frame(FrameType::kAuthResponse, payload.take(), kWireVersionV2);
}

// -------------------------------------------------------------------- decode

ExtractResult try_extract_frame(std::string_view buffer) {
  ExtractResult result;
  if (buffer.size() < kFrameHeaderBytes) return result;  // kNeedMore

  registry::ByteReader header(buffer.substr(0, kFrameHeaderBytes), kNeverOverruns);
  const std::uint32_t magic = header.u32();
  const std::uint16_t version = header.u16();
  const std::uint16_t type = header.u16();
  const std::uint32_t length = header.u32();
  const std::uint32_t checksum = header.u32();

  const auto defect = [&result](FrameDefect d, std::size_t consume) {
    result.status = ExtractResult::Status::kDefect;
    result.defect = d;
    result.consume = consume;
    return result;
  };
  // Fatal checks first: each can be decided from the header alone, and a
  // failure means the announced length (hence the next frame boundary)
  // cannot be trusted.
  if (magic != kFrameMagic) return defect(FrameDefect::kBadMagic, 0);
  if (version == 0 || version > kWireMaxVersion) {
    return defect(FrameDefect::kBadVersion, 0);
  }
  if (length > kMaxPayloadBytes) return defect(FrameDefect::kBadLength, 0);

  const std::size_t frame_bytes = kFrameHeaderBytes + length;
  if (buffer.size() < frame_bytes) return result;  // kNeedMore
  const std::string_view payload = buffer.substr(kFrameHeaderBytes, length);

  // Recoverable checks: the frame boundary is known, so the consumer can
  // skip exactly this frame and stay in sync.
  if (type < static_cast<std::uint16_t>(FrameType::kAuthRequest) ||
      type > static_cast<std::uint16_t>(FrameType::kAuthProof)) {
    return defect(FrameDefect::kBadType, frame_bytes);
  }
  if (registry::crc32(payload) != checksum) {
    return defect(FrameDefect::kBadCrc, frame_bytes);
  }

  result.status = ExtractResult::Status::kFrame;
  result.frame.version = version;
  result.frame.type = static_cast<FrameType>(type);
  result.frame.payload = payload;
  result.frame.frame_bytes = frame_bytes;
  return result;
}

service::AuthRequest decode_request_payload(std::string_view payload) {
  if (payload.size() < 20) {
    throw WireError(FrameDefect::kBadPayload,
                    "request payload of " + std::to_string(payload.size()) +
                        " bytes is shorter than its fixed fields");
  }
  registry::ByteReader reader(payload.substr(0, 20), kNeverOverruns);
  service::AuthRequest request;
  request.device_id = reader.u64();
  request.challenge = reader.u64();
  const std::uint32_t bits = reader.u32();
  if (payload.size() != request_payload_bytes(bits)) {
    throw WireError(FrameDefect::kBadPayload,
                    "request announces " + std::to_string(bits) +
                        " response bits but carries " +
                        std::to_string(payload.size()) + " payload bytes");
  }
  BitVec response(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const auto byte = static_cast<std::uint8_t>(payload[20 + i / 8]);
    response.set(i, (byte >> (i % 8)) & 1u);
  }
  // Canonical encoding: padding bits past the announced count must be zero,
  // so every decoded request has exactly one byte representation.
  if (bits % 8 != 0) {
    const auto last = static_cast<std::uint8_t>(payload[payload.size() - 1]);
    if ((last >> (bits % 8)) != 0) {
      throw WireError(FrameDefect::kBadPayload,
                      "nonzero padding bits past the announced bit count");
    }
  }
  request.response = std::move(response);
  return request;
}

WireResponse decode_response_payload(std::string_view payload) {
  if (payload.size() != kResponsePayloadBytes) {
    throw WireError(FrameDefect::kBadPayload,
                    "response payload must be " +
                        std::to_string(kResponsePayloadBytes) + " bytes, got " +
                        std::to_string(payload.size()));
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  const std::uint8_t status = reader.u8();
  if (status > static_cast<std::uint8_t>(WireStatus::kBudgetExhausted)) {
    throw WireError(FrameDefect::kBadPayload,
                    "unknown wire status " + std::to_string(status));
  }
  WireResponse response;
  response.status = static_cast<WireStatus>(status);
  response.distance = reader.u64();
  response.response_bits = reader.u32();
  return response;
}

std::uint16_t decode_hello_payload(std::string_view payload) {
  if (payload.size() != kHelloPayloadBytes) {
    throw bad_payload_size("hello", kHelloPayloadBytes, payload.size());
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  const std::uint16_t version = reader.u16();
  if (version == 0) {
    throw WireError(FrameDefect::kBadPayload, "hello advertises version 0");
  }
  return version;
}

V2Request decode_request_payload_v2(std::string_view payload) {
  if (payload.size() != kRequestV2PayloadBytes) {
    throw bad_payload_size("v2 request", kRequestV2PayloadBytes, payload.size());
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  V2Request request;
  request.request_id = reader.u64();
  request.device_id = reader.u64();
  return request;
}

ChallengePayload decode_challenge_payload(std::string_view payload) {
  if (payload.size() != kChallengePayloadBytes) {
    throw bad_payload_size("challenge", kChallengePayloadBytes, payload.size());
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  ChallengePayload challenge;
  challenge.request_id = reader.u64();
  for (std::uint8_t& byte : challenge.nonce) byte = reader.u8();
  return challenge;
}

ProofPayload decode_proof_payload(std::string_view payload) {
  if (payload.size() != kProofPayloadBytes) {
    throw bad_payload_size("proof", kProofPayloadBytes, payload.size());
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  ProofPayload proof;
  proof.request_id = reader.u64();
  for (std::uint8_t& byte : proof.tag) byte = reader.u8();
  return proof;
}

V2Response decode_response_payload_v2(std::string_view payload) {
  if (payload.size() != kResponseV2PayloadBytes) {
    throw bad_payload_size("v2 response", kResponseV2PayloadBytes, payload.size());
  }
  registry::ByteReader reader(payload, kNeverOverruns);
  V2Response response;
  response.request_id = reader.u64();
  const std::uint8_t status = reader.u8();
  if (status > static_cast<std::uint8_t>(WireStatus::kBudgetExhausted)) {
    throw WireError(FrameDefect::kBadPayload,
                    "unknown wire status " + std::to_string(status));
  }
  response.response.status = static_cast<WireStatus>(status);
  response.response.distance = reader.u64();
  response.response.response_bits = reader.u32();
  return response;
}

}  // namespace ropuf::net

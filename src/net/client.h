// Blocking authentication client for the framed wire protocol (net/wire.h).
//
// The client side needs none of the server's event-loop machinery: it opens
// one TCP connection, writes request frames, and reads response frames in
// order. The only subtlety is pipelining — writing an unbounded number of
// requests before reading any responses can deadlock once both socket
// buffers fill — so send_batch() pipelines through a bounded window: at most
// `window` requests are in flight before the client drains their responses.
// Keeping the window at or below the server's max_pending guarantees a
// single client on an otherwise idle server never sees kOverloaded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/auth_service.h"

namespace ropuf::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Requests in flight before responses are drained (see header note).
  std::size_t window = 128;
  /// Socket send/receive timeout; 0 disables. Guards the client against a
  /// hung server the way the server's read deadline guards against clients.
  int io_timeout_ms = 10000;
};

/// One TCP connection speaking the wire protocol. Not thread-safe; blocking.
class AuthClient {
 public:
  explicit AuthClient(ClientOptions options);
  ~AuthClient();
  AuthClient(const AuthClient&) = delete;
  AuthClient& operator=(const AuthClient&) = delete;
  /// Movable so factory helpers can hand out connected clients.
  AuthClient(AuthClient&& other) noexcept
      : options_(std::move(other.options_)), fd_(other.fd_), in_(std::move(other.in_)) {
    other.fd_ = -1;
  }
  AuthClient& operator=(AuthClient&&) = delete;

  /// Connects to host:port. Throws ropuf::Error on failure.
  void connect();

  /// Sends one request and waits for its response.
  WireResponse send_request(const service::AuthRequest& request);

  /// Pipelines `requests` through the window and returns their responses in
  /// request order. Throws on transport failure or a malformed response.
  std::vector<WireResponse> send_batch(const std::vector<service::AuthRequest>& requests);

  /// Writes raw bytes as-is (corruption tests tamper with frames and need a
  /// byte-level escape hatch). Throws on transport failure.
  void send_raw(std::string_view bytes);

  /// Reads until one complete frame arrives and decodes it as a response.
  /// Throws WireError on a defective frame and ropuf::Error when the server
  /// closes the connection first (`eof_ok` instead reports a status-free
  /// closed-connection response is not possible, so callers that *expect*
  /// a close use recv_close()).
  WireResponse recv_response();

  /// Reads until EOF, asserting the server sends nothing but well-formed
  /// response frames first; returns how many arrived before the close.
  std::size_t recv_until_close();

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  /// Blocking read of at least one more byte into in_; false on clean EOF.
  bool fill();

  ClientOptions options_;
  int fd_ = -1;
  std::string in_;  ///< buffered stream bytes not yet consumed
};

}  // namespace ropuf::net

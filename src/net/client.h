// Blocking authentication client for the framed wire protocol (net/wire.h).
//
// The client side needs none of the server's event-loop machinery: it opens
// one TCP connection, writes request frames, and reads response frames in
// order. The only subtlety is pipelining — writing an unbounded number of
// requests before reading any responses can deadlock once both socket
// buffers fill — so send_batch() pipelines through a bounded window: at most
// `window` requests are in flight before the client drains their responses.
// Keeping the window at or below the server's max_pending guarantees a
// single client on an otherwise idle server never sees kOverloaded.
//
// Protocol v2 (docs/protocol_v2.md): negotiate() runs the hello exchange
// and pins the connection's version — including the graceful fallback when
// a pre-v2 server answers the (to it, unknown-typed) hello with kBadFrame.
// send_proof_batch() then drives the v2 challenge-response state machine
// over the same bounded window: requests go out, challenges come back in
// whatever order the server resolves them, each is answered with an HMAC
// proof computed from the caller's recovered key, and the v2 responses —
// matched by request id, not position — land back in intent order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/auth_service.h"

namespace ropuf::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Requests in flight before responses are drained (see header note).
  std::size_t window = 128;
  /// Socket send/receive timeout; 0 disables. Guards the client against a
  /// hung server the way the server's read deadline guards against clients.
  int io_timeout_ms = 10000;
};

/// One TCP connection speaking the wire protocol. Not thread-safe; blocking.
class AuthClient {
 public:
  explicit AuthClient(ClientOptions options);
  ~AuthClient();
  AuthClient(const AuthClient&) = delete;
  AuthClient& operator=(const AuthClient&) = delete;
  /// Movable so factory helpers can hand out connected clients.
  AuthClient(AuthClient&& other) noexcept
      : options_(std::move(other.options_)),
        fd_(other.fd_),
        in_(std::move(other.in_)),
        version_(other.version_) {
    other.fd_ = -1;
  }
  AuthClient& operator=(AuthClient&&) = delete;

  /// Connects to host:port. Throws ropuf::Error on failure.
  void connect();

  /// Runs the hello exchange and pins the connection's protocol version:
  /// advertises kWireMaxVersion, and accepts either a kServerHello (the
  /// server's pin) or a v1 kBadFrame response (a pre-v2 server rejecting
  /// the unknown frame type — the v1 fallback signal). Returns the pinned
  /// version. Call once, right after connect(), before any requests.
  std::uint16_t negotiate();

  /// The pinned protocol version: kWireVersion until negotiate() ran.
  std::uint16_t version() const { return version_; }

  /// Sends one request and waits for its response.
  WireResponse send_request(const service::AuthRequest& request);

  /// Pipelines `requests` through the window and returns their responses in
  /// request order. Throws on transport failure or a malformed response.
  std::vector<WireResponse> send_batch(const std::vector<service::AuthRequest>& requests);

  /// Pipelines v2 proof intents through the window — request out, challenge
  /// in, proof out, response in — and returns the responses in intent
  /// order (matched by request id; the wire may complete out of order).
  /// Intents without a recovered key (has_key == false) answer their
  /// challenge with an all-zeros tag, which the server rejects — how a
  /// forger who never measured the PUF looks on the wire. Requires a
  /// negotiated v2 connection and unique request ids; throws ropuf::Error
  /// otherwise, and on transport failure or an unexpected frame.
  std::vector<WireResponse> send_proof_batch(
      const std::vector<service::ProofIntent>& intents);

  /// Writes raw bytes as-is (corruption tests tamper with frames and need a
  /// byte-level escape hatch). Throws on transport failure.
  void send_raw(std::string_view bytes);

  /// Reads until one complete frame arrives and decodes it as a response.
  /// Throws WireError on a defective frame and ropuf::Error when the server
  /// closes the connection first (`eof_ok` instead reports a status-free
  /// closed-connection response is not possible, so callers that *expect*
  /// a close use recv_close()).
  WireResponse recv_response();

  /// Reads until EOF, asserting the server sends nothing but well-formed
  /// response frames first; returns how many arrived before the close.
  std::size_t recv_until_close();

  /// One received frame, whatever its type — the generic receiver the v2
  /// state machine (and tests poking at raw traffic) builds on.
  struct RawFrame {
    std::uint16_t version = kWireVersion;
    FrameType type = FrameType::kAuthRequest;
    std::string payload;
  };

  /// Reads until one complete well-formed frame arrives and returns it.
  /// Throws WireError on a defective frame, ropuf::Error on a close.
  RawFrame recv_frame();

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  /// Blocking read of at least one more byte into in_; false on clean EOF.
  bool fill();

  ClientOptions options_;
  int fd_ = -1;
  std::string in_;  ///< buffered stream bytes not yet consumed
  std::uint16_t version_ = kWireVersion;  ///< pinned by negotiate()
};

}  // namespace ropuf::net

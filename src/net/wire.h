// Framed wire protocol for online authentication (see docs/serving.md).
//
// The serving front end (net/server.h) and its clients speak a
// length-prefixed, CRC32-framed, little-endian byte protocol built from the
// same primitives as the enrollment registry file format
// (registry/format.h): ByteWriter/ByteReader packing and the IEEE-802.3
// crc32. A frame is a fixed 16-byte header followed by a checksummed
// payload:
//
//   offset  size  field
//   ------  ----  -------------------------------------------
//    0       4    magic "RPAF" (kFrameMagic, little-endian u32)
//    4       2    u16 protocol version (1 or 2)
//    6       2    u16 frame type (FrameType)
//    8       4    u32 payload byte count (<= kMaxPayloadBytes)
//   12       4    u32 payload CRC32 (IEEE, over the payload bytes)
//   16       n    payload
//
// Protocol v2 (docs/protocol_v2.md) extends the header's version field into
// a capability negotiation: the client's kClientHello advertises the newest
// version it speaks (hello frames travel with header version 1 so a pre-v2
// server classifies them as a recoverable kBadType and answers kBadFrame —
// the fallback signal), the server pins min(advertised, kWireMaxVersion)
// per connection and answers kServerHello. v2 payloads carry a 64-bit
// request id, so v2 responses may complete out of request order; the v1
// payloads are unchanged and keep the strict per-connection ordering
// invariant. v2 replaces the CRP exchange with a challenge-response MAC:
// kAuthRequest(v2) carries only ids, the server answers kAuthChallenge with
// a fresh nonce, and the prover returns kAuthProof with an HMAC tag
// (src/auth) — no response bits ever travel, which is what starves the
// distance-oracle attack.
//
// Every way a frame can be malformed maps to exactly one FrameDefect —
// the same one-check-one-defect discipline as the registry's Defect
// taxonomy — and the extraction API reports whether stream framing
// survived the defect (the consumer can skip the frame and keep the
// connection) or not (the only safe answer is an error frame and a clean
// close). Decoding never crashes and never reads past the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "auth/auth.h"
#include "common/error.h"
#include "service/auth_service.h"

namespace ropuf::net {

/// Leading frame bytes, "RPAF" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x4641'5052u;
/// The original protocol revision (CRP request/response, no request ids).
inline constexpr std::uint16_t kWireVersion = 1;
/// Protocol v2: request ids + PUF-derived cryptographic authentication.
inline constexpr std::uint16_t kWireVersionV2 = 2;
/// Newest revision this library speaks; hellos advertise/pin against it.
inline constexpr std::uint16_t kWireMaxVersion = kWireVersionV2;
/// Fixed header byte count.
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on a frame payload; a larger announced length is kBadLength
/// (an attacker must not be able to make the server buffer gigabytes).
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint16_t {
  kAuthRequest = 1,    ///< v1: {device_id, challenge, response}; v2: {rid, device_id}
  kAuthResponse = 2,   ///< v1: {status, distance, bits}; v2: {rid, status, ...}
  kClientHello = 3,    ///< client -> server: u16 newest version the client speaks
  kServerHello = 4,    ///< server -> client: u16 version pinned for the connection
  kAuthChallenge = 5,  ///< server -> client (v2): {rid, 16-byte nonce}
  kAuthProof = 6,      ///< client -> server (v2): {rid, 32-byte HMAC tag}
};

/// The structural defect a frame decode can detect. Each maps to exactly
/// one check, so the corruption tests can assert the *right* check fired.
enum class FrameDefect {
  kBadMagic,    ///< leading bytes are not "RPAF" — stream framing lost
  kBadVersion,  ///< protocol version this endpoint does not speak
  kBadType,     ///< unknown frame type (framing intact: length is trusted)
  kBadLength,   ///< announced payload length exceeds kMaxPayloadBytes
  kBadCrc,      ///< payload fails its checksum (framing intact)
  kBadPayload,  ///< payload decodes inconsistently for its frame type
};

/// Stable human-readable name for a defect (error messages and tests).
const char* frame_defect_name(FrameDefect defect);

/// True when the defect destroys stream framing: the announced length can
/// no longer be trusted, so the connection must close after the error
/// response. Recoverable defects leave the frame boundary known.
bool frame_defect_is_fatal(FrameDefect defect);

/// Frame decode failure tagged with the defect that was detected.
class WireError : public Error {
 public:
  WireError(FrameDefect defect, const std::string& what)
      : Error(std::string("wire format error [") + frame_defect_name(defect) +
              "]: " + what),
        defect_(defect) {}

  FrameDefect defect() const { return defect_; }

 private:
  FrameDefect defect_;
};

/// Verdict status on the wire: the seven AuthService statuses plus the two
/// server-side degradations a request can meet before verification. The
/// admission statuses were appended *after* kBadFrame/kOverloaded shipped,
/// so the AuthStatus and WireStatus numberings diverge past
/// kMalformedRequest — wire_status()/auth_verdict() translate explicitly.
enum class WireStatus : std::uint8_t {
  kAccept = 0,
  kReject = 1,
  kUnknownDevice = 2,
  kCorruptRecord = 3,
  kMalformedRequest = 4,
  kBadFrame = 5,         ///< the request frame failed to decode (FrameDefect)
  kOverloaded = 6,       ///< pending-request queue full — retry later
  kRateLimited = 7,      ///< admission: device token bucket empty — back off
  kBudgetExhausted = 8,  ///< admission: device CRP/reuse budget spent
};

const char* wire_status_name(WireStatus status);

/// True for the two transport-level degradations (kBadFrame, kOverloaded)
/// that have no AuthVerdict equivalent; every other status round-trips
/// through wire_status()/auth_verdict().
bool wire_status_is_transport(WireStatus status);

/// Lossless mapping for the seven verification statuses.
WireStatus wire_status(service::AuthStatus status);

/// One authentication answer as it travels the wire.
struct WireResponse {
  WireStatus status = WireStatus::kReject;
  std::uint64_t distance = 0;
  std::uint32_t response_bits = 0;

  bool accepted() const { return status == WireStatus::kAccept; }
};

WireResponse wire_response(const service::AuthVerdict& verdict);

/// wire_response for verification verdicts, inverted: valid for every
/// status except the transport degradations (throws ropuf::Error for
/// kBadFrame/kOverloaded, which have no AuthVerdict equivalent).
service::AuthVerdict auth_verdict(const WireResponse& response);

// ------------------------------------------------------------------ encode

/// Complete request frame (header + payload) for one authentication
/// attempt. Payload: u64 device_id, u64 challenge, u32 bit count, then
/// ceil(bits/8) bytes of response bits packed LSB-first.
std::string encode_request_frame(const service::AuthRequest& request);

/// Complete response frame. Payload: u8 status, u64 distance,
/// u32 response_bits.
std::string encode_response_frame(const WireResponse& response);

// v2 frames. The hellos travel with header version 1 on purpose: a pre-v2
// server sees a recoverable unknown type (kBadType) and answers kBadFrame,
// which a v2 client reads as "speak v1". Everything else is header v2.

/// kClientHello: u16 newest version the client speaks.
std::string encode_client_hello(std::uint16_t max_version);
/// kServerHello: u16 version the server pinned for this connection.
std::string encode_server_hello(std::uint16_t version);
/// v2 kAuthRequest: u64 request_id, u64 device_id — no CRP material.
std::string encode_request_frame_v2(std::uint64_t request_id,
                                    std::uint64_t device_id);
/// kAuthChallenge: u64 request_id, 16-byte nonce.
std::string encode_challenge_frame(std::uint64_t request_id,
                                   const auth::Nonce& nonce);
/// kAuthProof: u64 request_id, 32-byte HMAC-SHA256 tag.
std::string encode_proof_frame(std::uint64_t request_id, const auth::Tag& tag);
/// v2 kAuthResponse: u64 request_id, then the v1 response fields.
std::string encode_response_frame_v2(std::uint64_t request_id,
                                     const WireResponse& response);

// ------------------------------------------------------------------ decode

/// A complete frame located inside a byte stream.
struct FrameView {
  std::uint16_t version = kWireVersion;  ///< header protocol version (1 or 2)
  FrameType type = FrameType::kAuthRequest;
  std::string_view payload;      ///< CRC-verified payload bytes
  std::size_t frame_bytes = 0;   ///< header + payload: bytes to consume
};

/// Outcome of one frame-extraction attempt over buffered stream bytes.
struct ExtractResult {
  enum class Status {
    kNeedMore,  ///< the buffer holds no complete frame yet — read more
    kFrame,     ///< `frame` is valid; consume frame.frame_bytes
    kDefect,    ///< `defect` fired; consume `consume` bytes (0 = fatal)
  };
  Status status = Status::kNeedMore;
  FrameView frame;
  FrameDefect defect = FrameDefect::kBadMagic;
  /// For recoverable defects: the full frame size to drop so the stream
  /// stays in sync. 0 when the defect is fatal (framing lost).
  std::size_t consume = 0;
};

/// Examines the front of `buffer` for one frame. Never throws and never
/// reads past the buffer: header fields are validated as soon as the 16
/// header bytes are present, the payload CRC once the payload arrived.
ExtractResult try_extract_frame(std::string_view buffer);

/// Decodes a kAuthRequest payload. Throws WireError(kBadPayload) when the
/// payload is internally inconsistent (wrong size for its bit count,
/// nonzero padding bits).
service::AuthRequest decode_request_payload(std::string_view payload);

/// Decodes a kAuthResponse payload. Throws WireError(kBadPayload) on a
/// wrong-size payload or an out-of-range status byte.
WireResponse decode_response_payload(std::string_view payload);

/// Decodes a hello payload (client or server). Throws
/// WireError(kBadPayload) on a wrong-size payload or version 0.
std::uint16_t decode_hello_payload(std::string_view payload);

/// A decoded v2 kAuthRequest payload.
struct V2Request {
  std::uint64_t request_id = 0;
  std::uint64_t device_id = 0;
};
V2Request decode_request_payload_v2(std::string_view payload);

/// A decoded kAuthChallenge payload.
struct ChallengePayload {
  std::uint64_t request_id = 0;
  auth::Nonce nonce{};
};
ChallengePayload decode_challenge_payload(std::string_view payload);

/// A decoded kAuthProof payload.
struct ProofPayload {
  std::uint64_t request_id = 0;
  auth::Tag tag{};
};
ProofPayload decode_proof_payload(std::string_view payload);

/// A decoded v2 kAuthResponse payload.
struct V2Response {
  std::uint64_t request_id = 0;
  WireResponse response;
};
V2Response decode_response_payload_v2(std::string_view payload);

}  // namespace ropuf::net

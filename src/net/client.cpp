#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "auth/auth.h"
#include "common/error.h"

namespace ropuf::net {
namespace {

constexpr std::size_t kReadChunkBytes = 4096;

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

}  // namespace

AuthClient::AuthClient(ClientOptions options) : options_(std::move(options)) {
  ROPUF_REQUIRE(options_.window > 0, "client window must be positive");
}

AuthClient::~AuthClient() { close(); }

void AuthClient::connect() {
  ROPUF_REQUIRE(fd_ < 0, "connect() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ROPUF_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));
  fd_ = fd;

  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  ROPUF_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
                "bad host address '" + options_.host + "'");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    close();
    ROPUF_REQUIRE(false, "connect " + options_.host + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
}

void AuthClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

void AuthClient::send_raw(std::string_view bytes) {
  ROPUF_REQUIRE(fd_ >= 0, "send on a closed client");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ROPUF_REQUIRE(false, std::string("send: ") + std::strerror(errno));
  }
}

bool AuthClient::fill() {
  ROPUF_REQUIRE(fd_ >= 0, "recv on a closed client");
  char chunk[kReadChunkBytes];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    ROPUF_REQUIRE(false, std::string("recv: ") + std::strerror(errno));
  }
}

AuthClient::RawFrame AuthClient::recv_frame() {
  while (true) {
    const ExtractResult extracted = try_extract_frame(in_);
    if (extracted.status == ExtractResult::Status::kDefect) {
      throw WireError(extracted.defect, "defective frame from server");
    }
    if (extracted.status == ExtractResult::Status::kFrame) {
      RawFrame frame;
      frame.version = extracted.frame.version;
      frame.type = extracted.frame.type;
      frame.payload.assign(extracted.frame.payload);
      in_.erase(0, extracted.frame.frame_bytes);
      return frame;
    }
    ROPUF_REQUIRE(fill(), "server closed the connection mid-response");
  }
}

std::uint16_t AuthClient::negotiate() {
  send_raw(encode_client_hello(kWireMaxVersion));
  const RawFrame frame = recv_frame();
  if (frame.type == FrameType::kServerHello) {
    const std::uint16_t pinned = decode_hello_payload(frame.payload);
    ROPUF_REQUIRE(pinned >= kWireVersion && pinned <= kWireMaxVersion,
                  "server pinned a version this client does not speak");
    version_ = pinned;
    return version_;
  }
  if (frame.type == FrameType::kAuthResponse && frame.version == kWireVersion) {
    // A pre-v2 server saw an unknown frame type and answered kBadFrame:
    // the fallback signal. Anything else from it is a protocol violation.
    const WireResponse response = decode_response_payload(frame.payload);
    ROPUF_REQUIRE(response.status == WireStatus::kBadFrame,
                  "unexpected response status during negotiation");
    version_ = kWireVersion;
    return version_;
  }
  ROPUF_REQUIRE(false, "unexpected frame type during negotiation");
}

WireResponse AuthClient::recv_response() {
  while (true) {
    const ExtractResult extracted = try_extract_frame(in_);
    if (extracted.status == ExtractResult::Status::kDefect) {
      throw WireError(extracted.defect, "defective frame from server");
    }
    if (extracted.status == ExtractResult::Status::kFrame) {
      ROPUF_REQUIRE(extracted.frame.type == FrameType::kAuthResponse,
                    "server sent a non-response frame");
      const WireResponse response = decode_response_payload(extracted.frame.payload);
      in_.erase(0, extracted.frame.frame_bytes);
      return response;
    }
    ROPUF_REQUIRE(fill(), "server closed the connection mid-response");
  }
}

std::size_t AuthClient::recv_until_close() {
  std::size_t responses = 0;
  while (true) {
    const ExtractResult extracted = try_extract_frame(in_);
    if (extracted.status == ExtractResult::Status::kDefect) {
      throw WireError(extracted.defect, "defective frame from server");
    }
    if (extracted.status == ExtractResult::Status::kFrame) {
      ROPUF_REQUIRE(extracted.frame.type == FrameType::kAuthResponse,
                    "server sent a non-response frame");
      decode_response_payload(extracted.frame.payload);
      in_.erase(0, extracted.frame.frame_bytes);
      ++responses;
      continue;
    }
    if (!fill()) {
      ROPUF_REQUIRE(in_.empty(), "server closed mid-frame");
      return responses;
    }
  }
}

WireResponse AuthClient::send_request(const service::AuthRequest& request) {
  send_raw(encode_request_frame(request));
  return recv_response();
}

std::vector<WireResponse> AuthClient::send_batch(
    const std::vector<service::AuthRequest>& requests) {
  std::vector<WireResponse> responses;
  responses.reserve(requests.size());
  std::size_t next_to_send = 0;
  while (responses.size() < requests.size()) {
    // Top the window up, then drain one response; steady state keeps
    // `window` requests in flight without ever blocking on a full pipe.
    while (next_to_send < requests.size() &&
           next_to_send - responses.size() < options_.window) {
      send_raw(encode_request_frame(requests[next_to_send]));
      ++next_to_send;
    }
    responses.push_back(recv_response());
  }
  return responses;
}

std::vector<WireResponse> AuthClient::send_proof_batch(
    const std::vector<service::ProofIntent>& intents) {
  ROPUF_REQUIRE(version_ == kWireVersionV2,
                "send_proof_batch needs a negotiated v2 connection");
  // Responses land by request id, so a duplicate id would make two intents
  // indistinguishable on the wire; fail eagerly instead of misattributing.
  std::unordered_map<std::uint64_t, std::size_t> slot_by_rid;
  slot_by_rid.reserve(intents.size());
  for (std::size_t i = 0; i < intents.size(); ++i) {
    ROPUF_REQUIRE(slot_by_rid.emplace(intents[i].request_id, i).second,
                  "duplicate request id in proof batch");
  }

  std::vector<WireResponse> responses(intents.size());
  std::vector<bool> completed(intents.size(), false);
  std::size_t done = 0;
  std::size_t next_to_send = 0;
  std::size_t in_flight = 0;  ///< intents sent but not finally answered
  while (done < intents.size()) {
    // Top the window up, then service one frame. A request stays in flight
    // through its whole challenge/proof exchange; only the final v2
    // response (verdict, kOverloaded, ...) retires it.
    while (next_to_send < intents.size() && in_flight < options_.window) {
      const service::ProofIntent& intent = intents[next_to_send];
      send_raw(encode_request_frame_v2(intent.request_id, intent.device_id));
      ++next_to_send;
      ++in_flight;
    }
    const RawFrame frame = recv_frame();
    if (frame.type == FrameType::kAuthChallenge) {
      const ChallengePayload challenge = decode_challenge_payload(frame.payload);
      const auto slot = slot_by_rid.find(challenge.request_id);
      ROPUF_REQUIRE(slot != slot_by_rid.end() && !completed[slot->second],
                    "challenge for an unknown or finished request id");
      const service::ProofIntent& intent = intents[slot->second];
      // No recovered key, no valid tag: an all-zeros proof keeps the
      // exchange well-formed and lets the server's verdict say kReject.
      const auth::Tag tag =
          intent.has_key ? auth::prove(intent.key, challenge.nonce,
                                       intent.request_id, intent.device_id)
                         : auth::Tag{};
      send_raw(encode_proof_frame(challenge.request_id, tag));
      continue;
    }
    if (frame.type == FrameType::kAuthResponse && frame.version == kWireVersionV2) {
      const V2Response answer = decode_response_payload_v2(frame.payload);
      const auto slot = slot_by_rid.find(answer.request_id);
      ROPUF_REQUIRE(slot != slot_by_rid.end() && !completed[slot->second],
                    "response for an unknown or finished request id");
      responses[slot->second] = answer.response;
      completed[slot->second] = true;
      ++done;
      --in_flight;
      continue;
    }
    ROPUF_REQUIRE(false, "unexpected frame type in proof exchange");
  }
  return responses;
}

}  // namespace ropuf::net

#include "sram/sram_puf.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::sram {

SramPuf::SramPuf(const SramSpec& spec, Rng& rng) : noise_sigma_(spec.noise_sigma) {
  ROPUF_REQUIRE(spec.cells >= 1, "SRAM PUF needs at least one cell");
  ROPUF_REQUIRE(spec.noise_sigma >= 0.0, "negative noise sigma");
  skew_.reserve(spec.cells);
  for (std::size_t i = 0; i < spec.cells; ++i) {
    skew_.push_back(rng.gaussian(spec.skew_bias, 1.0));
  }
}

BitVec SramPuf::power_up(Rng& rng) const {
  BitVec state(skew_.size());
  for (std::size_t i = 0; i < skew_.size(); ++i) {
    state.set(i, skew_[i] + rng.gaussian(0.0, noise_sigma_) > 0.0);
  }
  return state;
}

BitVec SramPuf::reference() const {
  BitVec state(skew_.size());
  for (std::size_t i = 0; i < skew_.size(); ++i) state.set(i, skew_[i] > 0.0);
  return state;
}

std::vector<bool> SramPuf::stable_mask(double threshold) const {
  ROPUF_REQUIRE(threshold >= 0.0, "negative threshold");
  std::vector<bool> mask(skew_.size());
  for (std::size_t i = 0; i < skew_.size(); ++i) {
    mask[i] = std::fabs(skew_[i]) >= threshold;
  }
  return mask;
}

}  // namespace ropuf::sram

// SRAM power-up PUF (Holcomb et al. — reference [3] of the paper).
//
// The paper's introduction lists the memory-based PUF family alongside the
// delay-based one; this model provides the family's canonical member so the
// metric scoreboard (bench_puf_metrics) can compare across families.
//
// Each cell is a cross-coupled inverter pair whose power-up state is decided
// by the threshold mismatch of its two sides: a strongly skewed cell always
// wakes up the same way; a balanced cell is metastable and resolves by
// thermal noise. The standard model: cell i has a fixed skew s_i ~ N(0, 1)
// and each power-up draws noise e ~ N(0, sigma_noise); the cell reads
// (s_i + e > 0). Reliability is governed by sigma_noise, uniqueness by the
// independence of the s_i across chips — there is no enrollment-time
// intelligence to apply, which is exactly the contrast with the paper's
// configurable approach.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"

namespace ropuf::sram {

/// Fabrication/noise parameters of an SRAM array used as a PUF.
struct SramSpec {
  std::size_t cells = 256;
  double noise_sigma = 0.06;  ///< power-up noise relative to unit skew sd
  double skew_bias = 0.0;     ///< systematic preference toward 1 (layout bias)
};

/// One fabricated SRAM array.
class SramPuf {
 public:
  SramPuf(const SramSpec& spec, Rng& rng);

  std::size_t cell_count() const { return skew_.size(); }

  /// One power-up: every cell resolves with fresh noise.
  BitVec power_up(Rng& rng) const;

  /// The noise-free (majority) state — the enrollment reference.
  BitVec reference() const;

  /// Cells whose |skew| is below `threshold` are metastability-prone; a
  /// deployment masks them (the memory-family analogue of the paper's Rth).
  std::vector<bool> stable_mask(double threshold) const;

 private:
  std::vector<double> skew_;
  double noise_sigma_;
};

}  // namespace ropuf::sram

#include "puf/robust_measure.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"

namespace ropuf::puf {
namespace {

constexpr double kMadToSigma = 1.4826;  // MAD -> sigma for Gaussian cores

/// Flushes one batch's counters into the caller's ReadStats accumulator and
/// into the process-wide metrics registry (names mirror the ReadStats
/// fields), on every exit path including the retry-exhausted throw. The
/// metric totals therefore match the summed ReadStats of every hardened
/// readout in the run exactly.
struct StatsFlusher {
  ReadStats& local;
  ReadStats* sink;

  ~StatsFlusher() {
    if (sink != nullptr) {
      sink->batches += local.batches;
      sink->samples += local.samples;
      sink->dropped += local.dropped;
      sink->rejected_outliers += local.rejected_outliers;
      sink->stuck_batches += local.stuck_batches;
      sink->retries += local.retries;
      sink->failures += local.failures;
    }
    if (!obs::metrics_enabled()) return;
    obs::Registry& registry = obs::Registry::instance();
    static obs::Counter& batches = registry.counter("robust.batches");
    static obs::Counter& samples = registry.counter("robust.samples");
    static obs::Counter& dropped = registry.counter("robust.dropped");
    static obs::Counter& rejected = registry.counter("robust.rejected_outliers");
    static obs::Counter& stuck = registry.counter("robust.stuck_batches");
    static obs::Counter& retries = registry.counter("robust.retries");
    static obs::Counter& failures = registry.counter("robust.failures");
    batches.add(local.batches);
    samples.add(local.samples);
    dropped.add(local.dropped);
    rejected.add(local.rejected_outliers);
    stuck.add(local.stuck_batches);
    retries.add(local.retries);
    failures.add(local.failures);
  }
};

void validate(const RetryPolicy& policy) {
  ROPUF_REQUIRE(policy.samples_per_read >= 1, "samples per read must be >= 1");
  ROPUF_REQUIRE(policy.mad_sigma > 0.0, "MAD threshold must be positive");
  ROPUF_REQUIRE(policy.min_valid >= 1, "min valid samples must be >= 1");
  ROPUF_REQUIRE(policy.min_valid <= static_cast<std::size_t>(policy.samples_per_read),
                "min valid samples cannot exceed the batch size");
  ROPUF_REQUIRE(policy.max_attempts >= 1, "retry budget must be >= 1");
  ROPUF_REQUIRE(policy.gate_escalation >= 1.0, "gate escalation must be >= 1");
}

/// The latched-counter signature: >= 3 samples, all bit-identical. Real
/// reads carry jitter and a random quantization phase, so this only happens
/// when the channel noise is genuinely zero — which `noisy` rules out.
bool stuck_signature(const std::vector<double>& samples, bool noisy) {
  if (!noisy || samples.size() < 3) return false;
  for (const double s : samples) {
    if (s != samples.front()) return false;
  }
  return true;
}

/// One median-of-k batch over a sampling callback. The callback returns
/// true and fills `out` on a captured count, false on a dropped read.
template <typename Sample>
double robust_batch(Sample&& sample, bool noisy, const RetryPolicy& policy,
                    ReadStats* stats) {
  ReadStats s;
  const StatsFlusher flusher{s, stats};
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const double gate_scale = std::pow(policy.gate_escalation, attempt);
    ++s.batches;
    if (attempt > 0) ++s.retries;

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(policy.samples_per_read));
    for (int k = 0; k < policy.samples_per_read; ++k) {
      ++s.samples;
      double value = 0.0;
      if (sample(gate_scale, value)) {
        samples.push_back(value);
      } else {
        ++s.dropped;
      }
    }
    if (samples.size() < policy.min_valid) continue;
    if (stuck_signature(samples, noisy)) {
      ++s.stuck_batches;
      continue;
    }

    const double med = median(samples);
    const double mad = median_abs_deviation(samples, med);
    std::vector<double> kept;
    kept.reserve(samples.size());
    if (mad > 0.0) {
      const double cutoff = policy.mad_sigma * kMadToSigma * mad;
      for (const double v : samples) {
        if (std::fabs(v - med) <= cutoff) {
          kept.push_back(v);
        } else {
          ++s.rejected_outliers;
        }
      }
    } else {
      // Zero dispersion among a majority of samples: the median is already
      // the consensus; anything away from it is an outlier.
      for (const double v : samples) {
        if (v == med) {
          kept.push_back(v);
        } else {
          ++s.rejected_outliers;
        }
      }
    }
    if (kept.size() >= policy.min_valid) return median(std::move(kept));
  }
  ++s.failures;
  throw MeasurementFault(FaultKind::kRetryExhausted,
                         "robust readout failed after " +
                             std::to_string(policy.max_attempts) + " attempts");
}

BitVec all_ones(std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, true);
  return v;
}

}  // namespace

double median(std::vector<double> values) {
  ROPUF_REQUIRE(!values.empty(), "median of an empty sample set");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double median_abs_deviation(const std::vector<double>& values, double center) {
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - center));
  return median(std::move(deviations));
}

double robust_path_delay_ps(const ro::FrequencyCounter& counter,
                            const ro::ConfigurableRo& ro, const BitVec& config,
                            const sil::OperatingPoint& op, Rng& rng,
                            const RetryPolicy& policy, ReadStats* stats) {
  validate(policy);
  const bool noisy = counter.spec().jitter_sigma_rel > 0.0;
  return robust_batch(
      [&](double gate_scale, double& out) {
        try {
          out = counter.measure_path_delay_ps(ro, config, op, rng, gate_scale);
          return true;
        } catch (const MeasurementFault&) {
          return false;  // dropped read: the sample goes missing
        }
      },
      noisy, policy, stats);
}

ro::ExtractionResult robust_extract_leave_one_out_with_base(
    const ro::FrequencyCounter& counter, const ro::ConfigurableRo& ro,
    const sil::OperatingPoint& op, Rng& rng, const RetryPolicy& policy,
    ReadStats* stats) {
  const std::size_t n = ro.stage_count();
  const double d_all =
      robust_path_delay_ps(counter, ro, all_ones(n), op, rng, policy, stats);
  ro::ExtractionResult result;
  result.ddiff_ps.resize(n);
  double ddiff_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    BitVec config = all_ones(n);
    config.set(i, false);
    const double d_minus_i =
        robust_path_delay_ps(counter, ro, config, op, rng, policy, stats);
    result.ddiff_ps[i] = d_all - d_minus_i;
    ddiff_sum += result.ddiff_ps[i];
  }
  result.base_delay_ps = d_all - ddiff_sum;
  return result;
}

RobustUnitReadout robust_unit_ddiffs(const sil::Chip& chip, const sil::OperatingPoint& op,
                                     const UnitMeasurementSpec& spec, Rng& rng,
                                     sil::FaultInjector& injector,
                                     const RetryPolicy& policy) {
  validate(policy);
  ROPUF_REQUIRE(spec.noise_sigma_ps >= 0.0, "negative measurement noise");
  const bool noisy = spec.noise_sigma_ps > 0.0;
  RobustUnitReadout readout;
  readout.values.resize(chip.unit_count(), 0.0);
  readout.failed.resize(chip.unit_count(), false);
  for (std::size_t i = 0; i < chip.unit_count(); ++i) {
    const double truth = chip.unit_ddiff_ps(i, op);
    try {
      readout.values[i] = robust_batch(
          [&](double /*gate_scale*/, double& out) {
            const double raw = truth + rng.gaussian(0.0, spec.noise_sigma_ps);
            const auto outcome = injector.apply(i, raw);
            if (outcome.dropped) return false;
            out = outcome.value_ps;
            return true;
          },
          noisy, policy, &readout.stats);
    } catch (const MeasurementFault&) {
      // Dark unit: read back as zero so downstream selection sees a
      // zero-contribution stage instead of garbage.
      readout.failed[i] = true;
      ++readout.failed_count;
    }
  }
  return readout;
}

}  // namespace ropuf::puf

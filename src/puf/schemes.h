// The PUF constructions the paper evaluates, over plain measurement arrays.
//
// All four schemes consume one board's per-unit values (ddiffs in ps from
// the simulator, or any monotone speed proxy — the logic only compares and
// sums) grouped into RO pairs by a BoardLayout:
//
//  * traditional RO PUF      — every inverter in the loop; bit = sign of the
//                              pair's total delay difference.
//  * threshold (Rth) RO PUF  — traditional, but pairs whose |difference| is
//                              below Rth yield no bit (Section IV.E).
//  * 1-out-of-8 RO PUF       — Suh & Devadas [1]: per 8 ROs, compare the
//                              fastest and slowest; 1/4 the bit yield.
//  * configurable RO PUF     — the paper's contribution: per pair, solve the
//                              inverter-selection problem, store the
//                              configuration, and generate the bit from the
//                              configured margin.
//
// Enrollment-time artifacts (configurations, 1-of-8 picks) are explicit
// values that can be re-evaluated against measurements taken at any other
// operating corner — that is exactly the paper's reliability experiment.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "puf/helper_data.h"
#include "puf/selection.h"

namespace ropuf::puf {

/// How a board's units are grouped into RO pairs. Units are assigned in
/// index order: pair p's top RO takes stages [2p*n, 2p*n + n), its bottom RO
/// the next n units — the adjacent-deployment of Section III.C.
struct BoardLayout {
  std::size_t stages = 5;       ///< n, inverters per RO
  std::size_t pair_count = 48;  ///< RO pairs (= bits for trad/configurable)

  std::size_t units_required() const { return stages * pair_count * 2; }
  std::size_t ro_count() const { return pair_count * 2; }
  std::size_t top_unit(std::size_t pair, std::size_t stage) const;
  std::size_t bottom_unit(std::size_t pair, std::size_t stage) const;
};

/// The paper's bit-yield rule (reverse-engineered from Table V with a
/// 512-unit board): bits per board = 8 * floor(units / (16 n)), giving
/// 80/48/32/24 bits for n = 3/5/7/9.
BoardLayout paper_layout(std::size_t stages, std::size_t board_units = 512);

/// Per-unit value vectors for one RO pair, extracted via the layout.
struct PairValues {
  std::vector<double> top;
  std::vector<double> bottom;
};
PairValues pair_values(const std::vector<double>& unit_values, const BoardLayout& layout,
                       std::size_t pair);

// ---------------------------------------------------------------- traditional

/// Traditional RO PUF response; margins[p] is pair p's signed delay
/// difference (top minus bottom, all inverters selected).
struct TraditionalResult {
  BitVec response;
  std::vector<double> margins;
};
TraditionalResult traditional_respond(const std::vector<double>& unit_values,
                                      const BoardLayout& layout);

// ----------------------------------------------------------------- threshold

/// Threshold scheme output: `reliable[p]` marks pairs whose margin magnitude
/// met Rth; `response` still contains one bit per pair (callers mask it).
struct ThresholdResult {
  BitVec response;
  std::vector<bool> reliable;
  std::size_t reliable_count = 0;
};
ThresholdResult threshold_respond(const std::vector<double>& unit_values,
                                  const BoardLayout& layout, double rth);

// ---------------------------------------------------------------- 1-out-of-8

/// Enrollment record of the 1-out-of-8 scheme: per 8-RO group, the index
/// pair (within the board's RO numbering) picked for maximal spread.
struct OneOutOfEightEnrollment {
  struct Pick {
    std::size_t first_ro = 0;   ///< lower RO index of the chosen pair
    std::size_t second_ro = 0;  ///< higher RO index of the chosen pair
  };
  BoardLayout layout;
  std::vector<Pick> picks;
};

/// Number of bits the scheme yields under a layout (ro_count / 8).
std::size_t one_of_eight_bits(const BoardLayout& layout);

/// Sum-of-stage-values per RO, the RO-level speed figure used by the scheme.
std::vector<double> ro_totals(const std::vector<double>& unit_values,
                              const BoardLayout& layout);

OneOutOfEightEnrollment one_of_eight_enroll(const std::vector<double>& unit_values,
                                            const BoardLayout& layout);

/// Re-evaluates the enrolled picks against fresh measurements; bit g is
/// (value of first_ro > value of second_ro).
BitVec one_of_eight_respond(const std::vector<double>& unit_values,
                            const OneOutOfEightEnrollment& enrollment);

// -------------------------------------------------------------- configurable

/// Enrollment record of the paper's configurable RO PUF: one Selection per
/// pair, computed from enrollment-corner measurements.
struct ConfigurableEnrollment {
  SelectionCase mode = SelectionCase::kSameConfig;
  BoardLayout layout;
  std::vector<Selection> selections;
  /// Per-pair helper data (comparison offsets + dark-bit mask) from the
  /// full-circuit device path. Empty for dataset-level enrollments that
  /// carry no helper record; when non-empty its size equals pair_count.
  std::vector<PairHelperData> helper;

  /// Protocol-v2 cryptographic-auth provisioning (auth/auth.h runs the
  /// fuzzy-extractor Gen at enrollment). Plain data here — the PUF layer
  /// carries the material, src/auth interprets it:
  ///  * auth_code_id   — which cyclic code produced the helper blocks
  ///                     (auth::code_for_id; 0 = unprovisioned).
  ///  * auth_helper    — one code-offset helper block per code block, each
  ///                     exactly the code's n bits.
  ///  * auth_key_check — SHA-256 of the derived key (a key check value, not
  ///                     the key), so a verifier detects corrupt helper
  ///                     material instead of silently deriving garbage.
  std::uint8_t auth_code_id = 0;
  std::vector<BitVec> auth_helper;
  std::array<std::uint8_t, 32> auth_key_check{};

  /// Whether the record carries v2 auth material.
  bool has_auth() const { return !auth_helper.empty(); }

  /// The enrollment-time response (bit p = selections[p].bit).
  BitVec response() const;
  /// Enrollment margins, for threshold screening.
  std::vector<double> margins() const;
};

ConfigurableEnrollment configurable_enroll(const std::vector<double>& unit_values,
                                           const BoardLayout& layout, SelectionCase mode);

/// Re-evaluates the stored configurations against fresh measurements.
BitVec configurable_respond(const std::vector<double>& unit_values,
                            const ConfigurableEnrollment& enrollment);

/// Reliability mask under a margin threshold (Section IV.E, configurable
/// column): pair p is reliable iff |enrollment margin| >= rth.
std::vector<bool> configurable_reliable_mask(const ConfigurableEnrollment& enrollment,
                                             double rth);

}  // namespace ropuf::puf

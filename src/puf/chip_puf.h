// The full-circuit configurable RO PUF device.
//
// This class ties the whole stack together the way a silicon deployment
// would (paper Section III.C): RO pairs are laid out on a chip; during the
// chip-test phase `enroll` measures every unit's ddiff through the
// frequency counter (Section III.B), optionally distills the systematic
// component, solves the inverter-selection problem, and burns the resulting
// configuration vectors; in the field, `respond` regenerates the bits by
// measuring the two configured ROs of each pair and comparing.
//
// A practical note the implementation exploits: because both cases of the
// selection problem produce equal-popcount (hence equal-parity)
// configurations for the two ROs of a pair, any auxiliary-stage calibration
// residual in the measurement harness cancels in the comparison.
#pragma once

#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "puf/helper_data.h"
#include "puf/robust_measure.h"
#include "puf/schemes.h"
#include "puf/selection.h"
#include "ro/configurable_ro.h"
#include "ro/delay_extractor.h"
#include "ro/frequency_counter.h"
#include "silicon/chip.h"
#include "silicon/faults.h"

namespace ropuf::puf {

/// Construction-time parameters of a device instance.
struct DeviceSpec {
  std::size_t stages = 13;        ///< inverters per RO
  std::size_t pair_count = 32;    ///< RO pairs on the chip
  SelectionCase mode = SelectionCase::kSameConfig;
  ro::FrequencyCounterSpec counter;
  int measurement_repetitions = 1;  ///< averaging during enrollment
  bool distill = false;             ///< detrend ddiffs before selection
  std::size_t distiller_degree = 2;
  /// When true (default), enrollment measures each pair's bypass-path
  /// mismatch dB (base-delay difference) and picks the selection direction
  /// that reinforces it, because the fielded comparison of the two
  /// configured ROs includes dB whether we like it or not. The paper's
  /// dataset-level formulation has no dB; this is the circuit-level
  /// refinement required for honest margins (ablated in
  /// bench_ablation_selection).
  bool base_aware = true;
  /// Interleaved by default: the two ROs of a pair alternate cells, so the
  /// spatial systematic trend cancels in the comparison (matched layout;
  /// ablated in bench_ablation_selection).
  ro::PairPlacement placement = ro::PairPlacement::kInterleaved;
  /// Hardened readout: every measurement goes through the robust path
  /// (median-of-k, MAD outlier rejection, bounded retries per `retry`), and
  /// pairs that stay faulty past the retry budget are dark-bit-masked at
  /// enrollment / degraded to a fixed 0 bit in the field instead of
  /// throwing. Off by default: the plain path is bit-identical to the
  /// fault-free library. See docs/fault_model.md.
  bool hardened = false;
  RetryPolicy retry;
};

/// One chip's worth of configurable RO PUF.
class ConfigurableRoPufDevice {
 public:
  /// `chip` must outlive the device; `rng` seeds the harness calibration.
  ConfigurableRoPufDevice(const sil::Chip* chip, DeviceSpec spec, Rng& rng);

  const DeviceSpec& spec() const { return spec_; }
  std::size_t bit_count() const { return spec_.pair_count; }

  /// Attaches the chip's fault source (nullptr detaches). Non-owning; the
  /// injector must outlive the device's measurement calls. All counter
  /// reads of this device then pass through the fault model.
  void set_fault_injector(sil::FaultInjector* injector);
  sil::FaultInjector* fault_injector() const { return counter_.fault_injector(); }

  /// Chip-test phase: measure, (optionally) distill, select, store configs.
  /// With spec().hardened, pairs whose units stay faulty past the retry
  /// budget are dark-bit-masked instead of failing the enrollment.
  void enroll(const sil::OperatingPoint& op, Rng& rng);
  bool enrolled() const { return !selections_.empty(); }

  /// Dark-bit accounting; requires enrolled(). Masked pairs read as a fixed
  /// 0 bit in both the enrolled reference and every field response, so the
  /// device degrades to `effective_bit_count()` useful bits.
  std::size_t masked_count() const;
  std::size_t effective_bit_count() const;

  /// Robust-readout campaign counters accumulated by hardened enroll and
  /// respond calls on this device.
  const ReadStats& read_stats() const { return read_stats_; }

  /// The portable enrollment record (configs, margins, helper data with the
  /// dark-bit mask) for serialization; requires enrolled().
  ConfigurableEnrollment export_enrollment() const;

  /// Stored per-pair selections; requires enrolled().
  const std::vector<Selection>& selections() const;

  /// Stored per-pair helper data (comparison offsets); requires enrolled().
  const std::vector<PairHelperData>& helper_data() const;

  /// Enrollment-time response (the reference the field response is compared
  /// against); requires enrolled().
  BitVec enrolled_response() const;

  /// Field response: per pair, measure both configured ROs through the
  /// counter at `op` and compare. Requires enrolled(). Masked pairs are
  /// skipped (fixed 0 bit, no measurement). With spec().hardened, readouts
  /// go through the robust path and a pair whose retry budget is exhausted
  /// degrades to a 0 bit — hardened respond never throws on hardware
  /// faults.
  BitVec respond(const sil::OperatingPoint& op, Rng& rng) const;

  /// Field response with temporal majority voting over `votes` (odd)
  /// independent readouts — suppresses counter-jitter flips on
  /// near-threshold pairs at `votes`x the readout cost.
  BitVec respond_voted(const sil::OperatingPoint& op, Rng& rng, int votes) const;

  /// Reliability mask at a margin threshold (ps); requires enrolled().
  std::vector<bool> reliable_mask(double rth_ps) const;

  /// Traditional-PUF view of the same silicon: all inverters selected.
  /// Returns the response and per-pair measured margins at `op`.
  struct TraditionalResponse {
    BitVec response;
    std::vector<double> margins_ps;
  };
  TraditionalResponse traditional_response(const sil::OperatingPoint& op, Rng& rng) const;

 private:
  /// One pair's enrollment measurements.
  struct PairMeasurement {
    std::vector<double> top_ddiff;       ///< raw measured ddiffs, top RO
    std::vector<double> bottom_ddiff;    ///< raw measured ddiffs, bottom RO
    std::vector<double> top_selection;   ///< values fed to selection (maybe distilled)
    std::vector<double> bottom_selection;
    double top_base_ps = 0.0;            ///< measured base delay, top RO
    double bottom_base_ps = 0.0;         ///< measured base delay, bottom RO
    double base_delta_ps = 0.0;          ///< dB (detrended when distilling)
  };

  /// Per-pair measurements; nullopt marks a pair whose readout exhausted
  /// the hardened retry budget (only possible when spec_.hardened).
  std::vector<std::optional<PairMeasurement>> measure_all_pairs(
      const sil::OperatingPoint& op, Rng& rng) const;

  const sil::Chip* chip_;
  DeviceSpec spec_;
  std::vector<std::pair<ro::ConfigurableRo, ro::ConfigurableRo>> pairs_;
  ro::FrequencyCounter counter_;
  std::vector<Selection> selections_;
  std::vector<PairHelperData> helper_data_;
  mutable ReadStats read_stats_;
};

}  // namespace ropuf::puf

// The full-circuit configurable RO PUF device.
//
// This class ties the whole stack together the way a silicon deployment
// would (paper Section III.C): RO pairs are laid out on a chip; during the
// chip-test phase `enroll` measures every unit's ddiff through the
// frequency counter (Section III.B), optionally distills the systematic
// component, solves the inverter-selection problem, and burns the resulting
// configuration vectors; in the field, `respond` regenerates the bits by
// measuring the two configured ROs of each pair and comparing.
//
// A practical note the implementation exploits: because both cases of the
// selection problem produce equal-popcount (hence equal-parity)
// configurations for the two ROs of a pair, any auxiliary-stage calibration
// residual in the measurement harness cancels in the comparison.
#pragma once

#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "puf/selection.h"
#include "ro/configurable_ro.h"
#include "ro/delay_extractor.h"
#include "ro/frequency_counter.h"
#include "silicon/chip.h"

namespace ropuf::puf {

/// Construction-time parameters of a device instance.
struct DeviceSpec {
  std::size_t stages = 13;        ///< inverters per RO
  std::size_t pair_count = 32;    ///< RO pairs on the chip
  SelectionCase mode = SelectionCase::kSameConfig;
  ro::FrequencyCounterSpec counter;
  int measurement_repetitions = 1;  ///< averaging during enrollment
  bool distill = false;             ///< detrend ddiffs before selection
  std::size_t distiller_degree = 2;
  /// When true (default), enrollment measures each pair's bypass-path
  /// mismatch dB (base-delay difference) and picks the selection direction
  /// that reinforces it, because the fielded comparison of the two
  /// configured ROs includes dB whether we like it or not. The paper's
  /// dataset-level formulation has no dB; this is the circuit-level
  /// refinement required for honest margins (ablated in
  /// bench_ablation_selection).
  bool base_aware = true;
  /// Interleaved by default: the two ROs of a pair alternate cells, so the
  /// spatial systematic trend cancels in the comparison (matched layout;
  /// ablated in bench_ablation_selection).
  ro::PairPlacement placement = ro::PairPlacement::kInterleaved;
};

/// Public per-pair helper data stored next to the configuration vectors.
/// When distillation is on, the systematic (fleet-correlated) component of
/// each pair's comparison is exported as an offset that the field readout
/// subtracts before deciding the bit — otherwise nominally identical chips
/// would produce correlated responses (see DESIGN.md). Without distillation
/// the offset is zero and the comparison is the raw hardware one.
struct PairHelperData {
  double offset_ps = 0.0;
};

/// One chip's worth of configurable RO PUF.
class ConfigurableRoPufDevice {
 public:
  /// `chip` must outlive the device; `rng` seeds the harness calibration.
  ConfigurableRoPufDevice(const sil::Chip* chip, DeviceSpec spec, Rng& rng);

  const DeviceSpec& spec() const { return spec_; }
  std::size_t bit_count() const { return spec_.pair_count; }

  /// Chip-test phase: measure, (optionally) distill, select, store configs.
  void enroll(const sil::OperatingPoint& op, Rng& rng);
  bool enrolled() const { return !selections_.empty(); }

  /// Stored per-pair selections; requires enrolled().
  const std::vector<Selection>& selections() const;

  /// Stored per-pair helper data (comparison offsets); requires enrolled().
  const std::vector<PairHelperData>& helper_data() const;

  /// Enrollment-time response (the reference the field response is compared
  /// against); requires enrolled().
  BitVec enrolled_response() const;

  /// Field response: per pair, measure both configured ROs through the
  /// counter at `op` and compare. Requires enrolled().
  BitVec respond(const sil::OperatingPoint& op, Rng& rng) const;

  /// Field response with temporal majority voting over `votes` (odd)
  /// independent readouts — suppresses counter-jitter flips on
  /// near-threshold pairs at `votes`x the readout cost.
  BitVec respond_voted(const sil::OperatingPoint& op, Rng& rng, int votes) const;

  /// Reliability mask at a margin threshold (ps); requires enrolled().
  std::vector<bool> reliable_mask(double rth_ps) const;

  /// Traditional-PUF view of the same silicon: all inverters selected.
  /// Returns the response and per-pair measured margins at `op`.
  struct TraditionalResponse {
    BitVec response;
    std::vector<double> margins_ps;
  };
  TraditionalResponse traditional_response(const sil::OperatingPoint& op, Rng& rng) const;

 private:
  /// One pair's enrollment measurements.
  struct PairMeasurement {
    std::vector<double> top_ddiff;       ///< raw measured ddiffs, top RO
    std::vector<double> bottom_ddiff;    ///< raw measured ddiffs, bottom RO
    std::vector<double> top_selection;   ///< values fed to selection (maybe distilled)
    std::vector<double> bottom_selection;
    double top_base_ps = 0.0;            ///< measured base delay, top RO
    double bottom_base_ps = 0.0;         ///< measured base delay, bottom RO
    double base_delta_ps = 0.0;          ///< dB (detrended when distilling)
  };

  std::vector<PairMeasurement> measure_all_pairs(const sil::OperatingPoint& op,
                                                 Rng& rng) const;

  const sil::Chip* chip_;
  DeviceSpec spec_;
  std::vector<std::pair<ro::ConfigurableRo, ro::ConfigurableRo>> pairs_;
  ro::FrequencyCounter counter_;
  std::vector<Selection> selections_;
  std::vector<PairHelperData> helper_data_;
};

}  // namespace ropuf::puf

#include "puf/schemes.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::puf {

std::size_t BoardLayout::top_unit(std::size_t pair, std::size_t stage) const {
  ROPUF_REQUIRE(pair < pair_count && stage < stages, "layout index out of range");
  return pair * 2 * stages + stage;
}

std::size_t BoardLayout::bottom_unit(std::size_t pair, std::size_t stage) const {
  ROPUF_REQUIRE(pair < pair_count && stage < stages, "layout index out of range");
  return pair * 2 * stages + stages + stage;
}

BoardLayout paper_layout(std::size_t stages, std::size_t board_units) {
  ROPUF_REQUIRE(stages > 0, "layout needs at least one stage");
  const std::size_t bits = 8 * (board_units / (16 * stages));
  ROPUF_REQUIRE(bits > 0, "board too small for this stage count");
  return BoardLayout{stages, bits};
}

PairValues pair_values(const std::vector<double>& unit_values, const BoardLayout& layout,
                       std::size_t pair) {
  ROPUF_REQUIRE(unit_values.size() >= layout.units_required(),
                "board has fewer unit values than the layout requires");
  ROPUF_REQUIRE(pair < layout.pair_count, "pair index out of range");
  PairValues pv;
  pv.top.resize(layout.stages);
  pv.bottom.resize(layout.stages);
  for (std::size_t s = 0; s < layout.stages; ++s) {
    pv.top[s] = unit_values[layout.top_unit(pair, s)];
    pv.bottom[s] = unit_values[layout.bottom_unit(pair, s)];
  }
  return pv;
}

TraditionalResult traditional_respond(const std::vector<double>& unit_values,
                                      const BoardLayout& layout) {
  TraditionalResult result;
  result.response = BitVec(layout.pair_count);
  result.margins.resize(layout.pair_count);
  for (std::size_t p = 0; p < layout.pair_count; ++p) {
    const PairValues pv = pair_values(unit_values, layout, p);
    double margin = 0.0;
    for (std::size_t s = 0; s < layout.stages; ++s) margin += pv.top[s] - pv.bottom[s];
    result.margins[p] = margin;
    result.response.set(p, margin > 0.0);
  }
  return result;
}

ThresholdResult threshold_respond(const std::vector<double>& unit_values,
                                  const BoardLayout& layout, double rth) {
  ROPUF_REQUIRE(rth >= 0.0, "negative reliability threshold");
  const TraditionalResult trad = traditional_respond(unit_values, layout);
  ThresholdResult result;
  result.response = trad.response;
  result.reliable.resize(layout.pair_count);
  for (std::size_t p = 0; p < layout.pair_count; ++p) {
    result.reliable[p] = std::fabs(trad.margins[p]) >= rth;
    if (result.reliable[p]) ++result.reliable_count;
  }
  return result;
}

std::size_t one_of_eight_bits(const BoardLayout& layout) { return layout.ro_count() / 8; }

std::vector<double> ro_totals(const std::vector<double>& unit_values,
                              const BoardLayout& layout) {
  ROPUF_REQUIRE(unit_values.size() >= layout.units_required(),
                "board has fewer unit values than the layout requires");
  std::vector<double> totals(layout.ro_count(), 0.0);
  for (std::size_t p = 0; p < layout.pair_count; ++p) {
    for (std::size_t s = 0; s < layout.stages; ++s) {
      totals[2 * p] += unit_values[layout.top_unit(p, s)];
      totals[2 * p + 1] += unit_values[layout.bottom_unit(p, s)];
    }
  }
  return totals;
}

OneOutOfEightEnrollment one_of_eight_enroll(const std::vector<double>& unit_values,
                                            const BoardLayout& layout) {
  const std::vector<double> totals = ro_totals(unit_values, layout);
  const std::size_t groups = one_of_eight_bits(layout);
  ROPUF_REQUIRE(groups > 0, "layout too small for the 1-out-of-8 scheme");

  OneOutOfEightEnrollment enrollment;
  enrollment.layout = layout;
  enrollment.picks.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    std::size_t slowest = 8 * g, fastest = 8 * g;
    for (std::size_t r = 8 * g; r < 8 * (g + 1); ++r) {
      if (totals[r] > totals[slowest]) slowest = r;
      if (totals[r] < totals[fastest]) fastest = r;
    }
    // Store in index order so the bit value carries which of the two
    // positions won, i.e. actual chip entropy.
    OneOutOfEightEnrollment::Pick pick;
    pick.first_ro = std::min(slowest, fastest);
    pick.second_ro = std::max(slowest, fastest);
    enrollment.picks.push_back(pick);
  }
  return enrollment;
}

BitVec one_of_eight_respond(const std::vector<double>& unit_values,
                            const OneOutOfEightEnrollment& enrollment) {
  const std::vector<double> totals = ro_totals(unit_values, enrollment.layout);
  BitVec response(enrollment.picks.size());
  for (std::size_t g = 0; g < enrollment.picks.size(); ++g) {
    const auto& pick = enrollment.picks[g];
    response.set(g, totals[pick.first_ro] > totals[pick.second_ro]);
  }
  return response;
}

BitVec ConfigurableEnrollment::response() const {
  BitVec r(selections.size());
  for (std::size_t p = 0; p < selections.size(); ++p) r.set(p, selections[p].bit);
  return r;
}

std::vector<double> ConfigurableEnrollment::margins() const {
  std::vector<double> m(selections.size());
  for (std::size_t p = 0; p < selections.size(); ++p) m[p] = selections[p].margin;
  return m;
}

ConfigurableEnrollment configurable_enroll(const std::vector<double>& unit_values,
                                           const BoardLayout& layout, SelectionCase mode) {
  ConfigurableEnrollment enrollment;
  enrollment.mode = mode;
  enrollment.layout = layout;
  enrollment.selections.reserve(layout.pair_count);
  for (std::size_t p = 0; p < layout.pair_count; ++p) {
    const PairValues pv = pair_values(unit_values, layout, p);
    enrollment.selections.push_back(select(mode, pv.top, pv.bottom));
  }
  return enrollment;
}

BitVec configurable_respond(const std::vector<double>& unit_values,
                            const ConfigurableEnrollment& enrollment) {
  BitVec response(enrollment.selections.size());
  for (std::size_t p = 0; p < enrollment.selections.size(); ++p) {
    const PairValues pv = pair_values(unit_values, enrollment.layout, p);
    const Selection& sel = enrollment.selections[p];
    const double margin = configured_margin(sel.top_config, sel.bottom_config,
                                            pv.top, pv.bottom);
    response.set(p, margin > 0.0);
  }
  return response;
}

std::vector<bool> configurable_reliable_mask(const ConfigurableEnrollment& enrollment,
                                             double rth) {
  ROPUF_REQUIRE(rth >= 0.0, "negative reliability threshold");
  std::vector<bool> mask(enrollment.selections.size());
  for (std::size_t p = 0; p < enrollment.selections.size(); ++p) {
    mask[p] = std::fabs(enrollment.selections[p].margin) >= rth;
  }
  return mask;
}

}  // namespace ropuf::puf

// Board-level measurement snapshots for the dataset-style experiments.
//
// The paper's Section IV experiments start from a table of per-unit values
// per board per operating corner (in the VT dataset those are RO
// frequencies; here they are per-unit ddiff values read out through the
// measurement model). This header produces those snapshots from a simulated
// chip so the PUF schemes can operate on plain value arrays, exactly as the
// paper operates on the dataset.
#pragma once

#include <vector>

#include "common/rng.h"
#include "silicon/chip.h"
#include "silicon/faults.h"

namespace ropuf::puf {

/// Measurement-error model for a unit-level readout campaign: one additive
/// Gaussian error per unit (the net effect of counter quantization and
/// jitter after the per-unit extraction of Section III.B).
struct UnitMeasurementSpec {
  double noise_sigma_ps = 0.5;
};

/// One measured value (ddiff, ps) per chip unit at the given corner.
/// With `injector` attached each unit read goes through the fault model
/// (channel = unit index): glitches/stuck channels corrupt the value
/// silently and a dropped read throws MeasurementFault(kDroppedRead) — the
/// unhardened behavior the robust readout (robust_measure.h) exists to fix.
std::vector<double> measure_unit_ddiffs(const sil::Chip& chip,
                                        const sil::OperatingPoint& op,
                                        const UnitMeasurementSpec& spec, Rng& rng,
                                        sil::FaultInjector* injector = nullptr);

}  // namespace ropuf::puf

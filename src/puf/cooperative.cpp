#include "puf/cooperative.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace ropuf::puf {
namespace {

/// Max-spread disjoint pairing of one group's ROs in one region: sort by
/// value, pair rank k with rank k + half; keep pairs clearing the gap.
CooperativePairing pair_group(const std::vector<double>& totals,
                              std::size_t group_base, std::size_t group_size,
                              double gap_threshold) {
  std::vector<std::size_t> ranks(group_size);
  std::iota(ranks.begin(), ranks.end(), 0);
  std::sort(ranks.begin(), ranks.end(), [&](std::size_t a, std::size_t b) {
    return totals[group_base + a] < totals[group_base + b];
  });

  CooperativePairing pairing;
  const std::size_t half = group_size / 2;
  for (std::size_t k = 0; k < half; ++k) {
    const std::size_t fast = group_base + ranks[k];
    const std::size_t slow = group_base + ranks[k + half];
    if (std::fabs(totals[slow] - totals[fast]) >= gap_threshold) {
      CooperativePairing::Pair pair;
      pair.first_ro = std::min(fast, slow);
      pair.second_ro = std::max(fast, slow);
      pairing.pairs.push_back(pair);
    }
  }
  return pairing;
}

}  // namespace

CooperativeEnrollment cooperative_enroll(
    const std::vector<std::vector<double>>& region_values, const BoardLayout& layout,
    std::size_t group_size, double gap_threshold) {
  ROPUF_REQUIRE(!region_values.empty(), "need at least one temperature region");
  ROPUF_REQUIRE(group_size >= 2 && group_size % 2 == 0, "group size must be even, >= 2");
  ROPUF_REQUIRE(layout.ro_count() >= group_size, "layout smaller than one group");
  ROPUF_REQUIRE(gap_threshold >= 0.0, "negative gap threshold");

  CooperativeEnrollment enrollment;
  enrollment.layout = layout;
  enrollment.group_size = group_size;
  enrollment.gap_threshold = gap_threshold;

  const std::size_t groups = layout.ro_count() / group_size;
  for (const auto& values : region_values) {
    const std::vector<double> totals = ro_totals(values, layout);
    std::vector<CooperativePairing> pairings;
    pairings.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      pairings.push_back(pair_group(totals, g * group_size, group_size, gap_threshold));
    }
    enrollment.regions.push_back(std::move(pairings));
  }
  return enrollment;
}

BitVec cooperative_respond(const std::vector<double>& unit_values,
                           const CooperativeEnrollment& enrollment, std::size_t region) {
  ROPUF_REQUIRE(region < enrollment.regions.size(), "unknown temperature region");
  const std::vector<double> totals = ro_totals(unit_values, enrollment.layout);
  BitVec response;
  for (const CooperativePairing& pairing : enrollment.regions[region]) {
    for (const auto& pair : pairing.pairs) {
      response.push_back(totals[pair.first_ro] > totals[pair.second_ro]);
    }
  }
  return response;
}

double cooperative_bits_per_group(const CooperativeEnrollment& enrollment) {
  double total_bits = 0.0;
  std::size_t groups = 0;
  for (const auto& pairings : enrollment.regions) {
    for (const CooperativePairing& pairing : pairings) {
      total_bits += static_cast<double>(pairing.pairs.size());
      ++groups;
    }
  }
  ROPUF_REQUIRE(groups > 0, "empty enrollment");
  return total_bits / static_cast<double>(groups);
}

}  // namespace ropuf::puf

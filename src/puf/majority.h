// Temporal majority voting over repeated response evaluations.
//
// Counter jitter makes single-shot readouts of near-threshold pairs
// occasionally flip; re-evaluating an odd number of times and voting per
// bit position is the standard cheap stabilizer (orthogonal to the paper's
// margin maximization, which attacks the environmental component instead).
#pragma once

#include <vector>

#include "common/bitvec.h"

namespace ropuf::puf {

/// Per-position majority over an odd number of equal-length samples.
BitVec majority_vote(const std::vector<BitVec>& samples);

}  // namespace ropuf::puf

#include "puf/crp.h"

#include "common/error.h"
#include "common/rng.h"
#include "puf/selection.h"

namespace ropuf::puf {

std::vector<std::size_t> challenge_to_pairs(std::uint64_t challenge,
                                            std::size_t pair_count,
                                            std::size_t response_bits) {
  ROPUF_REQUIRE(pair_count > 0, "no enrolled pairs");
  ROPUF_REQUIRE(response_bits >= 1 && response_bits <= pair_count,
                "response length must be 1..pair_count");

  // Deterministic Fisher-Yates keyed by the challenge. Using the library
  // Rng keeps the expansion identical on enroller and verifier.
  Rng rng(challenge);
  std::vector<std::size_t> order(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) order[i] = i;
  rng.shuffle(order);
  order.resize(response_bits);
  return order;
}

CrpOracle::CrpOracle(const ConfigurableEnrollment* enrollment, std::size_t response_bits)
    : enrollment_(enrollment), response_bits_(response_bits) {
  ROPUF_REQUIRE(enrollment_ != nullptr, "null enrollment");
  ROPUF_REQUIRE(!enrollment_->selections.empty(), "enrollment has no pairs");
  ROPUF_REQUIRE(response_bits_ >= 1 && response_bits_ <= enrollment_->selections.size(),
                "response length must be 1..pair_count");
}

BitVec CrpOracle::respond(std::uint64_t challenge,
                          const std::vector<double>& unit_values) const {
  const auto pairs =
      challenge_to_pairs(challenge, enrollment_->selections.size(), response_bits_);
  BitVec response(response_bits_);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Selection& sel = enrollment_->selections[pairs[i]];
    const PairValues pv = pair_values(unit_values, enrollment_->layout, pairs[i]);
    const double margin =
        configured_margin(sel.top_config, sel.bottom_config, pv.top, pv.bottom);
    response.set(i, margin > 0.0);
  }
  return response;
}

BitVec CrpOracle::reference(std::uint64_t challenge) const {
  const auto pairs =
      challenge_to_pairs(challenge, enrollment_->selections.size(), response_bits_);
  BitVec response(response_bits_);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    response.set(i, enrollment_->selections[pairs[i]].bit);
  }
  return response;
}

}  // namespace ropuf::puf

#include "puf/serialization.h"

#include <sstream>

#include "common/error.h"

namespace ropuf::puf {

std::string serialize_enrollment(const ConfigurableEnrollment& enrollment) {
  std::ostringstream os;
  os << "ropuf-enrollment v1\n";
  os << "mode " << (enrollment.mode == SelectionCase::kSameConfig ? "case1" : "case2")
     << "\n";
  os << "layout " << enrollment.layout.stages << " " << enrollment.layout.pair_count
     << "\n";
  os.precision(17);
  for (std::size_t p = 0; p < enrollment.selections.size(); ++p) {
    const Selection& sel = enrollment.selections[p];
    os << "pair " << p << " " << sel.top_config.to_string() << " "
       << sel.bottom_config.to_string() << " " << sel.margin << " " << (sel.bit ? 1 : 0)
       << "\n";
  }
  // Helper records (comparison offset + dark-bit mask) are emitted only when
  // present, so dataset-level enrollments keep the original v1 byte layout.
  for (std::size_t p = 0; p < enrollment.helper.size(); ++p) {
    const PairHelperData& h = enrollment.helper[p];
    os << "helper " << p << " " << h.offset_ps << " " << (h.masked ? 1 : 0) << "\n";
  }
  return os.str();
}

ConfigurableEnrollment parse_enrollment(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;  // 1-based line of `current` in the input

  auto next_line = [&](std::string& out) {
    while (std::getline(is, line)) {
      ++line_number;
      if (line.empty() || line[0] == '#') continue;
      out = line;
      return true;
    }
    return false;
  };
  // Errors about a specific line carry its 1-based number, matching the
  // from_csv diagnostics, so a bad record in a large file is findable.
  const auto at_line = [&] { return " at line " + std::to_string(line_number); };

  std::string current;
  ROPUF_REQUIRE(next_line(current) && current == "ropuf-enrollment v1",
                "missing or wrong enrollment header");

  ConfigurableEnrollment enrollment;
  ROPUF_REQUIRE(next_line(current), "truncated enrollment: no mode line");
  {
    std::istringstream ls(current);
    std::string keyword, value;
    ls >> keyword >> value;
    ROPUF_REQUIRE(keyword == "mode" && (value == "case1" || value == "case2"),
                  "malformed mode line" + at_line());
    enrollment.mode =
        value == "case1" ? SelectionCase::kSameConfig : SelectionCase::kIndependent;
  }
  ROPUF_REQUIRE(next_line(current), "truncated enrollment: no layout line");
  {
    std::istringstream ls(current);
    std::string keyword;
    long long stages = 0, pairs = 0;
    ls >> keyword >> stages >> pairs;
    ROPUF_REQUIRE(keyword == "layout" && !ls.fail() && stages > 0 && pairs > 0,
                  "malformed layout line" + at_line());
    enrollment.layout.stages = static_cast<std::size_t>(stages);
    enrollment.layout.pair_count = static_cast<std::size_t>(pairs);
  }

  enrollment.selections.resize(enrollment.layout.pair_count);
  std::vector<bool> seen(enrollment.layout.pair_count, false);
  std::vector<bool> helper_seen(enrollment.layout.pair_count, false);
  while (next_line(current)) {
    std::istringstream ls(current);
    std::string keyword;
    ls >> keyword;
    if (keyword == "helper") {
      long long index = -1;
      double offset = 0.0;
      int masked = 0;
      ls >> index >> offset >> masked;
      ROPUF_REQUIRE(!ls.fail(), "malformed helper line" + at_line());
      ROPUF_REQUIRE(index >= 0 &&
                        static_cast<std::size_t>(index) < enrollment.layout.pair_count,
                    "helper index out of range" + at_line());
      ROPUF_REQUIRE(!helper_seen[static_cast<std::size_t>(index)],
                    "duplicate helper index" + at_line());
      ROPUF_REQUIRE(masked == 0 || masked == 1, "helper mask must be 0/1" + at_line());
      if (enrollment.helper.empty()) {
        enrollment.helper.resize(enrollment.layout.pair_count);
      }
      enrollment.helper[static_cast<std::size_t>(index)] =
          PairHelperData{offset, masked == 1};
      helper_seen[static_cast<std::size_t>(index)] = true;
      continue;
    }
    std::string top, bottom;
    long long index = -1;
    double margin = 0.0;
    int bit = 0;
    ls >> index >> top >> bottom >> margin >> bit;
    ROPUF_REQUIRE(keyword == "pair" && !ls.fail(), "malformed pair line" + at_line());
    ROPUF_REQUIRE(index >= 0 &&
                      static_cast<std::size_t>(index) < enrollment.layout.pair_count,
                  "pair index out of range" + at_line());
    ROPUF_REQUIRE(!seen[static_cast<std::size_t>(index)],
                  "duplicate pair index" + at_line());
    ROPUF_REQUIRE(bit == 0 || bit == 1, "pair bit must be 0/1" + at_line());

    Selection sel;
    sel.top_config = BitVec::from_string(top);
    sel.bottom_config = BitVec::from_string(bottom);
    ROPUF_REQUIRE(sel.top_config.size() == enrollment.layout.stages &&
                      sel.bottom_config.size() == enrollment.layout.stages,
                  "configuration arity does not match the layout" + at_line());
    sel.margin = margin;
    sel.bit = bit == 1;
    enrollment.selections[static_cast<std::size_t>(index)] = std::move(sel);
    seen[static_cast<std::size_t>(index)] = true;
  }
  for (std::size_t p = 0; p < seen.size(); ++p) {
    ROPUF_REQUIRE(seen[p], "missing pair " + std::to_string(p));
  }
  if (!enrollment.helper.empty()) {
    // Helper records are all-or-nothing: a record with any helper line must
    // cover every pair, otherwise masks could silently default to unmasked.
    for (std::size_t p = 0; p < helper_seen.size(); ++p) {
      ROPUF_REQUIRE(helper_seen[p], "missing helper " + std::to_string(p));
    }
  }
  return enrollment;
}

}  // namespace ropuf::puf

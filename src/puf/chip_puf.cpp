#include "puf/chip_puf.h"

#include <cmath>

#include "common/error.h"
#include "numeric/polyfit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "puf/distiller.h"
#include "puf/majority.h"

namespace ropuf::puf {

ConfigurableRoPufDevice::ConfigurableRoPufDevice(const sil::Chip* chip, DeviceSpec spec,
                                                 Rng& rng)
    : chip_(chip),
      spec_(spec),
      pairs_(ro::make_ro_pairs(*chip, spec.stages, spec.pair_count, spec.placement)),
      counter_(spec.counter, rng) {
  ROPUF_REQUIRE(spec_.measurement_repetitions >= 1, "repetitions must be >= 1");
}

std::vector<std::optional<ConfigurableRoPufDevice::PairMeasurement>>
ConfigurableRoPufDevice::measure_all_pairs(const sil::OperatingPoint& op, Rng& rng) const {
  const ro::DelayExtractor extractor(&counter_);
  std::vector<std::optional<PairMeasurement>> measurements;
  measurements.reserve(pairs_.size());
  for (const auto& [top, bottom] : pairs_) {
    auto extract_pair = [&] {
      ro::ExtractionResult top_result, bottom_result;
      if (spec_.hardened) {
        top_result = robust_extract_leave_one_out_with_base(counter_, top, op, rng,
                                                            spec_.retry, &read_stats_);
        bottom_result = robust_extract_leave_one_out_with_base(counter_, bottom, op, rng,
                                                               spec_.retry, &read_stats_);
      } else {
        top_result = extractor.extract_leave_one_out_with_base(
            top, op, rng, spec_.measurement_repetitions);
        bottom_result = extractor.extract_leave_one_out_with_base(
            bottom, op, rng, spec_.measurement_repetitions);
      }
      PairMeasurement m;
      m.top_ddiff = top_result.ddiff_ps;
      m.bottom_ddiff = bottom_result.ddiff_ps;
      m.top_selection = m.top_ddiff;
      m.bottom_selection = m.bottom_ddiff;
      m.top_base_ps = top_result.base_delay_ps;
      m.bottom_base_ps = bottom_result.base_delay_ps;
      m.base_delta_ps = m.top_base_ps - m.bottom_base_ps;
      return m;
    };
    if (spec_.hardened) {
      // Retry-exhausted pairs degrade to dark bits; any other error is a
      // genuine contract violation and propagates.
      try {
        measurements.push_back(extract_pair());
      } catch (const MeasurementFault&) {
        measurements.push_back(std::nullopt);
      }
    } else {
      measurements.push_back(extract_pair());
    }
  }

  if (spec_.distill) {
    // Detrend across the whole device: gather every measured unit into one
    // array, fit/subtract the spatial surface, and scatter the residuals
    // back as the values the selection algorithm sees. Raw ddiffs are kept
    // for the stored (physical) margins. Dark (masked) pairs contribute no
    // samples, so they cannot pollute the fit.
    std::vector<double> values;
    std::vector<sil::DieLocation> locations;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      if (!measurements[p].has_value()) continue;
      const auto& [top, bottom] = pairs_[p];
      for (std::size_t s = 0; s < spec_.stages; ++s) {
        values.push_back(measurements[p]->top_ddiff[s]);
        locations.push_back(chip_->location(top.unit_indices()[s]));
      }
      for (std::size_t s = 0; s < spec_.stages; ++s) {
        values.push_back(measurements[p]->bottom_ddiff[s]);
        locations.push_back(chip_->location(bottom.unit_indices()[s]));
      }
    }
    if (!values.empty()) {
      const RegressionDistiller distiller(spec_.distiller_degree);
      const std::vector<double> residual = distiller.distill(values, locations);
      std::size_t cursor = 0;
      for (auto& m : measurements) {
        if (!m.has_value()) continue;
        for (auto& v : m->top_selection) v = residual[cursor++];
        for (auto& v : m->bottom_selection) v = residual[cursor++];
      }

      // The base delays carry the same spatial trend, and it is *shared across
      // chips*, so an un-detrended base delta would correlate the response
      // bits of nominally identical chips (breaking uniqueness). Fit a surface
      // over the per-RO base estimates at the RO centroids and recompute each
      // pair's delta from the residuals.
      std::vector<double> bases;
      std::vector<sil::DieLocation> centroids;
      auto centroid = [&](const ro::ConfigurableRo& ring) {
        sil::DieLocation c{0.0, 0.0};
        for (const std::size_t u : ring.unit_indices()) {
          c.x += chip_->location(u).x;
          c.y += chip_->location(u).y;
        }
        c.x /= static_cast<double>(ring.stage_count());
        c.y /= static_cast<double>(ring.stage_count());
        return c;
      };
      for (std::size_t p = 0; p < pairs_.size(); ++p) {
        if (!measurements[p].has_value()) continue;
        bases.push_back(measurements[p]->top_base_ps);
        centroids.push_back(centroid(pairs_[p].first));
        bases.push_back(measurements[p]->bottom_base_ps);
        centroids.push_back(centroid(pairs_[p].second));
      }
      // A surface fit needs more samples than monomials; fall back to mean
      // removal (degree 0) on tiny devices.
      const std::size_t monomials = num::monomials_2d(spec_.distiller_degree).size();
      const std::size_t base_degree = bases.size() > monomials ? spec_.distiller_degree : 0;
      const RegressionDistiller base_distiller(base_degree);
      const std::vector<double> base_residual = base_distiller.distill(bases, centroids);
      std::size_t base_cursor = 0;
      for (auto& m : measurements) {
        if (!m.has_value()) continue;
        m->base_delta_ps = base_residual[base_cursor] - base_residual[base_cursor + 1];
        base_cursor += 2;
      }
    }
  }
  return measurements;
}

void ConfigurableRoPufDevice::enroll(const sil::OperatingPoint& op, Rng& rng) {
  static obs::Counter& enrollments = obs::Registry::instance().counter("puf.enrollments");
  static obs::Counter& pairs_enrolled =
      obs::Registry::instance().counter("puf.pairs_enrolled");
  static obs::Counter& dark_bits = obs::Registry::instance().counter("puf.dark_bits_masked");
  static obs::Histogram& enroll_us =
      obs::Registry::instance().latency_histogram("puf.enroll_us");
  const obs::TraceSpan span("puf.enroll");
  const obs::ScopedLatency enroll_timer(enroll_us);
  enrollments.add(1);
  pairs_enrolled.add(pairs_.size());

  const auto measurements = measure_all_pairs(op, rng);
  selections_.clear();
  selections_.reserve(pairs_.size());
  helper_data_.clear();
  helper_data_.reserve(pairs_.size());
  for (std::size_t p = 0; p < measurements.size(); ++p) {
    if (!measurements[p].has_value()) {
      // Dark bit: the pair's units stayed faulty past the retry budget.
      // Store a well-formed placeholder (all inverters selected on both
      // ROs keeps the popcount/arity invariants) and mask it out.
      Selection placeholder;
      placeholder.top_config = pairs_[p].first.all_selected();
      placeholder.bottom_config = pairs_[p].second.all_selected();
      PairHelperData masked;
      masked.masked = true;
      selections_.push_back(std::move(placeholder));
      helper_data_.push_back(masked);
      dark_bits.add(1);
      continue;
    }
    const PairMeasurement& m = *measurements[p];
    // Effective margin of a candidate selection in the *decision domain*:
    // detrended values and detrended base delta when distilling, the raw
    // physical quantities otherwise. m.base_delta_ps is already the right
    // domain (measure_all_pairs detrends it together with the values).
    auto effective = [&](const Selection& sel) {
      return m.base_delta_ps + configured_margin(sel.top_config, sel.bottom_config,
                                                 m.top_selection, m.bottom_selection);
    };

    Selection chosen;
    double margin;
    if (spec_.base_aware) {
      // The comparison realizes dB + margin; evaluate both forced directions
      // and keep the one with the larger effective magnitude.
      const Selection pos =
          select_directed(spec_.mode, m.top_selection, m.bottom_selection, true);
      const Selection neg =
          select_directed(spec_.mode, m.top_selection, m.bottom_selection, false);
      const double eff_pos = effective(pos);
      const double eff_neg = effective(neg);
      chosen = (std::fabs(eff_pos) >= std::fabs(eff_neg)) ? pos : neg;
      margin = (std::fabs(eff_pos) >= std::fabs(eff_neg)) ? eff_pos : eff_neg;
    } else {
      chosen = select(spec_.mode, m.top_selection, m.bottom_selection);
      margin = effective(chosen);
    }
    chosen.margin = margin;
    chosen.bit = margin > 0.0;

    // Helper data: what the raw hardware comparison reads at the enrollment
    // corner, minus the decision-domain margin. The field readout subtracts
    // this before deciding the bit, removing the fleet-correlated
    // systematic component. Zero when not distilling (domains coincide).
    PairHelperData helper;
    const double raw_margin =
        (m.top_base_ps - m.bottom_base_ps) +
        configured_margin(chosen.top_config, chosen.bottom_config, m.top_ddiff,
                          m.bottom_ddiff);
    helper.offset_ps = raw_margin - margin;
    selections_.push_back(std::move(chosen));
    helper_data_.push_back(helper);
  }
}

const std::vector<PairHelperData>& ConfigurableRoPufDevice::helper_data() const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  return helper_data_;
}

const std::vector<Selection>& ConfigurableRoPufDevice::selections() const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  return selections_;
}

BitVec ConfigurableRoPufDevice::enrolled_response() const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  BitVec response(selections_.size());
  for (std::size_t p = 0; p < selections_.size(); ++p) response.set(p, selections_[p].bit);
  return response;
}

BitVec ConfigurableRoPufDevice::respond(const sil::OperatingPoint& op, Rng& rng) const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  static obs::Counter& responses = obs::Registry::instance().counter("puf.responses");
  static obs::Counter& masked_skips =
      obs::Registry::instance().counter("puf.masked_bit_skips");
  static obs::Counter& degraded_bits =
      obs::Registry::instance().counter("puf.degraded_bits");
  static obs::Histogram& respond_us =
      obs::Registry::instance().latency_histogram("puf.respond_us");
  const obs::TraceSpan span("puf.respond");
  const obs::ScopedLatency respond_timer(respond_us);
  responses.add(1);

  BitVec response(selections_.size());
  for (std::size_t p = 0; p < selections_.size(); ++p) {
    if (helper_data_[p].masked) {
      masked_skips.add(1);
      continue;  // dark bit: fixed 0, no measurement
    }
    const auto& [top, bottom] = pairs_[p];
    const Selection& sel = selections_[p];
    if (spec_.hardened) {
      try {
        const double top_delay = robust_path_delay_ps(counter_, top, sel.top_config, op,
                                                      rng, spec_.retry, &read_stats_);
        const double bottom_delay = robust_path_delay_ps(
            counter_, bottom, sel.bottom_config, op, rng, spec_.retry, &read_stats_);
        response.set(p, top_delay - bottom_delay - helper_data_[p].offset_ps > 0.0);
      } catch (const MeasurementFault&) {
        // Retry budget exhausted in the field: degrade this bit to 0 (a
        // flip the fuzzy extractor absorbs) rather than fail the readout.
        degraded_bits.add(1);
      }
      continue;
    }
    const double top_delay = counter_.measure_path_delay_ps(top, sel.top_config, op, rng);
    const double bottom_delay =
        counter_.measure_path_delay_ps(bottom, sel.bottom_config, op, rng);
    response.set(p, top_delay - bottom_delay - helper_data_[p].offset_ps > 0.0);
  }
  return response;
}

BitVec ConfigurableRoPufDevice::respond_voted(const sil::OperatingPoint& op, Rng& rng,
                                              int votes) const {
  ROPUF_REQUIRE(votes >= 1, "vote count must be positive");
  ROPUF_REQUIRE(votes % 2 == 1, "vote count must be odd (a tie is undecidable)");
  std::vector<BitVec> samples;
  samples.reserve(static_cast<std::size_t>(votes));
  for (int v = 0; v < votes; ++v) samples.push_back(respond(op, rng));
  return majority_vote(samples);
}

void ConfigurableRoPufDevice::set_fault_injector(sil::FaultInjector* injector) {
  counter_.set_fault_injector(injector);
}

std::size_t ConfigurableRoPufDevice::masked_count() const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  std::size_t masked = 0;
  for (const PairHelperData& h : helper_data_) masked += h.masked ? 1 : 0;
  return masked;
}

std::size_t ConfigurableRoPufDevice::effective_bit_count() const {
  return selections_.size() - masked_count();
}

ConfigurableEnrollment ConfigurableRoPufDevice::export_enrollment() const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  ConfigurableEnrollment enrollment;
  enrollment.mode = spec_.mode;
  enrollment.layout.stages = spec_.stages;
  enrollment.layout.pair_count = spec_.pair_count;
  enrollment.selections = selections_;
  enrollment.helper = helper_data_;
  return enrollment;
}

std::vector<bool> ConfigurableRoPufDevice::reliable_mask(double rth_ps) const {
  ROPUF_REQUIRE(enrolled(), "device not enrolled");
  ROPUF_REQUIRE(rth_ps >= 0.0, "negative reliability threshold");
  std::vector<bool> mask(selections_.size());
  for (std::size_t p = 0; p < selections_.size(); ++p) {
    mask[p] = std::fabs(selections_[p].margin) >= rth_ps;
  }
  return mask;
}

ConfigurableRoPufDevice::TraditionalResponse
ConfigurableRoPufDevice::traditional_response(const sil::OperatingPoint& op,
                                              Rng& rng) const {
  TraditionalResponse out;
  out.response = BitVec(pairs_.size());
  out.margins_ps.resize(pairs_.size());
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const auto& [top, bottom] = pairs_[p];
    const double top_delay =
        counter_.measure_path_delay_ps(top, top.all_selected(), op, rng);
    const double bottom_delay =
        counter_.measure_path_delay_ps(bottom, bottom.all_selected(), op, rng);
    out.margins_ps[p] = top_delay - bottom_delay;
    out.response.set(p, out.margins_ps[p] > 0.0);
  }
  return out;
}

}  // namespace ropuf::puf

// Challenge-response interface over a board of configurable RO pairs.
//
// Secret-key generation uses a PUF's fixed response; authentication (the
// paper's other headline application) wants many challenge-response pairs.
// For RO PUFs the standard construction lets the challenge choose *which*
// ROs are compared: here a 64-bit challenge seeds a deterministic
// permutation of the board's RO pairs and selects a subset of them, so each
// challenge yields a different response bit-string from the same enrolled
// silicon while every bit still comes from a margin-maximized comparison.
//
// Notes on the threat model: unlike the FPGA-reconfiguration approaches the
// paper criticizes (Section II), the *configurations are fixed at
// enrollment* — the challenge only permutes which enrolled pairs are read,
// so the modeling surface does not grow with the CRP count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "puf/schemes.h"

namespace ropuf::puf {

/// Deterministic pair subset derived from a challenge: `indices[i]` is the
/// enrolled pair supplying response bit i.
std::vector<std::size_t> challenge_to_pairs(std::uint64_t challenge,
                                            std::size_t pair_count,
                                            std::size_t response_bits);

/// A challenge-response evaluator bound to one board's enrollment.
class CrpOracle {
 public:
  /// `enrollment` must outlive the oracle. `response_bits` must not exceed
  /// the enrolled pair count (bits are drawn without replacement).
  CrpOracle(const ConfigurableEnrollment* enrollment, std::size_t response_bits);

  std::size_t response_bits() const { return response_bits_; }

  /// Response to `challenge` computed from fresh unit measurements.
  BitVec respond(std::uint64_t challenge, const std::vector<double>& unit_values) const;

  /// The reference response from the enrollment-time bits (what a verifier
  /// database stores per challenge).
  BitVec reference(std::uint64_t challenge) const;

 private:
  const ConfigurableEnrollment* enrollment_;
  std::size_t response_bits_;
};

}  // namespace ropuf::puf

// Regression-based distiller (Yin & Qu, DAC 2013 — reference [18]).
//
// Raw RO delays carry a smooth systematic spatial component that is
// correlated from chip to chip, so raw PUF bits fail the NIST randomness
// tests (paper Section IV.A). The distiller fits a low-degree bivariate
// polynomial of the die coordinates to each chip's own measurements and
// keeps only the residual — the random mismatch that is the true entropy
// source. All of the paper's randomness/uniqueness results are produced
// from distilled values.
#pragma once

#include <cstddef>
#include <vector>

#include "silicon/chip.h"

namespace ropuf::puf {

/// Per-chip polynomial detrending of unit measurements.
class RegressionDistiller {
 public:
  /// `degree` is the total degree of the fitted surface; the reference uses
  /// low degrees (2-3). Degree 0 subtracts the chip mean only.
  explicit RegressionDistiller(std::size_t degree = 2);

  std::size_t degree() const { return degree_; }

  /// Residuals of `values` after removing the surface fitted over
  /// `locations`. Requires values.size() == locations.size() and enough
  /// samples for the degree.
  std::vector<double> distill(const std::vector<double>& values,
                              const std::vector<sil::DieLocation>& locations) const;

  /// Convenience: distills per-unit values of a chip using its own layout.
  /// values[i] must correspond to chip unit i.
  std::vector<double> distill_chip(const sil::Chip& chip,
                                   const std::vector<double>& values) const;

 private:
  std::size_t degree_;
};

}  // namespace ropuf::puf

#include "puf/majority.h"

#include "common/error.h"

namespace ropuf::puf {

BitVec majority_vote(const std::vector<BitVec>& samples) {
  ROPUF_REQUIRE(!samples.empty(), "no samples to vote over");
  ROPUF_REQUIRE(samples.size() % 2 == 1, "majority voting needs an odd sample count");
  const std::size_t width = samples.front().size();
  ROPUF_REQUIRE(width > 0, "empty samples");

  BitVec result(width);
  for (std::size_t i = 0; i < width; ++i) {
    std::size_t ones = 0;
    for (const BitVec& sample : samples) {
      ROPUF_REQUIRE(sample.size() == width, "sample length mismatch");
      if (sample.get(i)) ++ones;
    }
    result.set(i, 2 * ones > samples.size());
  }
  return result;
}

}  // namespace ropuf::puf

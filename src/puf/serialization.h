// Text serialization of enrollment artifacts.
//
// A deployment stores, per device, the burned configuration vectors (and,
// for the distilled circuit device, the public comparison offsets). This
// module provides a stable line-oriented format for those records so
// enrollment can happen at the test house and verification elsewhere.
//
// Format (one record per line, '#' comments ignored):
//   ropuf-enrollment v1
//   mode <case1|case2>
//   layout <stages> <pair_count>
//   pair <index> <top_config> <bottom_config> <margin> <bit>
//   ...
#pragma once

#include <string>

#include "puf/schemes.h"

namespace ropuf::puf {

/// Renders an enrollment to the text format above.
std::string serialize_enrollment(const ConfigurableEnrollment& enrollment);

/// Parses the text format; throws ropuf::Error on any malformed content
/// (wrong header, inconsistent arity, missing pairs, bad numbers).
ConfigurableEnrollment parse_enrollment(const std::string& text);

}  // namespace ropuf::puf

#include "puf/selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace ropuf::puf {
namespace {

void check_pair(const std::vector<double>& top, const std::vector<double>& bottom) {
  ROPUF_REQUIRE(!top.empty(), "selection needs at least one unit");
  ROPUF_REQUIRE(top.size() == bottom.size(), "top/bottom unit counts differ");
  ROPUF_REQUIRE(top.size() <= 63, "selection supports up to 63 units");
}

/// Indices of `v` sorted by value, descending or ascending.
std::vector<std::size_t> argsort(const std::vector<double>& v, bool descending) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return descending ? v[a] > v[b] : v[a] < v[b];
  });
  return idx;
}

/// Best k >= 1 prefix of the pairing (slowest-available top unit vs
/// fastest-available bottom unit): returns (best sum, best k). Because the
/// pairing terms are non-increasing, the prefix maximum is the optimum over
/// every feasible k (see selection.h).
std::pair<double, std::size_t> best_prefix(const std::vector<double>& top,
                                           const std::vector<std::size_t>& top_order,
                                           const std::vector<double>& bottom,
                                           const std::vector<std::size_t>& bottom_order) {
  double sum = 0.0;
  double best = -1e300;
  std::size_t best_k = 1;
  for (std::size_t k = 0; k < top_order.size(); ++k) {
    sum += top[top_order[k]] - bottom[bottom_order[k]];
    if (sum > best) {
      best = sum;
      best_k = k + 1;
    }
  }
  return {best, best_k};
}

BitVec config_from_order(std::size_t n, const std::vector<std::size_t>& order,
                         std::size_t count) {
  BitVec cfg(n);
  for (std::size_t k = 0; k < count; ++k) cfg.set(order[k], true);
  return cfg;
}

BitVec config_from_mask(std::size_t n, std::uint64_t mask) {
  BitVec cfg(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (mask & (std::uint64_t{1} << i)) cfg.set(i, true);
  }
  return cfg;
}

double mask_sum(const std::vector<double>& v, std::uint64_t mask) {
  double s = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (mask & (std::uint64_t{1} << i)) s += v[i];
  }
  return s;
}

}  // namespace

double configured_margin(const BitVec& top_config, const BitVec& bottom_config,
                         const std::vector<double>& top_values,
                         const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  ROPUF_REQUIRE(top_config.size() == top_values.size() &&
                    bottom_config.size() == bottom_values.size(),
                "configuration arity mismatch");
  double margin = 0.0;
  for (std::size_t i = 0; i < top_values.size(); ++i) {
    if (top_config.get(i)) margin += top_values[i];
    if (bottom_config.get(i)) margin -= bottom_values[i];
  }
  return margin;
}

Selection select_case1(const std::vector<double>& top_values,
                       const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  const std::size_t n = top_values.size();

  double positive_sum = 0.0, negative_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = top_values[i] - bottom_values[i];
    if (d > 0.0) {
      positive_sum += d;
    } else {
      negative_sum += d;
    }
  }

  const bool pick_positive = positive_sum >= -negative_sum;
  Selection s;
  s.top_config = BitVec(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = top_values[i] - bottom_values[i];
    if ((pick_positive && d > 0.0) || (!pick_positive && d < 0.0)) {
      s.top_config.set(i, true);
      s.margin += d;
    }
  }
  s.bottom_config = s.top_config;
  s.bit = s.margin > 0.0;
  return s;
}

Selection select_case2(const std::vector<double>& top_values,
                       const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  const std::size_t n = top_values.size();

  const auto top_desc = argsort(top_values, /*descending=*/true);
  const auto top_asc = argsort(top_values, /*descending=*/false);
  const auto bottom_desc = argsort(bottom_values, /*descending=*/true);
  const auto bottom_asc = argsort(bottom_values, /*descending=*/false);

  // Direction "top slower": pick the k slowest top units and the k fastest
  // bottom units. Direction "bottom slower" is symmetric.
  const auto [top_slower_sum, top_slower_k] =
      best_prefix(top_values, top_desc, bottom_values, bottom_asc);
  const auto [bottom_slower_sum, bottom_slower_k] =
      best_prefix(bottom_values, bottom_desc, top_values, top_asc);

  Selection s;
  if (top_slower_sum >= bottom_slower_sum) {
    s.top_config = config_from_order(n, top_desc, top_slower_k);
    s.bottom_config = config_from_order(n, bottom_asc, top_slower_k);
    s.margin = top_slower_sum;
  } else {
    s.top_config = config_from_order(n, top_asc, bottom_slower_k);
    s.bottom_config = config_from_order(n, bottom_desc, bottom_slower_k);
    s.margin = -bottom_slower_sum;
  }
  s.bit = s.margin > 0.0;
  return s;
}

Selection select(SelectionCase mode, const std::vector<double>& top_values,
                 const std::vector<double>& bottom_values) {
  return mode == SelectionCase::kSameConfig ? select_case1(top_values, bottom_values)
                                            : select_case2(top_values, bottom_values);
}

namespace {

/// Case-1 with a forced sign: select every unit whose delta has the wanted
/// sign; if none exists, select the single unit closest to the wanted sign
/// so the configuration stays non-empty.
Selection case1_directed(const std::vector<double>& top, const std::vector<double>& bottom,
                         bool top_slower) {
  const std::size_t n = top.size();
  Selection s;
  s.top_config = BitVec(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = top[i] - bottom[i];
    if ((top_slower && d > 0.0) || (!top_slower && d < 0.0)) {
      s.top_config.set(i, true);
      s.margin += d;
    }
  }
  if (s.top_config.popcount() == 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const double d = top[i] - bottom[i];
      const double db = top[best] - bottom[best];
      if (top_slower ? d > db : d < db) best = i;
    }
    s.top_config.set(best, true);
    s.margin = top[best] - bottom[best];
  }
  s.bottom_config = s.top_config;
  s.bit = s.margin > 0.0;
  return s;
}

/// Case-2 with a forced sign: the sorted prefix pairing of the wanted
/// direction only.
Selection case2_directed(const std::vector<double>& top, const std::vector<double>& bottom,
                         bool top_slower) {
  const std::size_t n = top.size();
  Selection s;
  if (top_slower) {
    const auto top_desc = argsort(top, true);
    const auto bottom_asc = argsort(bottom, false);
    const auto [sum, k] = best_prefix(top, top_desc, bottom, bottom_asc);
    s.top_config = config_from_order(n, top_desc, k);
    s.bottom_config = config_from_order(n, bottom_asc, k);
    s.margin = sum;
  } else {
    const auto bottom_desc = argsort(bottom, true);
    const auto top_asc = argsort(top, false);
    const auto [sum, k] = best_prefix(bottom, bottom_desc, top, top_asc);
    s.top_config = config_from_order(n, top_asc, k);
    s.bottom_config = config_from_order(n, bottom_desc, k);
    s.margin = -sum;
  }
  s.bit = s.margin > 0.0;
  return s;
}

}  // namespace

Selection select_directed(SelectionCase mode, const std::vector<double>& top_values,
                          const std::vector<double>& bottom_values, bool top_slower) {
  check_pair(top_values, bottom_values);
  return mode == SelectionCase::kSameConfig
             ? case1_directed(top_values, bottom_values, top_slower)
             : case2_directed(top_values, bottom_values, top_slower);
}

Selection select_exhaustive_case1(const std::vector<double>& top_values,
                                  const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  const std::size_t n = top_values.size();
  ROPUF_REQUIRE(n <= 20, "exhaustive case-1 limited to 20 units");

  Selection best;
  double best_abs = -1.0;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    const double margin = mask_sum(top_values, mask) - mask_sum(bottom_values, mask);
    if (std::fabs(margin) > best_abs) {
      best_abs = std::fabs(margin);
      best.top_config = config_from_mask(n, mask);
      best.bottom_config = best.top_config;
      best.margin = margin;
    }
  }
  best.bit = best.margin > 0.0;
  return best;
}

namespace {

Selection exhaustive_pairs(const std::vector<double>& top_values,
                           const std::vector<double>& bottom_values,
                           bool require_equal_popcount) {
  const std::size_t n = top_values.size();
  ROPUF_REQUIRE(n <= 12, "exhaustive pair search limited to 12 units");

  Selection best;
  double best_abs = -1.0;
  for (std::uint64_t x = 1; x < (std::uint64_t{1} << n); ++x) {
    for (std::uint64_t y = 1; y < (std::uint64_t{1} << n); ++y) {
      if (require_equal_popcount &&
          __builtin_popcountll(x) != __builtin_popcountll(y)) {
        continue;
      }
      const double margin = mask_sum(top_values, x) - mask_sum(bottom_values, y);
      if (std::fabs(margin) > best_abs) {
        best_abs = std::fabs(margin);
        best.top_config = config_from_mask(n, x);
        best.bottom_config = config_from_mask(n, y);
        best.margin = margin;
      }
    }
  }
  best.bit = best.margin > 0.0;
  return best;
}

}  // namespace

Selection select_exhaustive_case2(const std::vector<double>& top_values,
                                  const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  return exhaustive_pairs(top_values, bottom_values, /*require_equal_popcount=*/true);
}

Selection select_exhaustive_unconstrained(const std::vector<double>& top_values,
                                          const std::vector<double>& bottom_values) {
  check_pair(top_values, bottom_values);
  return exhaustive_pairs(top_values, bottom_values, /*require_equal_popcount=*/false);
}

}  // namespace ropuf::puf

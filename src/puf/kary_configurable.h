// K-ary stage-configurable RO PUF — the Xin-Kaps-Gaj design [15].
//
// Reference [15] improves on Maiti-Schaumont [14] by exposing more
// configurations per CLB (256 instead of 8): conceptually each stage offers
// K alternative delay paths instead of 2, still always in the loop, with a
// shared per-stage selection across the RO pair. Because stage
// contributions remain independent, the optimal configuration is found per
// stage in O(n K).
//
// Comparing this against the paper's delay-unit design isolates what the
// extra freedom of *removing* a stage (rather than only swapping its path)
// is worth (bench_baseline_maiti_schaumont).
#pragma once

#include <cstddef>
#include <vector>

namespace ropuf::puf {

/// One RO pair where every stage of each RO has K delay options and the
/// pair shares one option index per stage.
struct KaryPair {
  /// top[s][k] / bottom[s][k]: delay of stage s under option k.
  std::vector<std::vector<double>> top;
  std::vector<std::vector<double>> bottom;
};

/// Result of the per-stage search.
struct KarySelection {
  std::vector<std::size_t> option;  ///< chosen option index per stage
  double margin = 0.0;              ///< top minus bottom under the choice
  bool bit = false;
};

/// Margin of a specific option assignment.
double kary_margin(const KaryPair& pair, const std::vector<std::size_t>& option);

/// Optimal shared-option selection maximizing |margin| (per-stage greedy,
/// optimal by independence; both directions tried).
KarySelection kary_select(const KaryPair& pair);

/// Builds K-ary pairs from a flat unit-value array: stage s of each RO
/// consumes K consecutive values. Uses 2*stages*k values per pair.
std::vector<KaryPair> kary_pairs_from_units(const std::vector<double>& unit_values,
                                            std::size_t stages, std::size_t options,
                                            std::size_t pair_count);

}  // namespace ropuf::puf

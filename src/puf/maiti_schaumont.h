// The Maiti-Schaumont configurable RO PUF (reference [14] of the paper),
// implemented as a comparison baseline.
//
// In their design every RO stage holds TWO alternative inverters and a
// multiplexer picks one of them, so a 3-stage RO has 2^3 = 8 configurations
// (one CLB per RO on a Xilinx FPGA). For a pair of ROs the configuration
// (applied to both ROs, one select vector) with the maximum frequency
// difference is chosen. The paper's Related Work credits this scheme with
// introducing configurability; the key difference to the paper's proposal
// is granularity: Maiti-Schaumont picks one of 2 inverters per stage (the
// stage is always in the loop), while the paper decides per stage whether
// the inverter is in the loop at all.
//
// Model: each stage of each RO has two delay alternatives; the pair margin
// under select vector c is sum_i (topA/B_i - bottomA/B_i) following c.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"

namespace ropuf::puf {

/// Per-stage alternatives of one RO.
struct MsStage {
  double option_a_ps = 0.0;  ///< delay through inverter A
  double option_b_ps = 0.0;  ///< delay through inverter B
};

/// One RO pair of the Maiti-Schaumont design.
struct MsPair {
  std::vector<MsStage> top;
  std::vector<MsStage> bottom;
};

/// Result of the configuration search.
struct MsSelection {
  BitVec config;        ///< stage i uses option B iff bit i is set
  double margin = 0.0;  ///< top minus bottom under that configuration
  bool bit = false;     ///< margin > 0
};

/// Margin of a specific configuration (applied to both ROs).
double ms_margin(const MsPair& pair, const BitVec& config);

/// Exhaustive search over all 2^stages shared configurations for the
/// maximum |margin| — exactly the published scheme (stages <= 20).
MsSelection ms_select(const MsPair& pair);

/// Linear-time per-stage search. Because each stage's contribution to the
/// margin is independent of the others, this is provably equivalent to the
/// exhaustive search (property-tested) — [14] enumerates because its 3-stage
/// instance only has 8 configurations anyway.
MsSelection ms_select_greedy(const MsPair& pair);

/// Builds MS pairs from a board's unit values: stage i of each RO takes two
/// consecutive units as its two inverter options. Consumes 4*stages values
/// per pair (2 ROs x 2 options), letting cost comparisons against the
/// paper's scheme use identical silicon budgets.
std::vector<MsPair> ms_pairs_from_units(const std::vector<double>& unit_values,
                                        std::size_t stages, std::size_t pair_count);

}  // namespace ropuf::puf

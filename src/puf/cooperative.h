// Temperature-aware cooperative RO PUF (Yin & Qu [2]), as a baseline.
//
// Reference [2] improves the 1-out-of-8 scheme's hardware utilization by
// letting ROs in a group *cooperate*: instead of extracting one bit from
// the single most-spread pair, every disjoint pair whose frequency gap is
// safe in the current temperature region yields a bit. The price is a
// temperature sensor: the pairing is chosen per temperature region at
// enrollment and the right pairing is looked up at runtime. The paper's
// Related Work credits the scheme with ~80% higher utilization than
// 1-out-of-8, at the cost of the sensor — this module reproduces that
// trade-off (bench_hardware_efficiency prints the utilization row).
//
// Implementation: per region, sort the group's ROs by measured value and
// greedily pick disjoint pairs in decreasing-gap order (rank k paired with
// rank k + G/2, the max-spread matching), keeping a pair only if its gap
// clears the threshold in that region's measurements.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"
#include "puf/schemes.h"

namespace ropuf::puf {

/// Enrollment of one cooperative group for one temperature region: the
/// disjoint RO index pairs that are safe to compare there.
struct CooperativePairing {
  struct Pair {
    std::size_t first_ro = 0;   ///< lower index of the pair
    std::size_t second_ro = 0;  ///< higher index
  };
  std::vector<Pair> pairs;
};

/// Enrollment across regions: pairing[r] applies when the sensor reports
/// region r.
struct CooperativeEnrollment {
  BoardLayout layout;
  std::size_t group_size = 8;
  double gap_threshold = 0.0;
  std::vector<std::vector<CooperativePairing>> regions;  ///< [region][group]
};

/// Enrolls from one measurement snapshot per temperature region.
/// `region_values[r]` holds the board's unit values in region r.
CooperativeEnrollment cooperative_enroll(
    const std::vector<std::vector<double>>& region_values, const BoardLayout& layout,
    std::size_t group_size, double gap_threshold);

/// Response in a known region (the sensor reading), from fresh values.
BitVec cooperative_respond(const std::vector<double>& unit_values,
                           const CooperativeEnrollment& enrollment, std::size_t region);

/// Bits per group averaged over regions — the utilization figure compared
/// against 1-out-of-8's single bit per group.
double cooperative_bits_per_group(const CooperativeEnrollment& enrollment);

}  // namespace ropuf::puf

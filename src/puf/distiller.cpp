#include "puf/distiller.h"

#include "common/error.h"
#include "numeric/polyfit.h"

namespace ropuf::puf {

RegressionDistiller::RegressionDistiller(std::size_t degree) : degree_(degree) {}

std::vector<double> RegressionDistiller::distill(
    const std::vector<double>& values, const std::vector<sil::DieLocation>& locations) const {
  ROPUF_REQUIRE(values.size() == locations.size(), "values/locations size mismatch");
  ROPUF_REQUIRE(!values.empty(), "nothing to distill");

  std::vector<double> x(values.size()), y(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    x[i] = locations[i].x;
    y[i] = locations[i].y;
  }
  const num::Poly2D surface = num::polyfit_2d(x, y, values, degree_);

  std::vector<double> residual(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    residual[i] = values[i] - surface.eval(x[i], y[i]);
  }
  return residual;
}

std::vector<double> RegressionDistiller::distill_chip(const sil::Chip& chip,
                                                      const std::vector<double>& values) const {
  ROPUF_REQUIRE(values.size() == chip.unit_count(), "one value per chip unit expected");
  std::vector<sil::DieLocation> locations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) locations[i] = chip.location(i);
  return distill(values, locations);
}

}  // namespace ropuf::puf

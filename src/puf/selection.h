// The inverter selection problem (paper Section III.D).
//
// Given the per-unit delay differences of a top RO (alpha) and a bottom RO
// (beta), choose configuration vectors that maximize the magnitude of the
// configured delay difference
//
//   margin = sum_i alpha_i x_i  -  sum_i beta_i y_i .
//
// Case-1 constrains both ROs to one shared configuration (x = y); Case-2
// lets them differ but requires equal popcount (the paper's security
// argument: with unequal inverter counts the faster RO is guessable).
//
// Both paper algorithms are exactly optimal for their constraint sets;
// `select_exhaustive_*` provides the brute-force oracle the tests verify
// that claim against.
#pragma once

#include <vector>

#include "common/bitvec.h"

namespace ropuf::puf {

/// Which of the paper's two configuration regimes to use.
enum class SelectionCase {
  kSameConfig,       ///< Case-1: x = y
  kIndependent,      ///< Case-2: x, y free with equal popcount
};

/// Outcome of solving the selection problem for one RO pair.
struct Selection {
  BitVec top_config;     ///< x: which top-RO inverters are in the loop
  BitVec bottom_config;  ///< y: which bottom-RO inverters are in the loop
  double margin = 0.0;   ///< configured delay difference (top minus bottom)
  bool bit = false;      ///< the PUF bit: true iff the top RO is slower
};

/// Margin realized by arbitrary configurations under given unit values;
/// used to re-evaluate a stored configuration at another operating point.
double configured_margin(const BitVec& top_config, const BitVec& bottom_config,
                         const std::vector<double>& top_values,
                         const std::vector<double>& bottom_values);

/// Case-1 optimal selection (sign partition, eq. (1) of the paper).
Selection select_case1(const std::vector<double>& top_values,
                       const std::vector<double>& bottom_values);

/// Case-2 optimal selection (sorted prefix pairing, eqs. (2)-(3)).
Selection select_case2(const std::vector<double>& top_values,
                       const std::vector<double>& bottom_values);

/// Dispatch on the case tag.
Selection select(SelectionCase mode, const std::vector<double>& top_values,
                 const std::vector<double>& bottom_values);

/// Best selection with a *forced* sign: maximizes the signed margin when
/// `top_slower`, minimizes it otherwise. Always selects at least one unit.
/// Building block for base-aware enrollment (see chip_puf.h): when the
/// configured comparison includes a fixed pair offset (the bypass-path
/// mismatch dB), the best direction is the one whose margin reinforces dB,
/// which is not necessarily the direction of the larger ddiff sum.
Selection select_directed(SelectionCase mode, const std::vector<double>& top_values,
                          const std::vector<double>& bottom_values, bool top_slower);

/// Brute-force oracle over all shared configurations (non-empty). Exponential;
/// intended for tests and ablation benches with small n.
Selection select_exhaustive_case1(const std::vector<double>& top_values,
                                  const std::vector<double>& bottom_values);

/// Brute-force oracle over all equal-popcount configuration pairs.
Selection select_exhaustive_case2(const std::vector<double>& top_values,
                                  const std::vector<double>& bottom_values);

/// Brute-force oracle with the equal-popcount constraint dropped — quantifies
/// what the security constraint costs in margin (ablation).
Selection select_exhaustive_unconstrained(const std::vector<double>& top_values,
                                          const std::vector<double>& bottom_values);

}  // namespace ropuf::puf

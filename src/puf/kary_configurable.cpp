#include "puf/kary_configurable.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::puf {
namespace {

void check_pair(const KaryPair& pair) {
  ROPUF_REQUIRE(!pair.top.empty(), "K-ary pair needs at least one stage");
  ROPUF_REQUIRE(pair.top.size() == pair.bottom.size(), "stage count mismatch");
  for (std::size_t s = 0; s < pair.top.size(); ++s) {
    ROPUF_REQUIRE(!pair.top[s].empty() && pair.top[s].size() == pair.bottom[s].size(),
                  "option count mismatch at a stage");
  }
}

}  // namespace

double kary_margin(const KaryPair& pair, const std::vector<std::size_t>& option) {
  check_pair(pair);
  ROPUF_REQUIRE(option.size() == pair.top.size(), "option vector arity mismatch");
  double margin = 0.0;
  for (std::size_t s = 0; s < pair.top.size(); ++s) {
    ROPUF_REQUIRE(option[s] < pair.top[s].size(), "option index out of range");
    margin += pair.top[s][option[s]] - pair.bottom[s][option[s]];
  }
  return margin;
}

KarySelection kary_select(const KaryPair& pair) {
  check_pair(pair);
  const std::size_t stages = pair.top.size();

  KarySelection best;
  double best_abs = -1.0;
  for (const bool positive : {true, false}) {
    KarySelection candidate;
    candidate.option.resize(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      std::size_t chosen = 0;
      double chosen_delta = pair.top[s][0] - pair.bottom[s][0];
      for (std::size_t k = 1; k < pair.top[s].size(); ++k) {
        const double delta = pair.top[s][k] - pair.bottom[s][k];
        if (positive ? delta > chosen_delta : delta < chosen_delta) {
          chosen = k;
          chosen_delta = delta;
        }
      }
      candidate.option[s] = chosen;
      candidate.margin += chosen_delta;
    }
    if (std::fabs(candidate.margin) > best_abs) {
      best_abs = std::fabs(candidate.margin);
      best = candidate;
    }
  }
  best.bit = best.margin > 0.0;
  return best;
}

std::vector<KaryPair> kary_pairs_from_units(const std::vector<double>& unit_values,
                                            std::size_t stages, std::size_t options,
                                            std::size_t pair_count) {
  ROPUF_REQUIRE(stages > 0 && options > 0 && pair_count > 0, "degenerate K-ary layout");
  ROPUF_REQUIRE(unit_values.size() >= 2 * stages * options * pair_count,
                "not enough unit values for the K-ary layout");
  std::vector<KaryPair> pairs;
  pairs.reserve(pair_count);
  std::size_t next = 0;
  for (std::size_t p = 0; p < pair_count; ++p) {
    KaryPair pair;
    pair.top.resize(stages);
    pair.bottom.resize(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      pair.top[s].assign(unit_values.begin() + static_cast<long>(next),
                         unit_values.begin() + static_cast<long>(next + options));
      next += options;
    }
    for (std::size_t s = 0; s < stages; ++s) {
      pair.bottom[s].assign(unit_values.begin() + static_cast<long>(next),
                            unit_values.begin() + static_cast<long>(next + options));
      next += options;
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace ropuf::puf

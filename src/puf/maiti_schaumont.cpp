#include "puf/maiti_schaumont.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::puf {
namespace {

void check_pair(const MsPair& pair) {
  ROPUF_REQUIRE(!pair.top.empty(), "MS pair needs at least one stage");
  ROPUF_REQUIRE(pair.top.size() == pair.bottom.size(), "MS pair stage count mismatch");
}

}  // namespace

double ms_margin(const MsPair& pair, const BitVec& config) {
  check_pair(pair);
  ROPUF_REQUIRE(config.size() == pair.top.size(), "configuration arity mismatch");
  double margin = 0.0;
  for (std::size_t i = 0; i < pair.top.size(); ++i) {
    const bool use_b = config.get(i);
    const double top = use_b ? pair.top[i].option_b_ps : pair.top[i].option_a_ps;
    const double bottom = use_b ? pair.bottom[i].option_b_ps : pair.bottom[i].option_a_ps;
    margin += top - bottom;
  }
  return margin;
}

MsSelection ms_select(const MsPair& pair) {
  check_pair(pair);
  const std::size_t n = pair.top.size();
  ROPUF_REQUIRE(n <= 20, "exhaustive MS search limited to 20 stages");

  MsSelection best;
  double best_abs = -1.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    BitVec config(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) config.set(i, true);
    }
    const double margin = ms_margin(pair, config);
    if (std::fabs(margin) > best_abs) {
      best_abs = std::fabs(margin);
      best.config = config;
      best.margin = margin;
    }
  }
  best.bit = best.margin > 0.0;
  return best;
}

MsSelection ms_select_greedy(const MsPair& pair) {
  check_pair(pair);
  const std::size_t n = pair.top.size();

  // Try both target signs; per stage pick the option that pushes furthest
  // toward the target, then keep the better direction.
  MsSelection best;
  double best_abs = -1.0;
  for (const bool positive : {true, false}) {
    BitVec config(n);
    double margin = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta_a = pair.top[i].option_a_ps - pair.bottom[i].option_a_ps;
      const double delta_b = pair.top[i].option_b_ps - pair.bottom[i].option_b_ps;
      const bool use_b = positive ? delta_b > delta_a : delta_b < delta_a;
      config.set(i, use_b);
      margin += use_b ? delta_b : delta_a;
    }
    if (std::fabs(margin) > best_abs) {
      best_abs = std::fabs(margin);
      best.config = config;
      best.margin = margin;
    }
  }
  best.bit = best.margin > 0.0;
  return best;
}

std::vector<MsPair> ms_pairs_from_units(const std::vector<double>& unit_values,
                                        std::size_t stages, std::size_t pair_count) {
  ROPUF_REQUIRE(stages > 0 && pair_count > 0, "degenerate MS layout");
  ROPUF_REQUIRE(unit_values.size() >= 4 * stages * pair_count,
                "not enough unit values for the MS layout");
  std::vector<MsPair> pairs;
  pairs.reserve(pair_count);
  std::size_t next = 0;
  for (std::size_t p = 0; p < pair_count; ++p) {
    MsPair pair;
    pair.top.resize(stages);
    pair.bottom.resize(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      pair.top[s] = MsStage{unit_values[next], unit_values[next + 1]};
      next += 2;
    }
    for (std::size_t s = 0; s < stages; ++s) {
      pair.bottom[s] = MsStage{unit_values[next], unit_values[next + 1]};
      next += 2;
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace ropuf::puf

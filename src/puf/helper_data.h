// Public per-pair helper data stored next to the configuration vectors.
//
// Two fields, both public by construction (they leak no more than the
// configuration vectors themselves):
//
//  * offset_ps — when distillation is on, the systematic (fleet-correlated)
//    component of the pair's comparison, which the field readout subtracts
//    before deciding the bit (see DESIGN.md);
//  * masked — the dark-bit mask: pairs whose units stayed faulty after the
//    hardened readout's retry budget are masked out at enrollment. Masked
//    pairs contribute a fixed 0 bit on every readout (enrollment reference
//    and field response agree by construction), so a faulty pair degrades
//    capacity instead of corrupting the key (docs/fault_model.md).
#pragma once

namespace ropuf::puf {

struct PairHelperData {
  double offset_ps = 0.0;
  bool masked = false;
};

}  // namespace ropuf::puf

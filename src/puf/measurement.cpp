#include "puf/measurement.h"

#include "common/error.h"

namespace ropuf::puf {

std::vector<double> measure_unit_ddiffs(const sil::Chip& chip,
                                        const sil::OperatingPoint& op,
                                        const UnitMeasurementSpec& spec, Rng& rng,
                                        sil::FaultInjector* injector) {
  ROPUF_REQUIRE(spec.noise_sigma_ps >= 0.0, "negative measurement noise");
  std::vector<double> values(chip.unit_count());
  for (std::size_t i = 0; i < chip.unit_count(); ++i) {
    values[i] = chip.unit_ddiff_ps(i, op) + rng.gaussian(0.0, spec.noise_sigma_ps);
    if (injector != nullptr) {
      const auto outcome = injector->apply(i, values[i]);
      if (outcome.dropped) {
        throw MeasurementFault(FaultKind::kDroppedRead,
                               "no count captured for unit " + std::to_string(i));
      }
      values[i] = outcome.value_ps;
    }
  }
  return values;
}

}  // namespace ropuf::puf

// Hardened readout: median-of-k with MAD outlier rejection plus bounded
// retries with escalating gate time.
//
// The plain measurement path (ro::FrequencyCounter, puf::measure_unit_ddiffs)
// assumes every gated count succeeds and every error is Gaussian. Under the
// fault model of silicon/faults.h that assumption breaks four ways, and each
// gets a specific counter-measure here:
//
//  * dropped reads     — the sample simply goes missing; the k-sample batch
//                        tolerates up to k - min_valid losses, and a whole
//                        lost batch is retried with a longer gate;
//  * transient glitches — heavy-tailed outliers; rejected when farther than
//                        `mad_sigma` robust sigmas from the batch median
//                        (median/MAD stay finite under Cauchy noise, where
//                        mean/stddev do not);
//  * stuck channels    — a latched counter returns the identical value every
//                        time. Real reads always carry jitter + a random
//                        quantization phase, so an all-identical batch is a
//                        fault signature, not a plausible measurement;
//  * brown-out runs    — a slowdown common to consecutive reads; survives
//                        the batch median but cancels in the pair comparison
//                        exactly like the calibration residual does.
//
// When the retry budget is exhausted the functions throw
// MeasurementFault(kRetryExhausted); callers translate that into dark-bit
// masking (chip_puf) or a zeroed unit (dataset path), never a crash.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "puf/measurement.h"
#include "ro/delay_extractor.h"
#include "ro/frequency_counter.h"

namespace ropuf::puf {

/// Knobs of the hardened readout.
struct RetryPolicy {
  int samples_per_read = 5;     ///< k of the median-of-k batch
  double mad_sigma = 6.0;       ///< rejection threshold in robust sigmas
  std::size_t min_valid = 3;    ///< surviving samples needed to accept a batch
  int max_attempts = 3;         ///< read attempts before giving up
  double gate_escalation = 2.0; ///< gate-time multiplier added per attempt
};

/// Campaign counters accumulated by the robust readout (for reporting).
struct ReadStats {
  std::uint64_t batches = 0;            ///< robust reads attempted
  std::uint64_t samples = 0;            ///< raw gated counts taken
  std::uint64_t dropped = 0;            ///< samples lost to dropped reads
  std::uint64_t rejected_outliers = 0;  ///< samples rejected by the MAD screen
  std::uint64_t stuck_batches = 0;      ///< batches with the stuck signature
  std::uint64_t retries = 0;            ///< batches that needed another attempt
  std::uint64_t failures = 0;           ///< reads that exhausted the budget
};

/// Median of a sample set (by copy; the argument order is not preserved).
double median(std::vector<double> values);

/// Median absolute deviation about `center`.
double median_abs_deviation(const std::vector<double>& values, double center);

/// One hardened path-delay readout of `ro` under `config`: k samples, MAD
/// rejection, retry with escalated gate time. Throws
/// MeasurementFault(kRetryExhausted) when the budget is spent; any other
/// ropuf::Error (contract violation) propagates untouched.
double robust_path_delay_ps(const ro::FrequencyCounter& counter,
                            const ro::ConfigurableRo& ro, const BitVec& config,
                            const sil::OperatingPoint& op, Rng& rng,
                            const RetryPolicy& policy, ReadStats* stats = nullptr);

/// Leave-one-out extraction (ro::DelayExtractor semantics) with every
/// configuration read hardened. Throws MeasurementFault(kRetryExhausted)
/// when any configuration's read budget is spent.
ro::ExtractionResult robust_extract_leave_one_out_with_base(
    const ro::FrequencyCounter& counter, const ro::ConfigurableRo& ro,
    const sil::OperatingPoint& op, Rng& rng, const RetryPolicy& policy,
    ReadStats* stats = nullptr);

/// Hardened unit-level readout campaign (the dataset path): per unit,
/// median-of-k with MAD rejection over measure_unit fault-injected reads.
/// Units whose retry budget is exhausted are reported in `failed_units` and
/// read back as 0.0 (a dark unit) instead of throwing.
struct RobustUnitReadout {
  std::vector<double> values;
  std::vector<bool> failed;  ///< per unit: retry budget exhausted
  std::size_t failed_count = 0;
  ReadStats stats;
};
RobustUnitReadout robust_unit_ddiffs(const sil::Chip& chip, const sil::OperatingPoint& op,
                                     const UnitMeasurementSpec& spec, Rng& rng,
                                     sil::FaultInjector& injector,
                                     const RetryPolicy& policy);

}  // namespace ropuf::puf

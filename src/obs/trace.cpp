#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "common/error.h"
#include "obs/metrics.h"

namespace ropuf::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

constexpr std::size_t kDefaultCapacity = 65536;

}  // namespace

bool tracing_enabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

TraceRecorder::TraceRecorder()
    : capacity_(kDefaultCapacity), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  ROPUF_REQUIRE(capacity >= 1, "trace capacity must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  // Re-linearize the ring, keeping the newest events that still fit.
  const std::size_t size = ring_.size();
  const std::size_t keep = std::min(size, capacity);
  std::vector<TraceEvent> kept;
  kept.reserve(keep);
  for (std::size_t i = size - keep; i < size; ++i) {
    kept.push_back(std::move(ring_[(head_ + i) % size]));
  }
  dropped_ += size - keep;
  capacity_ = capacity;
  ring_ = std::move(kept);
  head_ = 0;
}

std::size_t TraceRecorder::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceRecorder::record(std::string name, double ts_us, double dur_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = this_thread_ordinal();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    // Full: overwrite the oldest slot and advance the head.
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

double TraceRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

TraceSpan::TraceSpan(const char* name) : name_(name), armed_(tracing_enabled()) {
  if (armed_) start_us_ = TraceRecorder::instance().now_us();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  TraceRecorder& recorder = TraceRecorder::instance();
  const double end_us = recorder.now_us();
  recorder.record(name_, start_us_, end_us - start_us_);
}

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\n  \"traceEvents\": [";
  char buffer[160];
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    // Span names are library identifiers ([a-z0-9._-]); no JSON escaping is
    // needed beyond what this catalogue guarantees.
    out += "    {\"name\": \"" + event.name + "\", \"cat\": \"ropuf\", \"ph\": \"X\", ";
    std::snprintf(buffer, sizeof(buffer),
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %" PRIu32 "}",
                  event.ts_us, event.dur_us, event.tid);
    out += buffer;
  }
  out += first ? "],\n  \"displayTimeUnit\": \"ms\"\n}\n"
               : "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace ropuf::obs

// Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.
//
// The library's data path has a hard determinism contract (bit-identical
// results at any thread count; see common/parallel.h), so instrumentation
// must be observational only: it may count what happened, but it must never
// perturb an RNG stream, a reduction order, or a branch on the data path.
// The registry is built around that constraint:
//
//  * Every instrument is write-only from the hot path. A Counter::add is one
//    relaxed fetch_add on a thread-striped shard (no lock, no false sharing);
//    when metrics are disabled (the default) it is a single relaxed load.
//  * Shards are merged deterministically: counters and histogram buckets are
//    exact integer sums, so the merged value depends only on *what* was
//    counted, never on which thread counted it or in what order. Snapshots
//    are name-ordered.
//  * Gauges are last-write-wins and therefore only meaningful when set from
//    serial sections (the pool worker count, configuration values). They are
//    exported in JSON but deliberately excluded from the deterministic
//    summary table (obs/export.h).
//
// Metric naming follows "layer.metric" (e.g. "fault.reads",
// "parallel.regions", "puf.dark_bits_masked"); the full catalogue lives in
// docs/observability.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ropuf::obs {

/// Process-wide enable switch. Off by default: every instrumentation call
/// then costs one relaxed atomic load. The CLI enables it for --metrics-out
/// and the stats command; benches enable it to embed snapshots.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Number of stripes each instrument is sharded over. Threads map onto
/// stripes by a small per-thread ordinal, so concurrent writers on different
/// threads rarely share a cache line.
inline constexpr std::size_t kShardCount = 16;

/// Small dense per-thread ordinal (0, 1, 2, ... in first-use order). Shared
/// by the metric shard mapping and the trace recorder's tid field.
std::uint32_t this_thread_ordinal();

/// Monotonic counter. add() is shard-local; value() sums the shards in index
/// order — an exact integer sum, hence deterministic for a deterministic set
/// of increments regardless of thread interleaving.
class Counter {
 public:
  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShardCount];
};

/// Last-write-wins scalar. Only set from serial sections; see header note.
class Gauge {
 public:
  void set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool ever_set() const { return set_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram. Bucket semantics (documented and tested):
/// with upper bounds b_0 < b_1 < ... < b_{k-1}, bucket i counts values v
/// with b_{i-1} <= v < b_i (lower bound closed, upper bound open; bucket 0
/// is (-inf, b_0)), and a final overflow bucket counts v >= b_{k-1}.
/// Bucket counts merge exactly like counters; sum() is a floating-point
/// accumulation and is reported for convenience only.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts, length upper_bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Shard shards_[kShardCount];
};

/// The default microsecond latency buckets (roughly logarithmic, 1 us to
/// 10 s) used by every *_us histogram in the library.
const std::vector<double>& default_latency_bounds_us();

/// Records the scope's wall-clock duration (microseconds) into a histogram.
/// When metrics are disabled at construction no clock is read at all.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram);
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency();

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool armed_;
};

/// Name-ordered, merged view of every registered instrument.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size()+1, last = overflow
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Process-wide instrument registry. Registration takes a mutex once per
/// (name, call site); the returned references are stable for the process
/// lifetime, so hot paths cache them in function-local statics.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is consulted only when `name` is first registered.
  Histogram& histogram(const std::string& name, const std::vector<double>& upper_bounds);
  /// Histogram with default_latency_bounds_us().
  Histogram& latency_histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (registrations survive). Not synchronized
  /// against concurrent writers — call between parallel regions (tests do).
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ropuf::obs

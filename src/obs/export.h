// Serialization of the metrics registry: JSON for machines, a table for
// humans.
//
// The JSON schema ("ropuf.metrics.v1") carries everything — counters,
// gauges, histogram bucket vectors with their bounds, counts and sums. The
// summary table is deliberately the *deterministic projection* of the
// registry: counter values and histogram record counts only. Gauges
// (machine-dependent: pool worker count) and latency bucket contents
// (wall-clock-dependent) are JSON-only, which is what lets the `ropuf_cli
// stats` output be golden-file tested byte for byte. See
// docs/observability.md for the metric catalogue and these semantics.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace ropuf::obs {

/// Renders a snapshot as the "ropuf.metrics.v1" JSON document. Keys are
/// name-sorted, so equal snapshots serialize identically.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Human-readable summary: one aligned row per counter (value) and per
/// histogram (record count). Scheduling- and machine-invariant by design.
std::string metrics_summary_table(const MetricsSnapshot& snapshot);

/// Writes `content` to `path`, throwing ropuf::Error when the file cannot
/// be opened or the write fails (never silently ignores an unwritable path).
void write_text_file(const std::string& path, const std::string& content);

}  // namespace ropuf::obs

#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace ropuf::obs {
namespace {

std::string format_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string format_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"ropuf.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + format_u64(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + format_double(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"upper_bounds\": [";
    for (std::size_t i = 0; i < data.upper_bounds.size(); ++i) {
      if (i != 0) out += ", ";
      out += format_double(data.upper_bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += format_u64(data.counts[i]);
    }
    out += "], \"count\": " + format_u64(data.count);
    out += ", \"sum\": " + format_double(data.sum) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string metrics_summary_table(const MetricsSnapshot& snapshot) {
  // Column width fits the longest name so the table stays aligned whatever
  // the instrumented run registered.
  std::size_t width = 24;
  for (const auto& entry : snapshot.counters) width = std::max(width, entry.first.size());
  for (const auto& entry : snapshot.histograms) width = std::max(width, entry.first.size());

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s  %s\n", static_cast<int>(width), "counter",
                "value");
  out += line;
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-*s  %" PRIu64 "\n", static_cast<int>(width),
                  name.c_str(), value);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-*s  %s\n", static_cast<int>(width), "histogram",
                "records");
  out += line;
  for (const auto& [name, data] : snapshot.histograms) {
    std::snprintf(line, sizeof(line), "%-*s  %" PRIu64 "\n", static_cast<int>(width),
                  name.c_str(), data.count);
    out += line;
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + path);
  file << content;
  file.flush();
  ROPUF_REQUIRE(file.good(), "write failed for output file " + path);
}

}  // namespace ropuf::obs

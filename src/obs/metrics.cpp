#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace ropuf::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<std::uint32_t> g_next_ordinal{0};

}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t this_thread_ordinal() {
  thread_local const std::uint32_t ordinal =
      g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void Counter::add(std::uint64_t delta) {
  if (!metrics_enabled()) return;
  shards_[this_thread_ordinal() % kShardCount].value.fetch_add(
      delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
}

void Gauge::set(double value) {
  if (!metrics_enabled()) return;
  value_.store(value, std::memory_order_relaxed);
  set_.store(true, std::memory_order_relaxed);
}

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  set_.store(false, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  ROPUF_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    ROPUF_REQUIRE(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::record(double value) {
  if (!metrics_enabled()) return;
  // First bound strictly greater than `value`: bucket i holds
  // [bounds[i-1], bounds[i]), the overflow bucket holds v >= bounds.back().
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Shard& shard = shards_[this_thread_ordinal() % kShardCount];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  double expected = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      1.0,     2.5,     5.0,     10.0,     25.0,     50.0,      100.0,
      250.0,   500.0,   1000.0,  2500.0,   5000.0,   10000.0,   25000.0,
      50000.0, 100000.0, 250000.0, 500000.0, 1000000.0, 10000000.0};
  return bounds;
}

ScopedLatency::ScopedLatency(Histogram& histogram)
    : histogram_(&histogram), armed_(metrics_enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

ScopedLatency::~ScopedLatency() {
  if (!armed_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  histogram_->record(
      std::chrono::duration<double, std::micro>(elapsed).count());
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return *slot;
}

Histogram& Registry::latency_histogram(const std::string& name) {
  return histogram(name, default_latency_bounds_us());
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) {
    if (gauge->ever_set()) snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.upper_bounds = histogram->upper_bounds();
    data.counts = histogram->bucket_counts();
    for (const std::uint64_t c : data.counts) data.count += c;
    data.sum = histogram->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

}  // namespace ropuf::obs

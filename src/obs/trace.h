// RAII trace spans with a bounded ring-buffer recorder and Chrome
// trace_event JSON export.
//
// A TraceSpan brackets one phase of work (a CLI command, a device
// enrollment, one dispatched parallel region); on destruction it pushes a
// complete event — name, start timestamp, duration, thread id — into the
// process-wide TraceRecorder. The recorder is a fixed-capacity ring: when
// full it drops the *oldest* events, so a long campaign always retains its
// tail and memory stays bounded.
//
// Tracing is off by default; a disabled span reads one relaxed atomic and
// touches no clock, so instrumented hot layers cost nothing in production
// runs. The exported JSON is the Chrome trace_event format (complete "X"
// events with ph/ts/dur/pid/tid fields) and loads directly into
// chrome://tracing or https://ui.perfetto.dev. See docs/observability.md.
//
// Timestamps are wall-clock and therefore not deterministic; traces are
// observability output only and never feed back into the data path.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ropuf::obs {

/// Process-wide tracing switch (off by default).
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// One completed span, timestamps in microseconds since the recorder epoch.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< small per-thread ordinal (this_thread_ordinal)
};

/// Bounded ring buffer of completed spans.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Capacity in events (>= 1). Shrinking keeps the newest events.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Appends one completed event; drops the oldest when full.
  void record(std::string name, double ts_us, double dur_us);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> events() const;

  /// Spans dropped so far to honor the capacity bound.
  std::uint64_t dropped() const;

  void clear();

  /// Microseconds since the recorder's (steady-clock) epoch.
  double now_us() const;

 private:
  TraceRecorder();
  // Invariant: ring_.size() <= capacity_; while the ring is still growing
  // head_ == 0 and events are appended, once full the slot at head_ (the
  // oldest event) is overwritten and head_ advances.
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: captures the start time on construction (when tracing is
/// enabled) and records the completed event on destruction. `name` is
/// copied, so temporaries are safe.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;
  double start_us_ = 0.0;
  bool armed_;
};

/// Renders events as Chrome trace_event JSON: a {"traceEvents": [...]}
/// object of complete ("ph": "X") events carrying name/cat/ts/dur/pid/tid.
std::string trace_to_chrome_json(const std::vector<TraceEvent>& events);

}  // namespace ropuf::obs

#include "crypto/fuzzy_extractor.h"

#include "common/error.h"

namespace ropuf::crypto {
namespace {

/// Packs a bit string into bytes (bit i -> byte i/8, LSB first) for hashing.
std::vector<std::uint8_t> to_bytes(const BitVec& bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

BitVec slice(const BitVec& bits, std::size_t start, std::size_t len) {
  BitVec out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, bits.get(start + i));
  return out;
}

}  // namespace

FuzzyExtractor::FuzzyExtractor(const CyclicCode* code) : code_(code) {
  ROPUF_REQUIRE(code_ != nullptr, "null code");
}

std::size_t FuzzyExtractor::block_bits() const { return code_->n(); }

double FuzzyExtractor::rate() const {
  return static_cast<double>(code_->k()) / static_cast<double>(code_->n());
}

double FuzzyExtractor::entropy_loss_bits_per_block() const {
  return static_cast<double>(code_->n() - code_->k());
}

double FuzzyExtractor::residual_key_entropy_bits(double response_min_entropy_per_bit,
                                                 std::size_t blocks) const {
  ROPUF_REQUIRE(response_min_entropy_per_bit >= 0.0 &&
                    response_min_entropy_per_bit <= 1.0,
                "per-bit min-entropy must be in [0, 1]");
  const double per_block =
      response_min_entropy_per_bit * static_cast<double>(code_->n()) -
      entropy_loss_bits_per_block();
  return static_cast<double>(blocks) * (per_block > 0.0 ? per_block : 0.0);
}

FuzzyEnrollment FuzzyExtractor::generate(const BitVec& response, Rng& rng) const {
  const std::size_t blocks = response.size() / code_->n();
  ROPUF_REQUIRE(blocks >= 1, "response shorter than one code block");

  FuzzyEnrollment enrollment;
  BitVec all_messages;
  for (std::size_t b = 0; b < blocks; ++b) {
    BitVec message(code_->k());
    for (std::size_t i = 0; i < message.size(); ++i) message.set(i, rng.flip());
    const BitVec codeword = code_->encode(message);
    enrollment.helper.push_back(slice(response, b * code_->n(), code_->n()) ^ codeword);
    all_messages.append(message);
  }
  enrollment.key = sha256(to_bytes(all_messages));
  return enrollment;
}

std::optional<Sha256Digest> FuzzyExtractor::reproduce(
    const BitVec& response, const std::vector<BitVec>& helper) const {
  ROPUF_REQUIRE(!helper.empty(), "empty helper data");
  ROPUF_REQUIRE(response.size() >= helper.size() * code_->n(),
                "response shorter than the enrolled block count");

  BitVec all_messages;
  for (std::size_t b = 0; b < helper.size(); ++b) {
    const BitVec noisy_codeword = slice(response, b * code_->n(), code_->n()) ^ helper[b];
    const CyclicCode::DecodeResult decoded = code_->decode(noisy_codeword);
    if (!decoded.ok) return std::nullopt;
    all_messages.append(decoded.message);
  }
  return sha256(to_bytes(all_messages));
}

}  // namespace ropuf::crypto

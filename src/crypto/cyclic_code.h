// Binary cyclic block codes with syndrome-table decoding.
//
// The error-correction substrate behind PUF key generation [10-12], which
// the paper's configurable selection claims to make unnecessary ("this can
// eliminate the cost of ECC circuitry", Section III.C). One class covers
// the standard small codes used with RO PUFs, each defined by its length n
// and generator polynomial:
//
//   repetition(n)    g(x) = 1 + x + ... + x^(n-1)      t = (n-1)/2
//   Hamming(7,4)     g(x) = 1 + x + x^3                t = 1
//   BCH(15,7)        g(x) = 1 + x^4 + x^6 + x^7 + x^8  t = 2
//
// Encoding is systematic (message bits first, then parity = remainder of
// x^(n-k) m(x) mod g(x)); decoding builds the full syndrome -> minimum-
// weight-error table at construction, so decode is a table lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/bitvec.h"

namespace ropuf::crypto {

/// A binary cyclic [n, k] code with bounded-distance decoding up to t errors.
class CyclicCode {
 public:
  /// `generator` holds g(x) coefficients as bits (bit i = coefficient of
  /// x^i); its degree determines n - k. `correctable` is the code's t; the
  /// constructor verifies that all error patterns of weight <= t have
  /// distinct syndromes (i.e. t is actually achievable) and throws if not.
  CyclicCode(std::size_t n, std::uint32_t generator, std::size_t correctable);

  /// Standard instances.
  static CyclicCode repetition(std::size_t n);  ///< odd n, rate 1/n
  static CyclicCode hamming_7_4();
  static CyclicCode bch_15_7();
  /// The binary Golay code: [23,12], t = 3, *perfect* (every 11-bit
  /// syndrome corresponds to exactly one weight <= 3 error pattern).
  static CyclicCode golay_23_12();

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  std::size_t t() const { return t_; }

  /// Systematic encode of a k-bit message.
  BitVec encode(const BitVec& message) const;

  struct DecodeResult {
    BitVec message;           ///< recovered k-bit message
    BitVec codeword;          ///< corrected n-bit codeword
    std::size_t corrected = 0;  ///< number of bit errors removed
    bool ok = false;          ///< false when the syndrome is outside the table
  };

  /// Bounded-distance decode of an n-bit word.
  DecodeResult decode(const BitVec& received) const;

 private:
  std::uint32_t polynomial_remainder(std::uint64_t value_bits) const;

  std::size_t n_;
  std::size_t k_;
  std::size_t t_;
  std::uint32_t generator_;
  std::size_t generator_degree_;
  std::unordered_map<std::uint32_t, std::uint64_t> syndrome_to_error_;
};

}  // namespace ropuf::crypto

// HMAC-SHA256 (RFC 2104 / FIPS 198-1) over the self-contained SHA-256.
//
// The protocol-v2 authentication primitive: a prover that recovered its
// fuzzy-extractor key proves possession by MACing a server nonce, so the
// wire never carries raw response bits and a replayed transcript fails
// (docs/protocol_v2.md). Keys longer than the 64-byte SHA-256 block are
// hashed first, exactly as the RFC prescribes; tests pin the RFC 4231
// vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace ropuf::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_size,
                         const std::uint8_t* data, std::size_t data_size);

/// Convenience overloads.
Sha256Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& data);
Sha256Digest hmac_sha256(const std::string& key, const std::string& data);

}  // namespace ropuf::crypto

#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace ropuf::crypto {
namespace {

/// SHA-256 processes 64-byte blocks; HMAC pads/ipads at that width.
constexpr std::size_t kBlockBytes = 64;

}  // namespace

Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_size,
                         const std::uint8_t* data, std::size_t data_size) {
  // K' = key hashed down when longer than a block, zero-padded to the block.
  std::array<std::uint8_t, kBlockBytes> padded{};
  if (key_size > kBlockBytes) {
    const Sha256Digest reduced = sha256(key, key_size);
    std::memcpy(padded.data(), reduced.data(), reduced.size());
  } else if (key_size > 0) {
    std::memcpy(padded.data(), key, key_size);
  }

  // inner = H((K' ^ ipad) || data)
  std::vector<std::uint8_t> inner;
  inner.reserve(kBlockBytes + data_size);
  for (std::size_t i = 0; i < kBlockBytes; ++i) {
    inner.push_back(static_cast<std::uint8_t>(padded[i] ^ 0x36u));
  }
  inner.insert(inner.end(), data, data + data_size);
  const Sha256Digest inner_digest = sha256(inner.data(), inner.size());

  // outer = H((K' ^ opad) || inner)
  std::array<std::uint8_t, kBlockBytes + 32> outer{};
  for (std::size_t i = 0; i < kBlockBytes; ++i) {
    outer[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5cu);
  }
  std::memcpy(outer.data() + kBlockBytes, inner_digest.data(),
              inner_digest.size());
  return sha256(outer.data(), outer.size());
}

Sha256Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& data) {
  return hmac_sha256(key.data(), key.size(), data.data(), data.size());
}

Sha256Digest hmac_sha256(const std::string& key, const std::string& data) {
  return hmac_sha256(reinterpret_cast<const std::uint8_t*>(key.data()),
                     key.size(),
                     reinterpret_cast<const std::uint8_t*>(data.data()),
                     data.size());
}

}  // namespace ropuf::crypto

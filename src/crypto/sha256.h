// SHA-256 (FIPS 180-4), self-contained.
//
// Used by the fuzzy extractor's key-derivation step. PUF responses are
// noisy and mildly biased, so the secret passed to the application is the
// hash of the error-corrected witness, never the raw response.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ropuf::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// One-shot SHA-256 of a byte buffer.
Sha256Digest sha256(const std::uint8_t* data, std::size_t size);

/// Convenience overloads.
Sha256Digest sha256(const std::vector<std::uint8_t>& data);
Sha256Digest sha256(const std::string& data);

/// Lowercase hex rendering of a digest (tests, logs).
std::string to_hex(const Sha256Digest& digest);

}  // namespace ropuf::crypto

#include "crypto/cyclic_code.h"

#include <bit>

#include "common/error.h"

namespace ropuf::crypto {
namespace {

/// Packs a BitVec (bit i = coefficient of x^i) into an integer.
std::uint64_t pack(const BitVec& bits) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) value |= std::uint64_t{1} << i;
  }
  return value;
}

BitVec unpack(std::uint64_t value, std::size_t size) {
  BitVec bits(size);
  for (std::size_t i = 0; i < size; ++i) bits.set(i, (value >> i) & 1u);
  return bits;
}

}  // namespace

CyclicCode::CyclicCode(std::size_t n, std::uint32_t generator, std::size_t correctable)
    : n_(n), t_(correctable), generator_(generator) {
  ROPUF_REQUIRE(n >= 3 && n <= 63, "code length out of supported range");
  ROPUF_REQUIRE(generator != 0, "zero generator polynomial");
  generator_degree_ = static_cast<std::size_t>(std::bit_width(generator) - 1);
  ROPUF_REQUIRE(generator_degree_ > 0 && generator_degree_ < n, "degenerate generator degree");
  k_ = n_ - generator_degree_;

  // Build the syndrome table over all error patterns of weight <= t,
  // verifying syndrome uniqueness (this certifies the claimed t).
  syndrome_to_error_[0] = 0;
  std::vector<std::uint64_t> current{0};
  for (std::size_t weight = 1; weight <= t_; ++weight) {
    std::vector<std::uint64_t> next;
    for (const std::uint64_t base : current) {
      const std::size_t highest =
          base == 0 ? 0 : static_cast<std::size_t>(std::bit_width(base));
      for (std::size_t pos = highest; pos < n_; ++pos) {
        const std::uint64_t error = base | (std::uint64_t{1} << pos);
        const std::uint32_t syndrome = polynomial_remainder(error);
        const auto [it, inserted] = syndrome_to_error_.emplace(syndrome, error);
        ROPUF_REQUIRE(inserted,
                      "syndrome collision: code cannot correct the claimed t errors");
        next.push_back(error);
      }
    }
    current = std::move(next);
  }
}

CyclicCode CyclicCode::repetition(std::size_t n) {
  // Above n = 15 the syndrome table (all error patterns of weight <= t)
  // gets large for no practical gain in PUF use.
  ROPUF_REQUIRE(n >= 3 && n % 2 == 1 && n <= 15, "repetition length must be odd, 3..15");
  // g(x) = 1 + x + ... + x^(n-1).
  std::uint32_t generator = 0;
  for (std::size_t i = 0; i < n; ++i) generator |= std::uint32_t{1} << i;
  return CyclicCode(n, generator, (n - 1) / 2);
}

CyclicCode CyclicCode::hamming_7_4() { return CyclicCode(7, 0b1011, 1); }

CyclicCode CyclicCode::bch_15_7() { return CyclicCode(15, 0b111010001, 2); }

CyclicCode CyclicCode::golay_23_12() {
  // g(x) = x^11 + x^10 + x^6 + x^5 + x^4 + x^2 + 1.
  return CyclicCode(23, 0b110001110101, 3);
}

std::uint32_t CyclicCode::polynomial_remainder(std::uint64_t value_bits) const {
  // Long division of value(x) by g(x) over GF(2).
  std::uint64_t rem = value_bits;
  for (std::size_t pos = n_; pos-- > generator_degree_;) {
    if (rem & (std::uint64_t{1} << pos)) {
      rem ^= static_cast<std::uint64_t>(generator_) << (pos - generator_degree_);
    }
  }
  return static_cast<std::uint32_t>(rem);
}

BitVec CyclicCode::encode(const BitVec& message) const {
  ROPUF_REQUIRE(message.size() == k_, "message must have k bits");
  // Systematic: codeword(x) = x^(n-k) m(x) + (x^(n-k) m(x) mod g(x)).
  const std::uint64_t shifted = pack(message) << generator_degree_;
  const std::uint32_t parity = polynomial_remainder(shifted);
  return unpack(shifted | parity, n_);
}

CyclicCode::DecodeResult CyclicCode::decode(const BitVec& received) const {
  ROPUF_REQUIRE(received.size() == n_, "received word must have n bits");
  DecodeResult result;
  const std::uint64_t word = pack(received);
  const std::uint32_t syndrome = polynomial_remainder(word);
  const auto it = syndrome_to_error_.find(syndrome);
  if (it == syndrome_to_error_.end()) {
    result.ok = false;
    return result;
  }
  const std::uint64_t corrected = word ^ it->second;
  result.ok = true;
  result.corrected = static_cast<std::size_t>(std::popcount(it->second));
  result.codeword = unpack(corrected, n_);
  result.message = unpack(corrected >> generator_degree_, k_);
  return result;
}

}  // namespace ropuf::crypto

// Code-offset fuzzy extractor (Dodis-Reyzin-Smith [11] as cited by the
// paper), turning a noisy PUF response into a stable key.
//
// Enrollment draws a random message per n-bit response block, encodes it,
// and publishes helper_i = response_i XOR codeword_i; the key is
// SHA-256(all messages). Reproduction XORs the helper with the re-measured
// response and decodes: as long as every block flipped at most t bits, the
// original messages — hence the same key — come back.
//
// This module exists as the paper's comparator: the traditional RO PUF
// needs this machinery (plus its helper-data storage and decoder hardware)
// to reach the reliability the configurable RO PUF achieves bare
// (bench_ablation_ecc).
#pragma once

#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "crypto/cyclic_code.h"
#include "crypto/sha256.h"

namespace ropuf::crypto {

/// Public helper data plus the derived secret.
struct FuzzyEnrollment {
  std::vector<BitVec> helper;  ///< one n-bit offset per response block
  Sha256Digest key{};
};

/// Block-wise code-offset construction over a fixed code.
class FuzzyExtractor {
 public:
  /// `code` must outlive the extractor.
  explicit FuzzyExtractor(const CyclicCode* code);

  /// Number of response bits consumed per key (full blocks only).
  std::size_t block_bits() const;

  /// Enrolls a response of >= 1 full block (extra tail bits are ignored).
  FuzzyEnrollment generate(const BitVec& response, Rng& rng) const;

  /// Reproduces the key from a noisy response and the public helper data;
  /// nullopt when any block's syndrome falls outside the decoding sphere.
  /// (A wrong-but-decodable block yields a *different* key, which the
  /// verifier detects by comparison — the usual PUF-key failure model.)
  std::optional<Sha256Digest> reproduce(const BitVec& response,
                                        const std::vector<BitVec>& helper) const;

  /// Key bits derivable per response bit (the code rate), for cost tables.
  double rate() const;

  /// Worst-case min-entropy loss of the secure sketch, in bits per block:
  /// publishing helper = response XOR codeword leaks at most n - k bits of
  /// the response (Dodis-Reyzin-Smith bound). What remains per block is
  /// max(0, H_min(response block) - (n - k)).
  double entropy_loss_bits_per_block() const;

  /// Residual min-entropy of the derived key material given the helper,
  /// assuming `response_min_entropy_per_bit` bits of min-entropy per
  /// response bit and `blocks` enrolled blocks.
  double residual_key_entropy_bits(double response_min_entropy_per_bit,
                                   std::size_t blocks) const;

 private:
  const CyclicCode* code_;
};

}  // namespace ropuf::crypto

#include "attack/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ropuf::attack {
namespace {

double sigmoid(double x) {
  // Guard the exp against overflow; the result saturates anyway.
  if (x > 35.0) return 1.0;
  if (x < -35.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

void LogisticModel::fit(const Dataset& data, const FitOptions& options, Rng& rng) {
  ROPUF_REQUIRE(!data.features.empty(), "empty training set");
  ROPUF_REQUIRE(data.features.size() == data.labels.size(), "features/labels mismatch");
  const std::size_t dim = data.features.front().size();
  ROPUF_REQUIRE(dim > 0, "empty feature vectors");
  for (const auto& x : data.features) {
    ROPUF_REQUIRE(x.size() == dim, "ragged feature vectors");
  }
  ROPUF_REQUIRE(options.epochs > 0 && options.learning_rate > 0.0, "bad fit options");
  ROPUF_REQUIRE(options.batch_size >= 1, "batch size must be >= 1");

  weights_.assign(dim + 1, 0.0);
  std::vector<std::size_t> order(data.features.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> errors(options.batch_size, 0.0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    const double step =
        options.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));

    if (options.batch_size == 1) {
      // Per-sample SGD, unchanged from the original sequential trainer.
      for (const std::size_t idx : order) {
        const auto& x = data.features[idx];
        const double y = data.labels[idx] ? 1.0 : 0.0;
        double z = weights_[dim];
        for (std::size_t d = 0; d < dim; ++d) z += weights_[d] * x[d];
        const double error = sigmoid(z) - y;
        for (std::size_t d = 0; d < dim; ++d) {
          weights_[d] -= step * (error * x[d] + options.l2 * weights_[d]);
        }
        weights_[dim] -= step * error;
      }
      continue;
    }

    // Mini-batch steps. The forward pass parallelizes over samples (weights
    // are fixed within a batch) and the gradient over dimensions; both write
    // index-addressed slots and reduce over samples in batch order, so the
    // result is independent of the thread count.
    for (std::size_t start = 0; start < order.size(); start += options.batch_size) {
      const std::size_t batch = std::min(options.batch_size, order.size() - start);
      parallel_for(batch, options.threads, [&](std::size_t k) {
        const auto& x = data.features[order[start + k]];
        const double y = data.labels[order[start + k]] ? 1.0 : 0.0;
        double z = weights_[dim];
        for (std::size_t d = 0; d < dim; ++d) z += weights_[d] * x[d];
        errors[k] = sigmoid(z) - y;
      });
      const double scale = step / static_cast<double>(batch);
      parallel_for_chunked(
          dim, /*grain=*/256, options.threads,
          [&](std::size_t d_begin, std::size_t d_end) {
            for (std::size_t d = d_begin; d < d_end; ++d) {
              double grad = 0.0;
              for (std::size_t k = 0; k < batch; ++k) {
                grad += errors[k] * data.features[order[start + k]][d];
              }
              weights_[d] -= scale * grad + step * options.l2 * weights_[d];
            }
          });
      double bias_grad = 0.0;
      for (std::size_t k = 0; k < batch; ++k) bias_grad += errors[k];
      weights_[dim] -= scale * bias_grad;
    }
  }
}

double LogisticModel::probability(const std::vector<double>& features) const {
  ROPUF_REQUIRE(!weights_.empty(), "model not fitted");
  ROPUF_REQUIRE(features.size() + 1 == weights_.size(), "feature arity mismatch");
  double z = weights_.back();
  for (std::size_t d = 0; d < features.size(); ++d) z += weights_[d] * features[d];
  return sigmoid(z);
}

bool LogisticModel::predict(const std::vector<double>& features) const {
  return probability(features) >= 0.5;
}

double LogisticModel::accuracy(const Dataset& data) const {
  ROPUF_REQUIRE(!data.features.empty(), "empty evaluation set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.features.size(); ++i) {
    if (predict(data.features[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.features.size());
}

}  // namespace ropuf::attack

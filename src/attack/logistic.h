// Logistic-regression learner for delay-PUF modeling attacks.
//
// The classic result this library reproduces (paper Section II): a plain
// linear learner on the arbiter PUF's parity features clones the device
// from a few thousand CRPs, because the response is the sign of a linear
// function of those features. The same learner applied to the configurable
// RO PUF's challenge bits stays at coin-flip accuracy, since its challenge
// only permutes which *independent* enrolled pairs are read.
#pragma once

#include <cstddef>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace ropuf::attack {

/// A labelled training/evaluation set: one feature vector per example.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<bool> labels;
};

/// Binary logistic regression trained by mini-batch-free SGD.
class LogisticModel {
 public:
  struct FitOptions {
    int epochs = 50;
    double learning_rate = 0.05;
    double l2 = 1e-4;
    /// Examples per gradient step. 1 (the default) is plain per-sample SGD,
    /// bit-identical to the historical behavior. Larger batches average the
    /// per-sample gradients of a batch before stepping; the forward pass and
    /// the per-dimension accumulation then run across the thread budget with
    /// fixed reduction order, so a batched fit is bit-identical at any
    /// thread count (but is a different — mini-batch — optimizer).
    std::size_t batch_size = 1;
    ThreadBudget threads;  ///< used only when batch_size > 1
  };

  /// Trains on `data` (all features must share one length). Weights start
  /// at zero; examples are revisited in epochs with a decaying step.
  void fit(const Dataset& data, const FitOptions& options, Rng& rng);

  /// P(label = true) for one feature vector.
  double probability(const std::vector<double>& features) const;

  /// Hard decision at 0.5.
  bool predict(const std::vector<double>& features) const;

  /// Fraction of correctly predicted labels.
  double accuracy(const Dataset& data) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;  ///< last entry is the bias term
};

}  // namespace ropuf::attack

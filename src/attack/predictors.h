// Bit-prediction attacks against the configurable RO PUF.
//
// Two of the paper's design decisions are justified by attacker arguments,
// and this module turns both into measurable experiments:
//
//  * Section III.D requires equal popcount in Case-2 "because the one that
//    uses fewer inverters will most likely be faster, making it easier for
//    an attacker to guess the bit" — popcount_predictor quantifies exactly
//    that guessing advantage when the constraint is dropped.
//  * Section IV.A's distillation requirement exists because systematic
//    variation correlates nominally identical chips — majority_vote_predictor
//    measures how well an attacker holding other chips of the same design
//    predicts a target chip's response.
//
// All predictors use only information the respective threat model grants
// (public configurations / other chips' responses), never the target's
// measurements.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "puf/selection.h"

namespace ropuf::attack {

/// Outcome of a prediction campaign.
struct PredictionStats {
  std::size_t correct = 0;
  std::size_t total = 0;

  double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  }
};

/// Guesses each bit from the *public* configuration pair alone: "the RO
/// with more selected inverters is slower". Ties guess at random.
PredictionStats popcount_predictor(const std::vector<puf::Selection>& selections,
                                   Rng& rng);

/// Guesses each target bit by majority vote over the same bit position of
/// other chips of the same design — the systematic-correlation attack.
/// Ties guess at random.
PredictionStats majority_vote_predictor(const std::vector<BitVec>& other_chips,
                                        const BitVec& target, Rng& rng);

/// Ideal-attacker bound for calibration: guesses every bit with a coin.
PredictionStats random_predictor(const BitVec& target, Rng& rng);

}  // namespace ropuf::attack

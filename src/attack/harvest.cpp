#include "attack/harvest.h"

#include <algorithm>

#include "common/error.h"
#include "puf/crp.h"

namespace ropuf::attack {

DistanceOracleHarvester::DistanceOracleHarvester(std::uint64_t device_id,
                                                std::size_t response_bits,
                                                std::size_t pair_count,
                                                std::uint64_t seed)
    : device_id_(device_id),
      response_bits_(response_bits),
      pair_count_(pair_count),
      challenge_rng_(seed) {
  ROPUF_REQUIRE(response_bits_ > 0, "response_bits must be positive");
  ROPUF_REQUIRE(response_bits_ <= pair_count_,
                "response_bits cannot exceed the pair count");
  begin_challenge();
}

void DistanceOracleHarvester::begin_challenge() {
  challenge_ = challenge_rng_.next_u64();
  pairs_ = puf::challenge_to_pairs(challenge_, pair_count_, response_bits_);
  probe_index_ = 0;
  baseline_distance_ = 0;
}

Probe DistanceOracleHarvester::next_probe() const {
  Probe probe;
  probe.device_id = device_id_;
  probe.challenge = challenge_;
  probe.guess = BitVec(response_bits_);
  if (probe_index_ > 0) probe.guess.set(probe_index_ - 1, true);
  return probe;
}

void DistanceOracleHarvester::abandoned() {
  ++abandoned_;
  begin_challenge();
}

void DistanceOracleHarvester::answered(std::size_t distance) {
  ++admitted_;
  if (probe_index_ == 0) {
    // Baseline: the all-zeros guess's distance is the reference popcount.
    baseline_distance_ = distance;
    ++probe_index_;
    return;
  }
  // Single-bit probe j: flipping guess bit j-1 moved the distance by
  // exactly +1 (reference bit is 0) or -1 (reference bit is 1).
  const std::size_t bit_position = probe_index_ - 1;
  ROPUF_REQUIRE(distance + 1 == baseline_distance_ ||
                    distance == baseline_distance_ + 1,
                "distance oracle returned an inconsistent pair of distances; "
                "is the verifier reference drifting mid-challenge?");
  const bool bit = distance + 1 == baseline_distance_;
  harvested_.push_back(HarvestedBit{pairs_[bit_position], bit});
  ++probe_index_;
  if (probe_index_ > response_bits_) {
    ++challenges_recovered_;
    begin_challenge();
  }
}

EvasiveHarvester::EvasiveHarvester(std::uint64_t device_id,
                                   std::size_t response_bits,
                                   std::size_t pair_count, std::uint64_t seed,
                                   EvasiveOptions options)
    : core_(device_id, response_bits, pair_count, seed),
      options_(options),
      device_id_(device_id),
      response_bits_(response_bits),
      // A distinct stream from the core's challenge RNG, so wrapping (with
      // zero decoys) leaves the core's probe sequence untouched.
      decoy_rng_(seed ^ 0xdec0dec0ull) {}

void EvasiveHarvester::make_decoy() {
  decoy_.device_id = device_id_;
  decoy_.challenge = decoy_rng_.next_u64();
  decoy_.guess = BitVec(response_bits_);
  // A fair-coin guess has expected weight b/2 — the shape of a genuine
  // response, which is the whole point of the decoy.
  for (std::size_t i = 0; i < response_bits_; ++i) {
    decoy_.guess.set(i, decoy_rng_.flip());
  }
}

Probe EvasiveHarvester::next_probe() const {
  return decoy_turn() ? decoy_ : core_.next_probe();
}

void EvasiveHarvester::advance() {
  if (!decoy_turn()) {
    // Oracle probe resolved: start the decoy run (if any).
    if (options_.decoys_per_probe > 0) {
      phase_ = 1;
      make_decoy();
    }
    return;
  }
  ++decoys_sent_;
  if (phase_ >= options_.decoys_per_probe) {
    phase_ = 0;  // decoy run done, back to the oracle
  } else {
    ++phase_;
    make_decoy();
  }
}

void EvasiveHarvester::answered(std::size_t distance) {
  // A decoy's verdict distance measures a random guess against the real
  // reference — noise, deliberately not fed to the extraction.
  if (!decoy_turn()) core_.answered(distance);
  advance();
}

void EvasiveHarvester::deferred() {
  if (!decoy_turn()) core_.deferred();
  // The pending probe (either kind) is untouched: a retry re-issues it
  // byte-identically, exactly like the core harvester's contract.
}

void EvasiveHarvester::abandoned() {
  if (!decoy_turn()) core_.abandoned();
  advance();
}

Dataset DistanceOracleHarvester::training_set() const {
  Dataset data;
  data.features.reserve(harvested_.size());
  data.labels.reserve(harvested_.size());
  for (const HarvestedBit& example : harvested_) {
    data.features.push_back(pair_features(example.pair, pair_count_));
    data.labels.push_back(example.bit);
  }
  return data;
}

std::vector<double> pair_features(std::size_t pair, std::size_t pair_count) {
  ROPUF_REQUIRE(pair < pair_count, "pair index out of range");
  std::vector<double> features(pair_count, 0.0);
  features[pair] = 1.0;
  return features;
}

double clone_accuracy(const LogisticModel& model,
                      const puf::ConfigurableEnrollment& enrollment,
                      std::size_t response_bits, std::size_t challenges,
                      std::uint64_t seed) {
  ROPUF_REQUIRE(challenges > 0, "need at least one evaluation challenge");
  const std::size_t bits =
      std::min(response_bits, enrollment.layout.pair_count);
  const puf::CrpOracle oracle(&enrollment, bits);
  Rng rng(seed);
  std::size_t correct = 0;
  for (std::size_t c = 0; c < challenges; ++c) {
    const std::uint64_t challenge = rng.next_u64();
    const BitVec reference = oracle.reference(challenge);
    const std::vector<std::size_t> pairs =
        puf::challenge_to_pairs(challenge, enrollment.layout.pair_count, bits);
    for (std::size_t i = 0; i < bits; ++i) {
      const bool predicted =
          model.predict(pair_features(pairs[i], enrollment.layout.pair_count));
      if (predicted == reference.get(i)) ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(challenges * bits);
}

}  // namespace ropuf::attack

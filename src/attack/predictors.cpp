#include "attack/predictors.h"

#include "common/error.h"

namespace ropuf::attack {

PredictionStats popcount_predictor(const std::vector<puf::Selection>& selections,
                                   Rng& rng) {
  PredictionStats stats;
  for (const puf::Selection& sel : selections) {
    const std::size_t top = sel.top_config.popcount();
    const std::size_t bottom = sel.bottom_config.popcount();
    // More inverters in the loop -> more delay -> guess "top slower" (bit 1).
    const bool guess = top == bottom ? rng.flip() : top > bottom;
    if (guess == sel.bit) ++stats.correct;
    ++stats.total;
  }
  return stats;
}

PredictionStats majority_vote_predictor(const std::vector<BitVec>& other_chips,
                                        const BitVec& target, Rng& rng) {
  ROPUF_REQUIRE(!other_chips.empty(), "attacker needs at least one reference chip");
  PredictionStats stats;
  for (std::size_t i = 0; i < target.size(); ++i) {
    std::size_t ones = 0;
    for (const BitVec& chip : other_chips) {
      ROPUF_REQUIRE(chip.size() == target.size(), "response length mismatch");
      if (chip.get(i)) ++ones;
    }
    const std::size_t zeros = other_chips.size() - ones;
    const bool guess = ones == zeros ? rng.flip() : ones > zeros;
    if (guess == target.get(i)) ++stats.correct;
    ++stats.total;
  }
  return stats;
}

PredictionStats random_predictor(const BitVec& target, Rng& rng) {
  PredictionStats stats;
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (rng.flip() == target.get(i)) ++stats.correct;
    ++stats.total;
  }
  return stats;
}

}  // namespace ropuf::attack

// Distance-oracle CRP harvester: the adversary side of the admission-control
// threat model (service/admission.h, docs/attack_soak.md).
//
// The authentication verdict leaks more than accept/reject: it carries the
// exact Hamming distance between the submitted response and the enrolled
// reference (net/wire.h WireResponse). That distance is an oracle. For a
// b-bit challenge, probe the *same* challenge b+1 times:
//
//   probe 0: all-zeros guess        -> d0   (= popcount of the reference)
//   probe j: only bit j-1 set       -> d_j  (j = 1..b)
//
// then reference bit j-1 = (d0 + 1 - d_j) / 2, exactly — the reference is
// the enrollment-time bit string, so the oracle is noise-free even while
// environmental drift corrupts live prover readouts. Each extracted
// challenge therefore costs 1 *distinct* query plus b *repeat* queries,
// which is precisely the traffic shape the per-device reuse budget exists
// to throttle: with a reuse budget of r, the attacker recovers at most ~r
// reference bits no matter how patiently it spreads queries over time.
//
// What the bits buy the attacker: challenge_to_pairs() is public, so
// response bit i of challenge c is the enrolled bit of pair
// challenge_to_pairs(c)[i]. Harvested (pair, bit) examples train a
// one-hot-feature logistic model (attack/logistic.h) that clones the
// device on every challenge whose pairs were all observed — the classic
// "freely queryable CRP interface" modeling result, driven through the
// real serving stack by tools/ropuf_soak.
//
// The harvester is transport-agnostic: it emits the next probe to send and
// consumes plain (status-class, distance) observations, so the same state
// machine runs against a live AuthClient, an in-process AuthService, or a
// unit test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "attack/logistic.h"
#include "puf/schemes.h"

namespace ropuf::attack {

/// One adversarial query: a guessed response for the target device.
struct Probe {
  std::uint64_t device_id = 0;
  std::uint64_t challenge = 0;
  BitVec guess;
};

/// A recovered enrollment fact: enrolled pair `pair` compares to `bit`.
struct HarvestedBit {
  std::size_t pair = 0;
  bool bit = false;
};

/// Closed-loop extraction state machine for one target device. Call
/// next_probe(), send it, then report what came back: answered(distance)
/// for a real accept/reject verdict, deferred() for a retryable denial
/// (rate-limited, overloaded — the probe is re-issued unchanged), or
/// abandoned() for a terminal one (budget exhausted), which drops the
/// current challenge and moves to a fresh one — the adaptive move, since
/// the reuse budget and the distinct-challenge budget deplete separately.
/// Bits already extracted from an abandoned challenge are kept.
class DistanceOracleHarvester {
 public:
  /// `response_bits` is the *effective* per-challenge bit count (the
  /// verifier clamps its configured bits to the device's enrolled pair
  /// count; the attacker learns it from the first response's
  /// response_bits field or knows the protocol defaults). `seed` drives
  /// the deterministic challenge sequence.
  DistanceOracleHarvester(std::uint64_t device_id, std::size_t response_bits,
                          std::size_t pair_count, std::uint64_t seed);

  /// The probe to send next. Stable until answered()/abandoned() advances
  /// the state, so a deferred probe is re-issued byte-identically.
  Probe next_probe() const;

  /// The probe was verified and came back with this Hamming distance.
  void answered(std::size_t distance);
  /// The probe was denied retryably; the state does not advance.
  void deferred() { ++deferred_; }
  /// The probe was denied terminally for this challenge (budget spent);
  /// drop it and begin a fresh challenge.
  void abandoned();

  /// Verified probes (the attacker's admitted query count).
  std::size_t admitted() const { return admitted_; }
  /// Retryable denials observed (rate-limit pressure on the attacker).
  std::size_t deferrals() const { return deferred_; }
  /// Challenges dropped on a terminal denial.
  std::size_t abandoned_challenges() const { return abandoned_; }
  /// Challenges fully extracted so far.
  std::size_t challenges_recovered() const { return challenges_recovered_; }

  /// Every (pair, reference bit) fact recovered so far.
  const std::vector<HarvestedBit>& harvested() const { return harvested_; }

  /// The harvested facts as a one-hot training set for LogisticModel.
  Dataset training_set() const;

 private:
  void begin_challenge();

  std::uint64_t device_id_;
  std::size_t response_bits_;
  std::size_t pair_count_;
  Rng challenge_rng_;

  std::uint64_t challenge_ = 0;
  std::vector<std::size_t> pairs_;  ///< challenge_to_pairs of challenge_
  std::size_t probe_index_ = 0;     ///< 0 = baseline, j = single-bit j-1
  std::size_t baseline_distance_ = 0;

  std::size_t admitted_ = 0;
  std::size_t deferred_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t challenges_recovered_ = 0;
  std::vector<HarvestedBit> harvested_;
};

/// One-hot feature vector for an enrolled pair index (dimension pair_count).
std::vector<double> pair_features(std::size_t pair, std::size_t pair_count);

/// Fraction of reference bits the model predicts correctly over
/// `challenges` fresh challenges drawn from Rng(seed) — the clone accuracy
/// the soak harness plots against admitted queries. 0.5 is coin-flip;
/// 1.0 is a working clone of the device's authentication responses.
double clone_accuracy(const LogisticModel& model,
                      const puf::ConfigurableEnrollment& enrollment,
                      std::size_t response_bits, std::size_t challenges,
                      std::uint64_t seed);

}  // namespace ropuf::attack

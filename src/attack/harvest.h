// Distance-oracle CRP harvester: the adversary side of the admission-control
// threat model (service/admission.h, docs/attack_soak.md).
//
// The authentication verdict leaks more than accept/reject: it carries the
// exact Hamming distance between the submitted response and the enrolled
// reference (net/wire.h WireResponse). That distance is an oracle. For a
// b-bit challenge, probe the *same* challenge b+1 times:
//
//   probe 0: all-zeros guess        -> d0   (= popcount of the reference)
//   probe j: only bit j-1 set       -> d_j  (j = 1..b)
//
// then reference bit j-1 = (d0 + 1 - d_j) / 2, exactly — the reference is
// the enrollment-time bit string, so the oracle is noise-free even while
// environmental drift corrupts live prover readouts. Each extracted
// challenge therefore costs 1 *distinct* query plus b *repeat* queries,
// which is precisely the traffic shape the per-device reuse budget exists
// to throttle: with a reuse budget of r, the attacker recovers at most ~r
// reference bits no matter how patiently it spreads queries over time.
//
// What the bits buy the attacker: challenge_to_pairs() is public, so
// response bit i of challenge c is the enrolled bit of pair
// challenge_to_pairs(c)[i]. Harvested (pair, bit) examples train a
// one-hot-feature logistic model (attack/logistic.h) that clones the
// device on every challenge whose pairs were all observed — the classic
// "freely queryable CRP interface" modeling result, driven through the
// real serving stack by tools/ropuf_soak.
//
// The harvester is transport-agnostic: it emits the next probe to send and
// consumes plain (status-class, distance) observations, so the same state
// machine runs against a live AuthClient, an in-process AuthService, or a
// unit test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "attack/logistic.h"
#include "puf/schemes.h"

namespace ropuf::attack {

/// One adversarial query: a guessed response for the target device.
struct Probe {
  std::uint64_t device_id = 0;
  std::uint64_t challenge = 0;
  BitVec guess;
};

/// A recovered enrollment fact: enrolled pair `pair` compares to `bit`.
struct HarvestedBit {
  std::size_t pair = 0;
  bool bit = false;
};

/// Closed-loop extraction state machine for one target device. Call
/// next_probe(), send it, then report what came back: answered(distance)
/// for a real accept/reject verdict, deferred() for a retryable denial
/// (rate-limited, overloaded — the probe is re-issued unchanged), or
/// abandoned() for a terminal one (budget exhausted), which drops the
/// current challenge and moves to a fresh one — the adaptive move, since
/// the reuse budget and the distinct-challenge budget deplete separately.
/// Bits already extracted from an abandoned challenge are kept.
class DistanceOracleHarvester {
 public:
  /// `response_bits` is the *effective* per-challenge bit count (the
  /// verifier clamps its configured bits to the device's enrolled pair
  /// count; the attacker learns it from the first response's
  /// response_bits field or knows the protocol defaults). `seed` drives
  /// the deterministic challenge sequence.
  DistanceOracleHarvester(std::uint64_t device_id, std::size_t response_bits,
                          std::size_t pair_count, std::uint64_t seed);

  /// The probe to send next. Stable until answered()/abandoned() advances
  /// the state, so a deferred probe is re-issued byte-identically.
  Probe next_probe() const;

  /// The probe was verified and came back with this Hamming distance.
  void answered(std::size_t distance);
  /// The probe was denied retryably; the state does not advance.
  void deferred() { ++deferred_; }
  /// The probe was denied terminally for this challenge (budget spent);
  /// drop it and begin a fresh challenge.
  void abandoned();

  /// Verified probes (the attacker's admitted query count).
  std::size_t admitted() const { return admitted_; }
  /// Retryable denials observed (rate-limit pressure on the attacker).
  std::size_t deferrals() const { return deferred_; }
  /// Challenges dropped on a terminal denial.
  std::size_t abandoned_challenges() const { return abandoned_; }
  /// Challenges fully extracted so far.
  std::size_t challenges_recovered() const { return challenges_recovered_; }

  /// Every (pair, reference bit) fact recovered so far.
  const std::vector<HarvestedBit>& harvested() const { return harvested_; }

  /// The harvested facts as a one-hot training set for LogisticModel.
  Dataset training_set() const;

 private:
  void begin_challenge();

  std::uint64_t device_id_;
  std::size_t response_bits_;
  std::size_t pair_count_;
  Rng challenge_rng_;

  std::uint64_t challenge_ = 0;
  std::vector<std::size_t> pairs_;  ///< challenge_to_pairs of challenge_
  std::size_t probe_index_ = 0;     ///< 0 = baseline, j = single-bit j-1
  std::size_t baseline_distance_ = 0;

  std::size_t admitted_ = 0;
  std::size_t deferred_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t challenges_recovered_ = 0;
  std::vector<HarvestedBit> harvested_;
};

/// Knobs of the evasive low-and-slow variant below.
struct EvasiveOptions {
  /// Plausible-looking decoy queries sent between consecutive oracle
  /// probes. 0 makes the wrapper a pure pass-through: its probe stream is
  /// byte-identical to the plain harvester's (and its decoy RNG is never
  /// drawn), so the two are interchangeable in every existing pinned soak.
  std::size_t decoys_per_probe = 3;
};

/// Low-and-slow evasion wrapper around DistanceOracleHarvester: between
/// oracle probes it interleaves decoy queries shaped like legitimate
/// traffic — a fresh random challenge with a ~b/2-weight random guess — to
/// dilute the attack's stream signature. Any detector keyed to
/// *consecutive* repeat or single-bit runs is blinded by this; the
/// window-count signatures in service/detector.h are the counter-move (the
/// oracle probes still accumulate inside a window that out-spans the decoy
/// spacing), which is exactly what this class exists to test. The trade it
/// cannot escape: every decoy burns admission clock and budget, so evasion
/// slows the harvest even when it beats detection.
///
/// Same closed-loop interface as the core harvester; a pending probe (decoy
/// or oracle) is stable across deferred(), so retries re-issue it
/// byte-identically.
class EvasiveHarvester {
 public:
  EvasiveHarvester(std::uint64_t device_id, std::size_t response_bits,
                   std::size_t pair_count, std::uint64_t seed,
                   EvasiveOptions options);

  /// The probe to send next: the core's oracle probe on an oracle turn, the
  /// pending decoy otherwise.
  Probe next_probe() const;

  /// The probe came back with a real verdict. Oracle turns feed the core's
  /// extraction; a decoy's distance is meaningless and is dropped.
  void answered(std::size_t distance);
  /// Retryable denial: the pending probe (either kind) does not advance.
  void deferred();
  /// Terminal denial: an oracle turn abandons the core's challenge, a decoy
  /// turn just drops the decoy.
  void abandoned();

  /// The wrapped extraction state (harvested bits, training set, stats).
  const DistanceOracleHarvester& core() const { return core_; }
  /// Decoy queries resolved (answered or terminally denied) so far.
  std::size_t decoys_sent() const { return decoys_sent_; }

 private:
  bool decoy_turn() const { return phase_ > 0; }
  void make_decoy();
  /// Terminal resolution of the pending probe: rotate oracle -> decoys -> oracle.
  void advance();

  DistanceOracleHarvester core_;
  EvasiveOptions options_;
  std::uint64_t device_id_;
  std::size_t response_bits_;
  Rng decoy_rng_;
  /// 0 = oracle turn; 1..decoys_per_probe = decoy turns.
  std::size_t phase_ = 0;
  Probe decoy_;
  std::size_t decoys_sent_ = 0;
};

/// One-hot feature vector for an enrolled pair index (dimension pair_count).
std::vector<double> pair_features(std::size_t pair, std::size_t pair_count);

/// Fraction of reference bits the model predicts correctly over
/// `challenges` fresh challenges drawn from Rng(seed) — the clone accuracy
/// the soak harness plots against admitted queries. 0.5 is coin-flip;
/// 1.0 is a working clone of the device's authentication responses.
double clone_accuracy(const LogisticModel& model,
                      const puf::ConfigurableEnrollment& enrollment,
                      std::size_t response_bits, std::size_t challenges,
                      std::uint64_t seed);

}  // namespace ropuf::attack

// Closed-loop attack soak harness: the whole serving stack under mixed
// legitimate + adversarial traffic with environmental drift (docs/attack_soak.md).
//
// One run stands up the real thing end to end:
//
//   mint fleet (chips kept) -> registry -> AuthService (+ admission)
//     -> AuthServer on loopback -> one legit AuthClient + one attacker
//
// and then interleaves, in deterministic lockstep, two traffic sources:
//
//  * Legitimate provers: each slot sends one pipelined burst of genuine
//    responses — the device's retained chip re-measured at the slot's
//    operating corner (sil::vt_corner_schedule walks the F4/F5 voltage and
//    temperature sweep across the run, so drift shifts live responses
//    mid-soak) — for devices rotating over the fleet minus the attacked
//    device.
//  * The adversary: a DistanceOracleHarvester (attack/harvest.h) mining the
//    Hamming-distance oracle of one target device through the same server,
//    training a logistic clone of the device from whatever the admission
//    layer lets through.
//
// Lockstep means every scheduled event fully drains its responses before
// the next event sends, so the server observes one global arrival order —
// and because admission is deterministic in arrival order, the same
// SoakOptions always produce the same SoakReport. That is what lets ctest
// pin the defense: attacker clone accuracy with admission on vs. off,
// legitimate availability, and online/offline verdict-digest parity are
// all exact, seeded quantities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "attack/logistic.h"
#include "net/server.h"
#include "registry/registry.h"
#include "service/auth_service.h"

namespace ropuf::soak {

struct SoakOptions {
  /// Fleet to mint and serve; the first minted device is the attack target.
  registry::FleetSpec fleet;
  /// Service configuration, including the admission knobs under test.
  service::AuthServiceOptions service;
  /// Server bounds; port 0 (an ephemeral loopback port) is the right value.
  net::ServerOptions server;

  /// Wire protocol under soak: 1 (CRP exchange, the distance-oracle attack
  /// surface) or 2 (challenge-response proofs, docs/protocol_v2.md). On 2
  /// the legit provers recover their fuzzy-extractor keys from live
  /// re-measurements and answer HMAC challenges; the attacker probes the
  /// same target but the wire gives it no distances to harvest, and each
  /// slot additionally replays a captured valid proof (replay_* report
  /// fields) to pin the freshness defense.
  std::uint16_t protocol = 1;

  /// Scheduled slots; each runs one attacker volley then one legit burst.
  std::size_t slots = 32;
  /// Legitimate requests per burst.
  std::size_t burst_requests = 8;
  /// Attacker probes per slot (sent one at a time, closed loop).
  std::size_t attacker_probes_per_slot = 8;
  /// Decoy queries the attacker interleaves between oracle probes
  /// (attack::EvasiveHarvester). 0 (the default) is the plain harvester —
  /// byte-identical probe stream, so every pre-existing pinned report is
  /// unchanged. > 0 models the low-and-slow evader the stream detector
  /// (service/detector.h) must still catch. Decoys count against
  /// attacker_probes_per_slot: evasion spends the attacker's own budget.
  std::size_t attacker_decoys = 0;
  /// Per-bit readout noise on legitimate prover measurements.
  double readout_noise_ps = 0.5;
  /// Accuracy checkpoints recorded across the run (<= slots).
  std::size_t checkpoints = 8;
  /// Fresh challenges per clone-accuracy evaluation.
  std::size_t eval_challenges = 64;
  /// Drives the legit challenge stream, prover noise, attacker challenge
  /// sequence and model fits; same seed — same report.
  std::uint64_t seed = 0x50a4;
  /// Model fit knobs for the checkpoint training runs.
  attack::LogisticModel::FitOptions fit;
};

/// One accuracy-vs-admitted sample.
struct SoakCheckpoint {
  std::size_t slot = 0;                ///< slot index the sample was taken after
  std::size_t attacker_admitted = 0;   ///< verified attacker probes so far
  std::size_t bits_recovered = 0;      ///< reference bits extracted so far
  double clone_accuracy = 0.5;         ///< model accuracy on fresh challenges
};

struct SoakReport {
  // Legitimate traffic.
  std::size_t legit_requests = 0;
  std::size_t legit_answered = 0;  ///< real verdicts (accept/reject/...)
  std::size_t legit_denied = 0;    ///< rate-limited/budget-exhausted/overloaded
  std::size_t legit_accepted = 0;
  /// legit_answered / legit_requests; the availability-under-attack metric.
  double availability = 0.0;

  // Digest parity: FNV digest of the admitted legit verdicts as served
  /// online, and whether an offline admission-free verify_batch over the
  /// same admitted requests reproduces it at thread budgets {1, 2, 8}.
  std::uint64_t online_digest = 0;
  bool digest_parity = false;

  // Adversary.
  std::uint64_t target_device = 0;
  std::size_t attacker_probes = 0;
  std::size_t attacker_admitted = 0;
  std::size_t attacker_deferred = 0;    ///< rate-limited probes
  std::size_t attacker_abandoned = 0;   ///< challenges dropped on budget denial
  std::size_t bits_recovered = 0;
  std::size_t challenges_recovered = 0;
  std::size_t attacker_decoys = 0;  ///< decoy queries resolved (evasive mode)
  double final_accuracy = 0.5;
  std::vector<SoakCheckpoint> checkpoints;

  // Stream-detector outcome (zeros when the detector is off): the
  // escalation-ladder level the attacked device ended the run at, and the
  // worst level any legitimate prover ever reached (the false-positive
  // check — the soak contract requires it to stay 0).
  std::uint32_t target_suspicion = 0;
  std::uint32_t max_legit_suspicion = 0;

  // Protocol v2 only: replayed captured proofs and how many the server
  // rejected (all of them, when the session freshness defense holds).
  std::size_t replay_probes = 0;
  std::size_t replay_rejected = 0;
};

/// Runs one soak end to end (binds a loopback server, serves, drains) and
/// returns the report. Deterministic for fixed options. Throws ropuf::Error
/// on invalid options or a transport-level failure.
SoakReport run_soak(const SoakOptions& options);

}  // namespace ropuf::soak

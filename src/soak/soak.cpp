#include "soak/soak.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "attack/harvest.h"
#include "auth/auth.h"
#include "common/error.h"
#include "common/rng.h"
#include "net/client.h"
#include "puf/crp.h"
#include "puf/measurement.h"
#include "silicon/environment.h"

namespace ropuf::soak {
namespace {

/// One legitimate prover: a minted device wired for live responses.
struct Prover {
  std::uint64_t device_id = 0;
  const sil::Chip* chip = nullptr;
  const puf::ConfigurableEnrollment* enrollment = nullptr;
  puf::CrpOracle oracle;
  Rng noise_rng;

  Prover(std::uint64_t id, const sil::Chip* c,
         const puf::ConfigurableEnrollment* e, std::size_t bits, Rng rng)
      : device_id(id), chip(c), enrollment(e), oracle(e, bits), noise_rng(rng) {}
};

/// Trains a fresh logistic clone on the harvest so far and scores it on
/// fresh challenges. Coin-flip by definition while nothing was harvested.
double checkpoint_accuracy(const attack::DistanceOracleHarvester& harvester,
                           const puf::ConfigurableEnrollment& enrollment,
                           const SoakOptions& options) {
  if (harvester.harvested().empty()) return 0.5;  // nothing to train on yet
  attack::LogisticModel model;
  Rng fit_rng(options.seed ^ 0xf17c10ull);
  model.fit(harvester.training_set(), options.fit, fit_rng);
  return attack::clone_accuracy(model, enrollment, options.service.response_bits,
                                options.eval_challenges, options.seed ^ 0xe5a1ull);
}

}  // namespace

SoakReport run_soak(const SoakOptions& options) {
  ROPUF_REQUIRE(options.slots > 0, "soak needs at least one slot");
  ROPUF_REQUIRE(options.burst_requests > 0, "burst_requests must be positive");
  ROPUF_REQUIRE(options.eval_challenges > 0, "eval_challenges must be positive");
  ROPUF_REQUIRE(options.fleet.devices >= 2,
                "soak needs the attacked device plus at least one legitimate one");
  ROPUF_REQUIRE(options.protocol == net::kWireVersion ||
                    options.protocol == net::kWireVersionV2,
                "soak protocol must be 1 or 2");

  // ---- mint the fleet with silicon kept, build the served registry.
  std::vector<registry::MintedDevice> minted =
      registry::mint_fleet_with_chips(options.fleet);
  registry::RegistryBuilder builder;
  for (const registry::MintedDevice& device : minted) {
    builder.add(device.device_id, device.enrollment);
  }
  const registry::Registry reg = registry::Registry::from_bytes(builder.build());

  const service::AuthService svc(&reg, options.service);
  net::ServerOptions server_options = options.server;
  net::AuthServer server(&svc, server_options);
  const std::uint16_t port = server.bind_and_listen();
  std::thread server_thread([&server] { server.run(); });

  SoakReport report;
  try {
    const std::size_t bits =
        std::min(options.service.response_bits, options.fleet.pairs);

    // ---- the adversary: a distance-oracle harvester on its own connection,
    // targeting the first minted device.
    const registry::MintedDevice& target = minted.front();
    report.target_device = target.device_id;
    // Always the evasive wrapper: at the default attacker_decoys = 0 it is
    // a pure pass-through (byte-identical probe stream to the plain
    // harvester), and > 0 turns on low-and-slow decoy interleaving.
    attack::EvasiveOptions evasion;
    evasion.decoys_per_probe = options.attacker_decoys;
    attack::EvasiveHarvester harvester(target.device_id, bits,
                                       options.fleet.pairs,
                                       options.seed ^ 0xa77ac4ull, evasion);
    net::ClientOptions attacker_options;
    attacker_options.port = port;
    net::AuthClient attacker(attacker_options);
    attacker.connect();

    // ---- legitimate provers over the rest of the fleet, one persistent
    // pipelined connection. Noise streams fork serially in device order.
    Rng noise_base(options.seed ^ 0x1e917ull);
    std::vector<Prover> provers;
    provers.reserve(minted.size() - 1);
    for (std::size_t d = 1; d < minted.size(); ++d) {
      provers.emplace_back(minted[d].device_id, &minted[d].chip,
                           &minted[d].enrollment, bits, noise_base.fork());
    }
    net::ClientOptions legit_options;
    legit_options.port = port;
    legit_options.window = std::min<std::size_t>(options.burst_requests,
                                                 server_options.max_pending);
    net::AuthClient legit(legit_options);
    legit.connect();

    puf::UnitMeasurementSpec measurement;
    measurement.noise_sigma_ps = options.readout_noise_ps;
    Rng challenge_rng(options.seed ^ 0xc4a11ull);

    const std::vector<sil::OperatingPoint>& corners = sil::vt_corner_schedule();
    const std::size_t checkpoint_count = std::min(options.checkpoints, options.slots);
    const std::size_t checkpoint_stride =
        checkpoint_count == 0 ? 0 : options.slots / checkpoint_count;

    std::vector<service::AuthRequest> admitted_requests;
    std::vector<service::ProofRequest> admitted_proofs;
    std::vector<service::AuthVerdict> online_verdicts;
    std::size_t legit_cursor = 0;

    // ---- protocol v2 plumbing: negotiated connections, one shared request
    // id stream, and the closed-loop request/challenge/proof/response round
    // both traffic sources drive.
    const bool v2 = options.protocol == net::kWireVersionV2;
    if (v2) {
      ROPUF_REQUIRE(attacker.negotiate() == net::kWireVersionV2,
                    "soak server failed to pin protocol v2");
      ROPUF_REQUIRE(legit.negotiate() == net::kWireVersionV2,
                    "soak server failed to pin protocol v2");
    }
    std::uint64_t next_rid = 1;
    std::string replay_frame;  ///< newest accepted proof, verbatim bytes

    struct V2Outcome {
      net::WireResponse response;
      auth::Nonce nonce{};
      auth::Tag tag{};
      std::string proof_frame;
    };
    const auto v2_round = [](net::AuthClient& client, std::uint64_t rid,
                             std::uint64_t device_id,
                             const std::optional<crypto::Sha256Digest>& key) {
      client.send_raw(net::encode_request_frame_v2(rid, device_id));
      const net::AuthClient::RawFrame challenge_frame = client.recv_frame();
      ROPUF_REQUIRE(challenge_frame.type == net::FrameType::kAuthChallenge,
                    "soak expected a v2 challenge");
      const net::ChallengePayload challenge =
          net::decode_challenge_payload(challenge_frame.payload);
      ROPUF_REQUIRE(challenge.request_id == rid,
                    "challenge for the wrong request id");
      V2Outcome outcome;
      outcome.nonce = challenge.nonce;
      outcome.tag = key ? auth::prove(*key, challenge.nonce, rid, device_id)
                        : auth::Tag{};
      outcome.proof_frame = net::encode_proof_frame(rid, outcome.tag);
      client.send_raw(outcome.proof_frame);
      const net::AuthClient::RawFrame response_frame = client.recv_frame();
      ROPUF_REQUIRE(response_frame.type == net::FrameType::kAuthResponse &&
                        response_frame.version == net::kWireVersionV2,
                    "soak expected a v2 response");
      const net::V2Response answer =
          net::decode_response_payload_v2(response_frame.payload);
      ROPUF_REQUIRE(answer.request_id == rid, "response for the wrong request id");
      outcome.response = answer.response;
      return outcome;
    };

    for (std::size_t slot = 0; slot < options.slots; ++slot) {
      // -- attacker volley: strictly closed loop, one probe in flight.
      if (v2) {
        // Same cadence, starved oracle: the attacker spends its probes on
        // challenges it cannot answer, and the verdicts carry no distance —
        // there is nothing to feed the harvester, so its model never moves
        // off the coin flip.
        for (std::size_t p = 0; p < options.attacker_probes_per_slot; ++p) {
          v2_round(attacker, next_rid++, target.device_id, std::nullopt);
          ++report.attacker_probes;
        }
      } else {
        for (std::size_t p = 0; p < options.attacker_probes_per_slot; ++p) {
          const attack::Probe probe = harvester.next_probe();
          service::AuthRequest request;
          request.device_id = probe.device_id;
          request.challenge = probe.challenge;
          request.response = probe.guess;
          const net::WireResponse response = attacker.send_request(request);
          ++report.attacker_probes;
          switch (response.status) {
            case net::WireStatus::kAccept:
            case net::WireStatus::kReject:
              harvester.answered(static_cast<std::size_t>(response.distance));
              break;
            case net::WireStatus::kRateLimited:
            case net::WireStatus::kOverloaded:
              harvester.deferred();
              break;
            default:
              // Budget exhausted (or any other terminal answer): drop the
              // challenge and try a fresh one — the budgets deplete separately.
              harvester.abandoned();
              break;
          }
        }
      }

      // -- legitimate burst: live responses measured at the slot's corner.
      // The schedule walks nominal -> voltage corners -> temperature
      // corners across the run, so drift arrives mid-soak.
      const sil::OperatingPoint corner =
          corners[slot * corners.size() / options.slots];
      if (v2) {
        for (std::size_t r = 0; r < options.burst_requests; ++r) {
          Prover& prover = provers[legit_cursor++ % provers.size()];
          // Rep on a live re-measurement: the full per-pair response at the
          // slot's corner, corrected back to the enrollment key (or not,
          // past the code's radius — then the prover fails honestly).
          const std::vector<double> values = puf::measure_unit_ddiffs(
              *prover.chip, corner, measurement, prover.noise_rng);
          const BitVec noisy =
              puf::configurable_respond(values, *prover.enrollment);
          const std::optional<crypto::Sha256Digest> key =
              auth::recover_key(noisy, *prover.enrollment);
          const std::uint64_t rid = next_rid++;
          const V2Outcome outcome = v2_round(legit, rid, prover.device_id, key);
          ++report.legit_requests;
          if (outcome.response.status == net::WireStatus::kOverloaded) {
            ++report.legit_denied;
            continue;
          }
          ++report.legit_answered;
          if (outcome.response.accepted()) {
            ++report.legit_accepted;
            replay_frame = outcome.proof_frame;
          }
          service::ProofRequest proof;
          proof.request_id = rid;
          proof.device_id = prover.device_id;
          proof.nonce = outcome.nonce;
          proof.tag = outcome.tag;
          admitted_proofs.push_back(proof);
          online_verdicts.push_back(net::auth_verdict(outcome.response));
        }

        // -- replay probe: the newest accepted proof, byte-identical. Its
        // session was consumed when it verified, so kReject is the only
        // correct answer.
        if (!replay_frame.empty()) {
          legit.send_raw(replay_frame);
          const net::AuthClient::RawFrame frame = legit.recv_frame();
          ROPUF_REQUIRE(frame.type == net::FrameType::kAuthResponse &&
                            frame.version == net::kWireVersionV2,
                        "soak expected a v2 response to a replay");
          const net::V2Response answer =
              net::decode_response_payload_v2(frame.payload);
          ++report.replay_probes;
          if (answer.response.status == net::WireStatus::kReject) {
            ++report.replay_rejected;
          }
          replay_frame.clear();
        }
      } else {
        std::vector<service::AuthRequest> burst;
        burst.reserve(options.burst_requests);
        for (std::size_t r = 0; r < options.burst_requests; ++r) {
          Prover& prover = provers[legit_cursor++ % provers.size()];
          service::AuthRequest request;
          request.device_id = prover.device_id;
          request.challenge = challenge_rng.next_u64();
          const std::vector<double> values = puf::measure_unit_ddiffs(
              *prover.chip, corner, measurement, prover.noise_rng);
          request.response = prover.oracle.respond(request.challenge, values);
          burst.push_back(std::move(request));
        }
        const std::vector<net::WireResponse> responses = legit.send_batch(burst);
        report.legit_requests += burst.size();
        for (std::size_t r = 0; r < responses.size(); ++r) {
          const net::WireResponse& response = responses[r];
          if (net::wire_status_is_transport(response.status) ||
              response.status == net::WireStatus::kRateLimited ||
              response.status == net::WireStatus::kBudgetExhausted) {
            ++report.legit_denied;
            continue;
          }
          ++report.legit_answered;
          if (response.accepted()) ++report.legit_accepted;
          admitted_requests.push_back(burst[r]);
          online_verdicts.push_back(net::auth_verdict(response));
        }
      }

      // -- checkpoint: train on the harvest so far, score on fresh CRPs.
      // Under v2 the harvest is empty by construction, so every checkpoint
      // sits at the coin flip — the defense the soak is pinning.
      if (checkpoint_stride > 0 && (slot + 1) % checkpoint_stride == 0 &&
          report.checkpoints.size() < checkpoint_count) {
        SoakCheckpoint checkpoint;
        checkpoint.slot = slot;
        checkpoint.attacker_admitted = harvester.core().admitted();
        checkpoint.bits_recovered = harvester.core().harvested().size();
        checkpoint.clone_accuracy =
            checkpoint_accuracy(harvester.core(), target.enrollment, options);
        report.checkpoints.push_back(checkpoint);
      }
    }

    attacker.close();
    legit.close();

    report.availability =
        report.legit_requests == 0
            ? 0.0
            : static_cast<double>(report.legit_answered) /
                  static_cast<double>(report.legit_requests);
    report.attacker_admitted = harvester.core().admitted();
    report.attacker_deferred = harvester.core().deferrals();
    report.attacker_abandoned = harvester.core().abandoned_challenges();
    report.bits_recovered = harvester.core().harvested().size();
    report.challenges_recovered = harvester.core().challenges_recovered();
    report.attacker_decoys = harvester.decoys_sent();
    report.final_accuracy =
        checkpoint_accuracy(harvester.core(), target.enrollment, options);

    // Detector outcome: where the ladder left the attacked device, and the
    // worst level any legitimate prover was ever escalated to (all zeros
    // with the detector off).
    report.target_suspicion = svc.suspicion_level(target.device_id);
    for (const Prover& prover : provers) {
      report.max_legit_suspicion = std::max(
          report.max_legit_suspicion, svc.suspicion_level(prover.device_id));
    }

    // -- digest parity: an offline, admission-free verifier over exactly
    // the admitted legit requests (v2: the online proof transcript) must
    // reproduce the online verdicts bit-for-bit at several thread budgets.
    report.online_digest = service::verdict_digest(online_verdicts);
    report.digest_parity = true;
    for (const std::size_t budget : {1u, 2u, 8u}) {
      service::AuthServiceOptions offline_options = options.service;
      offline_options.admission = service::AdmissionOptions{};
      offline_options.threads = ThreadBudget(budget);
      const service::AuthService offline(&reg, offline_options);
      const std::uint64_t digest = service::verdict_digest(
          v2 ? offline.verify_proof_batch(admitted_proofs)
             : offline.verify_batch(admitted_requests));
      if (digest != report.online_digest) report.digest_parity = false;
    }
  } catch (...) {
    server.request_stop();
    server_thread.join();
    throw;
  }

  server.request_stop();
  server_thread.join();
  return report;
}

}  // namespace ropuf::soak

#include "soak/soak.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "attack/harvest.h"
#include "common/error.h"
#include "common/rng.h"
#include "net/client.h"
#include "puf/crp.h"
#include "puf/measurement.h"
#include "silicon/environment.h"

namespace ropuf::soak {
namespace {

/// One legitimate prover: a minted device wired for live responses.
struct Prover {
  std::uint64_t device_id = 0;
  const sil::Chip* chip = nullptr;
  puf::CrpOracle oracle;
  Rng noise_rng;

  Prover(std::uint64_t id, const sil::Chip* c,
         const puf::ConfigurableEnrollment* enrollment, std::size_t bits,
         Rng rng)
      : device_id(id), chip(c), oracle(enrollment, bits), noise_rng(rng) {}
};

/// Trains a fresh logistic clone on the harvest so far and scores it on
/// fresh challenges. Coin-flip by definition while nothing was harvested.
double checkpoint_accuracy(const attack::DistanceOracleHarvester& harvester,
                           const puf::ConfigurableEnrollment& enrollment,
                           const SoakOptions& options) {
  if (harvester.harvested().empty()) return 0.5;
  attack::LogisticModel model;
  Rng fit_rng(options.seed ^ 0xf17c10ull);
  model.fit(harvester.training_set(), options.fit, fit_rng);
  return attack::clone_accuracy(model, enrollment, options.service.response_bits,
                                options.eval_challenges, options.seed ^ 0xe5a1ull);
}

}  // namespace

SoakReport run_soak(const SoakOptions& options) {
  ROPUF_REQUIRE(options.slots > 0, "soak needs at least one slot");
  ROPUF_REQUIRE(options.burst_requests > 0, "burst_requests must be positive");
  ROPUF_REQUIRE(options.eval_challenges > 0, "eval_challenges must be positive");
  ROPUF_REQUIRE(options.fleet.devices >= 2,
                "soak needs the attacked device plus at least one legitimate one");

  // ---- mint the fleet with silicon kept, build the served registry.
  std::vector<registry::MintedDevice> minted =
      registry::mint_fleet_with_chips(options.fleet);
  registry::RegistryBuilder builder;
  for (const registry::MintedDevice& device : minted) {
    builder.add(device.device_id, device.enrollment);
  }
  const registry::Registry reg = registry::Registry::from_bytes(builder.build());

  const service::AuthService svc(&reg, options.service);
  net::ServerOptions server_options = options.server;
  net::AuthServer server(&svc, server_options);
  const std::uint16_t port = server.bind_and_listen();
  std::thread server_thread([&server] { server.run(); });

  SoakReport report;
  try {
    const std::size_t bits =
        std::min(options.service.response_bits, options.fleet.pairs);

    // ---- the adversary: a distance-oracle harvester on its own connection,
    // targeting the first minted device.
    const registry::MintedDevice& target = minted.front();
    report.target_device = target.device_id;
    attack::DistanceOracleHarvester harvester(target.device_id, bits,
                                              options.fleet.pairs,
                                              options.seed ^ 0xa77ac4ull);
    net::ClientOptions attacker_options;
    attacker_options.port = port;
    net::AuthClient attacker(attacker_options);
    attacker.connect();

    // ---- legitimate provers over the rest of the fleet, one persistent
    // pipelined connection. Noise streams fork serially in device order.
    Rng noise_base(options.seed ^ 0x1e917ull);
    std::vector<Prover> provers;
    provers.reserve(minted.size() - 1);
    for (std::size_t d = 1; d < minted.size(); ++d) {
      provers.emplace_back(minted[d].device_id, &minted[d].chip,
                           &minted[d].enrollment, bits, noise_base.fork());
    }
    net::ClientOptions legit_options;
    legit_options.port = port;
    legit_options.window = std::min<std::size_t>(options.burst_requests,
                                                 server_options.max_pending);
    net::AuthClient legit(legit_options);
    legit.connect();

    puf::UnitMeasurementSpec measurement;
    measurement.noise_sigma_ps = options.readout_noise_ps;
    Rng challenge_rng(options.seed ^ 0xc4a11ull);

    const std::vector<sil::OperatingPoint>& corners = sil::vt_corner_schedule();
    const std::size_t checkpoint_count = std::min(options.checkpoints, options.slots);
    const std::size_t checkpoint_stride =
        checkpoint_count == 0 ? 0 : options.slots / checkpoint_count;

    std::vector<service::AuthRequest> admitted_requests;
    std::vector<service::AuthVerdict> online_verdicts;
    std::size_t legit_cursor = 0;

    for (std::size_t slot = 0; slot < options.slots; ++slot) {
      // -- attacker volley: strictly closed loop, one probe in flight.
      for (std::size_t p = 0; p < options.attacker_probes_per_slot; ++p) {
        const attack::Probe probe = harvester.next_probe();
        service::AuthRequest request;
        request.device_id = probe.device_id;
        request.challenge = probe.challenge;
        request.response = probe.guess;
        const net::WireResponse response = attacker.send_request(request);
        ++report.attacker_probes;
        switch (response.status) {
          case net::WireStatus::kAccept:
          case net::WireStatus::kReject:
            harvester.answered(static_cast<std::size_t>(response.distance));
            break;
          case net::WireStatus::kRateLimited:
          case net::WireStatus::kOverloaded:
            harvester.deferred();
            break;
          default:
            // Budget exhausted (or any other terminal answer): drop the
            // challenge and try a fresh one — the budgets deplete separately.
            harvester.abandoned();
            break;
        }
      }

      // -- legitimate burst: live responses measured at the slot's corner.
      // The schedule walks nominal -> voltage corners -> temperature
      // corners across the run, so drift arrives mid-soak.
      const sil::OperatingPoint corner =
          corners[slot * corners.size() / options.slots];
      std::vector<service::AuthRequest> burst;
      burst.reserve(options.burst_requests);
      for (std::size_t r = 0; r < options.burst_requests; ++r) {
        Prover& prover = provers[legit_cursor++ % provers.size()];
        service::AuthRequest request;
        request.device_id = prover.device_id;
        request.challenge = challenge_rng.next_u64();
        const std::vector<double> values = puf::measure_unit_ddiffs(
            *prover.chip, corner, measurement, prover.noise_rng);
        request.response = prover.oracle.respond(request.challenge, values);
        burst.push_back(std::move(request));
      }
      const std::vector<net::WireResponse> responses = legit.send_batch(burst);
      report.legit_requests += burst.size();
      for (std::size_t r = 0; r < responses.size(); ++r) {
        const net::WireResponse& response = responses[r];
        if (net::wire_status_is_transport(response.status) ||
            response.status == net::WireStatus::kRateLimited ||
            response.status == net::WireStatus::kBudgetExhausted) {
          ++report.legit_denied;
          continue;
        }
        ++report.legit_answered;
        if (response.accepted()) ++report.legit_accepted;
        admitted_requests.push_back(burst[r]);
        online_verdicts.push_back(net::auth_verdict(response));
      }

      // -- checkpoint: train on the harvest so far, score on fresh CRPs.
      if (checkpoint_stride > 0 && (slot + 1) % checkpoint_stride == 0 &&
          report.checkpoints.size() < checkpoint_count) {
        SoakCheckpoint checkpoint;
        checkpoint.slot = slot;
        checkpoint.attacker_admitted = harvester.admitted();
        checkpoint.bits_recovered = harvester.harvested().size();
        checkpoint.clone_accuracy =
            checkpoint_accuracy(harvester, target.enrollment, options);
        report.checkpoints.push_back(checkpoint);
      }
    }

    attacker.close();
    legit.close();

    report.availability =
        report.legit_requests == 0
            ? 0.0
            : static_cast<double>(report.legit_answered) /
                  static_cast<double>(report.legit_requests);
    report.attacker_admitted = harvester.admitted();
    report.attacker_deferred = harvester.deferrals();
    report.attacker_abandoned = harvester.abandoned_challenges();
    report.bits_recovered = harvester.harvested().size();
    report.challenges_recovered = harvester.challenges_recovered();
    report.final_accuracy =
        checkpoint_accuracy(harvester, target.enrollment, options);

    // -- digest parity: an offline, admission-free verifier over exactly
    // the admitted legit requests must reproduce the online verdicts
    // bit-for-bit at several thread budgets.
    report.online_digest = service::verdict_digest(online_verdicts);
    report.digest_parity = true;
    for (const std::size_t budget : {1u, 2u, 8u}) {
      service::AuthServiceOptions offline_options = options.service;
      offline_options.admission = service::AdmissionOptions{};
      offline_options.threads = ThreadBudget(budget);
      const service::AuthService offline(&reg, offline_options);
      const std::uint64_t digest =
          service::verdict_digest(offline.verify_batch(admitted_requests));
      if (digest != report.online_digest) report.digest_parity = false;
    }
  } catch (...) {
    server.request_stop();
    server_thread.join();
    throw;
  }

  server.request_stop();
  server_thread.join();
  return report;
}

}  // namespace ropuf::soak

#include "nist/basic_tests.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "numeric/special_functions.h"

namespace ropuf::nist {

TestResult inapplicable(const std::string& name, const std::string& why) {
  TestResult r;
  r.name = name;
  r.applicable = false;
  r.note = why;
  return r;
}

TestResult frequency_test(const BitVec& bits) {
  TestResult r;
  r.name = "Frequency";
  const std::size_t n = bits.size();
  if (n == 0) return inapplicable(r.name, "empty sequence");

  // S_n = sum of +/-1; s_obs = |S_n| / sqrt(n); p = erfc(s_obs / sqrt(2)).
  const double s_n =
      2.0 * static_cast<double>(bits.popcount()) - static_cast<double>(n);
  const double s_obs = std::fabs(s_n) / std::sqrt(static_cast<double>(n));
  r.p_values.push_back(num::erfc(s_obs / std::sqrt(2.0)));
  return r;
}

TestResult block_frequency_test(const BitVec& bits, std::size_t block_len) {
  TestResult r;
  r.name = "BlockFrequency";
  ROPUF_REQUIRE(block_len > 0, "block length must be positive");
  const std::size_t n = bits.size();
  const std::size_t blocks = n / block_len;
  if (blocks == 0) return inapplicable(r.name, "sequence shorter than one block");

  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < block_len; ++i) {
      if (bits.get(b * block_len + i)) ++ones;
    }
    const double pi = static_cast<double>(ones) / static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  r.p_values.push_back(num::igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0));
  r.note = "M=" + std::to_string(block_len);
  return r;
}

TestResult runs_test(const BitVec& bits) {
  TestResult r;
  r.name = "Runs";
  const std::size_t n = bits.size();
  if (n < 2) return inapplicable(r.name, "need at least 2 bits");

  const double pi = static_cast<double>(bits.popcount()) / static_cast<double>(n);
  // Prerequisite frequency check (SP 800-22 step 2): tau = 2 / sqrt(n).
  if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) {
    r.p_values.push_back(0.0);
    r.note = "monobit precondition failed";
    return r;
  }

  std::size_t v_obs = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (bits.get(k) != bits.get(k + 1)) ++v_obs;
  }
  const double num =
      std::fabs(static_cast<double>(v_obs) - 2.0 * static_cast<double>(n) * pi * (1.0 - pi));
  const double den =
      2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi * (1.0 - pi);
  r.p_values.push_back(num::erfc(num / den));
  return r;
}

TestResult longest_run_test(const BitVec& bits) {
  TestResult r;
  r.name = "LongestRun";
  const std::size_t n = bits.size();

  // Parameter sets from SP 800-22 section 2.4.2/2.4.4.
  std::size_t block_len, categories;
  std::vector<double> pi;
  std::vector<std::size_t> category_upper;  // longest-run value of each bucket top
  if (n >= 750000) {
    block_len = 10000;
    categories = 7;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    category_upper = {10, 11, 12, 13, 14, 15};  // <=10, 11..15, >=16
  } else if (n >= 6272) {
    block_len = 128;
    categories = 6;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    category_upper = {4, 5, 6, 7, 8};  // <=4, 5, 6, 7, 8, >=9
  } else if (n >= 128) {
    block_len = 8;
    categories = 4;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
    category_upper = {1, 2, 3};  // <=1, 2, 3, >=4
  } else {
    return inapplicable(r.name, "needs n >= 128");
  }

  const std::size_t blocks = n / block_len;
  std::vector<double> nu(categories, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0, current = 0;
    for (std::size_t i = 0; i < block_len; ++i) {
      if (bits.get(b * block_len + i)) {
        ++current;
        longest = std::max(longest, current);
      } else {
        current = 0;
      }
    }
    std::size_t bucket = categories - 1;
    for (std::size_t c = 0; c < category_upper.size(); ++c) {
      if (longest <= category_upper[c]) {
        bucket = c;
        break;
      }
    }
    nu[bucket] += 1.0;
  }

  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t c = 0; c < categories; ++c) {
    const double expected = nb * pi[c];
    chi2 += (nu[c] - expected) * (nu[c] - expected) / expected;
  }
  r.p_values.push_back(
      num::igamc(static_cast<double>(categories - 1) / 2.0, chi2 / 2.0));
  r.note = "M=" + std::to_string(block_len);
  return r;
}

namespace {

/// One direction of the cumulative-sums statistic.
double cusum_p_value(const BitVec& bits, bool forward) {
  const std::size_t n = bits.size();
  long long sum = 0;
  long long z = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = forward ? k : n - 1 - k;
    sum += bits.get(idx) ? 1 : -1;
    z = std::max<long long>(z, std::llabs(sum));
  }
  if (z == 0) return 0.0;  // constant alternation worst case: max excursion 0 impossible for n>=1

  const double zn = static_cast<double>(z);
  const double dn = static_cast<double>(n);
  const double sqrt_n = std::sqrt(dn);

  double p = 1.0;
  const long long k_lo1 = (-static_cast<long long>(n) / static_cast<long long>(z) + 1) / 4;
  const long long k_hi1 = (static_cast<long long>(n) / static_cast<long long>(z) - 1) / 4;
  for (long long k = k_lo1; k <= k_hi1; ++k) {
    const double kk = static_cast<double>(k);
    p -= num::normal_cdf((4.0 * kk + 1.0) * zn / sqrt_n) -
         num::normal_cdf((4.0 * kk - 1.0) * zn / sqrt_n);
  }
  const long long k_lo2 = (-static_cast<long long>(n) / static_cast<long long>(z) - 3) / 4;
  const long long k_hi2 = (static_cast<long long>(n) / static_cast<long long>(z) - 1) / 4;
  for (long long k = k_lo2; k <= k_hi2; ++k) {
    const double kk = static_cast<double>(k);
    p += num::normal_cdf((4.0 * kk + 3.0) * zn / sqrt_n) -
         num::normal_cdf((4.0 * kk + 1.0) * zn / sqrt_n);
  }
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

TestResult cumulative_sums_test(const BitVec& bits) {
  TestResult r;
  r.name = "CumulativeSums";
  if (bits.size() < 2) return inapplicable(r.name, "need at least 2 bits");
  r.p_values.push_back(cusum_p_value(bits, /*forward=*/true));
  r.p_values.push_back(cusum_p_value(bits, /*forward=*/false));
  r.note = "forward, backward";
  return r;
}

}  // namespace ropuf::nist

// NIST SP 800-22 rev. 1a, sections 2.5, 2.6 and 2.9.
//
// Binary matrix rank, discrete Fourier transform (spectral), and Maurer's
// universal statistical test. All three need sequences far longer than the
// paper's 96-bit streams and report themselves inapplicable there; they are
// implemented in full because the suite is a reusable substrate (and the
// library's own RNG is validated against it in the tests).
#pragma once

#include "common/bitvec.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// 2.5 Binary matrix rank (32x32 blocks). Needs n >= 38 * 1024.
TestResult matrix_rank_test(const BitVec& bits);

/// 2.6 Discrete Fourier transform (spectral). Requires n >= 1000 (the NIST
/// recommendation; below it the discretized statistic breaks uniformity).
TestResult dft_test(const BitVec& bits);

/// 2.9 Maurer's universal statistical test. Needs n >= 387840 (L = 6).
TestResult universal_test(const BitVec& bits);

}  // namespace ropuf::nist

// The NIST multi-sequence "final analysis report".
//
// Tables I and II of the paper are exactly this artifact: per statistical
// test, the histogram of p-values over all tested sequences in ten bins
// (C1..C10), the uniformity p-value of that histogram (chi-square, 9 dof),
// and the proportion of sequences that passed at alpha = 0.01 together with
// the minimum acceptable proportion p_hat - 3 sqrt(p_hat (1-p_hat) / s).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "nist/test_result.h"

namespace ropuf::nist {

/// Aggregates per-sequence results into the NIST report.
class FinalAnalysisReport {
 public:
  /// Feeds one sequence's results. Tests with multiple p-values contribute
  /// one report row per sub-statistic (the NIST tool does the same, e.g.
  /// two CumulativeSums rows). Inapplicable results are skipped.
  void add_sequence(const std::vector<TestResult>& results);

  struct Row {
    std::string name;                 ///< test name (+ sub-index if several)
    std::array<std::size_t, 10> buckets{};  ///< C1..C10 p-value histogram
    double uniformity_p = 0.0;        ///< chi-square uniformity of p-values
    std::size_t passed = 0;           ///< sequences with p >= 0.01
    std::size_t total = 0;            ///< sequences scored
    bool proportion_ok = false;       ///< passed >= minimum pass count
    bool uniformity_ok = false;       ///< uniformity_p >= 0.0001 (NIST rule)
  };

  /// Finalized rows (uniformity recomputed on every call).
  std::vector<Row> rows() const;

  /// NIST minimum passing count for a sample of `total` sequences.
  static std::size_t min_pass_count(std::size_t total);

  /// True when every row satisfies both the proportion and the uniformity
  /// criteria — "passes the NIST test" in the paper's sense.
  bool all_pass() const;

  /// Renders the classic fixed-width report table.
  std::string render() const;

 private:
  struct Stream {
    std::string name;
    std::vector<double> p_values;
  };
  /// Finds or creates the accumulation stream for a named sub-statistic.
  Stream& stream(const std::string& name);

  std::vector<Stream> streams_;
};

}  // namespace ropuf::nist

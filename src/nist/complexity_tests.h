// NIST SP 800-22 rev. 1a, section 2.10: linear complexity.
#pragma once

#include "common/bitvec.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// 2.10 Linear complexity over blocks of `block_len` bits (Berlekamp-Massey
/// per block, chi-square over the K = 6 deviation classes). NIST recommends
/// 500 <= block_len <= 5000 and at least 200 blocks; at minimum one full
/// block is required.
TestResult linear_complexity_test(const BitVec& bits, std::size_t block_len = 500);

}  // namespace ropuf::nist

#include "nist/excursion_tests.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/special_functions.h"

namespace ropuf::nist {
namespace {

/// The +/-1 random walk S_1..S_n.
std::vector<long long> partial_sums(const BitVec& bits) {
  std::vector<long long> s(bits.size());
  long long acc = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    acc += bits.get(i) ? 1 : -1;
    s[i] = acc;
  }
  return s;
}

/// Number of zero-crossing cycles of the augmented walk 0, S_1..S_n, 0.
std::size_t cycle_count(const std::vector<long long>& walk) {
  std::size_t zeros = 0;
  for (const long long v : walk) {
    if (v == 0) ++zeros;
  }
  // Cycles = zeros within the walk + the final return appended by the test.
  return zeros + ((walk.empty() || walk.back() == 0) ? 0 : 1);
}

}  // namespace

TestResult random_excursions_test(const BitVec& bits) {
  TestResult r;
  r.name = "RandomExcursions";
  if (bits.size() < 128) return inapplicable(r.name, "sequence too short");
  const auto walk = partial_sums(bits);
  const std::size_t j = cycle_count(walk);
  if (j < 500) {
    return inapplicable(r.name, "fewer than 500 cycles (J=" + std::to_string(j) + ")");
  }

  // Visits-per-cycle histogram nu[k][state] for k = 0..5 (5 means ">= 5").
  static const int kStates[8] = {-4, -3, -2, -1, 1, 2, 3, 4};
  double nu[6][8] = {};
  std::size_t visits[8] = {};
  auto flush_cycle = [&]() {
    for (std::size_t s = 0; s < 8; ++s) {
      nu[std::min<std::size_t>(visits[s], 5)][s] += 1.0;
      visits[s] = 0;
    }
  };
  for (const long long v : walk) {
    if (v == 0) {
      flush_cycle();
    } else if (v >= -4 && v <= 4) {
      const std::size_t idx = static_cast<std::size_t>(v < 0 ? v + 4 : v + 3);
      ++visits[idx];
    }
  }
  if (walk.back() != 0) flush_cycle();  // the appended final return closes a cycle

  const double dj = static_cast<double>(j);
  for (std::size_t s = 0; s < 8; ++s) {
    const double x = std::abs(kStates[s]);
    // pi_k(x) from section 3.14.
    double pi[6];
    pi[0] = 1.0 - 1.0 / (2.0 * x);
    for (int k = 1; k <= 4; ++k) {
      pi[k] = (1.0 / (4.0 * x * x)) * std::pow(1.0 - 1.0 / (2.0 * x), k - 1);
    }
    pi[5] = (1.0 / (2.0 * x)) * std::pow(1.0 - 1.0 / (2.0 * x), 4.0);

    double chi2 = 0.0;
    for (std::size_t k = 0; k < 6; ++k) {
      const double expected = dj * pi[k];
      chi2 += (nu[k][s] - expected) * (nu[k][s] - expected) / expected;
    }
    r.p_values.push_back(num::igamc(2.5, chi2 / 2.0));
  }
  r.note = "J=" + std::to_string(j);
  return r;
}

TestResult random_excursions_variant_test(const BitVec& bits) {
  TestResult r;
  r.name = "RandomExcursionsVariant";
  if (bits.size() < 128) return inapplicable(r.name, "sequence too short");
  const auto walk = partial_sums(bits);
  const std::size_t j = cycle_count(walk);
  if (j < 500) {
    return inapplicable(r.name, "fewer than 500 cycles (J=" + std::to_string(j) + ")");
  }

  // Total visit counts xi(x) for x in -9..9 excluding 0.
  double xi[19] = {};
  for (const long long v : walk) {
    if (v >= -9 && v <= 9) xi[v + 9] += 1.0;
  }
  const double dj = static_cast<double>(j);
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    const double denom = std::sqrt(2.0 * dj * (4.0 * std::abs(x) - 2.0));
    r.p_values.push_back(num::erfc(std::fabs(xi[x + 9] - dj) / denom));
  }
  r.note = "J=" + std::to_string(j);
  return r;
}

}  // namespace ropuf::nist

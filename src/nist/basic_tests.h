// NIST SP 800-22 rev. 1a, sections 2.1-2.4 and 2.13.
//
// The five "basic" tests: monobit frequency, frequency within a block, runs,
// longest run of ones in a block, and cumulative sums. These (plus serial
// and approximate entropy from pattern_tests.h) are the tests applicable to
// the paper's 96-bit response streams.
#pragma once

#include "common/bitvec.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// 2.1 Frequency (monobit). Applicable for n >= 1 (NIST recommends >= 100).
TestResult frequency_test(const BitVec& bits);

/// 2.2 Frequency within a block. Requires n >= block_len and at least one
/// full block; NIST recommends block_len >= 20 and > 0.01 n.
TestResult block_frequency_test(const BitVec& bits, std::size_t block_len = 128);

/// 2.3 Runs.
TestResult runs_test(const BitVec& bits);

/// 2.4 Longest run of ones in a block. NIST defines parameter sets for
/// n >= 128 (M=8), n >= 6272 (M=128) and n >= 750000 (M=10^4); shorter
/// sequences are inapplicable.
TestResult longest_run_test(const BitVec& bits);

/// 2.13 Cumulative sums, forward and backward (two p-values).
TestResult cumulative_sums_test(const BitVec& bits);

}  // namespace ropuf::nist

#include "nist/complexity_tests.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "numeric/berlekamp_massey.h"
#include "numeric/special_functions.h"

namespace ropuf::nist {

TestResult linear_complexity_test(const BitVec& bits, std::size_t block_len) {
  TestResult r;
  r.name = "LinearComplexity";
  ROPUF_REQUIRE(block_len >= 4, "block length too small");
  const std::size_t blocks = bits.size() / block_len;
  if (blocks == 0) return inapplicable(r.name, "sequence shorter than one block");

  constexpr std::size_t kCategories = 7;  // K = 6
  static const double kPi[kCategories] = {0.010417, 0.03125, 0.12500, 0.50000,
                                          0.25000,  0.06250, 0.020833};

  const double dM = static_cast<double>(block_len);
  const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;  // (-1)^M
  const double mu = dM / 2.0 + (9.0 - sign) / 36.0 -
                    (dM / 3.0 + 2.0 / 9.0) / std::pow(2.0, dM);

  std::vector<double> nu(kCategories, 0.0);
  std::vector<int> block(block_len);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < block_len; ++i) {
      block[i] = bits.get(b * block_len + i) ? 1 : 0;
    }
    const double l = static_cast<double>(num::linear_complexity(block));
    const double t = sign * (l - mu) + 2.0 / 9.0;
    std::size_t bucket;
    if (t <= -2.5) {
      bucket = 0;
    } else if (t <= -1.5) {
      bucket = 1;
    } else if (t <= -0.5) {
      bucket = 2;
    } else if (t <= 0.5) {
      bucket = 3;
    } else if (t <= 1.5) {
      bucket = 4;
    } else if (t <= 2.5) {
      bucket = 5;
    } else {
      bucket = 6;
    }
    nu[bucket] += 1.0;
  }

  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t c = 0; c < kCategories; ++c) {
    const double expected = nb * kPi[c];
    chi2 += (nu[c] - expected) * (nu[c] - expected) / expected;
  }
  r.p_values.push_back(num::igamc(3.0, chi2 / 2.0));  // K/2 with K = 6
  r.note = "M=" + std::to_string(block_len) + ", N=" + std::to_string(blocks);
  return r;
}

}  // namespace ropuf::nist

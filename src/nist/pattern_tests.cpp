#include "nist/pattern_tests.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/special_functions.h"

namespace ropuf::nist {
namespace {

/// Counts of every overlapping m-bit pattern, with circular wraparound
/// (the serial / approximate-entropy convention).
std::vector<double> circular_pattern_counts(const BitVec& bits, std::size_t m) {
  const std::size_t n = bits.size();
  std::vector<double> counts(std::size_t{1} << m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < m; ++j) {
      v = (v << 1) | (bits.get((i + j) % n) ? 1u : 0u);
    }
    counts[v] += 1.0;
  }
  return counts;
}

/// psi-squared statistic of section 2.11.4.
double psi_squared(const BitVec& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const double n = static_cast<double>(bits.size());
  const auto counts = circular_pattern_counts(bits, m);
  double sum = 0.0;
  for (const double c : counts) sum += c * c;
  return sum * static_cast<double>(std::size_t{1} << m) / n - n;
}

/// phi statistic of section 2.12.4.
double phi(const BitVec& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const double n = static_cast<double>(bits.size());
  const auto counts = circular_pattern_counts(bits, m);
  double sum = 0.0;
  for (const double c : counts) {
    if (c > 0.0) sum += (c / n) * std::log(c / n);
  }
  return sum;
}

}  // namespace

std::vector<BitVec> aperiodic_templates(std::size_t m) {
  ROPUF_REQUIRE(m >= 2 && m <= 16, "template length out of supported range");
  std::vector<BitVec> templates;
  for (std::size_t pattern = 0; pattern < (std::size_t{1} << m); ++pattern) {
    bool aperiodic = true;
    // Shift-overlap check: suffix of length m-k must differ from the prefix.
    for (std::size_t k = 1; k < m && aperiodic; ++k) {
      bool overlap = true;
      for (std::size_t i = 0; i < m - k; ++i) {
        const bool prefix_bit = (pattern >> (m - 1 - i)) & 1u;
        const bool suffix_bit = (pattern >> (m - 1 - (i + k))) & 1u;
        if (prefix_bit != suffix_bit) {
          overlap = false;
          break;
        }
      }
      if (overlap) aperiodic = false;
    }
    if (!aperiodic) continue;
    BitVec t(m);
    for (std::size_t i = 0; i < m; ++i) t.set(i, (pattern >> (m - 1 - i)) & 1u);
    templates.push_back(t);
  }
  return templates;
}

TestResult non_overlapping_template_test(const BitVec& bits, std::size_t m) {
  TestResult r;
  r.name = "NonOverlappingTemplate";
  constexpr std::size_t kBlocks = 8;
  const std::size_t n = bits.size();
  const std::size_t block_len = n / kBlocks;
  if (block_len < 2 * m) {
    return inapplicable(r.name, "blocks too short for template length");
  }

  const double dm = static_cast<double>(m);
  const double dM = static_cast<double>(block_len);
  const double mean = (dM - dm + 1.0) / std::pow(2.0, dm);
  const double variance =
      dM * (1.0 / std::pow(2.0, dm) - (2.0 * dm - 1.0) / std::pow(2.0, 2.0 * dm));
  if (mean <= 0.0 || variance <= 0.0) {
    return inapplicable(r.name, "degenerate statistics for these parameters");
  }

  for (const BitVec& tmpl : aperiodic_templates(m)) {
    double chi2 = 0.0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
      std::size_t count = 0;
      std::size_t i = 0;
      while (i + m <= block_len) {
        bool match = true;
        for (std::size_t j = 0; j < m; ++j) {
          if (bits.get(b * block_len + i + j) != tmpl.get(j)) {
            match = false;
            break;
          }
        }
        if (match) {
          ++count;
          i += m;  // non-overlapping scan restarts after a hit
        } else {
          ++i;
        }
      }
      const double w = static_cast<double>(count);
      chi2 += (w - mean) * (w - mean) / variance;
    }
    r.p_values.push_back(num::igamc(static_cast<double>(kBlocks) / 2.0, chi2 / 2.0));
  }
  r.note = "m=" + std::to_string(m) + ", one p-value per template";
  return r;
}

TestResult overlapping_template_test(const BitVec& bits, std::size_t m) {
  TestResult r;
  r.name = "OverlappingTemplate";
  constexpr std::size_t kBlockLen = 1032;
  constexpr std::size_t kCategories = 6;
  // Class probabilities for M = 1032, m = 9 (section 2.8.4 / rev. 1a).
  static const double kPi[kCategories] = {0.364091, 0.185659, 0.139381,
                                          0.100571, 0.070432, 0.139865};
  if (m != 9) return inapplicable(r.name, "class probabilities defined for m = 9");
  const std::size_t blocks = bits.size() / kBlockLen;
  if (blocks < 5) return inapplicable(r.name, "needs at least 5 blocks of 1032 bits");

  std::vector<double> nu(kCategories, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t count = 0;
    for (std::size_t i = 0; i + m <= kBlockLen; ++i) {
      bool all_ones = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (!bits.get(b * kBlockLen + i + j)) {
          all_ones = false;
          break;
        }
      }
      if (all_ones) ++count;
    }
    nu[std::min(count, kCategories - 1)] += 1.0;
  }

  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t c = 0; c < kCategories; ++c) {
    const double expected = nb * kPi[c];
    chi2 += (nu[c] - expected) * (nu[c] - expected) / expected;
  }
  r.p_values.push_back(num::igamc(static_cast<double>(kCategories - 1) / 2.0, chi2 / 2.0));
  r.note = "N=" + std::to_string(blocks);
  return r;
}

TestResult serial_test(const BitVec& bits, std::size_t m) {
  TestResult r;
  r.name = "Serial";
  const std::size_t n = bits.size();
  if (m < 2 || m > n || m > 20) {
    return inapplicable(r.name, "requires 2 <= m <= min(n, 20)");
  }
  // NIST recommends m < log2(n) - 2; the worked examples (and the paper's
  // 96-bit streams) run outside it, so it is advisory here.
  if (static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 2.0) {
    r.note = "m exceeds recommended bound; ";
  }

  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  // Both deltas are non-negative by construction; clamp float round-off.
  const double del1 = std::max(0.0, psi_m - psi_m1);
  const double del2 = std::max(0.0, psi_m - 2.0 * psi_m1 + psi_m2);

  r.p_values.push_back(num::igamc(std::pow(2.0, static_cast<double>(m) - 2.0), del1 / 2.0));
  r.p_values.push_back(num::igamc(std::pow(2.0, static_cast<double>(m) - 3.0), del2 / 2.0));
  r.note += "m=" + std::to_string(m);
  return r;
}

TestResult approximate_entropy_test(const BitVec& bits, std::size_t m) {
  TestResult r;
  r.name = "ApproximateEntropy";
  const std::size_t n = bits.size();
  if (m < 1 || m + 1 > n || m > 20) {
    return inapplicable(r.name, "requires 1 <= m, m + 1 <= n, m <= 20");
  }
  // NIST recommends m < log2(n) - 5; advisory (see serial_test).
  if (static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 5.0) {
    r.note = "m exceeds recommended bound; ";
  }

  const double apen = phi(bits, m) - phi(bits, m + 1);
  const double chi2 =
      std::max(0.0, 2.0 * static_cast<double>(n) * (std::log(2.0) - apen));
  r.p_values.push_back(
      num::igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0));
  r.note += "m=" + std::to_string(m);
  return r;
}

}  // namespace ropuf::nist

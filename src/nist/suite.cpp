#include "nist/suite.h"

#include "nist/basic_tests.h"
#include "nist/complexity_tests.h"
#include "nist/excursion_tests.h"
#include "nist/pattern_tests.h"
#include "nist/spectral_tests.h"

namespace ropuf::nist {

SuiteConfig paper_config() {
  SuiteConfig config;
  config.block_frequency_block = 8;   // 12 blocks in a 96-bit stream
  config.serial_m = 3;
  config.approximate_entropy_m = 2;
  config.include_template_tests = false;
  config.include_excursion_tests = false;
  config.include_cusum = false;  // discretized at 96 bits; see SuiteConfig
  return config;
}

std::vector<TestResult> run_suite(const BitVec& bits, const SuiteConfig& config) {
  std::vector<TestResult> results;
  results.push_back(frequency_test(bits));
  results.push_back(block_frequency_test(bits, config.block_frequency_block));
  if (config.include_cusum) results.push_back(cumulative_sums_test(bits));
  results.push_back(runs_test(bits));
  results.push_back(longest_run_test(bits));
  results.push_back(matrix_rank_test(bits));
  results.push_back(dft_test(bits));
  if (config.include_template_tests) {
    results.push_back(non_overlapping_template_test(bits, config.non_overlapping_m));
    results.push_back(overlapping_template_test(bits));
  }
  results.push_back(universal_test(bits));
  results.push_back(linear_complexity_test(bits, config.linear_complexity_block));
  results.push_back(serial_test(bits, config.serial_m));
  results.push_back(approximate_entropy_test(bits, config.approximate_entropy_m));
  if (config.include_excursion_tests) {
    results.push_back(random_excursions_test(bits));
    results.push_back(random_excursions_variant_test(bits));
  }
  return results;
}

}  // namespace ropuf::nist

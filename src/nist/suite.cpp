#include "nist/suite.h"

#include <chrono>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "nist/basic_tests.h"
#include "nist/complexity_tests.h"
#include "nist/excursion_tests.h"
#include "nist/pattern_tests.h"
#include "nist/spectral_tests.h"

namespace ropuf::nist {

SuiteConfig paper_config() {
  SuiteConfig config;
  config.block_frequency_block = 8;   // 12 blocks in a 96-bit stream
  config.serial_m = 3;
  config.approximate_entropy_m = 2;
  config.include_template_tests = false;
  config.include_excursion_tests = false;
  config.include_cusum = false;  // discretized at 96 bits; see SuiteConfig
  return config;
}

std::vector<TestResult> run_suite(const BitVec& bits, const SuiteConfig& config,
                                  ThreadBudget threads) {
  // The battery in canonical order, as independent closures over `bits`;
  // each writes only its own slot, so the report order never depends on the
  // thread count.
  using Test = std::function<TestResult()>;
  std::vector<Test> battery;
  battery.push_back([&] { return frequency_test(bits); });
  battery.push_back([&] { return block_frequency_test(bits, config.block_frequency_block); });
  if (config.include_cusum) battery.push_back([&] { return cumulative_sums_test(bits); });
  battery.push_back([&] { return runs_test(bits); });
  battery.push_back([&] { return longest_run_test(bits); });
  battery.push_back([&] { return matrix_rank_test(bits); });
  battery.push_back([&] { return dft_test(bits); });
  if (config.include_template_tests) {
    battery.push_back(
        [&] { return non_overlapping_template_test(bits, config.non_overlapping_m); });
    battery.push_back([&] { return overlapping_template_test(bits); });
  }
  battery.push_back([&] { return universal_test(bits); });
  battery.push_back(
      [&] { return linear_complexity_test(bits, config.linear_complexity_block); });
  battery.push_back([&] { return serial_test(bits, config.serial_m); });
  battery.push_back(
      [&] { return approximate_entropy_test(bits, config.approximate_entropy_m); });
  if (config.include_excursion_tests) {
    battery.push_back([&] { return random_excursions_test(bits); });
    battery.push_back([&] { return random_excursions_variant_test(bits); });
  }
  static obs::Counter& suites_run = obs::Registry::instance().counter("nist.suites_run");
  static obs::Counter& tests_run = obs::Registry::instance().counter("nist.tests_run");
  const obs::TraceSpan suite_span("nist.suite");
  suites_run.add(1);
  tests_run.add(battery.size());
  return parallel_transform<TestResult>(battery.size(), threads, [&](std::size_t t) {
    // Per-test timing is keyed by the result's canonical name, so the
    // histogram has to be looked up after the test ran; ScopedLatency
    // doesn't fit and the clock is read manually (only when enabled).
    const obs::TraceSpan test_span("nist.test");
    if (!obs::metrics_enabled()) return battery[t]();
    const auto start = std::chrono::steady_clock::now();
    TestResult result = battery[t]();
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    obs::Registry::instance().latency_histogram("nist.test_us." + result.name)
        .record(elapsed.count());
    return result;
  });
}

}  // namespace ropuf::nist

// Driver that runs a configured battery of SP 800-22 tests on one sequence.
#pragma once

#include <vector>

#include "common/bitvec.h"
#include "common/parallel.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// Per-test parameters of a suite run. Defaults follow the NIST reference
/// configuration for long streams.
struct SuiteConfig {
  std::size_t block_frequency_block = 128;
  std::size_t serial_m = 16;
  std::size_t approximate_entropy_m = 10;
  std::size_t non_overlapping_m = 9;
  std::size_t linear_complexity_block = 500;
  /// Template/excursion tests are expensive and pointless on short streams;
  /// switching them off removes them from the run entirely (rather than
  /// reporting them inapplicable).
  bool include_template_tests = true;
  bool include_excursion_tests = true;
  /// Cumulative sums is sound per-sequence at any length, but on very short
  /// streams its max-excursion statistic takes so few distinct values that
  /// the multi-sequence uniformity meta-test fails even for ideal
  /// randomness. paper_config() therefore drops it (see EXPERIMENTS.md).
  bool include_cusum = true;
};

/// Parameters suitable for the paper's 96-bit response streams: small block
/// and pattern lengths, long-stream-only tests disabled. This mirrors what
/// the NIST tool effectively runs at such lengths.
SuiteConfig paper_config();

/// Runs every configured test; inapplicable tests are reported as such.
/// The tests are independent pure functions of `bits`, so they run across
/// the thread budget with results in the battery's canonical order —
/// identical output at any thread count. Callers already inside a parallel
/// region (e.g. a per-stream fleet loop) fall back to inline execution.
std::vector<TestResult> run_suite(const BitVec& bits, const SuiteConfig& config,
                                  ThreadBudget threads = ThreadBudget());

}  // namespace ropuf::nist

#include "nist/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "numeric/special_functions.h"

namespace ropuf::nist {

void FinalAnalysisReport::add_sequence(const std::vector<TestResult>& results) {
  for (const TestResult& result : results) {
    if (!result.applicable) continue;
    for (std::size_t k = 0; k < result.p_values.size(); ++k) {
      std::string name = result.name;
      if (result.p_values.size() > 1) name += "-" + std::to_string(k + 1);
      stream(name).p_values.push_back(result.p_values[k]);
    }
  }
}

FinalAnalysisReport::Stream& FinalAnalysisReport::stream(const std::string& name) {
  for (Stream& s : streams_) {
    if (s.name == name) return s;
  }
  streams_.push_back(Stream{name, {}});
  return streams_.back();
}

std::size_t FinalAnalysisReport::min_pass_count(std::size_t total) {
  ROPUF_REQUIRE(total > 0, "empty sample");
  const double p_hat = 1.0 - kAlpha;
  const double bound =
      p_hat - 3.0 * std::sqrt(p_hat * kAlpha / static_cast<double>(total));
  // NIST's report prints the truncated bound ("approximately 93 for 97
  // sequences"); we adopt the same convention for both display and check.
  return static_cast<std::size_t>(bound * static_cast<double>(total));
}

std::vector<FinalAnalysisReport::Row> FinalAnalysisReport::rows() const {
  std::vector<Row> rows;
  rows.reserve(streams_.size());
  for (const Stream& s : streams_) {
    Row row;
    row.name = s.name;
    row.total = s.p_values.size();
    for (const double p : s.p_values) {
      // Bucket k covers [k/10, (k+1)/10); p = 1.0 lands in the last bucket.
      const std::size_t bucket =
          std::min<std::size_t>(9, static_cast<std::size_t>(p * 10.0));
      ++row.buckets[bucket];
      if (p >= kAlpha) ++row.passed;
    }
    if (row.total > 0) {
      // Uniformity: chi-square of the 10 bins against the uniform law.
      const double expected = static_cast<double>(row.total) / 10.0;
      double chi2 = 0.0;
      for (const std::size_t count : row.buckets) {
        const double diff = static_cast<double>(count) - expected;
        chi2 += diff * diff / expected;
      }
      row.uniformity_p = num::igamc(4.5, chi2 / 2.0);  // 9 dof
      row.proportion_ok = row.passed >= min_pass_count(row.total);
      row.uniformity_ok = row.uniformity_p >= 0.0001;
    }
    rows.push_back(row);
  }
  return rows;
}

bool FinalAnalysisReport::all_pass() const {
  const auto all = rows();
  if (all.empty()) return false;
  for (const Row& row : all) {
    if (!row.proportion_ok || !row.uniformity_ok) return false;
  }
  return true;
}

std::string FinalAnalysisReport::render() const {
  std::ostringstream os;
  os << "------------------------------------------------------------------------------\n";
  os << " C1  C2  C3  C4  C5  C6  C7  C8  C9 C10  P-VALUE  PROPORTION  STATISTICAL TEST\n";
  os << "------------------------------------------------------------------------------\n";
  for (const Row& row : rows()) {
    for (const std::size_t count : row.buckets) {
      os.width(3);
      os << count << " ";
    }
    os.setf(std::ios::fixed);
    os.precision(6);
    os.width(8);
    os << row.uniformity_p << (row.uniformity_ok ? "  " : " *");
    os << " ";
    os.width(4);
    os << row.passed << "/" << row.total << (row.proportion_ok ? "    " : " *  ");
    os << "  " << row.name << "\n";
  }
  const auto all = rows();
  if (!all.empty()) {
    os << "------------------------------------------------------------------------------\n";
    os << "The minimum pass rate for each statistical test is approximately "
       << min_pass_count(all.front().total) << " for a sample size of "
       << all.front().total << " binary sequences.\n";
  }
  return os.str();
}

}  // namespace ropuf::nist

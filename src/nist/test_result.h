// Common result type of the NIST SP 800-22 statistical tests.
//
// Each test maps a bit sequence to one or more p-values (some tests, e.g.
// cumulative sums or serial, are defined with two; random excursions with
// eight). A test may also declare itself inapplicable when the sequence is
// shorter than the test's validity requirements — the paper's 96-bit
// streams support only a subset of the suite, exactly as the NIST guidance
// prescribes.
#pragma once

#include <string>
#include <vector>

namespace ropuf::nist {

/// NIST's per-sequence significance level: a sequence passes a test when
/// p >= 0.01.
inline constexpr double kAlpha = 0.01;

/// Outcome of one statistical test on one sequence.
struct TestResult {
  std::string name;               ///< e.g. "Frequency", "Serial"
  std::vector<double> p_values;   ///< one entry per sub-statistic
  bool applicable = true;         ///< false when n violates test preconditions
  std::string note;               ///< applicability detail / parameters

  /// Pass/fail at the NIST significance level (all sub-p-values must pass).
  bool passed() const {
    if (!applicable) return false;
    for (const double p : p_values) {
      if (p < kAlpha) return false;
    }
    return !p_values.empty();
  }
};

/// Convenience constructor for an inapplicable outcome.
TestResult inapplicable(const std::string& name, const std::string& why);

}  // namespace ropuf::nist

#include "nist/spectral_tests.h"

#include <cmath>
#include <vector>

#include "numeric/fft.h"
#include "numeric/gf2.h"
#include "numeric/special_functions.h"

namespace ropuf::nist {

TestResult matrix_rank_test(const BitVec& bits) {
  TestResult r;
  r.name = "Rank";
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kBlockBits = kDim * kDim;
  const std::size_t blocks = bits.size() / kBlockBits;
  if (blocks < 38) return inapplicable(r.name, "needs at least 38 32x32 blocks (38912 bits)");

  // Asymptotic probabilities of rank 32 / 31 / <=30 (SP 800-22 section 3.5).
  constexpr double kPFull = 0.2888;
  constexpr double kPMinus1 = 0.5776;
  constexpr double kPRest = 0.1336;

  double f_full = 0.0, f_minus1 = 0.0, f_rest = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    num::Gf2Matrix m(kDim, kDim);
    for (std::size_t row = 0; row < kDim; ++row) {
      for (std::size_t col = 0; col < kDim; ++col) {
        m.set(row, col, bits.get(b * kBlockBits + row * kDim + col));
      }
    }
    const std::size_t rank = m.rank();
    if (rank == kDim) {
      f_full += 1.0;
    } else if (rank == kDim - 1) {
      f_minus1 += 1.0;
    } else {
      f_rest += 1.0;
    }
  }

  const double nb = static_cast<double>(blocks);
  const double chi2 = (f_full - kPFull * nb) * (f_full - kPFull * nb) / (kPFull * nb) +
                      (f_minus1 - kPMinus1 * nb) * (f_minus1 - kPMinus1 * nb) /
                          (kPMinus1 * nb) +
                      (f_rest - kPRest * nb) * (f_rest - kPRest * nb) / (kPRest * nb);
  r.p_values.push_back(std::exp(-chi2 / 2.0));  // igamc(1, x/2) = exp(-x/2)
  r.note = "N=" + std::to_string(blocks);
  return r;
}

TestResult dft_test(const BitVec& bits) {
  TestResult r;
  r.name = "FFT";
  const std::size_t n = bits.size();
  // NIST recommends n >= 1000; below that the sub-threshold count N1 takes
  // so few distinct values that the p-value histogram cannot be uniform.
  if (n < 1000) return inapplicable(r.name, "needs n >= 1000");

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits.get(i) ? 1.0 : -1.0;
  const std::vector<double> mags = num::dft_magnitudes(x);

  // Peak threshold T and expected sub-threshold count (rev. 1a constants).
  const double dn = static_cast<double>(n);
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * dn);
  const double n0 = 0.95 * dn / 2.0;
  double n1 = 0.0;
  for (std::size_t j = 0; j < n / 2; ++j) {
    if (mags[j] < threshold) n1 += 1.0;
  }
  const double d = (n1 - n0) / std::sqrt(dn * 0.95 * 0.05 / 4.0);
  r.p_values.push_back(num::erfc(std::fabs(d) / std::sqrt(2.0)));
  return r;
}

TestResult universal_test(const BitVec& bits) {
  TestResult r;
  r.name = "Universal";
  const std::size_t n = bits.size();

  // Block length selection and distribution constants (section 2.9.4 /
  // reference implementation tables).
  struct Params {
    std::size_t min_n;
    std::size_t block_len;
    double expected;
    double variance;
  };
  static const Params kTable[] = {
      {1059061760, 16, 15.167379, 3.421}, {496435200, 15, 14.167488, 3.419},
      {231669760, 14, 13.167693, 3.416},  {107560960, 13, 12.168070, 3.410},
      {49643520, 12, 11.168765, 3.401},   {22753280, 11, 10.170032, 3.384},
      {10342400, 10, 9.1723243, 3.356},   {4654080, 9, 8.1764248, 3.311},
      {2068480, 8, 7.1836656, 3.238},     {904960, 7, 6.1962507, 3.125},
      {387840, 6, 5.2177052, 2.954},
  };

  std::size_t block_len = 0;
  double expected = 0.0, variance = 0.0;
  for (const Params& p : kTable) {
    if (n >= p.min_n) {
      block_len = p.block_len;
      expected = p.expected;
      variance = p.variance;
      break;
    }
  }
  if (block_len == 0) return inapplicable(r.name, "needs n >= 387840");

  const std::size_t q = 10u * (std::size_t{1} << block_len);  // init blocks
  const std::size_t total_blocks = n / block_len;
  const std::size_t k = total_blocks - q;  // test blocks

  std::vector<std::size_t> last_seen(std::size_t{1} << block_len, 0);
  auto block_value = [&](std::size_t blk) {
    std::size_t v = 0;
    for (std::size_t i = 0; i < block_len; ++i) {
      v = (v << 1) | (bits.get(blk * block_len + i) ? 1u : 0u);
    }
    return v;
  };

  for (std::size_t blk = 0; blk < q; ++blk) last_seen[block_value(blk)] = blk + 1;

  double sum = 0.0;
  for (std::size_t blk = q; blk < total_blocks; ++blk) {
    const std::size_t v = block_value(blk);
    sum += std::log2(static_cast<double>(blk + 1 - last_seen[v]));
    last_seen[v] = blk + 1;
  }
  const double fn = sum / static_cast<double>(k);

  const double dl = static_cast<double>(block_len);
  const double dk = static_cast<double>(k);
  const double c = 0.7 - 0.8 / dl + (4.0 + 32.0 / dl) * std::pow(dk, -3.0 / dl) / 15.0;
  const double sigma = c * std::sqrt(variance / dk);
  r.p_values.push_back(num::erfc(std::fabs(fn - expected) / (std::sqrt(2.0) * sigma)));
  r.note = "L=" + std::to_string(block_len);
  return r;
}

}  // namespace ropuf::nist

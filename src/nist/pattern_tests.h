// NIST SP 800-22 rev. 1a, sections 2.7, 2.8, 2.11, 2.12.
//
// Pattern-frequency tests: non-overlapping and overlapping template
// matching, serial, and approximate entropy. Serial and approximate entropy
// run on the paper's 96-bit streams (with small m); the template tests need
// longer inputs and gate themselves.
#pragma once

#include <vector>

#include "common/bitvec.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// All aperiodic templates of length m (a template is aperiodic when no
/// proper shift of it overlaps itself). NIST ships these as data files; this
/// generates them. Counts match NIST's: 2, 4, 6, 12, 20, 40, 74, 148 for
/// m = 2..9.
std::vector<BitVec> aperiodic_templates(std::size_t m);

/// 2.7 Non-overlapping template matching: one p-value per aperiodic
/// template of length m, over N = 8 independent blocks.
TestResult non_overlapping_template_test(const BitVec& bits, std::size_t m = 9);

/// 2.8 Overlapping template matching (template of m ones, M = 1032).
TestResult overlapping_template_test(const BitVec& bits, std::size_t m = 9);

/// 2.11 Serial test with overlapping m-patterns (two p-values). Requires
/// 2 <= m < log2(n) - 2 per the NIST guidance.
TestResult serial_test(const BitVec& bits, std::size_t m = 16);

/// 2.12 Approximate entropy. Requires m < log2(n) - 5 per the guidance.
TestResult approximate_entropy_test(const BitVec& bits, std::size_t m = 10);

}  // namespace ropuf::nist

// NIST SP 800-22 rev. 1a, sections 2.14 and 2.15: random excursions.
#pragma once

#include "common/bitvec.h"
#include "nist/test_result.h"

namespace ropuf::nist {

/// 2.14 Random excursions: 8 p-values, one per state x in {-4..-1, 1..4}.
/// Inapplicable when the random walk has fewer than 500 zero-crossing
/// cycles (the NIST abort rule).
TestResult random_excursions_test(const BitVec& bits);

/// 2.15 Random excursions variant: 18 p-values, one per state x in
/// {-9..-1, 1..9}; same cycle-count applicability rule.
TestResult random_excursions_variant_test(const BitVec& bits);

}  // namespace ropuf::nist

// Synthetic stand-ins for the paper's two measurement datasets.
//
// The paper evaluates on (a) the public Virginia Tech RO PUF dataset — 194
// Spartan-3E boards measured at the nominal corner plus 5 boards swept over
// five voltages and five temperatures — and (b) in-house inverter-level
// measurements of 9 Virtex-5 boards with 1024 inverters each. Neither is
// shipped here; these generators mint statistically equivalent fleets from
// the process model (see DESIGN.md section 3 for the substitution argument).
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "silicon/fabrication.h"

namespace ropuf::sil {

/// Parameters of the VT-dataset substitute.
struct VtFleetSpec {
  std::size_t nominal_boards = 194;  ///< boards measured only at 1.20 V / 25 C
  std::size_t env_boards = 5;        ///< boards swept over V and T
  std::size_t grid_cols = 16;        ///< 16 x 32 = 512 units per board,
  std::size_t grid_rows = 32;        ///< matching the VT dataset's 512 ROs
  ProcessParams process;
  std::uint64_t seed = 0x20140601;   ///< default fixes the published numbers
  ThreadBudget threads;              ///< minting parallelism (default: auto)
};

/// The minted fleet. Chips are full physical models, so "nominal" boards can
/// in principle be measured anywhere; the split only mirrors which boards
/// the paper's experiments may touch at which corners.
struct VtFleet {
  std::vector<Chip> nominal;
  std::vector<Chip> env;
};

VtFleet make_vt_fleet(const VtFleetSpec& spec);

/// Parameters of the in-house Virtex-5 substitute (Section IV.E): 9 boards,
/// 1024 inverters each, measured at inverter level.
struct InHouseFleetSpec {
  std::size_t boards = 9;
  std::size_t grid_cols = 32;  ///< 32 x 32 = 1024 units
  std::size_t grid_rows = 32;
  ProcessParams process;
  std::uint64_t seed = 0x20140602;
  ThreadBudget threads;  ///< minting parallelism (default: auto)
};

std::vector<Chip> make_inhouse_fleet(const InHouseFleetSpec& spec);

}  // namespace ropuf::sil

// Measurement-table interchange (CSV).
//
// The evaluation pipeline consumes per-board tables of unit values — the
// shape of the public Virginia Tech RO PUF dataset the paper uses. This
// module serializes such tables so that (a) the synthetic fleets can be
// exported for external analysis, and (b) anyone holding the *real*
// dataset can feed it to the same pipeline (analysis::table_responses)
// instead of the simulator.
//
// Format: a header line `ropuf-dataset,<cols>,<rows>`, then one line per
// board with cols*rows comma-separated values in row-major unit order.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "silicon/chip.h"

namespace ropuf::sil {

/// Per-board, per-unit measurement values at one operating corner.
struct MeasurementTable {
  std::size_t grid_cols = 0;
  std::size_t grid_rows = 0;
  std::vector<std::vector<double>> boards;  ///< [board][unit], row-major

  std::size_t units_per_board() const { return grid_cols * grid_rows; }

  /// Die location of a unit index (same convention as Chip).
  DieLocation location(std::size_t unit) const;
};

/// Renders a table to CSV.
std::string to_csv(const MeasurementTable& table);

/// Parses the CSV format; throws ropuf::Error on malformed content.
MeasurementTable from_csv(const std::string& csv);

/// Snapshots a fleet at one corner into a table (per-unit ddiff values plus
/// Gaussian measurement noise), e.g. for export.
MeasurementTable snapshot_fleet(const std::vector<Chip>& boards, const OperatingPoint& op,
                                double noise_sigma_ps, Rng& rng);

}  // namespace ropuf::sil

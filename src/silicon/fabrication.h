// Fabrication: sampling process variation to mint chips.
//
// The variation model has three layers, matching what the paper's data
// embodies and what the distiller reference [18] assumes:
//
//  1. A *common systematic* spatial trend shared by every chip of a fleet
//     (layout- and tooling-induced). This is what correlates nominally
//     identical chips, biases raw PUF bits, and makes them fail the NIST
//     tests until the distiller removes it (paper Section IV.A).
//  2. A *per-chip systematic* spatial trend (wafer-position gradient),
//     smooth over the die, random across chips.
//  3. *Random mismatch*: i.i.d. Gaussian per device, the actual entropy
//     source of the PUF.
//
// Environment-sensitivity mismatch is sampled per device as threshold-
// voltage and temperature-coefficient spread (see environment.h).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "numeric/polyfit.h"
#include "silicon/chip.h"

namespace ropuf::sil {

/// Knobs of the process-variation model. Defaults are calibrated so the
/// reproduction benches land in the paper's regime (see DESIGN.md).
struct ProcessParams {
  // Nominal timing arcs of a delay unit (Fig. 2 of the paper).
  double inverter_delay_ps = 1000.0;
  double mux_sel_delay_ps = 350.0;
  double mux_skip_delay_ps = 300.0;

  // Relative process variation.
  double random_sigma_rel = 0.010;        ///< per-device i.i.d. mismatch
  double common_systematic_amp = 0.015;   ///< fleet-shared spatial trend
  double chip_systematic_amp = 0.010;     ///< per-chip spatial trend
  std::size_t systematic_degree = 2;      ///< polynomial degree of the trends

  // Environment-sensitivity mismatch.
  double vth_v = 0.40;
  double vth_sigma_v = 0.008;
  double tempco_per_c = 6.0e-4;
  double tempco_sigma_per_c = 2.0e-5;

  EnvModel env;
};

/// A smooth random spatial trend: a zero-constant-term 2-D polynomial whose
/// coefficients are drawn once and evaluated on normalized die coordinates.
class SpatialTrend {
 public:
  /// Draws a trend of the given total degree whose values over the unit
  /// square have roughly the requested amplitude (standard deviation).
  static SpatialTrend sample(std::size_t degree, double amplitude, Rng& rng);

  /// Zero trend (useful to switch systematic variation off in ablations).
  static SpatialTrend zero();

  double eval(const DieLocation& loc) const;

 private:
  num::Poly2D poly_;
};

/// Mints chips from a shared process description.
class Fab {
 public:
  /// `seed` fixes both the fleet-common trend and the per-chip streams, so
  /// a Fab constructed twice with equal arguments mints identical fleets.
  Fab(ProcessParams params, std::uint64_t seed);

  const ProcessParams& params() const { return params_; }

  /// Fabricates the next chip with a grid_cols x grid_rows array of delay
  /// units. Successive calls yield distinct chips of the same process.
  Chip fabricate(std::size_t grid_cols, std::size_t grid_rows);

  /// Advances the fab's stream by one chip and returns that chip's private
  /// generator. Forking is the only order-sensitive part of fabrication, so
  /// a fleet builder forks all chip streams serially up front and then mints
  /// the chips in parallel via fabricate_with — yielding exactly the chips
  /// that sequential fabricate() calls would.
  Rng fork_chip_stream();

  /// Mints one chip from an already-forked stream. Const (reads only the
  /// process params and the fleet-common trend), hence safe to call
  /// concurrently with distinct generators.
  Chip fabricate_with(Rng& chip_rng, std::size_t grid_cols, std::size_t grid_rows) const;

 private:
  ProcessParams params_;
  Rng rng_;
  SpatialTrend common_trend_;
};

}  // namespace ropuf::sil

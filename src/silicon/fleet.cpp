#include "silicon/fleet.h"

#include "common/error.h"

namespace ropuf::sil {

VtFleet make_vt_fleet(const VtFleetSpec& spec) {
  ROPUF_REQUIRE(spec.nominal_boards > 0, "fleet needs at least one nominal board");
  Fab fab(spec.process, spec.seed);
  VtFleet fleet;
  fleet.nominal.reserve(spec.nominal_boards);
  fleet.env.reserve(spec.env_boards);
  for (std::size_t i = 0; i < spec.nominal_boards; ++i) {
    fleet.nominal.push_back(fab.fabricate(spec.grid_cols, spec.grid_rows));
  }
  for (std::size_t i = 0; i < spec.env_boards; ++i) {
    fleet.env.push_back(fab.fabricate(spec.grid_cols, spec.grid_rows));
  }
  return fleet;
}

std::vector<Chip> make_inhouse_fleet(const InHouseFleetSpec& spec) {
  ROPUF_REQUIRE(spec.boards > 0, "fleet needs at least one board");
  Fab fab(spec.process, spec.seed);
  std::vector<Chip> boards;
  boards.reserve(spec.boards);
  for (std::size_t i = 0; i < spec.boards; ++i) {
    boards.push_back(fab.fabricate(spec.grid_cols, spec.grid_rows));
  }
  return boards;
}

}  // namespace ropuf::sil

#include "silicon/fleet.h"

#include "common/error.h"
#include "common/parallel.h"

namespace ropuf::sil {
namespace {

/// Forks one stream per chip serially (the only order-sensitive step), then
/// mints the chips in parallel. Identical to sequential fabricate() calls at
/// any thread count.
std::vector<Chip> mint(Fab& fab, std::size_t count, std::size_t grid_cols,
                       std::size_t grid_rows, ThreadBudget threads) {
  std::vector<Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(fab.fork_chip_stream());
  return parallel_transform<Chip>(count, threads, [&](std::size_t i) {
    return fab.fabricate_with(streams[i], grid_cols, grid_rows);
  });
}

}  // namespace

VtFleet make_vt_fleet(const VtFleetSpec& spec) {
  ROPUF_REQUIRE(spec.nominal_boards > 0, "fleet needs at least one nominal board");
  Fab fab(spec.process, spec.seed);
  VtFleet fleet;
  fleet.nominal = mint(fab, spec.nominal_boards, spec.grid_cols, spec.grid_rows,
                       spec.threads);
  fleet.env = mint(fab, spec.env_boards, spec.grid_cols, spec.grid_rows, spec.threads);
  return fleet;
}

std::vector<Chip> make_inhouse_fleet(const InHouseFleetSpec& spec) {
  ROPUF_REQUIRE(spec.boards > 0, "fleet needs at least one board");
  Fab fab(spec.process, spec.seed);
  return mint(fab, spec.boards, spec.grid_cols, spec.grid_rows, spec.threads);
}

}  // namespace ropuf::sil

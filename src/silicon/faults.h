// Deterministic fault injection for measurement campaigns.
//
// The measurement model elsewhere in the library is well-behaved: Gaussian
// jitter plus integer quantization. Real FPGA/silicon readout campaigns are
// not: counters latch (stuck-at), gates close without a count (dropped
// read), single reads land far outside the jitter envelope (transient
// glitch), delays creep over a long campaign (aging), and supply droops slow
// whole runs of consecutive reads (brown-out). This module injects exactly
// those non-idealities, seeded and reproducible, so the hardened readout
// path (puf/robust_measure.h) and the dark-bit masking logic
// (puf::ConfigurableRoPufDevice) can be exercised and benchmarked.
//
// A FaultInjector is attached to a measurement channel (ro::FrequencyCounter
// or puf::measure_unit_ddiffs). With a default (all-zero) FaultPlan nothing
// is perturbed and no randomness is consumed, so every existing call site is
// bit-identical to the fault-free library. The injector owns its own RNG
// stream: attaching one never changes how the measurement RNG is consumed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.h"
#include "common/rng.h"

namespace ropuf::sil {

/// Per-read fault probabilities and magnitudes. All rates default to zero:
/// a default FaultPlan is a no-op.
struct FaultPlan {
  /// Fraction of measurement channels whose counter is latched at a constant
  /// count. Stuck channels return the same bogus delay on every read, which
  /// is the zero-dispersion signature robust readout detects.
  double stuck_channel_fraction = 0.0;
  /// Per-read probability that the gate closes without capturing a count.
  double dropped_read_rate = 0.0;
  /// Per-read probability of a heavy-tailed (Cauchy) outlier on the value.
  double glitch_rate = 0.0;
  double glitch_scale_ps = 50.0;  ///< Cauchy scale of a glitch
  /// Monotone delay drift accumulated per read (aging over the campaign).
  double aging_drift_ps_per_read = 0.0;
  /// Per-read probability that a brown-out event starts; while one is
  /// active every read is slowed by `brownout_slowdown_rel`.
  double brownout_rate = 0.0;
  std::uint64_t brownout_duration_reads = 8;
  double brownout_slowdown_rel = 0.05;

  /// True when any fault mechanism can fire.
  bool enabled() const {
    return stuck_channel_fraction > 0.0 || dropped_read_rate > 0.0 ||
           glitch_rate > 0.0 || aging_drift_ps_per_read > 0.0 || brownout_rate > 0.0;
  }

  /// A mixed campaign profile with roughly `per_read_rate` probability of a
  /// transient fault per read (split between dropped reads, glitches and
  /// brown-out starts) plus the same fraction of stuck channels. This is the
  /// single-knob plan the CLI's --fault-rate and the fault-injection bench
  /// sweep use.
  static FaultPlan uniform(double per_read_rate);
};

/// Counters of what the injector actually did; exposed for reporting.
struct FaultCounts {
  std::uint64_t reads = 0;
  std::uint64_t stuck = 0;
  std::uint64_t dropped = 0;
  std::uint64_t glitched = 0;
  std::uint64_t browned_out = 0;
};

/// Seeded, deterministic fault source. One injector models one chip's
/// measurement infrastructure; the same (plan, seed) pair always produces
/// the same fault sequence for the same sequence of reads.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounts& counts() const { return counts_; }

  /// Whether `channel`'s counter is latched. Stuck channels are a static
  /// property of (seed, channel), independent of the read sequence.
  bool channel_stuck(std::size_t channel) const;

  /// Outcome of pushing one read through the fault model.
  struct ReadOutcome {
    FaultKind kind = FaultKind::kNone;  ///< dominant fault on this read
    bool dropped = false;               ///< no count captured
    double value_ps = 0.0;              ///< possibly corrupted value
  };

  /// Applies the fault model to one read of `channel` that measured
  /// `value_ps`. Advances the injector's deterministic state.
  ReadOutcome apply(std::size_t channel, double value_ps);

  /// Restarts the deterministic stream (same seed, zeroed counters), as if
  /// the campaign began again.
  void reset();

  /// Derives an independent child injector with the same plan and a seed
  /// mixed from (seed, salt). Used by the fleet-scale experiments to give
  /// every board its own deterministic fault stream (salt = board index), so
  /// a parallel campaign is bit-identical at any thread count. Forking is
  /// const: the parent's stream is not advanced.
  FaultInjector fork(std::uint64_t salt) const;

  /// Accumulates another injector's counters into this one (campaign
  /// reporting after a forked per-board run). Sums commute, so the merge
  /// order does not matter.
  void merge_counts(const FaultCounts& other);

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
  Rng rng_;
  FaultCounts counts_;
  std::uint64_t read_index_ = 0;
  std::uint64_t brownout_until_ = 0;  ///< first read index past the event
};

}  // namespace ropuf::sil

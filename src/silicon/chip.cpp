#include "silicon/chip.h"

#include "common/error.h"

namespace ropuf::sil {

Chip::Chip(std::vector<DelayUnitCell> cells, std::size_t grid_cols, std::size_t grid_rows,
           EnvModel env)
    : cells_(std::move(cells)), grid_cols_(grid_cols), grid_rows_(grid_rows), env_(env) {
  ROPUF_REQUIRE(!cells_.empty(), "chip needs at least one delay unit");
  ROPUF_REQUIRE(cells_.size() == grid_cols_ * grid_rows_,
                "cell count must match grid dimensions");
}

const DelayUnitCell& Chip::unit(std::size_t i) const {
  ROPUF_REQUIRE(i < cells_.size(), "unit index out of range");
  return cells_[i];
}

DieLocation Chip::location(std::size_t i) const { return unit(i).loc; }

double Chip::selected_path_delay_ps(std::size_t i, const OperatingPoint& op) const {
  const DelayUnitCell& cell = unit(i);
  return device_delay_ps(cell.inverter, env_, op) + device_delay_ps(cell.mux_sel, env_, op);
}

double Chip::skip_path_delay_ps(std::size_t i, const OperatingPoint& op) const {
  return device_delay_ps(unit(i).mux_skip, env_, op);
}

double Chip::unit_ddiff_ps(std::size_t i, const OperatingPoint& op) const {
  return selected_path_delay_ps(i, op) - skip_path_delay_ps(i, op);
}

}  // namespace ropuf::sil

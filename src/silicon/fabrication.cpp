#include "silicon/fabrication.h"

#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"

namespace ropuf::sil {

SpatialTrend SpatialTrend::sample(std::size_t degree, double amplitude, Rng& rng) {
  SpatialTrend t;
  const auto monos = num::monomials_2d(degree);
  t.poly_.degree = degree;
  t.poly_.coeff.assign(monos.size(), 0.0);
  if (amplitude <= 0.0 || monos.size() <= 1) return t;

  // Draw coefficients for the non-constant monomials; the constant term
  // stays zero so trends shift shape, not global mean. Monomials over the
  // unit square have O(1) range, so dividing the target amplitude by the
  // number of active terms keeps the realized sd near `amplitude`.
  const double per_term = amplitude / std::sqrt(static_cast<double>(monos.size() - 1));
  for (std::size_t k = 1; k < monos.size(); ++k) {
    t.poly_.coeff[k] = rng.gaussian(0.0, 2.0 * per_term);
  }
  return t;
}

SpatialTrend SpatialTrend::zero() {
  SpatialTrend t;
  t.poly_.degree = 0;
  t.poly_.coeff = {0.0};
  return t;
}

double SpatialTrend::eval(const DieLocation& loc) const {
  return poly_.eval(loc.x, loc.y);
}

Fab::Fab(ProcessParams params, std::uint64_t seed)
    : params_(params), rng_(seed),
      common_trend_(SpatialTrend::sample(params.systematic_degree,
                                         params.common_systematic_amp, rng_)) {
  ROPUF_REQUIRE(params_.inverter_delay_ps > 0.0 && params_.mux_sel_delay_ps > 0.0 &&
                    params_.mux_skip_delay_ps > 0.0,
                "nominal delays must be positive");
  ROPUF_REQUIRE(params_.random_sigma_rel >= 0.0, "negative mismatch sigma");
}

Chip Fab::fabricate(std::size_t grid_cols, std::size_t grid_rows) {
  Rng chip_rng = fork_chip_stream();
  return fabricate_with(chip_rng, grid_cols, grid_rows);
}

Rng Fab::fork_chip_stream() { return rng_.fork(); }

Chip Fab::fabricate_with(Rng& chip_rng, std::size_t grid_cols,
                         std::size_t grid_rows) const {
  ROPUF_REQUIRE(grid_cols > 0 && grid_rows > 0, "empty chip grid");
  static obs::Counter& chips_minted = obs::Registry::instance().counter("fab.chips_minted");
  static obs::Counter& units_minted = obs::Registry::instance().counter("fab.units_minted");
  static obs::Histogram& mint_us = obs::Registry::instance().latency_histogram("fab.mint_us");
  chips_minted.add(1);
  units_minted.add(grid_cols * grid_rows);
  const obs::ScopedLatency mint_timer(mint_us);
  const SpatialTrend chip_trend =
      SpatialTrend::sample(params_.systematic_degree, params_.chip_systematic_amp, chip_rng);

  auto sample_device = [&](double nominal_ps, double systematic_rel) {
    DeviceParams dev;
    const double random_rel = chip_rng.gaussian(0.0, params_.random_sigma_rel);
    dev.delay_ref_ps = nominal_ps * (1.0 + systematic_rel + random_rel);
    ROPUF_REQUIRE(dev.delay_ref_ps > 0.0, "variation drove delay non-positive");
    dev.vth_v = chip_rng.gaussian(params_.vth_v, params_.vth_sigma_v);
    dev.tempco_per_c = chip_rng.gaussian(params_.tempco_per_c, params_.tempco_sigma_per_c);
    return dev;
  };

  std::vector<DelayUnitCell> cells;
  cells.reserve(grid_cols * grid_rows);
  for (std::size_t r = 0; r < grid_rows; ++r) {
    for (std::size_t c = 0; c < grid_cols; ++c) {
      DelayUnitCell cell;
      cell.loc.x = (grid_cols == 1) ? 0.5
                                    : static_cast<double>(c) / static_cast<double>(grid_cols - 1);
      cell.loc.y = (grid_rows == 1) ? 0.5
                                    : static_cast<double>(r) / static_cast<double>(grid_rows - 1);
      const double systematic = common_trend_.eval(cell.loc) + chip_trend.eval(cell.loc);
      cell.inverter = sample_device(params_.inverter_delay_ps, systematic);
      cell.mux_sel = sample_device(params_.mux_sel_delay_ps, systematic);
      cell.mux_skip = sample_device(params_.mux_skip_delay_ps, systematic);
      cells.push_back(cell);
    }
  }
  return Chip(std::move(cells), grid_cols, grid_rows, params_.env);
}

}  // namespace ropuf::sil

// Operating environment and the electrical delay model.
//
// Every device delay in the simulator is derived from three per-device
// parameters (reference delay, threshold voltage, temperature coefficient)
// and the chip-wide electrical model:
//
//   d(V, T) = d_ref * ((Vref - Vth) / (V - Vth))^alpha * (1 + k_T (T - Tref))
//
// The alpha-power law is the standard first-order model of CMOS gate delay
// vs. supply voltage (Sakurai-Newton); the linear temperature term models
// mobility degradation. Crucially, Vth and k_T carry *per-device mismatch*:
// two devices that are equally fast at the reference corner drift apart as
// V/T move, which is the physical mechanism behind RO PUF bit flips that
// the paper's configurable selection defends against.
#pragma once

#include <vector>

namespace ropuf::sil {

/// A supply-voltage / temperature corner.
struct OperatingPoint {
  double voltage_v = 1.20;
  double temperature_c = 25.0;

  bool operator==(const OperatingPoint&) const = default;
};

/// The reference corner used for enrollment throughout the paper's
/// experiments (Virginia Tech dataset nominal conditions).
OperatingPoint nominal_op();

/// The five supply voltages of the VT environment sweep (Section IV).
const std::vector<double>& vt_voltages();

/// The five temperatures of the VT environment sweep (25 is the baseline;
/// 35..65 are the "varying temperature" measurements).
const std::vector<double>& vt_temperatures();

/// The paper's F4/F5 environmental-drift schedule as one corner sequence:
/// the five voltage corners at the baseline temperature (F4, "varying
/// voltage") followed by the four non-baseline temperatures at the nominal
/// supply (F5, "varying temperature"). The first entry is the nominal
/// corner, so a run that walks this schedule starts drift-free. The soak
/// harness (tools/ropuf_soak) cycles prover readouts through it mid-run.
const std::vector<OperatingPoint>& vt_corner_schedule();

/// Static per-device electrical parameters fixed at fabrication.
struct DeviceParams {
  double delay_ref_ps = 0.0;   ///< delay at the reference corner
  double vth_v = 0.4;          ///< effective threshold voltage
  double tempco_per_c = 6e-4;  ///< linear temperature coefficient
};

/// Chip-wide electrical model constants.
struct EnvModel {
  double vref_v = 1.20;
  double tref_c = 25.0;
  double alpha = 1.3;  ///< velocity-saturation exponent
};

/// Delay of one device at an operating point (alpha-power law, see above).
/// Throws if the supply is at or below the device threshold.
double device_delay_ps(const DeviceParams& dev, const EnvModel& env,
                       const OperatingPoint& op);

}  // namespace ropuf::sil

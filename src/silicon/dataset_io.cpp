#include "silicon/dataset_io.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace ropuf::sil {

DieLocation MeasurementTable::location(std::size_t unit) const {
  ROPUF_REQUIRE(unit < units_per_board(), "unit index out of range");
  DieLocation loc;
  const std::size_t col = unit % grid_cols;
  const std::size_t row = unit / grid_cols;
  loc.x = grid_cols == 1 ? 0.5
                         : static_cast<double>(col) / static_cast<double>(grid_cols - 1);
  loc.y = grid_rows == 1 ? 0.5
                         : static_cast<double>(row) / static_cast<double>(grid_rows - 1);
  return loc;
}

std::string to_csv(const MeasurementTable& table) {
  ROPUF_REQUIRE(table.grid_cols > 0 && table.grid_rows > 0, "empty grid");
  std::ostringstream os;
  os.precision(17);
  os << "ropuf-dataset," << table.grid_cols << "," << table.grid_rows << "\n";
  for (const auto& board : table.boards) {
    ROPUF_REQUIRE(board.size() == table.units_per_board(),
                  "board value count does not match the grid");
    for (std::size_t i = 0; i < board.size(); ++i) {
      if (i > 0) os << ",";
      os << board[i];
    }
    os << "\n";
  }
  return os.str();
}

MeasurementTable from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  std::size_t line_number = 1;  // the header is line 1
  const auto at_line = [&] { return " at line " + std::to_string(line_number); };
  ROPUF_REQUIRE(std::getline(is, line), "empty dataset");

  MeasurementTable table;
  {
    std::istringstream header(line);
    std::string magic, cols, rows;
    ROPUF_REQUIRE(std::getline(header, magic, ',') && magic == "ropuf-dataset",
                  "missing dataset header" + at_line());
    ROPUF_REQUIRE(std::getline(header, cols, ',') && std::getline(header, rows, ','),
                  "malformed dataset header" + at_line());
    table.grid_cols = static_cast<std::size_t>(std::stoul(cols));
    table.grid_rows = static_cast<std::size_t>(std::stoul(rows));
    ROPUF_REQUIRE(table.grid_cols > 0 && table.grid_rows > 0,
                  "empty grid in header" + at_line());
  }

  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> board;
    board.reserve(table.units_per_board());
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(cell, &consumed);
      } catch (const std::exception&) {
        ROPUF_REQUIRE(false, "non-numeric cell '" + cell + "'" + at_line());
      }
      ROPUF_REQUIRE(consumed == cell.size(),
                    "trailing junk in cell '" + cell + "'" + at_line());
      // NaN/inf parse as valid doubles but poison every downstream
      // statistic (distiller fits, margins, NIST counts) — reject at the
      // boundary, where the line number is still known.
      ROPUF_REQUIRE(std::isfinite(value),
                    "non-finite value '" + cell + "'" + at_line());
      board.push_back(value);
    }
    ROPUF_REQUIRE(board.size() == table.units_per_board(),
                  "board row has wrong value count" + at_line());
    table.boards.push_back(std::move(board));
  }
  ROPUF_REQUIRE(!table.boards.empty(), "dataset contains no boards");
  return table;
}

MeasurementTable snapshot_fleet(const std::vector<Chip>& boards, const OperatingPoint& op,
                                double noise_sigma_ps, Rng& rng) {
  ROPUF_REQUIRE(!boards.empty(), "empty fleet");
  ROPUF_REQUIRE(noise_sigma_ps >= 0.0, "negative noise sigma");
  MeasurementTable table;
  table.grid_cols = boards.front().grid_cols();
  table.grid_rows = boards.front().grid_rows();
  for (const Chip& chip : boards) {
    ROPUF_REQUIRE(chip.grid_cols() == table.grid_cols &&
                      chip.grid_rows() == table.grid_rows,
                  "fleet boards have mixed grids");
    std::vector<double> values(chip.unit_count());
    for (std::size_t i = 0; i < chip.unit_count(); ++i) {
      values[i] = chip.unit_ddiff_ps(i, op) + rng.gaussian(0.0, noise_sigma_ps);
    }
    table.boards.push_back(std::move(values));
  }
  return table;
}

}  // namespace ropuf::sil

// A fabricated chip: a grid of configurable delay-unit cells.
//
// One delay unit is the paper's Fig. 2 structure — an inverter followed by a
// 2-to-1 MUX. Each of the three timing arcs (through the inverter, the MUX
// "1" path it feeds, and the bypass "0" path) is an independently fabricated
// device with its own process-variation draw, so the quantity the paper
// works with,
//
//   ddiff = d + d1 - d0,
//
// carries the variation of all three, exactly as Section III.B argues.
#pragma once

#include <cstddef>
#include <vector>

#include "silicon/environment.h"

namespace ropuf::sil {

/// Normalized die coordinates in [0, 1] x [0, 1].
struct DieLocation {
  double x = 0.0;
  double y = 0.0;
};

/// One configurable delay unit (inverter + 2-to-1 MUX) as fabricated.
struct DelayUnitCell {
  DeviceParams inverter;  ///< the inverter arc ("d" in the paper)
  DeviceParams mux_sel;   ///< MUX arc when the select bit is 1 ("d1")
  DeviceParams mux_skip;  ///< bypass arc when the select bit is 0 ("d0")
  DieLocation loc;
};

/// Immutable fabricated chip.
class Chip {
 public:
  /// `cells.size()` must equal `grid_cols * grid_rows`; cells are row-major.
  Chip(std::vector<DelayUnitCell> cells, std::size_t grid_cols, std::size_t grid_rows,
       EnvModel env);

  std::size_t unit_count() const { return cells_.size(); }
  std::size_t grid_cols() const { return grid_cols_; }
  std::size_t grid_rows() const { return grid_rows_; }
  const EnvModel& env_model() const { return env_; }

  const DelayUnitCell& unit(std::size_t i) const;
  DieLocation location(std::size_t i) const;

  /// Delay through unit i with the select bit at 1: d + d1.
  double selected_path_delay_ps(std::size_t i, const OperatingPoint& op) const;

  /// Delay through unit i with the select bit at 0: d0.
  double skip_path_delay_ps(std::size_t i, const OperatingPoint& op) const;

  /// The paper's ddiff_i = d + d1 - d0 at the given corner. This is the
  /// *true* value; measured estimates come from ro::DelayExtractor.
  double unit_ddiff_ps(std::size_t i, const OperatingPoint& op) const;

 private:
  std::vector<DelayUnitCell> cells_;
  std::size_t grid_cols_;
  std::size_t grid_rows_;
  EnvModel env_;
};

}  // namespace ropuf::sil

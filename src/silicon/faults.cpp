#include "silicon/faults.h"

#include <cmath>

#include "obs/metrics.h"

namespace ropuf::sil {
namespace {

/// Cached handles for the injector's per-read accounting. Every injector in
/// the process shares these counters, so the metrics totals aggregate a
/// whole campaign (all boards, all trials) exactly like a merge_counts over
/// every injector would.
struct FaultMetrics {
  obs::Counter& reads = obs::Registry::instance().counter("fault.reads");
  obs::Counter& stuck = obs::Registry::instance().counter("fault.stuck");
  obs::Counter& dropped = obs::Registry::instance().counter("fault.dropped");
  obs::Counter& glitched = obs::Registry::instance().counter("fault.glitched");
  obs::Counter& browned_out = obs::Registry::instance().counter("fault.browned_out");
  obs::Counter& merges = obs::Registry::instance().counter("fault.count_merges");

  static FaultMetrics& instance() {
    static FaultMetrics metrics;
    return metrics;
  }
};

/// Stateless per-channel hash stream: lets stuck-channel membership and the
/// latched value be a static property of (seed, channel), independent of
/// when or how often the channel is read.
std::uint64_t channel_hash(std::uint64_t seed, std::size_t channel, std::uint64_t salt) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (channel + 1)) ^ salt;
  return splitmix64(state);
}

double hash_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan FaultPlan::uniform(double per_read_rate) {
  ROPUF_REQUIRE(per_read_rate >= 0.0 && per_read_rate < 1.0,
                "per-read fault rate must be in [0, 1)");
  FaultPlan plan;
  plan.stuck_channel_fraction = per_read_rate;
  plan.dropped_read_rate = 0.4 * per_read_rate;
  plan.glitch_rate = 0.4 * per_read_rate;
  plan.brownout_rate = 0.2 * per_read_rate;
  plan.brownout_duration_reads = 4;
  plan.brownout_slowdown_rel = 0.02;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), seed_(seed), rng_(seed ^ 0xfa017ull) {
  ROPUF_REQUIRE(plan_.stuck_channel_fraction >= 0.0 && plan_.stuck_channel_fraction <= 1.0,
                "stuck-channel fraction must be in [0, 1]");
  ROPUF_REQUIRE(plan_.dropped_read_rate >= 0.0 && plan_.dropped_read_rate <= 1.0,
                "dropped-read rate must be in [0, 1]");
  ROPUF_REQUIRE(plan_.glitch_rate >= 0.0 && plan_.glitch_rate <= 1.0,
                "glitch rate must be in [0, 1]");
  ROPUF_REQUIRE(plan_.glitch_scale_ps > 0.0, "glitch scale must be positive");
  ROPUF_REQUIRE(plan_.aging_drift_ps_per_read >= 0.0, "negative aging drift");
  ROPUF_REQUIRE(plan_.brownout_rate >= 0.0 && plan_.brownout_rate <= 1.0,
                "brown-out rate must be in [0, 1]");
  ROPUF_REQUIRE(plan_.brownout_slowdown_rel >= 0.0, "negative brown-out slowdown");
}

bool FaultInjector::channel_stuck(std::size_t channel) const {
  if (plan_.stuck_channel_fraction <= 0.0) return false;
  return hash_uniform(channel_hash(seed_, channel, 0x57ac)) < plan_.stuck_channel_fraction;
}

FaultInjector::ReadOutcome FaultInjector::apply(std::size_t channel, double value_ps) {
  ReadOutcome outcome;
  outcome.value_ps = value_ps;
  const std::uint64_t read = read_index_++;
  ++counts_.reads;
  FaultMetrics& metrics = FaultMetrics::instance();
  metrics.reads.add(1);
  if (!plan_.enabled()) return outcome;

  // Campaign-level environment first: aging accumulates over the whole read
  // history; a brown-out slows every read while the supply recovers.
  if (plan_.aging_drift_ps_per_read > 0.0) {
    outcome.value_ps += plan_.aging_drift_ps_per_read * static_cast<double>(read);
    outcome.kind = FaultKind::kAgingDrift;
  }
  if (plan_.brownout_rate > 0.0) {
    if (read >= brownout_until_ && rng_.uniform() < plan_.brownout_rate) {
      brownout_until_ = read + plan_.brownout_duration_reads;
    }
    if (read < brownout_until_) {
      outcome.value_ps *= 1.0 + plan_.brownout_slowdown_rel;
      outcome.kind = FaultKind::kBrownout;
      ++counts_.browned_out;
      metrics.browned_out.add(1);
    }
  }

  // Per-read transients on top of the environment.
  if (plan_.glitch_rate > 0.0 && rng_.uniform() < plan_.glitch_rate) {
    // Heavy-tailed (Cauchy) outlier: most glitches are moderate, a few are
    // enormous — exactly the shape mean-based averaging fails on.
    outcome.value_ps += plan_.glitch_scale_ps * std::tan(3.14159265358979323846 *
                                                         (rng_.uniform() - 0.5));
    outcome.kind = FaultKind::kTransientGlitch;
    ++counts_.glitched;
    metrics.glitched.add(1);
  }

  // Channel-level and read-level hard failures override the value entirely.
  if (channel_stuck(channel)) {
    // The latched count maps to a constant bogus delay for this channel.
    outcome.value_ps = 200.0 + 1800.0 * hash_uniform(channel_hash(seed_, channel, 0x1a7c));
    outcome.kind = FaultKind::kStuckChannel;
    ++counts_.stuck;
    metrics.stuck.add(1);
  }
  if (plan_.dropped_read_rate > 0.0 && rng_.uniform() < plan_.dropped_read_rate) {
    outcome.dropped = true;
    outcome.kind = FaultKind::kDroppedRead;
    ++counts_.dropped;
    metrics.dropped.add(1);
  }
  return outcome;
}

FaultInjector FaultInjector::fork(std::uint64_t salt) const {
  // SplitMix64 over (seed, salt) decorrelates children from the parent and
  // from each other, matching how Rng::fork derives child streams.
  std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ull * (salt + 1));
  return FaultInjector(plan_, splitmix64(state));
}

void FaultInjector::merge_counts(const FaultCounts& other) {
  // The per-read metrics above already counted every child event, so a
  // merge only records that a campaign aggregation happened — adding the
  // child totals again here would double-count.
  FaultMetrics::instance().merges.add(1);
  counts_.reads += other.reads;
  counts_.stuck += other.stuck;
  counts_.dropped += other.dropped;
  counts_.glitched += other.glitched;
  counts_.browned_out += other.browned_out;
}

void FaultInjector::reset() {
  rng_ = Rng(seed_ ^ 0xfa017ull);
  counts_ = FaultCounts{};
  read_index_ = 0;
  brownout_until_ = 0;
}

}  // namespace ropuf::sil

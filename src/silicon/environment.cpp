#include "silicon/environment.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::sil {

OperatingPoint nominal_op() { return OperatingPoint{1.20, 25.0}; }

const std::vector<double>& vt_voltages() {
  static const std::vector<double> v{0.98, 1.08, 1.20, 1.32, 1.44};
  return v;
}

const std::vector<double>& vt_temperatures() {
  static const std::vector<double> t{25.0, 35.0, 45.0, 55.0, 65.0};
  return t;
}

const std::vector<OperatingPoint>& vt_corner_schedule() {
  static const std::vector<OperatingPoint> schedule = [] {
    std::vector<OperatingPoint> corners;
    const OperatingPoint nominal = nominal_op();
    // Nominal first (vt_voltages() lists it third), so a walk through the
    // schedule begins at the enrollment corner.
    corners.push_back(nominal);
    for (double v : vt_voltages()) {
      if (v != nominal.voltage_v) corners.push_back({v, nominal.temperature_c});
    }
    for (double t : vt_temperatures()) {
      if (t != nominal.temperature_c) corners.push_back({nominal.voltage_v, t});
    }
    return corners;
  }();
  return schedule;
}

double device_delay_ps(const DeviceParams& dev, const EnvModel& env,
                       const OperatingPoint& op) {
  ROPUF_REQUIRE(op.voltage_v > dev.vth_v + 1e-3,
                "supply voltage at or below device threshold");
  ROPUF_REQUIRE(dev.delay_ref_ps > 0.0, "device has non-positive reference delay");
  const double voltage_scale =
      std::pow((env.vref_v - dev.vth_v) / (op.voltage_v - dev.vth_v), env.alpha);
  const double temp_scale = 1.0 + dev.tempco_per_c * (op.temperature_c - env.tref_c);
  return dev.delay_ref_ps * voltage_scale * temp_scale;
}

}  // namespace ropuf::sil

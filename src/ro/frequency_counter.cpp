#include "ro/frequency_counter.h"

#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"

namespace ropuf::ro {

FrequencyCounter::FrequencyCounter(FrequencyCounterSpec spec, Rng& rng) : spec_(spec) {
  ROPUF_REQUIRE(spec_.gate_time_s > 0.0, "gate time must be positive");
  ROPUF_REQUIRE(spec_.jitter_sigma_rel >= 0.0, "negative jitter sigma");
  ROPUF_REQUIRE(spec_.aux_inverter_delay_ps > 0.0, "aux stage delay must be positive");
  aux_true_delay_ps_ =
      spec_.aux_inverter_delay_ps * (1.0 + rng.gaussian(0.0, spec_.aux_calibration_error_rel));
}

double FrequencyCounter::measure_frequency_hz(double true_frequency_hz, Rng& rng,
                                              double gate_scale) const {
  ROPUF_REQUIRE(true_frequency_hz > 0.0, "non-positive frequency");
  ROPUF_REQUIRE(gate_scale > 0.0, "gate scale must be positive");
  const double gate_s = spec_.gate_time_s * gate_scale;
  const double jittered =
      true_frequency_hz * (1.0 + rng.gaussian(0.0, spec_.jitter_sigma_rel));
  // Edge count over the gate window with a random start phase.
  const double expected_edges = jittered * gate_s + rng.uniform();
  const double count = std::floor(expected_edges);
  ROPUF_REQUIRE(count >= 1.0, "gate time too short: zero edges counted");
  return count / gate_s;
}

double FrequencyCounter::measure_path_delay_ps(const ConfigurableRo& ro, const BitVec& config,
                                               const sil::OperatingPoint& op, Rng& rng,
                                               double gate_scale) const {
  static obs::Counter& gated_reads = obs::Registry::instance().counter("ro.gated_reads");
  gated_reads.add(1);
  const bool needs_aux = !ro.oscillates(config);
  const double loop_delay_ps =
      ro.path_delay_ps(config, op) + (needs_aux ? aux_true_delay_ps_ : 0.0);
  const double true_freq_hz = 1e12 / (2.0 * loop_delay_ps);
  const double measured_freq_hz = measure_frequency_hz(true_freq_hz, rng, gate_scale);
  double delay_ps = 1e12 / (2.0 * measured_freq_hz);
  if (needs_aux) {
    // Subtract the *calibrated* (nominal) aux delay; the residual between
    // nominal and true stays in the estimate, shared by all measurements.
    delay_ps -= spec_.aux_inverter_delay_ps;
  }
  if (injector_ != nullptr) {
    // The fault model acts on the whole gated read; the RO's first unit
    // stands in as the channel identity (one counter channel per RO).
    const auto outcome = injector_->apply(ro.unit_indices().front(), delay_ps);
    if (outcome.dropped) {
      throw MeasurementFault(FaultKind::kDroppedRead,
                             "gate closed with no count captured");
    }
    delay_ps = outcome.value_ps;
  }
  return delay_ps;
}

}  // namespace ropuf::ro

// The configurable ring oscillator of the paper's Fig. 1.
//
// A ConfigurableRo is a chain of delay units on one chip. A configuration
// vector (one bit per stage) decides, per stage, whether the signal passes
// through the inverter (1) or bypasses it (0). The RO oscillates only when
// an odd number of inverters is in the loop; arbitrary configurations still
// have a well-defined combinational path delay, which the measurement
// harness reads out with an auxiliary completion stage (frequency_counter.h).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"
#include "silicon/chip.h"

namespace ropuf::ro {

/// A chain of delay units on a chip, identified by unit indices.
class ConfigurableRo {
 public:
  /// `unit_indices` selects which of the chip's delay units form the chain,
  /// in stage order. The chip must outlive the RO.
  ConfigurableRo(const sil::Chip* chip, std::vector<std::size_t> unit_indices);

  std::size_t stage_count() const { return units_.size(); }
  const sil::Chip& chip() const { return *chip_; }
  const std::vector<std::size_t>& unit_indices() const { return units_; }

  /// All-ones configuration (the traditional RO uses every inverter).
  BitVec all_selected() const;

  /// True iff the loop inverts, i.e. an odd number of stages is selected.
  bool oscillates(const BitVec& config) const;

  /// Combinational delay of one traversal of the chain under `config`.
  double path_delay_ps(const BitVec& config, const sil::OperatingPoint& op) const;

  /// Oscillation period (two traversals per period for an inverting loop).
  /// Requires an oscillating (odd-parity) configuration.
  double oscillation_period_ps(const BitVec& config, const sil::OperatingPoint& op) const;

  /// Oscillation frequency in Hz; requires an oscillating configuration.
  double frequency_hz(const BitVec& config, const sil::OperatingPoint& op) const;

  /// True per-unit ddiff values (d + d1 - d0) for every stage; the oracle
  /// the measured extraction is tested against.
  std::vector<double> true_ddiffs_ps(const sil::OperatingPoint& op) const;

 private:
  const sil::Chip* chip_;
  std::vector<std::size_t> units_;
};

/// How the two ROs of a pair share their silicon.
enum class PairPlacement {
  /// Top RO takes `stages` consecutive units, bottom RO the next block.
  /// Simple but exposes the pair to the spatial systematic gradient.
  kAdjacentBlocks,
  /// Top and bottom stages alternate cell by cell, so both ROs sample the
  /// same neighbourhood and the systematic trend cancels in the pair
  /// comparison — the standard matched-layout practice for RO PUF pairs.
  kInterleaved,
};

/// Splits the first pair_count*2*stages units of a chip into (top, bottom)
/// RO pairs of `stages` stages each — the deployment of Section III.C.
std::vector<std::pair<ConfigurableRo, ConfigurableRo>> make_ro_pairs(
    const sil::Chip& chip, std::size_t stages, std::size_t pair_count,
    PairPlacement placement = PairPlacement::kAdjacentBlocks);

}  // namespace ropuf::ro

// Recovery of per-unit delay differences from whole-RO measurements.
//
// Section III.B of the paper: a single delay unit cannot be measured
// directly, but measuring the RO under several configurations and solving a
// small linear system recovers each unit's ddiff_i = d_i + d1_i - d0_i.
// With base delay B = sum of all d0_i, the path delay under configuration c
// is
//
//   D(c) = B + sum_i c_i * ddiff_i ,
//
// a linear model in (B, ddiff_1..ddiff_n). Three extraction strategies are
// provided:
//
//  * leave-one-out  — measure the all-ones configuration and each
//    configuration with exactly one unit skipped; ddiff_i = D(all) - D(-i).
//    n+1 measurements, exact up to measurement noise.
//  * paper 3-stage  — the paper's worked example ("110", "101", "011" with
//    ddiff_1 = (X+Y-Z)/2 etc.). Uses only n measurements but neglects B, so
//    each estimate carries a +B/2 bias. The bias is common to all units and
//    to both ROs of a pair, hence harmless for the selection problem — this
//    implementation exists to validate exactly that claim.
//  * least squares  — any set of >= n+1 distinct configurations; solves for
//    (B, ddiff) by QR least squares. Redundant configurations average down
//    the counter noise (ablation bench).
#pragma once

#include <array>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "ro/configurable_ro.h"
#include "ro/frequency_counter.h"

namespace ropuf::ro {

/// Result of a full linear-model extraction.
struct ExtractionResult {
  double base_delay_ps = 0.0;        ///< estimated B (sum of bypass delays)
  std::vector<double> ddiff_ps;      ///< estimated per-unit delay differences
};

/// Stateless extraction algorithms over a measurement channel.
class DelayExtractor {
 public:
  explicit DelayExtractor(const FrequencyCounter* counter);

  /// Leave-one-out scheme; returns ddiff estimates for every stage.
  /// `repetitions` > 1 averages that many independent measurement rounds.
  std::vector<double> extract_leave_one_out(const ConfigurableRo& ro,
                                            const sil::OperatingPoint& op, Rng& rng,
                                            int repetitions = 1) const;

  /// Leave-one-out scheme that also estimates the base delay B (sum of
  /// bypass-path delays): B = D(all-ones) - sum of ddiff estimates. The base
  /// estimate is what base-aware enrollment uses to account for the
  /// bypass-path mismatch between the two ROs of a pair.
  ExtractionResult extract_leave_one_out_with_base(const ConfigurableRo& ro,
                                                   const sil::OperatingPoint& op, Rng& rng,
                                                   int repetitions = 1) const;

  /// The paper's minimal 3-stage scheme; `ro` must have exactly 3 stages.
  /// Estimates carry a common +B/2 bias by construction.
  std::array<double, 3> extract_paper_three_stage(const ConfigurableRo& ro,
                                                  const sil::OperatingPoint& op,
                                                  Rng& rng) const;

  /// General least-squares extraction over caller-chosen configurations.
  /// Requires at least stage_count()+1 configurations spanning the model.
  ExtractionResult extract_least_squares(const ConfigurableRo& ro,
                                         const std::vector<BitVec>& configs,
                                         const sil::OperatingPoint& op, Rng& rng) const;

  /// The standard redundant design: all-ones, all leave-one-out, plus
  /// `extra_random` random odd-parity configurations.
  std::vector<BitVec> design_configs(std::size_t stages, std::size_t extra_random,
                                     Rng& rng) const;

 private:
  const FrequencyCounter* counter_;
};

}  // namespace ropuf::ro

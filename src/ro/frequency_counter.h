// Measurement harness: a gated frequency counter.
//
// On the paper's FPGA platform, RO frequency is read by counting rising
// edges over a fixed gate time. That gives two realistic error sources this
// model reproduces:
//
//  * quantization — the count is an integer, so the measured frequency has
//    resolution 1/gate_time (with a random fractional phase at gate start);
//  * jitter — accumulated cycle-to-cycle noise, modeled as a relative
//    Gaussian error on the true frequency.
//
// Configurations with an even number of selected inverters do not oscillate
// on their own; the harness closes the loop through an auxiliary completion
// inverter of known (calibrated) delay and subtracts it afterwards. The
// calibration is imperfect; its residual error is a per-harness constant,
// which is exactly why the paper's relative-comparison scheme tolerates it
// (a bias common to top and bottom RO measurements cancels in Δd_i).
#pragma once

#include "common/bitvec.h"
#include "common/rng.h"
#include "ro/configurable_ro.h"
#include "silicon/environment.h"
#include "silicon/faults.h"

namespace ropuf::ro {

/// Counter characteristics.
struct FrequencyCounterSpec {
  double gate_time_s = 100e-6;          ///< counting window
  double jitter_sigma_rel = 5e-5;       ///< relative frequency noise (1 sigma)
  double aux_inverter_delay_ps = 500.0; ///< completion stage nominal delay
  double aux_calibration_error_rel = 0.01;  ///< residual calibration error (1 sigma)
};

/// A measurement channel with its own (fixed) auxiliary-stage calibration
/// residual. One counter instance per test harness.
class FrequencyCounter {
 public:
  /// Draws the harness's calibration residual from `rng` once; afterwards
  /// every measurement through this counter shares the same residual.
  FrequencyCounter(FrequencyCounterSpec spec, Rng& rng);

  const FrequencyCounterSpec& spec() const { return spec_; }

  /// Attaches a fault injector to this measurement channel (nullptr
  /// detaches). Non-owning; the injector must outlive the counter's use.
  /// Every path-delay read is then pushed through the injector's fault
  /// model; a dropped read surfaces as MeasurementFault(kDroppedRead).
  /// Without an injector (the default) behavior is bit-identical to the
  /// fault-free library.
  void set_fault_injector(sil::FaultInjector* injector) { injector_ = injector; }
  sil::FaultInjector* fault_injector() const { return injector_; }

  /// One gated count of a true frequency: jitter, then integer quantization.
  /// `gate_scale` stretches the counting window (robust readout escalates it
  /// on retries to buy quantization resolution).
  double measure_frequency_hz(double true_frequency_hz, Rng& rng,
                              double gate_scale = 1.0) const;

  /// Measures the combinational path delay of `ro` under `config`:
  /// odd-parity configurations are measured directly as a ring; even-parity
  /// ones are closed through the auxiliary inverter whose calibrated delay
  /// is subtracted (leaving the calibration residual in the estimate).
  /// With a fault injector attached the read is pushed through the fault
  /// model (channel = the RO's first unit index); throws
  /// MeasurementFault(kDroppedRead) when the injected fault drops the read.
  double measure_path_delay_ps(const ConfigurableRo& ro, const BitVec& config,
                               const sil::OperatingPoint& op, Rng& rng,
                               double gate_scale = 1.0) const;

  /// True auxiliary-stage delay of this harness (exposed for tests).
  double aux_true_delay_ps() const { return aux_true_delay_ps_; }

 private:
  FrequencyCounterSpec spec_;
  double aux_true_delay_ps_;
  sil::FaultInjector* injector_ = nullptr;
};

}  // namespace ropuf::ro

#include "ro/configurable_ro.h"

#include "common/error.h"

namespace ropuf::ro {

ConfigurableRo::ConfigurableRo(const sil::Chip* chip, std::vector<std::size_t> unit_indices)
    : chip_(chip), units_(std::move(unit_indices)) {
  ROPUF_REQUIRE(chip_ != nullptr, "null chip");
  ROPUF_REQUIRE(!units_.empty(), "RO needs at least one stage");
  for (const std::size_t u : units_) {
    ROPUF_REQUIRE(u < chip_->unit_count(), "unit index beyond chip");
  }
}

BitVec ConfigurableRo::all_selected() const {
  BitVec config(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) config.set(i, true);
  return config;
}

bool ConfigurableRo::oscillates(const BitVec& config) const {
  ROPUF_REQUIRE(config.size() == units_.size(), "configuration arity mismatch");
  return config.popcount() % 2 == 1;
}

double ConfigurableRo::path_delay_ps(const BitVec& config,
                                     const sil::OperatingPoint& op) const {
  ROPUF_REQUIRE(config.size() == units_.size(), "configuration arity mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    total += config.get(i) ? chip_->selected_path_delay_ps(units_[i], op)
                           : chip_->skip_path_delay_ps(units_[i], op);
  }
  return total;
}

double ConfigurableRo::oscillation_period_ps(const BitVec& config,
                                             const sil::OperatingPoint& op) const {
  ROPUF_REQUIRE(oscillates(config), "even-parity configuration does not oscillate");
  return 2.0 * path_delay_ps(config, op);
}

double ConfigurableRo::frequency_hz(const BitVec& config,
                                    const sil::OperatingPoint& op) const {
  return 1e12 / oscillation_period_ps(config, op);
}

std::vector<double> ConfigurableRo::true_ddiffs_ps(const sil::OperatingPoint& op) const {
  std::vector<double> dd(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) {
    dd[i] = chip_->unit_ddiff_ps(units_[i], op);
  }
  return dd;
}

std::vector<std::pair<ConfigurableRo, ConfigurableRo>> make_ro_pairs(
    const sil::Chip& chip, std::size_t stages, std::size_t pair_count,
    PairPlacement placement) {
  ROPUF_REQUIRE(stages > 0, "RO needs at least one stage");
  ROPUF_REQUIRE(pair_count * 2 * stages <= chip.unit_count(),
                "chip has too few units for the requested RO pairs");
  std::vector<std::pair<ConfigurableRo, ConfigurableRo>> pairs;
  pairs.reserve(pair_count);
  for (std::size_t p = 0; p < pair_count; ++p) {
    const std::size_t base = p * 2 * stages;
    std::vector<std::size_t> top(stages), bottom(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      if (placement == PairPlacement::kAdjacentBlocks) {
        top[s] = base + s;
        bottom[s] = base + stages + s;
      } else {
        top[s] = base + 2 * s;
        bottom[s] = base + 2 * s + 1;
      }
    }
    pairs.emplace_back(ConfigurableRo(&chip, std::move(top)),
                       ConfigurableRo(&chip, std::move(bottom)));
  }
  return pairs;
}

}  // namespace ropuf::ro

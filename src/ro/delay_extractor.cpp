#include "ro/delay_extractor.h"

#include "common/error.h"
#include "numeric/linear_solver.h"
#include "numeric/matrix.h"

namespace ropuf::ro {
namespace {

BitVec all_ones(std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, true);
  return v;
}

BitVec ones_except(std::size_t n, std::size_t skip) {
  BitVec v = all_ones(n);
  v.set(skip, false);
  return v;
}

}  // namespace

DelayExtractor::DelayExtractor(const FrequencyCounter* counter) : counter_(counter) {
  ROPUF_REQUIRE(counter_ != nullptr, "null counter");
}

std::vector<double> DelayExtractor::extract_leave_one_out(const ConfigurableRo& ro,
                                                          const sil::OperatingPoint& op,
                                                          Rng& rng, int repetitions) const {
  return extract_leave_one_out_with_base(ro, op, rng, repetitions).ddiff_ps;
}

ExtractionResult DelayExtractor::extract_leave_one_out_with_base(
    const ConfigurableRo& ro, const sil::OperatingPoint& op, Rng& rng,
    int repetitions) const {
  ROPUF_REQUIRE(repetitions >= 1, "repetitions must be >= 1");
  const std::size_t n = ro.stage_count();
  std::vector<double> ddiff(n, 0.0);
  double d_all_total = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const double d_all = counter_->measure_path_delay_ps(ro, all_ones(n), op, rng);
    d_all_total += d_all;
    for (std::size_t i = 0; i < n; ++i) {
      const double d_minus_i =
          counter_->measure_path_delay_ps(ro, ones_except(n, i), op, rng);
      ddiff[i] += d_all - d_minus_i;
    }
  }
  ExtractionResult result;
  result.ddiff_ps = std::move(ddiff);
  double ddiff_sum = 0.0;
  for (auto& d : result.ddiff_ps) {
    d /= repetitions;
    ddiff_sum += d;
  }
  result.base_delay_ps = d_all_total / repetitions - ddiff_sum;
  return result;
}

std::array<double, 3> DelayExtractor::extract_paper_three_stage(
    const ConfigurableRo& ro, const sil::OperatingPoint& op, Rng& rng) const {
  ROPUF_REQUIRE(ro.stage_count() == 3, "paper scheme is defined for 3 stages");
  const double x = counter_->measure_path_delay_ps(ro, BitVec::from_string("110"), op, rng);
  const double y = counter_->measure_path_delay_ps(ro, BitVec::from_string("101"), op, rng);
  const double z = counter_->measure_path_delay_ps(ro, BitVec::from_string("011"), op, rng);
  return {(x + y - z) / 2.0, (x + z - y) / 2.0, (y + z - x) / 2.0};
}

ExtractionResult DelayExtractor::extract_least_squares(const ConfigurableRo& ro,
                                                       const std::vector<BitVec>& configs,
                                                       const sil::OperatingPoint& op,
                                                       Rng& rng) const {
  const std::size_t n = ro.stage_count();
  ROPUF_REQUIRE(configs.size() >= n + 1,
                "least-squares extraction needs at least stages+1 configurations");

  num::Matrix design(configs.size(), n + 1);
  std::vector<double> measured(configs.size());
  for (std::size_t r = 0; r < configs.size(); ++r) {
    ROPUF_REQUIRE(configs[r].size() == n, "configuration arity mismatch");
    design.at(r, 0) = 1.0;  // base delay B
    for (std::size_t i = 0; i < n; ++i) design.at(r, i + 1) = configs[r].get(i) ? 1.0 : 0.0;
    measured[r] = counter_->measure_path_delay_ps(ro, configs[r], op, rng);
  }

  const std::vector<double> solution = num::solve_least_squares(design, measured);
  ExtractionResult result;
  result.base_delay_ps = solution[0];
  result.ddiff_ps.assign(solution.begin() + 1, solution.end());
  return result;
}

std::vector<BitVec> DelayExtractor::design_configs(std::size_t stages,
                                                   std::size_t extra_random,
                                                   Rng& rng) const {
  ROPUF_REQUIRE(stages > 0, "design needs at least one stage");
  std::vector<BitVec> configs;
  configs.push_back(all_ones(stages));
  for (std::size_t i = 0; i < stages; ++i) configs.push_back(ones_except(stages, i));
  for (std::size_t k = 0; k < extra_random; ++k) {
    BitVec c(stages);
    // Random configuration with odd parity so the loop self-oscillates.
    do {
      for (std::size_t i = 0; i < stages; ++i) c.set(i, rng.flip());
    } while (c.popcount() % 2 == 0 || c.popcount() == 0);
    configs.push_back(c);
  }
  return configs;
}

}  // namespace ropuf::ro

// Live registry lifecycle: epoch-versioned generations over the immutable
// ROPUFREG store (see docs/registry.md, "Live lifecycle").
//
// The base registry (registry.h) is load-once and immutable — the right
// shape for the read path, the wrong shape for a fleet that enrolls,
// refreshes and retires devices continuously. This layer adds mutation
// without giving up immutability:
//
//  * DeltaSegment — an append-only "ROPUFDLT" file in the same CRC-checked
//    sectioned container as the base store (format.h) and the same columnar
//    record payloads (registry.h), plus *tombstones*: size-0 index entries
//    that retire a device. A delta is itself immutable once written.
//  * RegistrySnapshot — one immutable generation: a base registry plus an
//    ordered list of delta segments, resolved newest-epoch-wins. A snapshot
//    never changes after construction, so any thread may read it forever.
//  * EpochRegistry — the mutable head: holds the current snapshot behind a
//    shared_ptr flip. Readers pin the snapshot they start with (one brief
//    mutex acquisition), so an in-flight verify_batch stays bit-stable
//    across a swap; writers (append_delta / install / compact) serialize on
//    their own mutex and never block readers.
//  * compact_snapshot — merges base+deltas into fresh base-registry bytes on
//    the deterministic parallel pool: newest record wins, tombstoned
//    devices are dropped, and the output is bit-identical at any thread
//    budget. EpochRegistry::compact publishes the merged base as a new
//    single-segment generation without pausing serving — snapshots already
//    pinned keep answering from the old generation.
//
// Epoch numbering: a base with k deltas is epoch 1+k. append_delta and
// compact bump the epoch by one; install (the SIGHUP reload path) publishes
// max(current+1, 1+deltas), so a reload is always observable as an epoch
// bump and a restarted process over the same files reports the same
// starting epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "registry/registry.h"

namespace ropuf::registry {

/// Newest delta ("ROPUFDLT") format revision this library writes; readers
/// accept 1..this (record payloads grew in v2, the container is unchanged).
inline constexpr std::uint32_t kDeltaFormatVersion = 2;

/// Accumulates upserts and tombstones and serializes them into one delta
/// segment. Entries may be staged in any order; build() sorts the index by
/// device id. One segment mentions each device at most once — the segment
/// is the atom of publication, not a redo log.
class DeltaBuilder {
 public:
  /// Stages a fresh (new or replacement) enrollment for a device. Validates
  /// like RegistryBuilder::add; throws ropuf::Error on a duplicate id.
  void upsert(std::uint64_t device_id, puf::ConfigurableEnrollment enrollment);

  /// Stages a tombstone: the device stops resolving in any snapshot that
  /// overlays this segment. Throws ropuf::Error on a duplicate id.
  void retire(std::uint64_t device_id);

  std::size_t entry_count() const { return entries_.size(); }

  /// Serializes every staged entry into delta-segment bytes.
  std::string build() const;

  /// build() straight to a file (throws ropuf::Error on I/O failure).
  void write_file(const std::string& path) const;

 private:
  struct Entry {
    std::uint64_t device_id = 0;
    bool tombstone = false;
    puf::ConfigurableEnrollment enrollment;  ///< meaningful iff !tombstone
  };
  std::vector<Entry> entries_;
  std::unordered_set<std::uint64_t> ids_;
};

/// Immutable, shareable view of one loaded delta segment. Copies share the
/// backing bytes; all accessors are const and safe to call concurrently.
class DeltaSegment {
 public:
  /// What a delta lookup resolved to.
  enum class Hit {
    kMiss,       ///< the segment does not mention the device
    kUpsert,     ///< the segment carries a fresh enrollment
    kTombstone,  ///< the segment retires the device
  };

  /// Validates and adopts in-memory delta bytes. Throws FormatError (with
  /// the specific Defect) on any structural problem.
  static DeltaSegment from_bytes(std::string bytes);

  /// Reads and validates a delta file exactly like from_bytes.
  static DeltaSegment load_file(const std::string& path);

  std::size_t entry_count() const { return entry_count_; }
  std::size_t tombstone_count() const { return tombstone_count_; }
  std::size_t upsert_count() const { return entry_count_ - tombstone_count_; }
  std::size_t byte_size() const { return bytes_.size(); }

  /// Device id of the i-th index entry (ascending order).
  std::uint64_t device_id_at(std::size_t i) const;
  /// Whether the i-th entry is a tombstone.
  bool tombstone_at(std::size_t i) const;
  /// Decoded enrollment of the i-th entry; throws ropuf::Error for a
  /// tombstone, FormatError(kBadRecord) for an inconsistent payload.
  puf::ConfigurableEnrollment enrollment_at(std::size_t i) const;

  /// O(log n) lookup. On kUpsert the enrollment is written to *enrollment
  /// when the pointer is non-null.
  Hit find(std::uint64_t device_id,
           std::optional<puf::ConfigurableEnrollment>* enrollment) const;

 private:
  DeltaSegment() = default;
  std::size_t index_entry_offset(std::size_t i) const;

  std::shared_ptr<const std::string> owner_;  ///< keeps the buffer alive
  std::string_view bytes_;
  std::size_t entry_count_ = 0;
  std::size_t tombstone_count_ = 0;
  std::size_t index_offset_ = 0;
  std::size_t records_offset_ = 0;
};

/// One immutable registry generation: base + ordered deltas, resolved
/// newest-epoch-wins. Construction computes the live id set once; after
/// that every accessor is const, lock-free and safe from any thread — the
/// object a reader pins across an epoch swap.
class RegistrySnapshot {
 public:
  RegistrySnapshot(std::uint64_t epoch, Registry base,
                   std::vector<DeltaSegment> deltas);

  std::uint64_t epoch() const { return epoch_; }
  const Registry& base() const { return base_; }
  const std::vector<DeltaSegment>& deltas() const { return deltas_; }

  /// Devices that resolve after the overlay (base minus tombstoned plus
  /// upserted), ascending.
  const std::vector<std::uint64_t>& live_device_ids() const { return live_ids_; }
  std::size_t device_count() const { return live_ids_.size(); }
  bool contains(std::uint64_t device_id) const;

  /// Overlay lookup: newest delta that mentions the device wins; a
  /// tombstone hides any older record. nullopt when the device never
  /// resolved or is retired; FormatError(kBadRecord) propagates from the
  /// winning record's decode.
  std::optional<puf::ConfigurableEnrollment> find(std::uint64_t device_id) const;

 private:
  std::uint64_t epoch_ = 1;
  Registry base_;
  std::vector<DeltaSegment> deltas_;
  std::vector<std::uint64_t> live_ids_;
};

/// Deterministic merge of a snapshot into fresh base-registry ("ROPUFREG")
/// bytes: every live device's winning enrollment, tombstones dropped.
/// Record decodes run on the deterministic parallel pool — same snapshot,
/// same bytes, at any thread budget. Compacting an already-compacted
/// generation is the identity on its record set.
std::string compact_snapshot(const RegistrySnapshot& snapshot,
                             ThreadBudget threads = {});

/// The mutable head of the registry lifecycle: an atomically swappable
/// RegistrySnapshot. snapshot() is the entire read-side API — one brief
/// mutex acquisition to copy a shared_ptr; everything after that happens on
/// the pinned, immutable snapshot. Writers serialize on a separate mutex,
/// so a long compaction never blocks readers (or delays them beyond the
/// pointer copy).
class EpochRegistry {
 public:
  /// Seeds the head at epoch 1 + deltas.size().
  explicit EpochRegistry(Registry base, std::vector<DeltaSegment> deltas = {});

  /// The current generation, pinned. Callers hold the returned shared_ptr
  /// for as long as they need bit-stable answers; a swap during that window
  /// retires nothing they can observe.
  std::shared_ptr<const RegistrySnapshot> snapshot() const;

  /// Convenience: the current epoch / live-device count.
  std::uint64_t epoch() const { return snapshot()->epoch(); }
  std::size_t device_count() const { return snapshot()->device_count(); }

  /// Publishes the current generation plus one more delta (epoch + 1).
  void append_delta(DeltaSegment delta);

  /// Replaces the whole generation (the SIGHUP reload path). Publishes
  /// epoch max(current + 1, 1 + deltas.size()): always observable as a
  /// bump, and never behind what a fresh process over the same files would
  /// report.
  void install(Registry base, std::vector<DeltaSegment> deltas);

  /// Merges the current generation on the parallel pool and publishes the
  /// compacted base as a new zero-delta generation (epoch + 1). Serving
  /// never pauses: readers pinned to the old generation keep it alive.
  /// Returns the compacted registry bytes so the caller can persist them.
  std::string compact(ThreadBudget threads = {});

 private:
  void publish(std::shared_ptr<const RegistrySnapshot> next);

  mutable std::mutex snapshot_mutex_;  ///< guards current_ (pointer flip only)
  mutable std::mutex writer_mutex_;    ///< serializes append/install/compact
  std::shared_ptr<const RegistrySnapshot> current_;
};

/// Delta files that belong to a base registry file: every `<base>.delta-*`
/// sibling, lexicographically sorted — append order when writers zero-pad
/// (the CLI's `.delta-0001` convention).
std::vector<std::string> discover_delta_paths(const std::string& base_path);

/// A base registry and its delta segments loaded from disk — the unit
/// ropuf_serve (re)loads on SIGHUP and the CLI lifecycle commands operate
/// on.
struct EpochFileSet {
  Registry base;
  std::vector<DeltaSegment> deltas;
  std::vector<std::string> delta_paths;  ///< load order, parallel to deltas
};

/// Loads base + the given delta files (validated like their from_bytes).
EpochFileSet load_epoch_files(const std::string& base_path,
                              const std::vector<std::string>& delta_paths);

/// load_epoch_files over discover_delta_paths(base_path).
EpochFileSet load_epoch_files(const std::string& base_path);

}  // namespace ropuf::registry

#include "registry/registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "auth/auth.h"
#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "puf/measurement.h"
#include "silicon/environment.h"

#if defined(__unix__) || defined(__APPLE__)
#define ROPUF_REGISTRY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ropuf::registry {
namespace {

// ------------------------------------------------------------- file layout
//
//   [0,8)    magic "ROPUFREG"
//   [8,12)   u32 format version
//   [12,16)  u32 header byte count (kHeaderBytes)
//   [16,24)  u64 device count
//   [24,32)  u64 index offset          [32,40)  u64 index size
//   [40,48)  u64 records offset        [48,56)  u64 records size
//   [56,60)  u32 index CRC32           [60,64)  u32 records CRC32
//   [64,68)  u32 header CRC32 (over bytes [0,64))
//
// followed by the index (kIndexEntryBytes per device, sorted by id) and the
// records section. See docs/registry.md for the record payload layout.

constexpr char kMagic[8] = {'R', 'O', 'P', 'U', 'F', 'R', 'E', 'G'};
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Record flags (the u16 at payload offset 2, reserved-as-zero in v1).
// Unknown bits are a kBadRecord defect so future flags cannot be silently
// ignored by old readers that happen to accept the container version.
constexpr std::uint16_t kFlagHasAuth = 0x1;

// Decode-time sanity bounds: far above any real board, low enough that a
// corrupt size field cannot drive a huge allocation before the payload-size
// cross-check rejects it.
constexpr std::size_t kMaxStages = 1u << 12;
constexpr std::size_t kMaxPairs = 1u << 24;

/// Streams bits LSB-first into whole u64 words; each column is flushed to a
/// word boundary so columns stay independently addressable.
class BitPacker {
 public:
  explicit BitPacker(ByteWriter& writer) : writer_(writer) {}
  void push(bool bit) {
    word_ |= static_cast<std::uint64_t>(bit) << used_;
    if (++used_ == 64) flush();
  }
  void flush() {
    if (used_ == 0) return;
    writer_.u64(word_);
    word_ = 0;
    used_ = 0;
  }

 private:
  ByteWriter& writer_;
  std::uint64_t word_ = 0;
  unsigned used_ = 0;
};

/// Mirror of BitPacker: pulls bits off word-aligned columns.
class BitUnpacker {
 public:
  explicit BitUnpacker(ByteReader& reader) : reader_(reader) {}
  bool pull() {
    if (avail_ == 0) {
      word_ = reader_.u64();
      avail_ = 64;
    }
    const bool bit = (word_ & 1u) != 0;
    word_ >>= 1;
    --avail_;
    return bit;
  }
  void align() {
    word_ = 0;
    avail_ = 0;
  }

 private:
  ByteReader& reader_;
  std::uint64_t word_ = 0;
  unsigned avail_ = 0;
};

std::size_t bit_words(std::size_t bits) { return (bits + 63) / 64; }

/// Exact payload size of a record's v1 columns, the decoder's first
/// integrity check. The v2 auth tail (if flagged) follows these bytes and
/// is sized from its own geometry fields.
std::size_t record_payload_bytes(std::size_t stages, std::size_t pairs,
                                 bool has_helper) {
  const std::size_t config_bits = pairs * stages;
  std::size_t bytes = 16;                            // fixed prefix
  bytes += 2 * bit_words(config_bits) * 8;           // top + bottom configs
  bytes += bit_words(pairs) * 8;                     // response bits
  if (has_helper) bytes += bit_words(pairs) * 8;     // dark-bit mask
  bytes += pairs * 8;                                // margins
  if (has_helper) bytes += pairs * 8;                // helper offsets
  return bytes;
}

/// Byte size of the v2 auth tail: geometry prefix, word-aligned helper
/// blocks, 32-byte key check value.
std::size_t auth_tail_bytes(std::size_t block_count, std::size_t block_bits) {
  return 4 + block_count * bit_words(block_bits) * 8 + 32;
}

}  // namespace

void encode_enrollment_record(ByteWriter& writer,
                              const puf::ConfigurableEnrollment& e) {
  const std::size_t stages = e.layout.stages;
  const std::size_t pairs = e.layout.pair_count;
  const bool has_helper = !e.helper.empty();
  const bool has_auth = e.has_auth();
  writer.u8(e.mode == puf::SelectionCase::kSameConfig ? 0 : 1);
  writer.u8(has_helper ? 1 : 0);
  writer.u16(has_auth ? kFlagHasAuth : 0);
  writer.u32(static_cast<std::uint32_t>(stages));
  writer.u32(static_cast<std::uint32_t>(pairs));
  writer.u32(0);

  BitPacker packer(writer);
  for (const puf::Selection& sel : e.selections) {
    for (std::size_t s = 0; s < stages; ++s) packer.push(sel.top_config.get(s));
  }
  packer.flush();
  for (const puf::Selection& sel : e.selections) {
    for (std::size_t s = 0; s < stages; ++s) packer.push(sel.bottom_config.get(s));
  }
  packer.flush();
  for (const puf::Selection& sel : e.selections) packer.push(sel.bit);
  packer.flush();
  if (has_helper) {
    for (const puf::PairHelperData& h : e.helper) packer.push(h.masked);
    packer.flush();
  }
  for (const puf::Selection& sel : e.selections) writer.f64(sel.margin);
  if (has_helper) {
    for (const puf::PairHelperData& h : e.helper) writer.f64(h.offset_ps);
  }
  if (has_auth) {
    const std::size_t block_bits = e.auth_helper.front().size();
    writer.u8(e.auth_code_id);
    writer.u8(static_cast<std::uint8_t>(e.auth_helper.size()));
    writer.u16(static_cast<std::uint16_t>(block_bits));
    BitPacker helper_packer(writer);
    for (const BitVec& block : e.auth_helper) {
      for (std::size_t b = 0; b < block.size(); ++b) helper_packer.push(block.get(b));
      helper_packer.flush();  // each block word-aligned, like every column
    }
    for (const std::uint8_t byte : e.auth_key_check) writer.u8(byte);
  }
}

puf::ConfigurableEnrollment decode_enrollment_record(std::string_view payload) {
  static obs::Counter& decoded =
      obs::Registry::instance().counter("registry.records_decoded");
  decoded.add(1);

  ByteReader reader(payload, Defect::kBadRecord);
  const std::uint8_t mode = reader.u8();
  const std::uint8_t helper_flag = reader.u8();
  const std::uint16_t flags = reader.u16();
  const std::uint32_t stages = reader.u32();
  const std::uint32_t pairs = reader.u32();
  reader.u32();  // reserved

  auto bad = [](const std::string& what) -> FormatError {
    return FormatError(Defect::kBadRecord, what);
  };
  if (mode > 1) throw bad("mode byte must be 0 (case1) or 1 (case2)");
  if (helper_flag > 1) throw bad("helper flag must be 0 or 1");
  if ((flags & ~kFlagHasAuth) != 0) {
    throw bad("unknown record flag bits 0x" + std::to_string(flags));
  }
  if (stages == 0 || stages > kMaxStages) throw bad("implausible stage count");
  if (pairs == 0 || pairs > kMaxPairs) throw bad("implausible pair count");
  const bool has_helper = helper_flag == 1;
  const bool has_auth = (flags & kFlagHasAuth) != 0;
  const std::size_t base_bytes = record_payload_bytes(stages, pairs, has_helper);
  if (has_auth ? payload.size() < base_bytes : payload.size() != base_bytes) {
    throw bad("payload is " + std::to_string(payload.size()) + " bytes, layout " +
              std::to_string(stages) + "x" + std::to_string(pairs) + " needs " +
              std::to_string(base_bytes) + (has_auth ? " plus an auth tail" : ""));
  }

  puf::ConfigurableEnrollment e;
  e.mode = mode == 0 ? puf::SelectionCase::kSameConfig
                     : puf::SelectionCase::kIndependent;
  e.layout.stages = stages;
  e.layout.pair_count = pairs;
  e.selections.resize(pairs);

  BitUnpacker unpacker(reader);
  for (puf::Selection& sel : e.selections) {
    BitVec config(stages);
    for (std::size_t s = 0; s < stages; ++s) config.set(s, unpacker.pull());
    sel.top_config = std::move(config);
  }
  unpacker.align();
  for (puf::Selection& sel : e.selections) {
    BitVec config(stages);
    for (std::size_t s = 0; s < stages; ++s) config.set(s, unpacker.pull());
    sel.bottom_config = std::move(config);
  }
  unpacker.align();
  for (puf::Selection& sel : e.selections) sel.bit = unpacker.pull();
  unpacker.align();
  if (has_helper) {
    e.helper.resize(pairs);
    for (puf::PairHelperData& h : e.helper) h.masked = unpacker.pull();
    unpacker.align();
  }
  for (puf::Selection& sel : e.selections) {
    sel.margin = reader.f64();
    if (!std::isfinite(sel.margin)) throw bad("non-finite margin");
  }
  if (has_helper) {
    for (puf::PairHelperData& h : e.helper) {
      h.offset_ps = reader.f64();
      if (!std::isfinite(h.offset_ps)) throw bad("non-finite helper offset");
    }
  }
  if (has_auth) {
    e.auth_code_id = reader.u8();
    const std::uint8_t block_count = reader.u8();
    const std::uint16_t block_bits = reader.u16();
    if (e.auth_code_id == 0) throw bad("auth flag set with code id 0");
    if (block_count == 0 || block_bits == 0) {
      throw bad("implausible auth helper geometry");
    }
    if (static_cast<std::size_t>(block_count) * block_bits > pairs) {
      throw bad("auth helper wider than the enrolled response");
    }
    if (reader.remaining() != auth_tail_bytes(block_count, block_bits) - 4) {
      throw bad("auth tail is " + std::to_string(reader.remaining()) +
                " bytes past its geometry, " + std::to_string(block_count) + "x" +
                std::to_string(block_bits) + " needs " +
                std::to_string(auth_tail_bytes(block_count, block_bits) - 4));
    }
    e.auth_helper.resize(block_count);
    for (BitVec& block : e.auth_helper) {
      BitVec bits(block_bits);
      for (std::size_t b = 0; b < block_bits; ++b) bits.set(b, unpacker.pull());
      unpacker.align();
      block = std::move(bits);
    }
    for (std::uint8_t& byte : e.auth_key_check) byte = reader.u8();
  }
  if (!reader.exhausted()) throw bad("trailing bytes after record payload");
  return e;
}

void validate_enrollment(const puf::ConfigurableEnrollment& e) {
  ROPUF_REQUIRE(e.layout.stages > 0 && e.layout.stages <= kMaxStages,
                "enrollment stage count out of range");
  ROPUF_REQUIRE(e.layout.pair_count > 0 && e.layout.pair_count <= kMaxPairs,
                "enrollment pair count out of range");
  ROPUF_REQUIRE(e.selections.size() == e.layout.pair_count,
                "selection count does not match the layout");
  ROPUF_REQUIRE(e.helper.empty() || e.helper.size() == e.layout.pair_count,
                "helper data must be empty or cover every pair");
  for (const puf::Selection& sel : e.selections) {
    ROPUF_REQUIRE(sel.top_config.size() == e.layout.stages &&
                      sel.bottom_config.size() == e.layout.stages,
                  "configuration arity does not match the layout");
    ROPUF_REQUIRE(std::isfinite(sel.margin), "non-finite enrollment margin");
  }
  for (const puf::PairHelperData& h : e.helper) {
    ROPUF_REQUIRE(std::isfinite(h.offset_ps), "non-finite helper offset");
  }
  if (e.has_auth()) {
    ROPUF_REQUIRE(e.auth_code_id != 0, "auth helper present without a code id");
    ROPUF_REQUIRE(e.auth_helper.size() <= 255,
                  "auth helper block count out of range");
    const std::size_t block_bits = e.auth_helper.front().size();
    ROPUF_REQUIRE(block_bits > 0 && block_bits <= 0xffff,
                  "auth helper block width out of range");
    for (const BitVec& block : e.auth_helper) {
      ROPUF_REQUIRE(block.size() == block_bits,
                    "auth helper blocks must share one width");
    }
    ROPUF_REQUIRE(e.auth_helper.size() * block_bits <= e.layout.pair_count,
                  "auth helper wider than the enrolled response");
  } else {
    ROPUF_REQUIRE(e.auth_code_id == 0, "auth code id without helper data");
  }
}

double RegistryStats::bias_percent() const {
  return total_pairs == 0 ? 0.0
                          : 100.0 * static_cast<double>(ones) /
                                static_cast<double>(total_pairs);
}

double RegistryStats::mean_abs_margin() const {
  return total_pairs == 0 ? 0.0 : margin_abs_sum / static_cast<double>(total_pairs);
}

// ------------------------------------------------------------------ builder

void RegistryBuilder::add(std::uint64_t device_id,
                          puf::ConfigurableEnrollment enrollment) {
  validate_enrollment(enrollment);
  ROPUF_REQUIRE(ids_.insert(device_id).second,
                "duplicate device id " + std::to_string(device_id));
  records_.push_back(DeviceRecord{device_id, std::move(enrollment)});
}

std::string RegistryBuilder::build() const {
  std::vector<const DeviceRecord*> sorted;
  sorted.reserve(records_.size());
  for (const DeviceRecord& record : records_) sorted.push_back(&record);
  std::sort(sorted.begin(), sorted.end(),
            [](const DeviceRecord* a, const DeviceRecord* b) {
              return a->device_id < b->device_id;
            });

  ByteWriter records;
  ByteWriter index;
  for (const DeviceRecord* record : sorted) {
    const std::size_t offset = records.size();
    encode_enrollment_record(records, record->enrollment);
    index.u64(record->device_id);
    index.u64(offset);
    index.u64(records.size() - offset);
  }
  return assemble_sections(std::string_view(kMagic, sizeof(kMagic)), kFormatVersion,
                           records_.size(), index.bytes(), records.bytes());
}

void RegistryBuilder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ROPUF_REQUIRE(out.good(), "cannot open registry output file " + path);
  const std::string bytes = build();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ROPUF_REQUIRE(out.good(), "failed writing registry file " + path);
}

// ----------------------------------------------------------------- registry

Registry Registry::from_bytes(std::string bytes) {
  auto owned = std::make_shared<const std::string>(std::move(bytes));
  const std::string_view view(*owned);
  return adopt(owned, view);
}

Registry Registry::load_file(const std::string& path) {
#if ROPUF_REGISTRY_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  ROPUF_REQUIRE(fd >= 0, "cannot open registry file " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("cannot stat registry file " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr != MAP_FAILED) {
      std::shared_ptr<const void> owner(addr, [size](const void* p) {
        ::munmap(const_cast<void*>(p), size);
      });
      return adopt(std::move(owner),
                   std::string_view(static_cast<const char*>(addr), size));
    }
    // fall through to the read path (e.g. filesystems without mmap support)
  } else {
    ::close(fd);
  }
#endif
  std::ifstream in(path, std::ios::binary);
  ROPUF_REQUIRE(in.good(), "cannot open registry file " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return from_bytes(std::move(bytes));
}

Registry Registry::adopt(std::shared_ptr<const void> owner, std::string_view view) {
  static obs::Counter& loads = obs::Registry::instance().counter("registry.loads");
  static obs::Histogram& load_us =
      obs::Registry::instance().latency_histogram("registry.load_us");
  const obs::ScopedLatency load_timer(load_us);

  const SectionGeometry geometry =
      validate_sections(view, std::string_view(kMagic, sizeof(kMagic)), kFormatVersion,
                        /*allow_tombstones=*/false);

  Registry registry;
  registry.owner_ = std::move(owner);
  registry.bytes_ = view;
  registry.device_count_ = geometry.device_count;
  registry.index_offset_ = geometry.index_offset;
  registry.records_offset_ = geometry.records_offset;
  registry.records_size_ = geometry.records_size;
  loads.add(1);
  return registry;
}

std::size_t Registry::index_entry_offset(std::size_t i) const {
  return index_offset_ + i * kIndexEntryBytes;
}

std::uint64_t Registry::device_id_at(std::size_t i) const {
  ROPUF_REQUIRE(i < device_count_, "device index out of range");
  return read_u64_at(bytes_, index_entry_offset(i));
}

std::size_t Registry::index_position(std::uint64_t device_id) const {
  std::size_t lo = 0, hi = device_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint64_t mid_id = read_u64_at(bytes_, index_entry_offset(mid));
    if (mid_id == device_id) return mid;
    if (mid_id < device_id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return kNpos;
}

bool Registry::contains(std::uint64_t device_id) const {
  return index_position(device_id) != kNpos;
}

std::optional<puf::ConfigurableEnrollment> Registry::find(
    std::uint64_t device_id) const {
  static obs::Counter& lookups = obs::Registry::instance().counter("registry.lookups");
  lookups.add(1);
  const std::size_t position = index_position(device_id);
  if (position == kNpos) return std::nullopt;
  const std::size_t entry = index_entry_offset(position);
  const std::uint64_t offset = read_u64_at(bytes_, entry + 8);
  const std::uint64_t size = read_u64_at(bytes_, entry + 16);
  return decode_enrollment_record(bytes_.substr(records_offset_ + offset, size));
}

puf::ConfigurableEnrollment Registry::lookup(std::uint64_t device_id) const {
  auto enrollment = find(device_id);
  ROPUF_REQUIRE(enrollment.has_value(),
                "unknown device " + std::to_string(device_id));
  return std::move(*enrollment);
}

RegistryStats Registry::stats() const {
  RegistryStats stats;
  stats.devices = device_count_;
  for (std::size_t i = 0; i < device_count_; ++i) {
    const std::size_t entry = index_entry_offset(i);
    const std::uint64_t offset = read_u64_at(bytes_, entry + 8);
    const std::uint64_t size = read_u64_at(bytes_, entry + 16);
    const puf::ConfigurableEnrollment e =
        decode_enrollment_record(bytes_.substr(records_offset_ + offset, size));
    (e.mode == puf::SelectionCase::kSameConfig ? stats.case1_devices
                                               : stats.case2_devices) += 1;
    if (!e.helper.empty()) stats.helper_devices += 1;
    if (i == 0) {
      stats.min_stages = stats.max_stages = e.layout.stages;
      stats.min_pairs = stats.max_pairs = e.layout.pair_count;
    } else {
      stats.min_stages = std::min(stats.min_stages, e.layout.stages);
      stats.max_stages = std::max(stats.max_stages, e.layout.stages);
      stats.min_pairs = std::min(stats.min_pairs, e.layout.pair_count);
      stats.max_pairs = std::max(stats.max_pairs, e.layout.pair_count);
    }
    stats.total_pairs += e.layout.pair_count;
    for (const puf::Selection& sel : e.selections) {
      if (sel.bit) stats.ones += 1;
      stats.margin_abs_sum += std::abs(sel.margin);
    }
    for (const puf::PairHelperData& h : e.helper) {
      if (h.masked) stats.masked_pairs += 1;
    }
  }
  return stats;
}

// ------------------------------------------------------------ fleet import

std::vector<MintedDevice> mint_fleet_with_chips(const FleetSpec& spec) {
  ROPUF_REQUIRE(spec.devices > 0, "fleet must contain at least one device");
  ROPUF_REQUIRE(spec.stages > 0 && spec.stages <= kMaxStages,
                "fleet stage count out of range");
  ROPUF_REQUIRE(spec.pairs > 0 && spec.pairs <= kMaxPairs,
                "fleet pair count out of range");
  static obs::Counter& minted =
      obs::Registry::instance().counter("registry.devices_minted");

  const puf::BoardLayout layout{spec.stages, spec.pairs};
  const std::size_t grid_cols = 2 * spec.stages;
  const std::size_t grid_rows = spec.pairs;

  // Order-sensitive work happens serially up front (the parallel.h
  // contract): per-device chip and measurement streams are forked in device
  // order, and device ids are drawn from their own SplitMix64 stream
  // (redrawing the vanishingly rare collision or zero).
  sil::Fab fab(spec.process, spec.seed);
  Rng measurement_base(spec.seed ^ 0x9e3779b97f4a7c15ull);
  // The auth stream is forked from its own base so v2 provisioning never
  // perturbs the pre-existing chip/measurement/id streams — a v1-era spec
  // still mints bit-identical silicon and enrollments.
  Rng auth_base(spec.seed ^ 0xa0745ecull);
  std::vector<Rng> chip_rngs;
  std::vector<Rng> measurement_rngs;
  std::vector<Rng> auth_rngs;
  std::vector<std::uint64_t> ids;
  chip_rngs.reserve(spec.devices);
  measurement_rngs.reserve(spec.devices);
  auth_rngs.reserve(spec.devices);
  ids.reserve(spec.devices);
  std::unordered_set<std::uint64_t> used_ids;
  std::uint64_t id_state = spec.seed ^ 0x1d5c0de;
  for (std::size_t i = 0; i < spec.devices; ++i) {
    chip_rngs.push_back(fab.fork_chip_stream());
    measurement_rngs.push_back(measurement_base.fork());
    auth_rngs.push_back(auth_base.fork());
    std::uint64_t id = 0;
    do {
      id = splitmix64(id_state);
    } while (id == 0 || !used_ids.insert(id).second);
    ids.push_back(id);
  }

  puf::UnitMeasurementSpec measurement;
  measurement.noise_sigma_ps = spec.noise_sigma_ps;
  auto devices = parallel_transform<MintedDevice>(
      spec.devices, spec.threads,
      [&](std::size_t i) {
        sil::Chip chip = fab.fabricate_with(chip_rngs[i], grid_cols, grid_rows);
        const auto values = puf::measure_unit_ddiffs(chip, sil::nominal_op(),
                                                     measurement, measurement_rngs[i]);
        MintedDevice device{ids[i], std::move(chip),
                            puf::configurable_enroll(values, layout, spec.mode)};
        auth::provision_auth(device.enrollment, auth_rngs[i]);
        return device;
      },
      /*grain=*/8);
  minted.add(spec.devices);
  return devices;
}

std::vector<DeviceRecord> mint_fleet(const FleetSpec& spec) {
  std::vector<DeviceRecord> records;
  std::vector<MintedDevice> devices = mint_fleet_with_chips(spec);
  records.reserve(devices.size());
  for (MintedDevice& device : devices) {
    records.push_back(DeviceRecord{device.device_id, std::move(device.enrollment)});
  }
  return records;
}

std::string build_fleet_registry(const FleetSpec& spec) {
  RegistryBuilder builder;
  for (DeviceRecord& record : mint_fleet(spec)) {
    builder.add(record.device_id, std::move(record.enrollment));
  }
  return builder.build();
}

}  // namespace ropuf::registry

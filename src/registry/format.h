// Binary wire primitives for the enrollment registry (see docs/registry.md).
//
// The registry file is a little-endian byte stream assembled from three
// CRC32-checked sections (header, device index, packed records). This header
// provides the pieces every producer and consumer shares:
//
//  * crc32 — the IEEE 802.3 polynomial (reflected, init/xorout 0xffffffff),
//    the same checksum zlib and PNG use, table-driven.
//  * ByteWriter / ByteReader — explicit little-endian packing, so a registry
//    written on any host loads on any other. No struct memcpy, no padding.
//  * FormatError — a ropuf::Error subclass tagged with *which* structural
//    defect was detected, so corruption tests (and operators) can tell a
//    truncated download from a bit-rotted index from a bad record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace ropuf::registry {

/// CRC32 (IEEE, reflected) of `size` bytes. `seed` chains incremental
/// updates: crc32(b, crc32(a)) == crc32(a + b).
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

/// The structural defect a registry load can detect. Each maps to exactly
/// one check in the load path, so tests can assert the *right* check fired.
enum class Defect {
  kTruncated,    ///< file shorter than the structure it claims to hold
  kBadMagic,     ///< leading magic bytes are not "ROPUFREG"
  kBadVersion,   ///< format version this reader does not understand
  kHeaderCrc,    ///< header bytes fail their checksum
  kIndexCrc,     ///< device-index section fails its checksum
  kRecordsCrc,   ///< records section fails its checksum
  kBadIndex,     ///< index entries unsorted, duplicated, or out of bounds
  kBadRecord,    ///< a device record's payload is internally inconsistent
};

/// Stable human-readable name for a defect (used in error messages).
const char* defect_name(Defect defect);

/// Load-time failure tagged with the defect that was detected.
class FormatError : public Error {
 public:
  FormatError(Defect defect, const std::string& what)
      : Error(std::string("registry format error [") + defect_name(defect) + "]: " +
              what),
        defect_(defect) {}

  Defect defect() const { return defect_; }

 private:
  Defect defect_;
};

/// Appends little-endian scalars to a growing byte string.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 doubles travel as their 64-bit pattern, so round-trips are
  /// bit-exact (including -0.0; the library never stores NaN margins).
  void f64(double v);
  void raw(std::string_view bytes) { bytes_.append(bytes); }

  std::size_t size() const { return bytes_.size(); }
  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

// --------------------------------------------------- sectioned container
//
// The base registry ("ROPUFREG", registry.h) and the append-only delta
// segments ("ROPUFDLT", epoch.h) share one container layout: a 68-byte
// header, a fixed-width device index sorted by id, and a records section,
// each CRC32-checked. The helpers below are the shared producer/consumer
// halves so the two formats cannot drift apart structurally.

/// Header byte count of every sectioned registry image.
inline constexpr std::size_t kHeaderBytes = 68;
/// Header bytes the header CRC covers (everything before the CRC itself).
inline constexpr std::size_t kHeaderCrcSpan = 64;
/// Bytes per index entry: u64 device id, u64 record offset, u64 record size.
inline constexpr std::size_t kIndexEntryBytes = 24;

/// Little-endian u64 at `offset`; the caller guarantees bounds (index reads
/// after validate_sections proved the geometry).
std::uint64_t read_u64_at(std::string_view bytes, std::size_t offset);

/// The validated section geometry of an image (offsets relative to byte 0).
struct SectionGeometry {
  std::uint64_t device_count = 0;
  std::size_t index_offset = 0;
  std::size_t records_offset = 0;
  std::size_t records_size = 0;
  /// The version the file actually declares (<= the reader's version).
  std::uint32_t version = 0;
};

/// Validates a sectioned image end to end — magic, version, all three CRCs,
/// section geometry, index invariants (strictly ascending ids, every entry
/// inside the records section) — and returns the geometry. Throws
/// FormatError with the specific Defect otherwise. `version` is the newest
/// format this reader understands; older versions back to 1 are accepted
/// (the container layout is version-stable — only record payloads grew) and
/// reported in SectionGeometry::version. `allow_tombstones` admits size-0
/// index entries (delta tombstones, which must carry offset 0); the base
/// registry passes false, keeping its historical behavior of rejecting
/// nothing at the index level and failing such entries at decode.
SectionGeometry validate_sections(std::string_view view, std::string_view magic,
                                  std::uint32_t version, bool allow_tombstones);

/// The producer half of validate_sections: assembles header + index +
/// records with all three CRCs filled in. `device_count` must match the
/// index size (index.size() == device_count * kIndexEntryBytes).
std::string assemble_sections(std::string_view magic, std::uint32_t version,
                              std::uint64_t device_count, std::string_view index,
                              std::string_view records);

/// Reads little-endian scalars off a byte view; any read past the end
/// throws FormatError with the defect the caller is decoding under.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, Defect on_overrun)
      : bytes_(bytes), on_overrun_(on_overrun) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  Defect on_overrun_;
  std::size_t pos_ = 0;
};

}  // namespace ropuf::registry

#include "registry/format.h"

#include <array>
#include <cstring>

namespace ropuf::registry {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const char byte : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(byte)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const char* defect_name(Defect defect) {
  switch (defect) {
    case Defect::kTruncated: return "truncated";
    case Defect::kBadMagic: return "bad-magic";
    case Defect::kBadVersion: return "bad-version";
    case Defect::kHeaderCrc: return "header-crc";
    case Defect::kIndexCrc: return "index-crc";
    case Defect::kRecordsCrc: return "records-crc";
    case Defect::kBadIndex: return "bad-index";
    case Defect::kBadRecord: return "bad-record";
  }
  return "unknown";
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t pattern = 0;
  static_assert(sizeof(pattern) == sizeof(v));
  std::memcpy(&pattern, &v, sizeof(pattern));
  u64(pattern);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw FormatError(on_overrun_, "read of " + std::to_string(n) +
                                       " bytes at offset " + std::to_string(pos_) +
                                       " overruns the " +
                                       std::to_string(bytes_.size()) + "-byte region");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double ByteReader::f64() {
  const std::uint64_t pattern = u64();
  double v = 0.0;
  std::memcpy(&v, &pattern, sizeof(v));
  return v;
}

}  // namespace ropuf::registry

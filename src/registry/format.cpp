#include "registry/format.h"

#include <array>
#include <cstring>

namespace ropuf::registry {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const char byte : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(byte)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const char* defect_name(Defect defect) {
  switch (defect) {
    case Defect::kTruncated: return "truncated";
    case Defect::kBadMagic: return "bad-magic";
    case Defect::kBadVersion: return "bad-version";
    case Defect::kHeaderCrc: return "header-crc";
    case Defect::kIndexCrc: return "index-crc";
    case Defect::kRecordsCrc: return "records-crc";
    case Defect::kBadIndex: return "bad-index";
    case Defect::kBadRecord: return "bad-record";
  }
  return "unknown";
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t pattern = 0;
  static_assert(sizeof(pattern) == sizeof(v));
  std::memcpy(&pattern, &v, sizeof(pattern));
  u64(pattern);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw FormatError(on_overrun_, "read of " + std::to_string(n) +
                                       " bytes at offset " + std::to_string(pos_) +
                                       " overruns the " +
                                       std::to_string(bytes_.size()) + "-byte region");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double ByteReader::f64() {
  const std::uint64_t pattern = u64();
  double v = 0.0;
  std::memcpy(&v, &pattern, sizeof(v));
  return v;
}

// ----------------------------------------------------- sectioned container

std::uint64_t read_u64_at(std::string_view bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[offset + b]))
         << (8 * b);
  }
  return v;
}

SectionGeometry validate_sections(std::string_view view, std::string_view magic,
                                  std::uint32_t version, bool allow_tombstones) {
  const std::string magic_name(magic);
  if (view.size() < magic.size()) {
    throw FormatError(Defect::kTruncated, "file is " + std::to_string(view.size()) +
                                              " bytes, shorter than the magic");
  }
  if (std::memcmp(view.data(), magic.data(), magic.size()) != 0) {
    throw FormatError(Defect::kBadMagic, "leading bytes are not " + magic_name);
  }
  if (view.size() < kHeaderBytes) {
    throw FormatError(Defect::kTruncated, "file is " + std::to_string(view.size()) +
                                              " bytes, shorter than the header");
  }
  ByteReader header(view.substr(0, kHeaderBytes), Defect::kTruncated);
  header.u64();  // magic, already checked
  const std::uint32_t file_version = header.u32();
  const std::uint32_t header_bytes = header.u32();
  if (file_version == 0 || file_version > version) {
    throw FormatError(Defect::kBadVersion,
                      "version " + std::to_string(file_version) +
                          ", this reader handles 1.." + std::to_string(version));
  }
  if (header_bytes != kHeaderBytes) {
    throw FormatError(Defect::kBadVersion,
                      "header claims " + std::to_string(header_bytes) +
                          " bytes, version " + std::to_string(version) + " defines " +
                          std::to_string(kHeaderBytes));
  }
  const std::uint64_t device_count = header.u64();
  const std::uint64_t index_offset = header.u64();
  const std::uint64_t index_size = header.u64();
  const std::uint64_t records_offset = header.u64();
  const std::uint64_t records_size = header.u64();
  const std::uint32_t index_crc = header.u32();
  const std::uint32_t records_crc = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (header_crc != crc32(view.substr(0, kHeaderCrcSpan))) {
    throw FormatError(Defect::kHeaderCrc, "stored header checksum does not match");
  }

  // Section geometry. The header CRC already vouches for these fields, so a
  // mismatch here means the file body was cut or grew, not that a field bit
  // rotted. A CRC is no defense against a *crafted* header, though, so every
  // bound is checked against the actual view size before any derived
  // arithmetic: device_count is capped first, which makes the index_size
  // product and the records_offset sum provably non-wrapping in u64.
  if (index_offset != kHeaderBytes ||
      device_count > (view.size() - kHeaderBytes) / kIndexEntryBytes ||
      index_size != device_count * kIndexEntryBytes) {
    throw FormatError(Defect::kBadIndex, "index geometry inconsistent with header");
  }
  if (records_offset != index_offset + index_size) {
    throw FormatError(Defect::kBadIndex, "records section does not follow the index");
  }
  if (records_size != view.size() - records_offset) {
    throw FormatError(Defect::kTruncated,
                      "file is " + std::to_string(view.size()) + " bytes, header wants " +
                          std::to_string(records_size) + "-byte records at offset " +
                          std::to_string(records_offset));
  }
  if (index_crc != crc32(view.substr(index_offset, index_size))) {
    throw FormatError(Defect::kIndexCrc, "stored index checksum does not match");
  }
  if (records_crc != crc32(view.substr(records_offset, records_size))) {
    throw FormatError(Defect::kRecordsCrc, "stored records checksum does not match");
  }

  // Index invariants: strictly ascending ids, every entry inside the
  // records section. A tombstone (size 0) carries no payload, so its offset
  // must be 0 — a nonzero offset there means the entry bits rotted in a way
  // the CRCs cannot have missed, i.e. the file was crafted.
  std::uint64_t previous_id = 0;
  for (std::uint64_t i = 0; i < device_count; ++i) {
    const std::size_t entry = index_offset + i * kIndexEntryBytes;
    const std::uint64_t id = read_u64_at(view, entry);
    const std::uint64_t offset = read_u64_at(view, entry + 8);
    const std::uint64_t size = read_u64_at(view, entry + 16);
    if (i > 0 && id <= previous_id) {
      throw FormatError(Defect::kBadIndex, "device ids not strictly ascending");
    }
    previous_id = id;
    if (allow_tombstones && size == 0 && offset != 0) {
      throw FormatError(Defect::kBadIndex,
                        "tombstone entry " + std::to_string(i) + " carries an offset");
    }
    if (offset > records_size || size > records_size - offset) {
      throw FormatError(Defect::kBadIndex,
                        "index entry " + std::to_string(i) + " points outside records");
    }
  }

  SectionGeometry geometry;
  geometry.device_count = device_count;
  geometry.index_offset = static_cast<std::size_t>(index_offset);
  geometry.records_offset = static_cast<std::size_t>(records_offset);
  geometry.records_size = static_cast<std::size_t>(records_size);
  geometry.version = file_version;
  return geometry;
}

std::string assemble_sections(std::string_view magic, std::uint32_t version,
                              std::uint64_t device_count, std::string_view index,
                              std::string_view records) {
  ByteWriter header;
  header.raw(magic);
  header.u32(version);
  header.u32(static_cast<std::uint32_t>(kHeaderBytes));
  header.u64(device_count);
  header.u64(kHeaderBytes);
  header.u64(index.size());
  header.u64(kHeaderBytes + index.size());
  header.u64(records.size());
  header.u32(crc32(index));
  header.u32(crc32(records));
  header.u32(crc32(header.bytes()));  // over exactly the kHeaderCrcSpan bytes above

  std::string file = header.take();
  file += index;
  file += records;
  return file;
}

}  // namespace ropuf::registry

// Fleet-scale enrollment registry: a binary, versioned, columnar store of
// per-device ConfigurableEnrollment records (see docs/registry.md).
//
// The v1 text format (puf/serialization.h) is one file per device and is
// re-parsed on every access — fine for a bench, useless for serving a fleet.
// The registry packs an entire fleet into one file with three CRC32-checked
// sections:
//
//   header   — magic, version, section offsets/sizes, section checksums
//   index    — fixed-width entries sorted by 64-bit device id, so a lookup
//              is one binary search over the raw bytes (no deserialization)
//   records  — per-device payloads, columnar within each record: all
//              configuration bits, then response bits, then margins, so the
//              hot fields stream linearly
//
// The whole file is mapped (or read) once; lookups decode exactly one
// record. Loads validate every checksum up front, so a served registry is
// known-good before the first request — any later decode failure is a
// kBadRecord defect, which the auth service degrades gracefully on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "puf/schemes.h"
#include "registry/format.h"
#include "silicon/fabrication.h"

namespace ropuf::registry {

/// Newest format revision this library writes; readers accept 1..this.
/// v2 added the record flags word and the optional auth tail (fuzzy-
/// extractor helper blocks + key check value) — v1 files load unchanged
/// with every device unprovisioned for protocol-v2 authentication.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Encodes one device record payload (the columnar layout docs/registry.md
/// describes) onto `writer`. Shared by RegistryBuilder and the delta-segment
/// builder (epoch.h), so base and delta records are byte-identical for the
/// same enrollment.
void encode_enrollment_record(ByteWriter& writer, const puf::ConfigurableEnrollment& e);

/// Decodes one record payload; throws FormatError(Defect::kBadRecord) on any
/// internal inconsistency. The exact inverse of encode_enrollment_record.
puf::ConfigurableEnrollment decode_enrollment_record(std::string_view payload);

/// Structural validation of an enrollment about to be encoded (consistent
/// layout/arity, finite margins); throws ropuf::Error on violation.
void validate_enrollment(const puf::ConfigurableEnrollment& e);

/// One enrolled device: the 64-bit identity the index is sorted by plus the
/// enrollment artifact the auth service verifies against.
struct DeviceRecord {
  std::uint64_t device_id = 0;
  puf::ConfigurableEnrollment enrollment;
};

/// Deterministic aggregate over every record in a registry; the
/// `registry-stats` CLI command prints exactly these fields.
struct RegistryStats {
  std::size_t devices = 0;
  std::size_t case1_devices = 0;       ///< SelectionCase::kSameConfig records
  std::size_t case2_devices = 0;       ///< SelectionCase::kIndependent records
  std::size_t helper_devices = 0;      ///< records carrying helper data
  std::size_t min_stages = 0, max_stages = 0;
  std::size_t min_pairs = 0, max_pairs = 0;
  std::size_t total_pairs = 0;         ///< enrolled pairs across the fleet
  std::size_t ones = 0;                ///< set enrollment bits (bias numerator)
  std::size_t masked_pairs = 0;        ///< dark-bit-masked pairs (helper data)
  double margin_abs_sum = 0.0;         ///< sum of |margin| over all pairs

  /// Percentage of enrollment bits set (ideal 50).
  double bias_percent() const;
  /// Mean enrollment margin magnitude in ps.
  double mean_abs_margin() const;
};

/// Accumulates device records and serializes them into registry bytes.
/// Records may be added in any order; build() sorts the index by device id.
class RegistryBuilder {
 public:
  /// Validates the enrollment (consistent layout/arity, finite margins) and
  /// stages it. Throws ropuf::Error on a duplicate device id.
  void add(std::uint64_t device_id, puf::ConfigurableEnrollment enrollment);

  std::size_t device_count() const { return records_.size(); }

  /// Serializes every staged record into the registry byte format.
  std::string build() const;

  /// build() straight to a file (throws ropuf::Error on I/O failure).
  void write_file(const std::string& path) const;

 private:
  std::vector<DeviceRecord> records_;
  std::unordered_set<std::uint64_t> ids_;
};

/// Immutable, shareable view of a loaded registry. Copies share the backing
/// bytes; all accessors are const and safe to call concurrently.
class Registry {
 public:
  /// Validates and adopts in-memory registry bytes. Throws FormatError
  /// (with the specific Defect) on any structural problem.
  static Registry from_bytes(std::string bytes);

  /// Single-mmap-or-read load: the file is mapped read-only where the
  /// platform supports it and read into memory otherwise, then validated
  /// exactly like from_bytes.
  static Registry load_file(const std::string& path);

  std::size_t device_count() const { return device_count_; }
  std::size_t byte_size() const { return bytes_.size(); }

  /// Device id of the i-th index entry (ascending order).
  std::uint64_t device_id_at(std::size_t i) const;

  bool contains(std::uint64_t device_id) const;

  /// O(log n) binary search over the raw index, then a single-record
  /// decode. nullopt when the device is not enrolled; FormatError
  /// (kBadRecord) when the record's payload is inconsistent.
  std::optional<puf::ConfigurableEnrollment> find(std::uint64_t device_id) const;

  /// find() that throws ropuf::Error("unknown device ...") on absence.
  puf::ConfigurableEnrollment lookup(std::uint64_t device_id) const;

  /// Full-scan aggregate (decodes every record; deterministic).
  RegistryStats stats() const;

 private:
  Registry() = default;
  /// Shared validation behind from_bytes and load_file.
  static Registry adopt(std::shared_ptr<const void> owner, std::string_view bytes);
  /// Byte offset of index entry i within bytes_.
  std::size_t index_entry_offset(std::size_t i) const;
  /// Index position of device_id, or npos.
  std::size_t index_position(std::uint64_t device_id) const;

  std::shared_ptr<const void> owner_;  ///< keeps the mapping/buffer alive
  std::string_view bytes_;
  std::size_t device_count_ = 0;
  std::size_t index_offset_ = 0;
  std::size_t records_offset_ = 0;
  std::size_t records_size_ = 0;
};

/// Knobs of the bulk fleet importer: devices are minted through sil::Fab
/// (per-device streams forked serially, chips minted and enrolled on the
/// parallel pool), so a spec identifies its fleet exactly — same spec, same
/// registry bytes, at any thread budget.
struct FleetSpec {
  std::size_t devices = 1024;
  std::size_t stages = 5;
  std::size_t pairs = 16;
  puf::SelectionCase mode = puf::SelectionCase::kIndependent;
  std::uint64_t seed = 0x5ca1ab1e;
  double noise_sigma_ps = 0.5;      ///< enrollment-readout noise per unit
  sil::ProcessParams process;
  ThreadBudget threads;
};

/// Mints `spec.devices` boards (2*stages x pairs unit grids) and enrolls
/// each at the nominal corner. Device ids are drawn deterministically from
/// the seed (collision-free by construction).
std::vector<DeviceRecord> mint_fleet(const FleetSpec& spec);

/// One minted device with its silicon retained: device id, the fabricated
/// chip, and the enrollment computed from it. This is what a live-prover
/// harness (tools/ropuf_soak) needs — the chip can be re-measured at any
/// operating corner while the enrollment matches the registry built from
/// the same spec.
struct MintedDevice {
  std::uint64_t device_id = 0;
  sil::Chip chip;
  puf::ConfigurableEnrollment enrollment;
};

/// mint_fleet with the chips kept. Consumes exactly the same deterministic
/// streams, so the returned ids and enrollments are bit-identical to
/// mint_fleet(spec) — a registry built from one verifies provers built
/// from the other.
std::vector<MintedDevice> mint_fleet_with_chips(const FleetSpec& spec);

/// mint_fleet + RegistryBuilder in one call; returns the registry bytes.
std::string build_fleet_registry(const FleetSpec& spec);

}  // namespace ropuf::registry

#include "registry/epoch.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ropuf::registry {
namespace {

constexpr char kDeltaMagic[8] = {'R', 'O', 'P', 'U', 'F', 'D', 'L', 'T'};
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ROPUF_REQUIRE(in.good(), "cannot open delta file " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// ------------------------------------------------------------ delta builder

void DeltaBuilder::upsert(std::uint64_t device_id,
                          puf::ConfigurableEnrollment enrollment) {
  validate_enrollment(enrollment);
  ROPUF_REQUIRE(ids_.insert(device_id).second,
                "duplicate device id " + std::to_string(device_id) +
                    " in delta segment");
  entries_.push_back(Entry{device_id, false, std::move(enrollment)});
}

void DeltaBuilder::retire(std::uint64_t device_id) {
  ROPUF_REQUIRE(ids_.insert(device_id).second,
                "duplicate device id " + std::to_string(device_id) +
                    " in delta segment");
  entries_.push_back(Entry{device_id, true, {}});
}

std::string DeltaBuilder::build() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return a->device_id < b->device_id;
  });

  ByteWriter records;
  ByteWriter index;
  for (const Entry* entry : sorted) {
    index.u64(entry->device_id);
    if (entry->tombstone) {
      // A tombstone is pure index: offset 0, size 0, no payload.
      index.u64(0);
      index.u64(0);
      continue;
    }
    const std::size_t offset = records.size();
    encode_enrollment_record(records, entry->enrollment);
    index.u64(offset);
    index.u64(records.size() - offset);
  }
  return assemble_sections(std::string_view(kDeltaMagic, sizeof(kDeltaMagic)),
                           kDeltaFormatVersion, entries_.size(), index.bytes(),
                           records.bytes());
}

void DeltaBuilder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ROPUF_REQUIRE(out.good(), "cannot open delta output file " + path);
  const std::string bytes = build();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ROPUF_REQUIRE(out.good(), "failed writing delta file " + path);
}

// ------------------------------------------------------------ delta segment

DeltaSegment DeltaSegment::from_bytes(std::string bytes) {
  static obs::Counter& loads =
      obs::Registry::instance().counter("registry.delta_loads");

  auto owned = std::make_shared<const std::string>(std::move(bytes));
  const std::string_view view(*owned);
  const SectionGeometry geometry =
      validate_sections(view, std::string_view(kDeltaMagic, sizeof(kDeltaMagic)),
                        kDeltaFormatVersion, /*allow_tombstones=*/true);

  DeltaSegment segment;
  segment.owner_ = std::move(owned);
  segment.bytes_ = view;
  segment.entry_count_ = geometry.device_count;
  segment.index_offset_ = geometry.index_offset;
  segment.records_offset_ = geometry.records_offset;
  for (std::size_t i = 0; i < segment.entry_count_; ++i) {
    if (segment.tombstone_at(i)) ++segment.tombstone_count_;
  }
  loads.add(1);
  return segment;
}

DeltaSegment DeltaSegment::load_file(const std::string& path) {
  return from_bytes(read_whole_file(path));
}

std::size_t DeltaSegment::index_entry_offset(std::size_t i) const {
  return index_offset_ + i * kIndexEntryBytes;
}

std::uint64_t DeltaSegment::device_id_at(std::size_t i) const {
  ROPUF_REQUIRE(i < entry_count_, "delta entry index out of range");
  return read_u64_at(bytes_, index_entry_offset(i));
}

bool DeltaSegment::tombstone_at(std::size_t i) const {
  ROPUF_REQUIRE(i < entry_count_, "delta entry index out of range");
  return read_u64_at(bytes_, index_entry_offset(i) + 16) == 0;
}

puf::ConfigurableEnrollment DeltaSegment::enrollment_at(std::size_t i) const {
  ROPUF_REQUIRE(!tombstone_at(i), "delta entry " + std::to_string(i) +
                                      " is a tombstone, not a record");
  const std::size_t entry = index_entry_offset(i);
  const std::uint64_t offset = read_u64_at(bytes_, entry + 8);
  const std::uint64_t size = read_u64_at(bytes_, entry + 16);
  return decode_enrollment_record(bytes_.substr(records_offset_ + offset, size));
}

DeltaSegment::Hit DeltaSegment::find(
    std::uint64_t device_id,
    std::optional<puf::ConfigurableEnrollment>* enrollment) const {
  std::size_t lo = 0, hi = entry_count_, position = kNpos;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint64_t mid_id = read_u64_at(bytes_, index_entry_offset(mid));
    if (mid_id == device_id) {
      position = mid;
      break;
    }
    if (mid_id < device_id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (position == kNpos) return Hit::kMiss;
  if (tombstone_at(position)) return Hit::kTombstone;
  if (enrollment != nullptr) *enrollment = enrollment_at(position);
  return Hit::kUpsert;
}

// ---------------------------------------------------------------- snapshot

RegistrySnapshot::RegistrySnapshot(std::uint64_t epoch, Registry base,
                                   std::vector<DeltaSegment> deltas)
    : epoch_(epoch), base_(std::move(base)), deltas_(std::move(deltas)) {
  ROPUF_REQUIRE(epoch_ >= 1 + deltas_.size(),
                "snapshot epoch must cover its delta chain");
  // Live id set: base ids (already ascending), then each delta applied
  // oldest to newest. Deltas are small next to the base, so this is a merge
  // against a sorted vector per delta rather than a rebuild.
  live_ids_.reserve(base_.device_count());
  for (std::size_t i = 0; i < base_.device_count(); ++i) {
    live_ids_.push_back(base_.device_id_at(i));
  }
  for (const DeltaSegment& delta : deltas_) {
    for (std::size_t i = 0; i < delta.entry_count(); ++i) {
      const std::uint64_t id = delta.device_id_at(i);
      const auto it = std::lower_bound(live_ids_.begin(), live_ids_.end(), id);
      const bool present = it != live_ids_.end() && *it == id;
      if (delta.tombstone_at(i)) {
        if (present) live_ids_.erase(it);
      } else if (!present) {
        live_ids_.insert(it, id);
      }
    }
  }
}

bool RegistrySnapshot::contains(std::uint64_t device_id) const {
  return std::binary_search(live_ids_.begin(), live_ids_.end(), device_id);
}

std::optional<puf::ConfigurableEnrollment> RegistrySnapshot::find(
    std::uint64_t device_id) const {
  static obs::Counter& delta_hits =
      obs::Registry::instance().counter("registry.delta_hits");
  for (auto it = deltas_.rbegin(); it != deltas_.rend(); ++it) {
    std::optional<puf::ConfigurableEnrollment> enrollment;
    switch (it->find(device_id, &enrollment)) {
      case DeltaSegment::Hit::kUpsert:
        delta_hits.add(1);
        return enrollment;
      case DeltaSegment::Hit::kTombstone:
        delta_hits.add(1);
        return std::nullopt;
      case DeltaSegment::Hit::kMiss:
        break;
    }
  }
  return base_.find(device_id);
}

// -------------------------------------------------------------- compaction

std::string compact_snapshot(const RegistrySnapshot& snapshot,
                             ThreadBudget threads) {
  static obs::Counter& compactions =
      obs::Registry::instance().counter("registry.compactions");
  static obs::Histogram& compact_us =
      obs::Registry::instance().latency_histogram("registry.compact_us");
  const obs::ScopedLatency compact_timer(compact_us);
  const obs::TraceSpan span("registry.compact");

  const std::vector<std::uint64_t>& ids = snapshot.live_device_ids();
  auto enrollments = parallel_transform<puf::ConfigurableEnrollment>(
      ids.size(), threads,
      [&](std::size_t i) {
        std::optional<puf::ConfigurableEnrollment> found = snapshot.find(ids[i]);
        // A live id always resolves: the id set and the overlay were
        // computed from the same immutable segments.
        ROPUF_REQUIRE(found.has_value(), "live device vanished during compaction");
        return std::move(*found);
      },
      /*grain=*/8);

  RegistryBuilder builder;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    builder.add(ids[i], std::move(enrollments[i]));
  }
  compactions.add(1);
  return builder.build();
}

// ----------------------------------------------------------- epoch registry

EpochRegistry::EpochRegistry(Registry base, std::vector<DeltaSegment> deltas) {
  const std::uint64_t epoch = 1 + deltas.size();
  current_ = std::make_shared<const RegistrySnapshot>(epoch, std::move(base),
                                                      std::move(deltas));
}

std::shared_ptr<const RegistrySnapshot> EpochRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return current_;
}

void EpochRegistry::publish(std::shared_ptr<const RegistrySnapshot> next) {
  static obs::Counter& swaps =
      obs::Registry::instance().counter("registry.epoch_swaps");
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    current_ = std::move(next);
  }
  swaps.add(1);
}

void EpochRegistry::append_delta(DeltaSegment delta) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::shared_ptr<const RegistrySnapshot> current = snapshot();
  std::vector<DeltaSegment> deltas = current->deltas();
  deltas.push_back(std::move(delta));
  publish(std::make_shared<const RegistrySnapshot>(
      current->epoch() + 1, current->base(), std::move(deltas)));
}

void EpochRegistry::install(Registry base, std::vector<DeltaSegment> deltas) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::uint64_t floor = 1 + deltas.size();
  const std::uint64_t epoch = std::max(snapshot()->epoch() + 1, floor);
  publish(std::make_shared<const RegistrySnapshot>(epoch, std::move(base),
                                                   std::move(deltas)));
}

std::string EpochRegistry::compact(ThreadBudget threads) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::shared_ptr<const RegistrySnapshot> current = snapshot();
  std::string bytes = compact_snapshot(*current, threads);
  publish(std::make_shared<const RegistrySnapshot>(
      current->epoch() + 1, Registry::from_bytes(bytes),
      std::vector<DeltaSegment>{}));
  return bytes;
}

// ------------------------------------------------------------- file helpers

std::vector<std::string> discover_delta_paths(const std::string& base_path) {
  namespace fs = std::filesystem;
  const fs::path base(base_path);
  const fs::path dir = base.has_parent_path() ? base.parent_path() : fs::path(".");
  const std::string prefix = base.filename().string() + ".delta-";
  std::vector<std::string> paths;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      paths.push_back((base.has_parent_path() ? dir / name : fs::path(name)).string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

EpochFileSet load_epoch_files(const std::string& base_path,
                              const std::vector<std::string>& delta_paths) {
  EpochFileSet files{Registry::load_file(base_path), {}, delta_paths};
  files.deltas.reserve(delta_paths.size());
  for (const std::string& path : delta_paths) {
    files.deltas.push_back(DeltaSegment::load_file(path));
  }
  return files;
}

EpochFileSet load_epoch_files(const std::string& base_path) {
  return load_epoch_files(base_path, discover_delta_paths(base_path));
}

}  // namespace ropuf::registry

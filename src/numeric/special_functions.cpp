#include "numeric/special_functions.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace ropuf::num {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Lower incomplete gamma by power series; valid/fast for x < a + 1.
double igam_series(double a, double x) {
  if (x == 0.0) return 0.0;
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction; for x >= a + 1.
double igamc_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double erfc(double x) { return std::erfc(x); }

double log_gamma(double x) {
#if defined(__unix__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, which is a data race
  // when tests run across the thread pool; the POSIX reentrant variant
  // computes the same value without touching it.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double igam(double a, double x) {
  ROPUF_REQUIRE(a > 0.0 && x >= 0.0, "igam domain: a > 0, x >= 0");
  if (x < a + 1.0) return igam_series(a, x);
  return 1.0 - igamc_continued_fraction(a, x);
}

double igamc(double a, double x) {
  ROPUF_REQUIRE(a > 0.0 && x >= 0.0, "igamc domain: a > 0, x >= 0");
  if (x < a + 1.0) return 1.0 - igam_series(a, x);
  return igamc_continued_fraction(a, x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double chi_square_sf(double stat, double dof) {
  ROPUF_REQUIRE(dof > 0.0, "chi-square needs positive dof");
  if (stat <= 0.0) return 1.0;
  return igamc(dof / 2.0, stat / 2.0);
}

}  // namespace ropuf::num

// Special functions required by the NIST SP 800-22 statistical tests.
//
// Every NIST test reduces its statistic to a p-value through erfc or the
// regularized incomplete gamma function Q(a, x) = Gamma(a, x) / Gamma(a)
// (called `igamc` in the NIST reference code). The implementations follow
// the classical series / continued-fraction split at x = a + 1.
#pragma once

namespace ropuf::num {

/// Complementary error function (thin wrapper so all callers share one
/// definition point; forwards to the C library implementation).
double erfc(double x);

/// Regularized lower incomplete gamma P(a, x); a > 0, x >= 0.
double igam(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x); a > 0, x >= 0.
/// This is NIST's `igamc`.
double igamc(double a, double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Natural log of the gamma function (wrapper over the C library lgamma,
/// which is thread-unsafe only for its sign output we do not use).
double log_gamma(double x);

/// Chi-square survival function: P(X >= stat) for `dof` degrees of freedom.
double chi_square_sf(double stat, double dof);

}  // namespace ropuf::num

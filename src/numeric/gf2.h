// Rank of binary matrices over GF(2), for the NIST binary matrix rank test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ropuf::num {

/// Binary matrix stored as one 64-bit-packed row per entry (up to 64 cols,
/// which covers NIST's 32x32 blocks with headroom).
class Gf2Matrix {
 public:
  Gf2Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool value);

  /// Rank over GF(2) by row-reduction (destructive on a copy).
  std::size_t rank() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint64_t> row_bits_;
};

}  // namespace ropuf::num

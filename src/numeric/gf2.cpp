#include "numeric/gf2.h"

#include "common/error.h"

namespace ropuf::num {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_bits_(rows, 0) {
  ROPUF_REQUIRE(cols <= 64, "Gf2Matrix supports at most 64 columns");
}

bool Gf2Matrix::get(std::size_t r, std::size_t c) const {
  ROPUF_REQUIRE(r < rows_ && c < cols_, "Gf2Matrix index out of range");
  return (row_bits_[r] >> c) & 1u;
}

void Gf2Matrix::set(std::size_t r, std::size_t c, bool value) {
  ROPUF_REQUIRE(r < rows_ && c < cols_, "Gf2Matrix index out of range");
  const std::uint64_t mask = std::uint64_t{1} << c;
  if (value) {
    row_bits_[r] |= mask;
  } else {
    row_bits_[r] &= ~mask;
  }
}

std::size_t Gf2Matrix::rank() const {
  std::vector<std::uint64_t> rows = row_bits_;
  std::size_t rank = 0;
  for (std::size_t c = 0; c < cols_ && rank < rows.size(); ++c) {
    const std::uint64_t mask = std::uint64_t{1} << c;
    // Find a pivot row with bit c set at or below `rank`.
    std::size_t pivot = rank;
    while (pivot < rows.size() && !(rows[pivot] & mask)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r] & mask)) rows[r] ^= rows[rank];
    }
    ++rank;
  }
  return rank;
}

}  // namespace ropuf::num

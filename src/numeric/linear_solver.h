// Linear system and least-squares solvers.
//
// Used by the delay extractor (recovering per-unit delay differences from
// whole-RO measurements, Section III.B of the paper) and by the regression
// distiller [18] (polynomial fit of systematic variation). Square systems go
// through LU with partial pivoting; rectangular least-squares problems go
// through Householder QR, which is numerically safer than normal equations
// for the near-collinear design matrices polynomial bases produce.
#pragma once

#include <vector>

#include "numeric/matrix.h"

namespace ropuf::num {

/// Solves A x = b for square non-singular A (LU, partial pivoting).
/// Throws ropuf::Error if A is singular to working precision.
std::vector<double> solve_lu(const Matrix& a, const std::vector<double>& b);

/// Minimizes ||A x - b||_2 for A with rows() >= cols() and full column rank
/// (Householder QR). Throws ropuf::Error on rank deficiency.
std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b);

/// Determinant via LU; exposed for tests and diagnostics.
double determinant(const Matrix& a);

}  // namespace ropuf::num

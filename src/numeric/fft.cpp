#include "numeric/fft.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace ropuf::num {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void fft_radix2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  ROPUF_REQUIRE(is_power_of_two(n), "fft_radix2 requires a power-of-two length");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> dft(const std::vector<Complex>& input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    std::vector<Complex> data = input;
    fft_radix2(data, /*inverse=*/false);
    return data;
  }

  // Bluestein: X_k = conj(w_k) * sum_j (x_j w_j) * w*_{k-j}
  // with w_m = exp(-i pi m^2 / n); the sum is a convolution of length 2n-1
  // evaluated via a power-of-two FFT.
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // m^2 mod 2n keeps the phase argument bounded (phases repeat mod 2n).
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), -std::sin(angle));
  }

  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = b[k];  // circular symmetry places w*_{-j} at the tail
  }

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

std::vector<double> dft_magnitudes(const std::vector<double>& input) {
  std::vector<Complex> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = Complex(input[i], 0.0);
  const auto spectrum = dft(c);
  std::vector<double> mags(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) mags[i] = std::abs(spectrum[i]);
  return mags;
}

}  // namespace ropuf::num

#include "numeric/linear_solver.h"

#include <cmath>

#include "common/error.h"

namespace ropuf::num {
namespace {

constexpr double kSingularTol = 1e-12;

/// In-place LU factorization with partial pivoting.
/// Returns the permutation sign; `lu` holds L (unit diagonal, below) and U.
double lu_factor(Matrix& lu, std::vector<std::size_t>& perm) {
  const std::size_t n = lu.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  double sign = 1.0;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::fabs(lu.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu.at(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    ROPUF_REQUIRE(best > kSingularTol, "singular matrix in LU factorization");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu.at(k, c), lu.at(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu.at(r, k) / lu.at(k, k);
      lu.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu.at(r, c) -= factor * lu.at(k, c);
    }
  }
  return sign;
}

}  // namespace

std::vector<double> solve_lu(const Matrix& a, const std::vector<double>& b) {
  ROPUF_REQUIRE(a.rows() == a.cols(), "solve_lu needs a square matrix");
  ROPUF_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();

  Matrix lu = a;
  std::vector<std::size_t> perm;
  lu_factor(lu, perm);

  // Forward substitution with permuted rhs (L has unit diagonal).
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu.at(r, c) * y[c];
    y[r] = acc;
  }
  // Back substitution with U.
  std::vector<double> x(n);
  for (std::size_t ri = n; ri > 0; --ri) {
    const std::size_t r = ri - 1;
    double acc = y[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= lu.at(r, c) * x[c];
    x[r] = acc / lu.at(r, r);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  ROPUF_REQUIRE(m >= n && n > 0, "least squares needs rows >= cols >= 1");
  ROPUF_REQUIRE(b.size() == m, "rhs size mismatch");

  // Householder QR applied to [A | b] in place.
  Matrix r = a;
  std::vector<double> rhs = b;

  for (std::size_t k = 0; k < n; ++k) {
    // Build Householder vector for column k below (and including) row k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r.at(i, k) * r.at(i, k);
    norm = std::sqrt(norm);
    ROPUF_REQUIRE(norm > kSingularTol, "rank-deficient matrix in least squares");

    const double alpha = (r.at(k, k) >= 0.0) ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = r.at(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r.at(i, k);
    double vnorm2 = 0.0;
    for (const double vi : v) vnorm2 += vi * vi;
    if (vnorm2 <= kSingularTol * kSingularTol) continue;  // column already triangular

    // Apply H = I - 2 v v^T / (v^T v) to the trailing block and to rhs.
    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r.at(i, c);
      const double scale = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r.at(i, c) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back substitution on the upper-triangular n x n block.
  std::vector<double> x(n);
  for (std::size_t ki = n; ki > 0; --ki) {
    const std::size_t k = ki - 1;
    ROPUF_REQUIRE(std::fabs(r.at(k, k)) > kSingularTol, "rank-deficient matrix in least squares");
    double acc = rhs[k];
    for (std::size_t c = k + 1; c < n; ++c) acc -= r.at(k, c) * x[c];
    x[k] = acc / r.at(k, k);
  }
  return x;
}

double determinant(const Matrix& a) {
  ROPUF_REQUIRE(a.rows() == a.cols(), "determinant needs a square matrix");
  Matrix lu = a;
  std::vector<std::size_t> perm;
  double det;
  try {
    det = lu_factor(lu, perm);
  } catch (const Error&) {
    return 0.0;  // singular to working precision
  }
  for (std::size_t i = 0; i < a.rows(); ++i) det *= lu.at(i, i);
  return det;
}

}  // namespace ropuf::num

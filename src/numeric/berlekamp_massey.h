// Berlekamp-Massey over GF(2), for the NIST linear-complexity test.
#pragma once

#include <cstddef>
#include <vector>

namespace ropuf::num {

/// Length of the shortest LFSR generating the bit sequence (values 0/1).
std::size_t linear_complexity(const std::vector<int>& bits);

}  // namespace ropuf::num

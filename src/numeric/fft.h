// Fast Fourier transforms for the NIST discrete-Fourier-transform test.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// arbitrary lengths (NIST streams are rarely powers of two — the paper's
// are 96 bits) go through Bluestein's chirp-z algorithm, which reduces any
// length-n DFT to a power-of-two convolution.
#pragma once

#include <complex>
#include <vector>

namespace ropuf::num {

using Complex = std::complex<double>;

/// In-place radix-2 FFT; data.size() must be a power of two.
/// `inverse` applies the conjugate transform and the 1/n scale.
void fft_radix2(std::vector<Complex>& data, bool inverse);

/// DFT of arbitrary length (Bluestein). Returns the transformed sequence.
std::vector<Complex> dft(const std::vector<Complex>& input);

/// Convenience for the NIST test: DFT of a real-valued sequence, returning
/// the modulus of each output bin.
std::vector<double> dft_magnitudes(const std::vector<double>& input);

}  // namespace ropuf::num

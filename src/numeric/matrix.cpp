#include "numeric/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ropuf::num {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  ROPUF_REQUIRE(!rows.empty(), "from_rows needs at least one row");
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ROPUF_REQUIRE(rows[r].size() == m.cols_, "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  ROPUF_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  ROPUF_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  ROPUF_REQUIRE(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out.at(r, c) += v * rhs.at(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  ROPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix sum shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  ROPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix diff shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  ROPUF_REQUIRE(v.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace ropuf::num

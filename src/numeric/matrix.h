// Small dense row-major matrix of doubles.
//
// Sized for the library's needs: design matrices for polynomial regression
// (distiller), the delay-extraction linear systems (tens of unknowns), and
// the NIST rank test work on GF(2) (see gf2.h). Not a general BLAS.
#pragma once

#include <cstddef>
#include <vector>

namespace ropuf::num {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Max-abs-element norm; used by tests for approximate equality.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ropuf::num

// Polynomial regression in one and two variables.
//
// The regression-based distiller [18] models the systematic (spatially
// smooth) component of RO frequency as a low-degree polynomial of the RO's
// die coordinates and keeps only the residual, which is what makes the raw
// PUF bit-streams pass NIST (paper Section IV.A).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ropuf::num {

/// Coefficients c[k] of sum_k c[k] * x^k, lowest degree first.
struct Poly1D {
  std::vector<double> coeff;

  double eval(double x) const;
};

/// Fits a degree-`degree` polynomial to (x, y) samples by least squares.
/// Requires at least degree+1 samples.
Poly1D polyfit_1d(const std::vector<double>& x, const std::vector<double>& y,
                  std::size_t degree);

/// Bivariate polynomial: sum over all monomials x^i y^j with i + j <= degree.
struct Poly2D {
  std::size_t degree = 0;
  /// Coefficients in the order produced by monomials_2d(degree).
  std::vector<double> coeff;

  double eval(double x, double y) const;
};

/// Exponent pairs (i, j) with i + j <= degree, in a fixed deterministic order.
std::vector<std::pair<std::size_t, std::size_t>> monomials_2d(std::size_t degree);

/// Fits a total-degree-`degree` bivariate polynomial to (x, y) -> z samples.
/// Requires at least as many samples as monomials.
Poly2D polyfit_2d(const std::vector<double>& x, const std::vector<double>& y,
                  const std::vector<double>& z, std::size_t degree);

}  // namespace ropuf::num

#include "numeric/berlekamp_massey.h"

#include "common/error.h"

namespace ropuf::num {

std::size_t linear_complexity(const std::vector<int>& bits) {
  const std::size_t n = bits.size();
  for (const int b : bits) ROPUF_REQUIRE(b == 0 || b == 1, "bits must be 0/1");

  // Classic Berlekamp-Massey (Massey 1969) with connection polynomial c and
  // previous polynomial bpoly.
  std::vector<int> c(n + 1, 0), bpoly(n + 1, 0), t;
  c[0] = 1;
  bpoly[0] = 1;
  std::size_t l = 0;  // current linear complexity
  std::size_t m = 0;  // steps since last length change, minus one
  // NIST's convention: m starts at -1; we track m_offset = m + 1 to keep it unsigned.

  for (std::size_t idx = 0; idx < n; ++idx) {
    // Discrepancy d = s[idx] + sum_{i=1..l} c[i] * s[idx - i] (mod 2).
    int d = bits[idx];
    for (std::size_t i = 1; i <= l && i <= idx; ++i) d ^= c[i] & bits[idx - i];
    ++m;
    if (d == 0) continue;

    t = c;
    // c(x) ^= x^m * bpoly(x)
    for (std::size_t i = 0; i + m <= n; ++i) {
      if (bpoly[i]) c[i + m] ^= 1;
    }
    if (2 * l <= idx) {
      l = idx + 1 - l;
      bpoly = t;
      m = 0;
    }
  }
  return l;
}

}  // namespace ropuf::num

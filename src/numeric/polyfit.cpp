#include "numeric/polyfit.h"

#include <cmath>

#include "common/error.h"
#include "numeric/linear_solver.h"
#include "numeric/matrix.h"

namespace ropuf::num {

double Poly1D::eval(double x) const {
  // Horner evaluation, highest degree first.
  double acc = 0.0;
  for (std::size_t ki = coeff.size(); ki > 0; --ki) acc = acc * x + coeff[ki - 1];
  return acc;
}

Poly1D polyfit_1d(const std::vector<double>& x, const std::vector<double>& y,
                  std::size_t degree) {
  ROPUF_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  ROPUF_REQUIRE(x.size() >= degree + 1, "not enough samples for requested degree");

  Matrix design(x.size(), degree + 1);
  for (std::size_t r = 0; r < x.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c <= degree; ++c) {
      design.at(r, c) = p;
      p *= x[r];
    }
  }
  return Poly1D{solve_least_squares(design, y)};
}

std::vector<std::pair<std::size_t, std::size_t>> monomials_2d(std::size_t degree) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t total = 0; total <= degree; ++total) {
    for (std::size_t i = 0; i <= total; ++i) out.emplace_back(i, total - i);
  }
  return out;
}

double Poly2D::eval(double x, double y) const {
  const auto monos = monomials_2d(degree);
  ROPUF_REQUIRE(monos.size() == coeff.size(), "Poly2D coefficient count mismatch");
  double acc = 0.0;
  for (std::size_t k = 0; k < monos.size(); ++k) {
    acc += coeff[k] * std::pow(x, static_cast<double>(monos[k].first)) *
           std::pow(y, static_cast<double>(monos[k].second));
  }
  return acc;
}

Poly2D polyfit_2d(const std::vector<double>& x, const std::vector<double>& y,
                  const std::vector<double>& z, std::size_t degree) {
  ROPUF_REQUIRE(x.size() == y.size() && y.size() == z.size(), "x/y/z size mismatch");
  const auto monos = monomials_2d(degree);
  ROPUF_REQUIRE(x.size() >= monos.size(), "not enough samples for requested degree");

  Matrix design(x.size(), monos.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    for (std::size_t c = 0; c < monos.size(); ++c) {
      design.at(r, c) = std::pow(x[r], static_cast<double>(monos[c].first)) *
                        std::pow(y[r], static_cast<double>(monos[c].second));
    }
  }
  return Poly2D{degree, solve_least_squares(design, z)};
}

}  // namespace ropuf::num

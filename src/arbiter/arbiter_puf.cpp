#include "arbiter/arbiter_puf.h"

#include "common/error.h"

namespace ropuf::arb {

ArbiterPuf::ArbiterPuf(const ArbiterSpec& spec, Rng& rng)
    : arbiter_bias_ps_(rng.gaussian(spec.arbiter_bias_ps, spec.mismatch_sigma_ps)),
      noise_sigma_ps_(spec.noise_sigma_ps) {
  ROPUF_REQUIRE(spec.stages >= 1, "arbiter chain needs at least one stage");
  ROPUF_REQUIRE(spec.mismatch_sigma_ps >= 0.0 && spec.noise_sigma_ps >= 0.0,
                "negative sigma");
  stages_.reserve(spec.stages);
  for (std::size_t i = 0; i < spec.stages; ++i) {
    SwitchStage stage;
    stage.straight_top_ps = rng.gaussian(spec.nominal_delay_ps, spec.mismatch_sigma_ps);
    stage.straight_bottom_ps = rng.gaussian(spec.nominal_delay_ps, spec.mismatch_sigma_ps);
    stage.cross_top_ps = rng.gaussian(spec.nominal_delay_ps, spec.mismatch_sigma_ps);
    stage.cross_bottom_ps = rng.gaussian(spec.nominal_delay_ps, spec.mismatch_sigma_ps);
    stages_.push_back(stage);
  }
}

double ArbiterPuf::delay_difference_ps(const BitVec& challenge) const {
  ROPUF_REQUIRE(challenge.size() == stages_.size(), "challenge arity mismatch");
  // Race the two signals; crossing swaps the lanes.
  double top = 0.0, bottom = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const SwitchStage& stage = stages_[i];
    if (challenge.get(i)) {
      const double new_top = bottom + stage.cross_top_ps;
      const double new_bottom = top + stage.cross_bottom_ps;
      top = new_top;
      bottom = new_bottom;
    } else {
      top += stage.straight_top_ps;
      bottom += stage.straight_bottom_ps;
    }
  }
  return top - bottom + arbiter_bias_ps_ + tuning_offset_ps_;
}

bool ArbiterPuf::respond(const BitVec& challenge, Rng& rng) const {
  return delay_difference_ps(challenge) + rng.gaussian(0.0, noise_sigma_ps_) > 0.0;
}

std::vector<double> ArbiterPuf::features(const BitVec& challenge) {
  const std::size_t n = challenge.size();
  // phi_i = prod_{j >= i} (1 - 2 c_j), built back to front; phi_{n+1} = 1.
  std::vector<double> phi(n + 1);
  phi[n] = 1.0;
  double acc = 1.0;
  for (std::size_t i = n; i-- > 0;) {
    acc *= challenge.get(i) ? -1.0 : 1.0;
    phi[i] = acc;
  }
  return phi;
}

std::vector<double> ArbiterPuf::linear_weights() const {
  // From the lane-swap recurrence D_i = (1-2c_i) D_{i-1} + delta(c_i):
  // w_1 = (d0_1 - d1_1)/2; w_i = (d0_i - d1_i)/2 + (d0_{i-1} + d1_{i-1})/2;
  // w_{n+1} = (d0_n + d1_n)/2 + arbiter bias + tuning offset, with
  // d0_i / d1_i the straight / crossed top-bottom arc differences.
  const std::size_t n = stages_.size();
  std::vector<double> w(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double d0 = stages_[i].straight_top_ps - stages_[i].straight_bottom_ps;
    const double d1 = stages_[i].cross_top_ps - stages_[i].cross_bottom_ps;
    w[i] += (d0 - d1) / 2.0;
    w[i + 1] += (d0 + d1) / 2.0;
  }
  w[n] += arbiter_bias_ps_ + tuning_offset_ps_;
  return w;
}

void ArbiterPuf::set_tuning_offset_ps(double offset) { tuning_offset_ps_ = offset; }

XorArbiterPuf::XorArbiterPuf(const ArbiterSpec& spec, std::size_t chains, Rng& rng) {
  ROPUF_REQUIRE(chains >= 1, "XOR arbiter needs at least one chain");
  chains_.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) chains_.emplace_back(spec, rng);
}

bool XorArbiterPuf::respond(const BitVec& challenge, Rng& rng) const {
  bool out = false;
  for (const ArbiterPuf& chain : chains_) out = out != chain.respond(challenge, rng);
  return out;
}

bool XorArbiterPuf::noiseless_response(const BitVec& challenge) const {
  bool out = false;
  for (const ArbiterPuf& chain : chains_) {
    out = out != (chain.delay_difference_ps(challenge) > 0.0);
  }
  return out;
}

}  // namespace ropuf::arb

// Arbiter PUF (Suh & Devadas [1]) with the PDL-style bias tuning of
// Majzoobi et al. [13].
//
// Two copies of a signal race through n switch stages; challenge bit i
// decides whether stage i passes the signals straight or crossed. An
// arbiter at the end outputs which copy won. The paper cites [1] as the
// origin of delay PUFs and [13] for the programmable-delay-line measurement
// idea behind its Section III.B, and its Related Work argues that
// reconfigurable/strong PUFs of this type "are vulnerable to attacks such
// as modeling and machine learning [16]" — this module exists so that claim
// can be demonstrated against a real implementation
// (bench_modeling_attack).
//
// The standard additive delay model applies: the final arrival-time
// difference is exactly linear in the challenge's parity features
//   phi_i(C) = prod_{j >= i} (1 - 2 c_j),  phi_{n+1} = 1,
// which is precisely why logistic regression learns the device.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"

namespace ropuf::arb {

/// Timing arcs of one switch stage (four paths through the 2x2 switch).
struct SwitchStage {
  double straight_top_ps = 0.0;     ///< top in  -> top out   (c = 0)
  double straight_bottom_ps = 0.0;  ///< bottom  -> bottom    (c = 0)
  double cross_top_ps = 0.0;        ///< bottom  -> top       (c = 1)
  double cross_bottom_ps = 0.0;     ///< top     -> bottom    (c = 1)
};

/// Fabrication parameters of an arbiter chain.
struct ArbiterSpec {
  std::size_t stages = 64;
  double nominal_delay_ps = 100.0;
  double mismatch_sigma_ps = 1.0;   ///< per-arc process variation
  double arbiter_bias_ps = 0.0;     ///< setup skew of the arbiter latch
  double noise_sigma_ps = 0.02;     ///< per-evaluation thermal noise
};

/// One fabricated arbiter PUF instance.
class ArbiterPuf {
 public:
  /// Samples all stage arcs (and an arbiter bias of sigma equal to the
  /// mismatch) from `rng`.
  ArbiterPuf(const ArbiterSpec& spec, Rng& rng);

  std::size_t stage_count() const { return stages_.size(); }

  /// Noiseless arrival-time difference (top minus bottom) for a challenge.
  double delay_difference_ps(const BitVec& challenge) const;

  /// One evaluation: sign of the noisy delay difference (true = top late).
  bool respond(const BitVec& challenge, Rng& rng) const;

  /// The parity feature vector of the linear model, length stages + 1.
  static std::vector<double> features(const BitVec& challenge);

  /// The exact linear-model weights of this instance: for every challenge,
  /// delay_difference == dot(weights, features). Exposed for the white-box
  /// property test; an attacker has to *learn* these from CRPs.
  std::vector<double> linear_weights() const;

  /// PDL-style tuning [13]: adds a constant offset to the comparison to
  /// cancel the arbiter bias (call with -measured mean difference).
  void set_tuning_offset_ps(double offset);
  double tuning_offset_ps() const { return tuning_offset_ps_; }

 private:
  std::vector<SwitchStage> stages_;
  double arbiter_bias_ps_;
  double noise_sigma_ps_;
  double tuning_offset_ps_ = 0.0;
};

/// XOR arbiter PUF: k parallel chains answering the same challenge, their
/// responses XORed — the classic hardening against linear modeling (the
/// XOR breaks the single-chain linearity; plain logistic regression drops
/// back to the coin flip, as bench_modeling_attack shows).
class XorArbiterPuf {
 public:
  /// Fabricates `chains` independent arbiter chains from one spec.
  XorArbiterPuf(const ArbiterSpec& spec, std::size_t chains, Rng& rng);

  std::size_t chain_count() const { return chains_.size(); }
  std::size_t stage_count() const { return chains_.front().stage_count(); }

  /// XOR of all chains' (noisy) responses.
  bool respond(const BitVec& challenge, Rng& rng) const;

  /// Noiseless response, for stability analysis.
  bool noiseless_response(const BitVec& challenge) const;

 private:
  std::vector<ArbiterPuf> chains_;
};

}  // namespace ropuf::arb

// Cryptographic session authentication for protocol v2 (docs/protocol_v2.md).
//
// v1 verdicts are raw Hamming comparisons, which makes the verifier a
// distance oracle (attack/harvest.h mines it bit-for-bit). v2 removes the
// response bits from the wire entirely:
//
//   enrollment   provision_auth() runs the code-offset fuzzy extractor's
//                Gen on the enrollment response: per-device public helper
//                blocks + a derived key. The registry record carries the
//                helper and SHA-256(key) (a key check value) — never the
//                key itself.
//   server       derive_enrollment_key() re-runs Rep on the *clean*
//                enrollment response (zero errors, exact recovery) and
//                cross-checks the KCV, so corrupt helper material surfaces
//                as a detectable failure instead of a garbage key.
//   prover       recover_key() runs Rep on the noisy re-measurement; within
//                the code's correction radius the same key comes back.
//   exchange     the server sends a fresh nonce; the prover returns
//                HMAC(key, nonce || request_id || device_id); the server
//                compares in constant time. Replays fail because the
//                server-side session is consumed on first use; harvested
//                CRPs are useless because no response bits ever travel.
//
// The code table maps a device's enrolled pair count to the strongest
// standard code whose single block fits: BCH(15,7) down to repetition(3).
// Codes are constructed once per process and shared (construction builds
// the syndrome table; instances are immutable and thread-safe).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>

#include "common/bitvec.h"
#include "common/rng.h"
#include "crypto/cyclic_code.h"
#include "crypto/sha256.h"
#include "puf/schemes.h"

namespace ropuf::auth {

/// 16-byte server nonce carried by the kAuthChallenge frame.
using Nonce = std::array<std::uint8_t, 16>;
/// 32-byte HMAC-SHA256 tag carried by the kAuthProof frame.
using Tag = std::array<std::uint8_t, 32>;

/// Registered auth code identifiers (record field `auth_code_id`).
/// 0 means unprovisioned; unknown ids are a record defect.
inline constexpr std::uint8_t kCodeNone = 0;
inline constexpr std::uint8_t kCodeRepetition3 = 1;
inline constexpr std::uint8_t kCodeRepetition5 = 2;
inline constexpr std::uint8_t kCodeHamming74 = 3;
inline constexpr std::uint8_t kCodeBch157 = 4;

/// The shared instance for a code id; nullptr for kCodeNone or an unknown
/// id (callers map that to their corrupt-record verdict).
const crypto::CyclicCode* code_for_id(std::uint8_t code_id);

/// Strongest code whose block fits `pair_count` response bits: BCH(15,7)
/// at >= 15 pairs, Hamming(7,4) at >= 7, repetition(5)/(3) below, kCodeNone
/// when even 3 bits are unavailable.
std::uint8_t code_id_for_pairs(std::size_t pair_count);

/// Runs fuzzy-extractor Gen over the enrollment response and stores the
/// helper blocks, code id and key check value on the enrollment. Devices
/// too small for any code (< 3 pairs) are left unprovisioned. `rng` drives
/// the per-block random messages; minting forks one independent stream per
/// device so existing fleet streams stay bit-identical.
void provision_auth(puf::ConfigurableEnrollment& enrollment, Rng& rng);

/// Server-side key derivation: Rep over the clean enrollment response plus
/// the stored helper, cross-checked against the key check value. nullopt
/// when the record is unprovisioned, the code id is unknown, the helper
/// geometry is inconsistent, or the KCV does not match — all of which a
/// verifier reports as a corrupt record.
std::optional<crypto::Sha256Digest> derive_enrollment_key(
    const puf::ConfigurableEnrollment& enrollment);

/// Prover-side key recovery: Rep over a noisy re-measurement of the
/// enrolled response. nullopt when any block decodes outside the code's
/// radius (the prover then cannot produce a valid tag — fails closed).
std::optional<crypto::Sha256Digest> recover_key(
    const BitVec& noisy_response, const puf::ConfigurableEnrollment& enrollment);

/// HMAC(key, nonce || request_id || device_id), ids little-endian.
Tag prove(const crypto::Sha256Digest& key, const Nonce& nonce,
          std::uint64_t request_id, std::uint64_t device_id);

/// Constant-time tag comparison (no early-out on the first differing byte).
bool verify_tag(const crypto::Sha256Digest& key, const Nonce& nonce,
                std::uint64_t request_id, std::uint64_t device_id,
                const Tag& tag);

/// Branch-free byte-string equality.
bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t size);

/// Deterministic nonce source: nonce = first 16 bytes of
/// HMAC(seed, counter || device_id || request_id) over an atomic counter,
/// so every challenge is fresh (replays fail) while a fixed seed makes test
/// transcripts reproducible. Verdicts never depend on nonce *values* — a
/// recovered key MACs any nonce correctly — which is what keeps online
/// digests parity-comparable across shard placements and thread budgets.
class NonceFactory {
 public:
  explicit NonceFactory(std::uint64_t seed);

  /// Thread-safe; each call consumes one counter value.
  Nonce next(std::uint64_t device_id, std::uint64_t request_id);

 private:
  crypto::Sha256Digest seed_key_{};
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace ropuf::auth

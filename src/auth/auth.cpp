#include "auth/auth.h"

#include <cstring>

#include "common/error.h"
#include "crypto/fuzzy_extractor.h"
#include "crypto/hmac.h"

namespace ropuf::auth {
namespace {

const crypto::CyclicCode& repetition3() {
  static const crypto::CyclicCode code = crypto::CyclicCode::repetition(3);
  return code;
}
const crypto::CyclicCode& repetition5() {
  static const crypto::CyclicCode code = crypto::CyclicCode::repetition(5);
  return code;
}
const crypto::CyclicCode& hamming74() {
  static const crypto::CyclicCode code = crypto::CyclicCode::hamming_7_4();
  return code;
}
const crypto::CyclicCode& bch157() {
  static const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
  return code;
}

/// Helper geometry a verifier can trust: right code, every block exactly
/// n bits, at least one block, and the enrolled response long enough to
/// cover them.
bool helper_is_consistent(const puf::ConfigurableEnrollment& enrollment,
                          const crypto::CyclicCode& code) {
  if (enrollment.auth_helper.empty()) return false;
  for (const BitVec& block : enrollment.auth_helper) {
    if (block.size() != code.n()) return false;
  }
  return enrollment.layout.pair_count >=
         enrollment.auth_helper.size() * code.n();
}

/// nonce || request_id || device_id, ids little-endian — the exact bytes
/// both sides MAC. Binding the request id defeats replay across sessions;
/// binding the device id defeats splicing a tag onto another identity.
std::array<std::uint8_t, 32> proof_message(const Nonce& nonce,
                                           std::uint64_t request_id,
                                           std::uint64_t device_id) {
  std::array<std::uint8_t, 32> message{};
  std::memcpy(message.data(), nonce.data(), nonce.size());
  for (std::size_t i = 0; i < 8; ++i) {
    message[16 + i] = static_cast<std::uint8_t>((request_id >> (8 * i)) & 0xff);
    message[24 + i] = static_cast<std::uint8_t>((device_id >> (8 * i)) & 0xff);
  }
  return message;
}

}  // namespace

const crypto::CyclicCode* code_for_id(std::uint8_t code_id) {
  switch (code_id) {
    case kCodeRepetition3:
      return &repetition3();
    case kCodeRepetition5:
      return &repetition5();
    case kCodeHamming74:
      return &hamming74();
    case kCodeBch157:
      return &bch157();
    default:
      return nullptr;
  }
}

std::uint8_t code_id_for_pairs(std::size_t pair_count) {
  if (pair_count >= 15) return kCodeBch157;
  if (pair_count >= 7) return kCodeHamming74;
  if (pair_count >= 5) return kCodeRepetition5;
  if (pair_count >= 3) return kCodeRepetition3;
  return kCodeNone;
}

void provision_auth(puf::ConfigurableEnrollment& enrollment, Rng& rng) {
  enrollment.auth_code_id = kCodeNone;
  enrollment.auth_helper.clear();
  enrollment.auth_key_check.fill(0);

  const std::uint8_t code_id = code_id_for_pairs(enrollment.layout.pair_count);
  if (code_id == kCodeNone) return;
  const crypto::CyclicCode* code = code_for_id(code_id);
  const crypto::FuzzyExtractor extractor(code);
  const crypto::FuzzyEnrollment fuzzy = extractor.generate(enrollment.response(), rng);

  enrollment.auth_code_id = code_id;
  enrollment.auth_helper = fuzzy.helper;
  enrollment.auth_key_check = crypto::sha256(fuzzy.key.data(), fuzzy.key.size());
}

std::optional<crypto::Sha256Digest> derive_enrollment_key(
    const puf::ConfigurableEnrollment& enrollment) {
  const crypto::CyclicCode* code = code_for_id(enrollment.auth_code_id);
  if (code == nullptr || !helper_is_consistent(enrollment, *code)) {
    return std::nullopt;
  }
  const crypto::FuzzyExtractor extractor(code);
  // Zero errors against the enrollment-time response: Rep recovers the
  // enrolled key exactly, or the helper bytes were tampered with.
  const std::optional<crypto::Sha256Digest> key =
      extractor.reproduce(enrollment.response(), enrollment.auth_helper);
  if (!key.has_value()) return std::nullopt;
  const crypto::Sha256Digest check = crypto::sha256(key->data(), key->size());
  if (!constant_time_equal(check.data(), enrollment.auth_key_check.data(),
                           check.size())) {
    return std::nullopt;
  }
  return key;
}

std::optional<crypto::Sha256Digest> recover_key(
    const BitVec& noisy_response, const puf::ConfigurableEnrollment& enrollment) {
  const crypto::CyclicCode* code = code_for_id(enrollment.auth_code_id);
  if (code == nullptr || !helper_is_consistent(enrollment, *code)) {
    return std::nullopt;
  }
  if (noisy_response.size() < enrollment.auth_helper.size() * code->n()) {
    return std::nullopt;
  }
  const crypto::FuzzyExtractor extractor(code);
  return extractor.reproduce(noisy_response, enrollment.auth_helper);
}

Tag prove(const crypto::Sha256Digest& key, const Nonce& nonce,
          std::uint64_t request_id, std::uint64_t device_id) {
  const std::array<std::uint8_t, 32> message =
      proof_message(nonce, request_id, device_id);
  return crypto::hmac_sha256(key.data(), key.size(), message.data(),
                             message.size());
}

bool verify_tag(const crypto::Sha256Digest& key, const Nonce& nonce,
                std::uint64_t request_id, std::uint64_t device_id,
                const Tag& tag) {
  const Tag expected = prove(key, nonce, request_id, device_id);
  return constant_time_equal(expected.data(), tag.data(), expected.size());
}

bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t size) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < size; ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

NonceFactory::NonceFactory(std::uint64_t seed) {
  std::array<std::uint8_t, 8> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>((seed >> (8 * i)) & 0xff);
  }
  seed_key_ = crypto::sha256(bytes.data(), bytes.size());
}

Nonce NonceFactory::next(std::uint64_t device_id, std::uint64_t request_id) {
  const std::uint64_t count =
      counter_.fetch_add(1, std::memory_order_relaxed);
  std::array<std::uint8_t, 24> message{};
  for (std::size_t i = 0; i < 8; ++i) {
    message[i] = static_cast<std::uint8_t>((count >> (8 * i)) & 0xff);
    message[8 + i] = static_cast<std::uint8_t>((device_id >> (8 * i)) & 0xff);
    message[16 + i] = static_cast<std::uint8_t>((request_id >> (8 * i)) & 0xff);
  }
  const crypto::Sha256Digest digest = crypto::hmac_sha256(
      seed_key_.data(), seed_key_.size(), message.data(), message.size());
  Nonce nonce{};
  std::memcpy(nonce.data(), digest.data(), nonce.size());
  return nonce;
}

}  // namespace ropuf::auth

#include "service/auth_service.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "puf/crp.h"
#include "registry/format.h"

namespace ropuf::service {
namespace {

/// Nominal per-bit readout value pushed through the workload fault model;
/// the magnitude only matters to glitch scaling, not to any verdict.
constexpr double kNominalReadPs = 1000.0;

std::uint64_t mix_id(std::uint64_t id) {
  // SplitMix64 finalizer: spreads sequential ids across shards.
  id += 0x9e3779b97f4a7c15ull;
  id = (id ^ (id >> 30)) * 0xbf58476d1ce4e5b9ull;
  id = (id ^ (id >> 27)) * 0x94d049bb133111ebull;
  return id ^ (id >> 31);
}

}  // namespace

const char* auth_status_name(AuthStatus status) {
  switch (status) {
    case AuthStatus::kAccept: return "accept";
    case AuthStatus::kReject: return "reject";
    case AuthStatus::kUnknownDevice: return "unknown-device";
    case AuthStatus::kCorruptRecord: return "corrupt-record";
    case AuthStatus::kMalformedRequest: return "malformed-request";
    case AuthStatus::kRateLimited: return "rate-limited";
    case AuthStatus::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

// -------------------------------------------------------------------- cache

EnrollmentCache::EnrollmentCache(std::size_t capacity, const std::string& metric_prefix)
    : capacity_(capacity) {
  // Small caches stay single-sharded so the capacity bound (and LRU order,
  // which the tests pin) is exact; serving-sized caches spread over 8 shards
  // to keep batch workers off each other's mutex. A capacity that does not
  // divide evenly spreads its remainder over the first shards, so the shard
  // bounds sum to exactly the configured capacity.
  shard_count_ = capacity >= 64 ? 8 : (capacity > 0 ? 1 : 0);
  if (shard_count_ > 0) shards_ = std::make_unique<Shard[]>(shard_count_);
  obs::Registry& registry = obs::Registry::instance();
  hits_ = &registry.counter(metric_prefix + "_hits");
  misses_ = &registry.counter(metric_prefix + "_misses");
  bypasses_ = &registry.counter(metric_prefix + "_bypass");
  evictions_ = &registry.counter(metric_prefix + "_evictions");
  stale_ = &registry.counter(metric_prefix + "_stale");
}

std::size_t EnrollmentCache::shard_index(std::uint64_t device_id) const {
  return mix_id(device_id) % shard_count_;
}

std::size_t EnrollmentCache::shard_capacity(std::size_t s) const {
  return capacity_ / shard_count_ + (s < capacity_ % shard_count_ ? 1 : 0);
}

EnrollmentCache::Entry EnrollmentCache::get(std::uint64_t device_id,
                                            std::uint64_t epoch) {
  if (shard_count_ == 0) {
    // A disabled cache is not a miss: hit/miss rates should describe an
    // *enabled* cache, so cache-off runs count their own bypass series.
    bypasses_->add(1);
    return nullptr;
  }
  Shard& shard = shards_[shard_index(device_id)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(device_id);
  if (it == shard.map.end()) {
    misses_->add(1);
    return nullptr;
  }
  if (it->second->entry->epoch != epoch) {
    // Stale generation: the registry swapped under this entry. Evict it
    // eagerly — the caller re-resolves against the live snapshot and put()s
    // a fresh entry, so one swap costs each hot device one extra lookup.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    stale_->add(1);
    misses_->add(1);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->add(1);
  return it->second->entry;
}

void EnrollmentCache::put(std::uint64_t device_id, Entry entry) {
  if (shard_count_ == 0) return;
  const std::size_t s = shard_index(device_id);
  Shard& shard = shards_[s];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(device_id);
  if (it != shard.map.end()) {
    it->second->entry = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // shard_capacity is >= 1 whenever a shard exists (8 shards only kick in at
  // capacity >= 64), so evicting one entry always makes room.
  if (shard.lru.size() >= shard_capacity(s)) {
    shard.map.erase(shard.lru.back().id);
    shard.lru.pop_back();
    evictions_->add(1);
  }
  shard.lru.push_front(Node{device_id, std::move(entry)});
  shard.map[device_id] = shard.lru.begin();
}

std::size_t EnrollmentCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].lru.size();
  }
  return total;
}

// ------------------------------------------------------------------ service

namespace {

/// Single-epoch head for the legacy Registry* constructor; the copy shares
/// the registry's backing bytes, so this is cheap and the caller's lifetime
/// contract is unchanged.
std::unique_ptr<registry::EpochRegistry> owned_head(
    const registry::Registry* registry) {
  ROPUF_REQUIRE(registry != nullptr, "null registry");
  return std::make_unique<registry::EpochRegistry>(*registry);
}

}  // namespace

AuthService::AuthService(const registry::Registry* registry, AuthServiceOptions options)
    : AuthService(owned_head(registry), options) {}

AuthService::AuthService(std::unique_ptr<registry::EpochRegistry> owned,
                         AuthServiceOptions options)
    : AuthService(static_cast<const registry::EpochRegistry*>(owned.get()), options) {
  owned_epochs_ = std::move(owned);
}

AuthService::AuthService(const registry::EpochRegistry* epochs,
                         AuthServiceOptions options)
    : epochs_(epochs),
      options_(options),
      cache_(options.cache_capacity),
      unknown_cache_(options.unknown_cache_capacity, "service.unknown_cache") {
  ROPUF_REQUIRE(epochs_ != nullptr, "null epoch registry");
  ROPUF_REQUIRE(options_.response_bits > 0, "response_bits must be positive");
  ROPUF_REQUIRE(options_.batch_grain > 0, "batch_grain must be positive");
  ROPUF_REQUIRE(options_.admission_shards > 0, "admission_shards must be positive");
  ROPUF_REQUIRE(!options_.admission.enabled() ||
                    options_.admission.device_capacity >= options_.admission_shards,
                "admission device_capacity must cover every admission shard");
  // Device states split across slices the way the enrollment cache splits
  // its capacity: base share per slice, remainder spread over the first
  // slices, so the per-slice bounds sum to exactly device_capacity.
  admission_.reserve(options_.admission_shards);
  const std::size_t base = options_.admission.device_capacity / options_.admission_shards;
  const std::size_t rem = options_.admission.device_capacity % options_.admission_shards;
  for (std::size_t s = 0; s < options_.admission_shards; ++s) {
    AdmissionOptions slice = options_.admission;
    if (options_.admission_shards > 1) {
      slice.device_capacity = base + (s < rem ? 1 : 0);
    }
    admission_.push_back(std::make_unique<AdmissionController>(slice));
  }
  // Detector slices mirror admission slices one-to-one (same hash routing,
  // same capacity split), so a device's suspicion and admission state always
  // share a slice. Disabled detectors are inert but keep the accessors safe.
  ROPUF_REQUIRE(!options_.detector.enabled ||
                    options_.detector.device_capacity >= options_.admission_shards,
                "detector device_capacity must cover every admission shard");
  detectors_.reserve(options_.admission_shards);
  const std::size_t det_base =
      options_.detector.device_capacity / options_.admission_shards;
  const std::size_t det_rem =
      options_.detector.device_capacity % options_.admission_shards;
  for (std::size_t s = 0; s < options_.admission_shards; ++s) {
    DetectorOptions slice = options_.detector;
    if (options_.admission_shards > 1) {
      slice.device_capacity = det_base + (s < det_rem ? 1 : 0);
    }
    detectors_.push_back(std::make_unique<StreamDetector>(slice));
  }
  ROPUF_REQUIRE(!options_.reenroll.enabled() ||
                    (options_.reenroll.device_capacity > 0 &&
                     options_.reenroll.queue_capacity > 0),
                "re-enrollment needs nonzero device and queue capacities");
  obs::Registry& obs = obs::Registry::instance();
  reenroll_queued_ = &obs.counter("service.reenroll_queued");
  reenroll_overflow_ = &obs.counter("service.reenroll_overflow");
  reenroll_taken_ = &obs.counter("service.reenroll_taken");
}

std::size_t AuthService::admission_slice_index(std::uint64_t device_id) const {
  if (admission_.size() == 1) return 0;
  return mix_id(device_id) % admission_.size();
}

void AuthService::flush_admission_metrics() const {
  for (const auto& slice : admission_) slice->flush_metrics();
}

std::uint32_t AuthService::suspicion_level(std::uint64_t device_id) const {
  return detectors_[admission_slice_index(device_id)]->level(device_id);
}

AuthVerdict AuthService::verify(const AuthRequest& request) const {
  // Pin the live generation for the duration of this one verdict; a swap
  // between two verify() calls is observable, a swap during one is not.
  return verify_pinned(*epochs_->snapshot(), request);
}

EnrollmentCache::Entry AuthService::resolve_lookup(
    const registry::RegistrySnapshot& snapshot, std::uint64_t device_id) const {
  const std::uint64_t epoch = snapshot.epoch();
  EnrollmentCache::Entry looked_up = cache_.get(device_id, epoch);
  if (looked_up == nullptr) looked_up = unknown_cache_.get(device_id, epoch);
  if (looked_up != nullptr) return looked_up;
  // Resolve against the pinned snapshot once and cache the *outcome* —
  // including the negative ones, so repeat corrupt/unknown traffic never
  // re-walks the registry or pays a thrown FormatError per request.
  // Entries are tagged with the snapshot's epoch: after a swap they stop
  // answering (stale-evicted on first touch), so a replaced or retired
  // record can never serve from cache. Unknown-device outcomes go to
  // their own smaller cache: their key space is unbounded, and a spray of
  // random ids must only ever evict other unknowns, never the enrollments
  // legitimate traffic depends on.
  auto resolved = std::make_shared<CachedLookup>();
  resolved->epoch = epoch;
  try {
    std::optional<puf::ConfigurableEnrollment> found = snapshot.find(device_id);
    if (found.has_value()) {
      resolved->enrollment = std::move(*found);
      // Derive the v2 verification key once per (device, epoch): Rep over
      // the clean enrollment response plus the KCV cross-check. Leaving it
      // disengaged (unprovisioned record or tampered auth material) is
      // itself a cached outcome — every proof against it answers
      // kCorruptRecord without touching the extractor again.
      if (resolved->enrollment->has_auth()) {
        resolved->auth_key = auth::derive_enrollment_key(*resolved->enrollment);
      }
    } else {
      resolved->outcome = CachedLookup::Outcome::kUnknownDevice;
    }
  } catch (const registry::FormatError&) {
    resolved->outcome = CachedLookup::Outcome::kCorruptRecord;
  }
  looked_up = std::move(resolved);
  if (looked_up->outcome == CachedLookup::Outcome::kUnknownDevice) {
    unknown_cache_.put(device_id, looked_up);
  } else {
    cache_.put(device_id, looked_up);
  }
  return looked_up;
}

AuthVerdict AuthService::verify_pinned(const registry::RegistrySnapshot& snapshot,
                                       const AuthRequest& request) const {
  static obs::Counter& requests = obs::Registry::instance().counter("service.requests");
  static obs::Counter& accepted = obs::Registry::instance().counter("service.accepted");
  static obs::Counter& rejected = obs::Registry::instance().counter("service.rejected");
  static obs::Counter& unknown =
      obs::Registry::instance().counter("service.unknown_device");
  static obs::Counter& corrupt =
      obs::Registry::instance().counter("service.corrupt_record");
  static obs::Counter& malformed =
      obs::Registry::instance().counter("service.malformed");
  static obs::Histogram& verify_us =
      obs::Registry::instance().latency_histogram("service.verify_us");
  requests.add(1);
  const obs::ScopedLatency verify_timer(verify_us);

  const EnrollmentCache::Entry looked_up =
      resolve_lookup(snapshot, request.device_id);
  switch (looked_up->outcome) {
    case CachedLookup::Outcome::kUnknownDevice:
      unknown.add(1);
      return AuthVerdict{AuthStatus::kUnknownDevice, 0, options_.response_bits};
    case CachedLookup::Outcome::kCorruptRecord:
      corrupt.add(1);
      return AuthVerdict{AuthStatus::kCorruptRecord, 0, options_.response_bits};
    case CachedLookup::Outcome::kEnrolled:
      break;
  }
  const puf::ConfigurableEnrollment& enrollment = *looked_up->enrollment;

  const std::size_t bits =
      std::min(options_.response_bits, enrollment.layout.pair_count);
  if (request.response.size() != bits) {
    malformed.add(1);
    return AuthVerdict{AuthStatus::kMalformedRequest, 0, bits};
  }
  const puf::CrpOracle oracle(&enrollment, bits);
  const BitVec reference = oracle.reference(request.challenge);
  const std::size_t distance = reference.hamming_distance(request.response);
  if (distance <= options_.max_distance) {
    accepted.add(1);
    return AuthVerdict{AuthStatus::kAccept, distance, bits};
  }
  rejected.add(1);
  return AuthVerdict{AuthStatus::kReject, distance, bits};
}

std::vector<AuthVerdict> AuthService::verify_batch(
    const std::vector<AuthRequest>& requests) const {
  static obs::Counter& batches = obs::Registry::instance().counter("service.batches");
  static obs::Counter& batch_items =
      obs::Registry::instance().counter("service.batch_items");
  static obs::Histogram& batch_us =
      obs::Registry::instance().latency_histogram("service.batch_us");
  batches.add(1);
  batch_items.add(requests.size());
  const obs::ScopedLatency batch_timer(batch_us);
  const obs::TraceSpan span("service.verify_batch");

  // ONE snapshot pin for the whole batch: every verdict resolves against
  // the same registry generation, so an epoch swap mid-batch cannot split
  // the batch — its verdicts stay bit-stable against the epoch it was
  // admitted under (the swap-under-traffic invariant).
  const std::shared_ptr<const registry::RegistrySnapshot> snapshot =
      epochs_->snapshot();

  std::vector<AuthVerdict> verdicts;
  if (!options_.admission.enabled()) {
    verdicts = parallel_transform<AuthVerdict>(
        requests.size(), options_.threads,
        [&](std::size_t i) { return verify_pinned(*snapshot, requests[i]); },
        options_.batch_grain);
  } else {
    // Admission is order-dependent per-device state, so it is decided in a
    // *serial* pre-pass over arrival order; only the verification of the
    // admitted remainder runs on the pool. The admitted verdicts are then
    // exactly what an admission-free verify_batch would produce for the same
    // subsequence — the digest-parity property the soak harness pins.
    const bool detect = options_.detector.enabled;
    std::vector<Admission> decisions(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::size_t slice = admission_slice_index(requests[i].device_id);
      // The detector's escalation ladder tightens a suspicious device's
      // effective knobs at decision time; a neutral penalty reproduces the
      // static admission decision bit-for-bit.
      const AdmissionPenalty penalty =
          detect ? detectors_[slice]->penalty(requests[i].device_id)
                 : AdmissionPenalty{};
      decisions[i] =
          admission_[slice]->admit(requests[i].device_id, requests[i].challenge,
                                   penalty);
    }
    verdicts = parallel_transform<AuthVerdict>(
        requests.size(), options_.threads,
        [&](std::size_t i) {
          switch (decisions[i]) {
            case Admission::kRateLimited:
              return AuthVerdict{AuthStatus::kRateLimited, 0, options_.response_bits};
            case Admission::kBudgetExhausted:
              return AuthVerdict{AuthStatus::kBudgetExhausted, 0,
                                 options_.response_bits};
            case Admission::kAdmit:
              break;
          }
          return verify_pinned(*snapshot, requests[i]);
        },
        options_.batch_grain);
  }
  // Detector feedback is a serial post-pass like admission is a serial
  // pre-pass: the batch's observations stream in arrival order, so the
  // suspicion state (and with it the next batch's penalties) is
  // deterministic at any thread budget — and never a verdict change.
  if (options_.detector.enabled) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      StreamObservation observation;
      observation.challenge = requests[i].challenge;
      observation.guess_weight = requests[i].response.popcount();
      observation.answered = verdicts[i].status == AuthStatus::kAccept ||
                             verdicts[i].status == AuthStatus::kReject;
      observation.accepted = verdicts[i].status == AuthStatus::kAccept;
      observation.distance = verdicts[i].distance;
      detectors_[admission_slice_index(requests[i].device_id)]->observe(
          requests[i].device_id, observation);
    }
  }
  // Re-enrollment tracking post-pass, same contract.
  if (options_.reenroll.enabled()) track_reenrollment(requests, verdicts);
  return verdicts;
}

AuthVerdict AuthService::verify_proof(const ProofRequest& request) const {
  return verify_proof_pinned(*epochs_->snapshot(), request);
}

AuthVerdict AuthService::verify_proof_pinned(
    const registry::RegistrySnapshot& snapshot, const ProofRequest& request) const {
  static obs::Counter& requests =
      obs::Registry::instance().counter("service.proof_requests");
  static obs::Counter& accepted =
      obs::Registry::instance().counter("service.proofs_accepted");
  static obs::Counter& rejected =
      obs::Registry::instance().counter("service.proofs_rejected");
  static obs::Counter& unknown =
      obs::Registry::instance().counter("service.proof_unknown_device");
  static obs::Counter& corrupt =
      obs::Registry::instance().counter("service.proof_corrupt_record");
  static obs::Histogram& verify_us =
      obs::Registry::instance().latency_histogram("service.proof_verify_us");
  requests.add(1);
  const obs::ScopedLatency verify_timer(verify_us);

  const EnrollmentCache::Entry looked_up =
      resolve_lookup(snapshot, request.device_id);
  switch (looked_up->outcome) {
    case CachedLookup::Outcome::kUnknownDevice:
      unknown.add(1);
      return AuthVerdict{AuthStatus::kUnknownDevice, 0, 0};
    case CachedLookup::Outcome::kCorruptRecord:
      corrupt.add(1);
      return AuthVerdict{AuthStatus::kCorruptRecord, 0, 0};
    case CachedLookup::Outcome::kEnrolled:
      break;
  }
  if (!looked_up->auth_key.has_value()) {
    // Enrolled but not provisioned for v2 (or its auth material failed the
    // key check): the record cannot back a proof.
    corrupt.add(1);
    return AuthVerdict{AuthStatus::kCorruptRecord, 0, 0};
  }
  // response_bits reports the helper-covered span; distance is always 0 —
  // the whole point of v2 is that no distance oracle leaves the verifier.
  const puf::ConfigurableEnrollment& enrollment = *looked_up->enrollment;
  const std::size_t covered =
      enrollment.auth_helper.size() * enrollment.auth_helper.front().size();
  if (auth::verify_tag(*looked_up->auth_key, request.nonce, request.request_id,
                       request.device_id, request.tag)) {
    accepted.add(1);
    return AuthVerdict{AuthStatus::kAccept, 0, covered};
  }
  rejected.add(1);
  return AuthVerdict{AuthStatus::kReject, 0, covered};
}

std::vector<AuthVerdict> AuthService::verify_proof_batch(
    const std::vector<ProofRequest>& requests) const {
  static obs::Counter& batches =
      obs::Registry::instance().counter("service.proof_batches");
  batches.add(1);
  const obs::TraceSpan span("service.verify_proof_batch");
  // One snapshot pin, no admission pre-pass and no re-enrollment post-pass:
  // a proof verdict is a pure function of its request and the pinned
  // registry, so the batch is bit-identical at any thread budget.
  const std::shared_ptr<const registry::RegistrySnapshot> snapshot =
      epochs_->snapshot();
  return parallel_transform<AuthVerdict>(
      requests.size(), options_.threads,
      [&](std::size_t i) { return verify_proof_pinned(*snapshot, requests[i]); },
      options_.batch_grain);
}

void AuthService::track_reenrollment(const std::vector<AuthRequest>& requests,
                                     const std::vector<AuthVerdict>& verdicts) const {
  const std::lock_guard<std::mutex> lock(reenroll_.mutex);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::uint64_t id = requests[i].device_id;
    const AuthStatus status = verdicts[i].status;
    if (status == AuthStatus::kAccept) {
      // A clean accept proves the enrollment still matches the silicon.
      const auto it = reenroll_.streaks.find(id);
      if (it != reenroll_.streaks.end()) {
        reenroll_.lru.erase(it->second);
        reenroll_.streaks.erase(it);
      }
      continue;
    }
    if (status != AuthStatus::kReject) continue;  // says nothing about drift
    auto it = reenroll_.streaks.find(id);
    if (it == reenroll_.streaks.end()) {
      if (reenroll_.streaks.size() >= options_.reenroll.device_capacity) {
        reenroll_.streaks.erase(reenroll_.lru.back().first);
        reenroll_.lru.pop_back();
      }
      reenroll_.lru.emplace_front(id, 0);
      it = reenroll_.streaks.emplace(id, reenroll_.lru.begin()).first;
    } else {
      reenroll_.lru.splice(reenroll_.lru.begin(), reenroll_.lru, it->second);
    }
    std::size_t& streak = it->second->second;
    ++streak;
    if (streak < options_.reenroll.fail_threshold) continue;
    // Threshold crossed: queue once and restart the streak, so a device
    // re-queues only after fail_threshold *new* consecutive rejects.
    streak = 0;
    if (reenroll_.queued.count(id) != 0) continue;
    if (reenroll_.queue.size() >= options_.reenroll.queue_capacity) {
      reenroll_overflow_->add(1);
      continue;
    }
    reenroll_.queue.push_back(id);
    reenroll_.queued.insert(id);
    reenroll_queued_->add(1);
  }
}

std::vector<std::uint64_t> AuthService::take_reenroll_queue() const {
  const std::lock_guard<std::mutex> lock(reenroll_.mutex);
  std::vector<std::uint64_t> taken = std::move(reenroll_.queue);
  reenroll_.queue.clear();
  reenroll_.queued.clear();
  reenroll_taken_->add(taken.size());
  return taken;
}

std::size_t AuthService::reenroll_backlog() const {
  const std::lock_guard<std::mutex> lock(reenroll_.mutex);
  return reenroll_.queue.size();
}

std::size_t apply_reenrollments(const AuthService& service,
                                registry::EpochRegistry& epochs,
                                const ReenrollOracle& oracle) {
  static obs::Counter& applied =
      obs::Registry::instance().counter("service.reenroll_applied");
  registry::DeltaBuilder builder;
  for (const std::uint64_t device_id : service.take_reenroll_queue()) {
    std::optional<puf::ConfigurableEnrollment> fresh = oracle(device_id);
    if (fresh.has_value()) builder.upsert(device_id, std::move(*fresh));
  }
  const std::size_t count = builder.entry_count();
  if (count == 0) return 0;
  epochs.append_delta(registry::DeltaSegment::from_bytes(builder.build()));
  applied.add(count);
  return count;
}

// ----------------------------------------------------------------- workload

std::vector<AuthRequest> synthesize_workload(const registry::Registry& registry,
                                             const AuthServiceOptions& options,
                                             const WorkloadSpec& spec) {
  ROPUF_REQUIRE(registry.device_count() > 0, "cannot synthesize against an empty registry");
  ROPUF_REQUIRE(spec.flip_rate >= 0.0 && spec.flip_rate <= 1.0,
                "flip_rate must be in [0, 1]");
  ROPUF_REQUIRE(spec.forge_rate >= 0.0 && spec.unknown_rate >= 0.0 &&
                    spec.forge_rate + spec.unknown_rate <= 1.0,
                "forge_rate + unknown_rate must stay within [0, 1]");

  Rng rng(spec.seed);
  std::vector<AuthRequest> requests;
  requests.reserve(spec.requests);
  for (std::size_t r = 0; r < spec.requests; ++r) {
    AuthRequest request;
    request.challenge = rng.next_u64();
    const double category = rng.uniform();

    if (category < spec.unknown_rate) {
      // An id outside the enrolled population; the response content is
      // irrelevant (the unknown-device verdict fires before comparison).
      do {
        request.device_id = rng.next_u64();
      } while (request.device_id == 0 || registry.contains(request.device_id));
      BitVec response(options.response_bits);
      for (std::size_t i = 0; i < response.size(); ++i) response.set(i, rng.flip());
      request.response = std::move(response);
      requests.push_back(std::move(request));
      continue;
    }

    const std::size_t device_index = rng.uniform_below(registry.device_count());
    request.device_id = registry.device_id_at(device_index);
    const puf::ConfigurableEnrollment enrollment = registry.lookup(request.device_id);
    const std::size_t bits = std::min(options.response_bits, enrollment.layout.pair_count);

    if (category < spec.unknown_rate + spec.forge_rate) {
      // Forged attempt: right shape, random content.
      BitVec response(bits);
      for (std::size_t i = 0; i < bits; ++i) response.set(i, rng.flip());
      request.response = std::move(response);
      requests.push_back(std::move(request));
      continue;
    }

    // Legitimate prover: the enrollment-time reference with per-bit readout
    // noise, optionally pushed through the fault model. A dropped read is
    // the hardened readout's terminal condition (retry budget spent): the
    // prover degrades the whole response rather than fabricating bits, and
    // the service answers kMalformedRequest for it.
    const puf::CrpOracle oracle(&enrollment, bits);
    const BitVec reference = oracle.reference(request.challenge);
    try {
      BitVec response(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        bool bit = reference.get(i) ^ (rng.uniform() < spec.flip_rate);
        if (spec.injector != nullptr) {
          const sil::FaultInjector::ReadOutcome outcome =
              spec.injector->apply(i, kNominalReadPs);
          if (outcome.dropped) {
            throw MeasurementFault(FaultKind::kRetryExhausted,
                                   "prover readout dropped past the retry budget");
          }
          if (outcome.kind != FaultKind::kNone) bit = !bit;
        }
        response.set(i, bit);
      }
      request.response = std::move(response);
    } catch (const MeasurementFault&) {
      request.response = BitVec();
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<ProofIntent> synthesize_proof_workload(const registry::Registry& registry,
                                                   const WorkloadSpec& spec) {
  ROPUF_REQUIRE(registry.device_count() > 0,
                "cannot synthesize against an empty registry");
  ROPUF_REQUIRE(spec.flip_rate >= 0.0 && spec.flip_rate <= 1.0,
                "flip_rate must be in [0, 1]");
  ROPUF_REQUIRE(spec.forge_rate >= 0.0 && spec.unknown_rate >= 0.0 &&
                    spec.forge_rate + spec.unknown_rate <= 1.0,
                "forge_rate + unknown_rate must stay within [0, 1]");

  Rng rng(spec.seed);
  std::vector<ProofIntent> intents;
  intents.reserve(spec.requests);
  for (std::size_t r = 0; r < spec.requests; ++r) {
    ProofIntent intent;
    intent.request_id = r + 1;
    const double category = rng.uniform();

    if (category < spec.unknown_rate) {
      do {
        intent.device_id = rng.next_u64();
      } while (intent.device_id == 0 || registry.contains(intent.device_id));
      intents.push_back(intent);
      continue;
    }

    const std::size_t device_index = rng.uniform_below(registry.device_count());
    intent.device_id = registry.device_id_at(device_index);
    if (category < spec.unknown_rate + spec.forge_rate) {
      // Forger: right identity, no silicon — keyless, so the client sends
      // the all-zeros tag an HMAC output can never equal.
      intents.push_back(intent);
      continue;
    }

    // Legitimate prover: re-measure the enrolled response with per-bit
    // flips and run Rep. Within the code's correction radius the enrolled
    // key comes back; beyond it the prover fails closed (keyless).
    const puf::ConfigurableEnrollment enrollment = registry.lookup(intent.device_id);
    const BitVec reference = enrollment.response();
    BitVec noisy(reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      noisy.set(i, reference.get(i) ^ (rng.uniform() < spec.flip_rate));
    }
    const std::optional<crypto::Sha256Digest> key =
        auth::recover_key(noisy, enrollment);
    if (key.has_value()) {
      intent.has_key = true;
      intent.key = *key;
    }
    intents.push_back(intent);
  }
  return intents;
}

std::uint64_t verdict_digest(const std::vector<AuthVerdict>& verdicts) {
  std::uint64_t digest = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&digest](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      digest ^= (value >> (8 * byte)) & 0xffu;
      digest *= 0x100000001b3ull;
    }
  };
  for (const AuthVerdict& verdict : verdicts) {
    mix(static_cast<std::uint64_t>(verdict.status));
    mix(verdict.distance);
    mix(verdict.response_bits);
  }
  return digest;
}

}  // namespace ropuf::service

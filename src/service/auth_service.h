// Batched challenge-response authentication over an enrollment registry.
//
// This is the serving layer the ROADMAP's north star asks for: a verifier
// that holds a fleet-scale registry (src/registry/) and answers
// {device_id, challenge, response} requests. Verification follows the
// paper's authentication application: the challenge selects which enrolled
// margin-maximized pairs are compared (puf/crp.h), the claimed response is
// matched against the enrollment-time reference bits, and the verdict is an
// accept iff the Hamming distance stays within a noise threshold.
//
// Serving properties:
//  * Batches execute over the deterministic parallel pool
//    (parallel_for_chunked); verdict i depends only on request i and the
//    immutable registry, so a batch's verdicts are bit-identical at any
//    thread budget.
//  * Record decoding is the per-request cost that matters, so *lookup
//    outcomes* sit in a capacity-bounded sharded LRU cache with hit/miss
//    counters in obs. Negative outcomes are cached too: repeat traffic for
//    a hostile or rotten id costs one shard lookup, never a registry walk
//    or a thrown decode error. Enrolled and corrupt-record outcomes share
//    the main cache (both are keyed by ids actually present in the
//    registry, so their population is bounded); unknown-device outcomes
//    live in a *separate, smaller* cache, because their key space is the
//    whole u64 range — an attacker spraying random ids must not be able to
//    evict legitimate enrollments. Both caches are pure performance layers
//    over the immutable registry: verdicts never depend on their state.
//  * Graceful degradation, not exceptions: an unenrolled device, a record
//    that fails to decode (registry Defect::kBadRecord) and a degraded or
//    malformed request each map to their own verdict status, so one bad
//    request never poisons a batch. Prover-side readout failure reuses the
//    MeasurementFault taxonomy from the fault-injection framework.
//  * Optional admission control (service/admission.h): a deterministic
//    per-device token bucket and CRP-exhaustion/reuse budgets run as a
//    *serial pre-pass* over each batch in arrival order, answering denied
//    requests with kRateLimited/kBudgetExhausted degradation verdicts.
//    Admission is order-dependent state, so it must never run under the
//    parallel pool; only the admitted remainder is verified in parallel,
//    which keeps the admitted verdicts bit-identical to an admission-free
//    verify_batch over the same subsequence at any thread budget. With
//    admission_shards > 1 the per-device states partition into
//    device-id-hash slices (each with its own logical clock), so a device's
//    decisions depend only on its own slice's arrival stream — the property
//    the multi-reactor server's shard-stickiness tests pin.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include <functional>
#include <unordered_set>

#include "auth/auth.h"
#include "common/bitvec.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "registry/epoch.h"
#include "registry/registry.h"
#include "service/admission.h"
#include "service/detector.h"
#include "silicon/faults.h"

namespace ropuf::service {

/// One authentication attempt: who claims to be responding, to which
/// challenge, with which response bits.
struct AuthRequest {
  std::uint64_t device_id = 0;
  std::uint64_t challenge = 0;
  BitVec response;
};

/// One protocol-v2 proof verification: the nonce the server issued, the id
/// pair it was bound to, and the prover's HMAC tag. The verdict is a pure
/// function of (registry record, nonce, ids, tag) — no arrival-order state —
/// so proof batches are bit-identical at any thread budget.
struct ProofRequest {
  std::uint64_t request_id = 0;
  std::uint64_t device_id = 0;
  auth::Nonce nonce{};
  auth::Tag tag{};
};

/// What happened to a request. Everything past kReject is a degradation
/// verdict: the service answered instead of throwing.
enum class AuthStatus {
  kAccept,           ///< Hamming distance within the threshold
  kReject,           ///< well-formed, but too far from the reference
  kUnknownDevice,    ///< device id not present in the registry
  kCorruptRecord,    ///< the device's record failed to decode (kBadRecord)
  kMalformedRequest, ///< response empty or of the wrong length
  kRateLimited,      ///< admission: the device's token bucket is empty
  kBudgetExhausted,  ///< admission: CRP or reuse budget spent for the device
};

/// Number of AuthStatus values (CLI tally arrays, wire status validation).
inline constexpr std::size_t kAuthStatusCount = 7;

/// Stable human-readable name for a status (CLI and report code).
const char* auth_status_name(AuthStatus status);

struct AuthVerdict {
  AuthStatus status = AuthStatus::kReject;
  std::size_t distance = 0;       ///< Hamming distance (accept/reject only)
  /// Bits the verifier expected: the enrollment-clamped count whenever the
  /// record decoded (accept/reject/malformed), and the configured
  /// response_bits when it could not (unknown device, corrupt record) — so
  /// every degradation verdict reports a consistent, nonzero expectation.
  std::size_t response_bits = 0;

  bool accepted() const { return status == AuthStatus::kAccept; }
};

/// Knobs of the re-enrollment feedback loop: devices whose verdicts degrade
/// persistently (aging drift pushing distance past the accept threshold)
/// are queued for re-enrollment, closing the lifecycle ROADMAP item 2 names.
/// Tracking is a *serial post-pass* over each batch in arrival order, so the
/// queue contents are deterministic for a given request stream at any thread
/// budget — and verdicts are never altered by it.
struct ReenrollOptions {
  /// Consecutive kReject verdicts that queue a device; 0 disables the loop.
  /// Only kAccept resets the streak: degradation verdicts (unknown, rate
  /// limited, malformed) say nothing about the device's silicon.
  std::size_t fail_threshold = 0;
  /// Bound on tracked failure streaks (LRU-evicted, like admission states).
  std::size_t device_capacity = 1024;
  /// Bound on the pending queue; devices past it are dropped (and counted
  /// under service.reenroll_overflow) until the queue is drained.
  std::size_t queue_capacity = 256;

  bool enabled() const { return fail_threshold > 0; }
};

struct AuthServiceOptions {
  /// Response bits drawn per challenge; clamped per device to its enrolled
  /// pair count (bits are drawn without replacement).
  std::size_t response_bits = 16;
  /// Accept iff Hamming distance <= this (the noise budget).
  std::size_t max_distance = 2;
  /// Total cached lookups (enrolled + corrupt-record outcomes) across all
  /// shards; 0 disables the cache.
  std::size_t cache_capacity = 4096;
  /// Separate bound for cached unknown-device outcomes; 0 disables it.
  /// Kept apart from cache_capacity so a spray of never-enrolled ids
  /// competes only with other unknown ids, never with real enrollments.
  std::size_t unknown_cache_capacity = 256;
  /// Requests per parallel chunk in verify_batch.
  std::size_t batch_grain = 64;
  /// Per-device admission control (all-off by default; see admission.h).
  AdmissionOptions admission;
  /// Admission state partitions. 1 (the default) keeps the single global
  /// controller of PR 6. N > 1 splits the per-device states into N slices
  /// routed by device-id hash — the same SplitMix64 hash the enrollment
  /// cache shards by — each with its own logical clock and its own share of
  /// admission.device_capacity. A device always lands in the same slice, so
  /// its token-bucket replay is a function of its slice's arrival stream
  /// only: devices hashed elsewhere (and whichever reactor shard a
  /// connection happens to land on) cannot perturb it. The multi-reactor
  /// server sets this to its shard count so concurrent shards rarely
  /// contend on one admission mutex.
  std::size_t admission_shards = 1;
  /// Online model-building detection (off by default; see detector.h).
  /// Slices alongside admission: one StreamDetector per admission slice,
  /// routed by the same device-id hash, so a device's suspicion state and
  /// its admission state always live together.
  DetectorOptions detector;
  /// Re-enrollment queueing (off by default; see ReenrollOptions).
  ReenrollOptions reenroll;
  ThreadBudget threads;
};

/// One resolved registry lookup, cached positively or negatively. The
/// enrollment is engaged only for kEnrolled; the negative outcomes carry
/// the *reason* so a cache hit reproduces the exact degradation verdict.
struct CachedLookup {
  enum class Outcome {
    kEnrolled,       ///< the device's record decoded; `enrollment` is engaged
    kUnknownDevice,  ///< the id is not in the registry
    kCorruptRecord,  ///< the record raised kBadRecord on decode
  };
  Outcome outcome = Outcome::kEnrolled;
  std::optional<puf::ConfigurableEnrollment> enrollment;
  /// The protocol-v2 verification key, derived once at resolve time for
  /// provisioned records (Rep over the clean enrollment response + KCV
  /// cross-check). Disengaged when the record is unprovisioned or its auth
  /// material fails the cross-check — proofs against it answer
  /// kCorruptRecord without re-running the extractor per request.
  std::optional<crypto::Sha256Digest> auth_key;
  /// Registry epoch the lookup was resolved under. An entry only answers
  /// for its own epoch: a swap (delta append, compaction, SIGHUP reload)
  /// makes every older entry stale, so a replaced record can never serve
  /// from cache after its epoch retires.
  std::uint64_t epoch = 0;
};

/// Sharded LRU of lookup outcomes, keyed by device id. Lookups and
/// inserts lock only one shard, so concurrent batch workers rarely collide.
/// The total entry count never exceeds the configured capacity: a capacity
/// that does not divide evenly by the shard count spreads its remainder over
/// the first shards, so the per-shard bounds sum to exactly capacity().
/// Eviction is per-shard LRU, not global — a key-skewed workload can evict
/// from its hot shard while other shards have room (the SplitMix64 shard hash
/// makes sustained skew unlikely in practice). Hit, miss and eviction
/// counters land in obs under "<metric_prefix>_*" — "service.cache_*" for
/// the service's main cache, "service.unknown_cache_*" for its
/// unknown-device cache; under a parallel batch their values are
/// scheduling-dependent (see docs/observability.md). A disabled cache
/// (capacity 0) counts "<metric_prefix>_bypass" instead of misses, so
/// cache-off A/B runs do not pollute hit-rate dashboards.
class EnrollmentCache {
 public:
  using Entry = std::shared_ptr<const CachedLookup>;

  explicit EnrollmentCache(std::size_t capacity,
                           const std::string& metric_prefix = "service.cache");

  /// The cached lookup, refreshed to most-recently-used; nullptr on miss.
  /// An entry whose tagged epoch differs from `epoch` is *stale*: it is
  /// evicted on the spot, counted under "<metric_prefix>_stale" (and as a
  /// miss, since the caller must re-resolve), and never returned — the
  /// epoch-swap invalidation contract. Callers that don't version their
  /// entries use the default epoch 0 throughout and never see staleness.
  Entry get(std::uint64_t device_id, std::uint64_t epoch = 0);

  /// Inserts (or refreshes) an entry, evicting the shard's least recently
  /// used entry when the shard is full. No-op when the cache is disabled.
  void put(std::uint64_t device_id, Entry entry);

  /// The configured total capacity (shard bounds sum to exactly this).
  std::size_t capacity() const { return capacity_; }
  /// Current entry count (sums shard sizes; exact when quiescent).
  std::size_t size() const;

 private:
  struct Node {
    std::uint64_t id = 0;
    Entry entry;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Node> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Node>::iterator> map;
  };

  std::size_t shard_index(std::uint64_t device_id) const;
  /// Shard s's entry bound: capacity_/shard_count_, plus one for the first
  /// capacity_%shard_count_ shards.
  std::size_t shard_capacity(std::size_t s) const;

  std::size_t capacity_ = 0;
  std::size_t shard_count_ = 0;
  std::unique_ptr<Shard[]> shards_;
  /// Obs instruments are stable for the process lifetime (obs/metrics.h),
  /// so the constructor resolves them once by name.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* bypasses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* stale_ = nullptr;
};

/// The authentication engine: epoch-versioned registry + options + cache.
///
/// The service always verifies against an EpochRegistry (registry/epoch.h).
/// Every verify pins the current snapshot first; verify_batch pins ONE
/// snapshot for the whole batch, so a mid-batch epoch swap cannot split a
/// batch across generations — its verdicts are bit-stable against the epoch
/// it was admitted under, the invariant the swap-under-traffic tests pin.
/// The legacy Registry* constructor wraps the registry in an owned
/// single-epoch head, so code that never swaps is unchanged.
class AuthService {
 public:
  /// `registry` must outlive the service. Serves a private epoch head
  /// pinned at epoch 1 (copies share the registry's backing bytes).
  AuthService(const registry::Registry* registry, AuthServiceOptions options);

  /// Live-lifecycle form: `epochs` must outlive the service; swaps
  /// published on it are picked up at the next verify/verify_batch.
  AuthService(const registry::EpochRegistry* epochs, AuthServiceOptions options);

  const AuthServiceOptions& options() const { return options_; }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t unknown_cache_size() const { return unknown_cache_.size(); }

  /// The epoch new requests are admitted under right now.
  std::uint64_t epoch() const { return epochs_->epoch(); }

  /// Verifies one request; never throws on bad input (degradation statuses
  /// cover unknown devices, corrupt records and malformed requests).
  /// Admission-free: admission is an arrival-order property of the request
  /// *stream*, so it lives in verify_batch's serial pre-pass, not here.
  AuthVerdict verify(const AuthRequest& request) const;

  /// Verifies a batch over the parallel pool. With admission disabled (the
  /// default), verdict i is exactly verify(requests[i]). With admission
  /// enabled, a serial pre-pass first decides every request in arrival
  /// order; denied requests answer kRateLimited/kBudgetExhausted and the
  /// admitted remainder is verified in parallel — so the admitted verdicts
  /// match an admission-free batch over the same subsequence. With the
  /// detector enabled too, the pre-pass reads each device's current
  /// escalation penalty before deciding, and a serial post-pass feeds the
  /// batch's observations back to the detector — suspicion changes *which*
  /// requests admit, never what an admitted request's verdict is. Either
  /// way the output order matches the input order and is bit-identical at
  /// any thread budget.
  std::vector<AuthVerdict> verify_batch(const std::vector<AuthRequest>& requests) const;

  /// Verifies one protocol-v2 proof: recomputes HMAC(key, nonce || rid ||
  /// device_id) from the record-derived key and compares in constant time.
  /// kUnknownDevice / kCorruptRecord degradations mirror verify(); an
  /// unprovisioned record (no auth material) is a corrupt record from the
  /// v2 path's point of view. Accept/reject verdicts report distance 0 —
  /// the v2 wire deliberately carries no distance oracle — and
  /// response_bits = the helper-covered bit count.
  AuthVerdict verify_proof(const ProofRequest& request) const;

  /// verify_proof over the parallel pool, one snapshot pin for the batch.
  /// Proof verdicts are arrival-order-free (no admission, no re-enrollment
  /// streaks), so the output is bit-identical at any thread budget and any
  /// request order permutation — the shard/thread parity property the v2
  /// digest tests pin.
  std::vector<AuthVerdict> verify_proof_batch(
      const std::vector<ProofRequest>& requests) const;

  /// The first admission slice (the only one at the default
  /// admission_shards = 1; live counters; flush_metrics() for the
  /// per-device deny histogram). Decides kAdmit-everything when the
  /// configured AdmissionOptions are all-off.
  AdmissionController& admission() const { return *admission_.front(); }

  /// Admission partitions (== options().admission_shards).
  std::size_t admission_shard_count() const { return admission_.size(); }
  /// The slice that owns a device's admission state: constant per device,
  /// independent of connections, reactor shards, and arrival order.
  std::size_t admission_slice_index(std::uint64_t device_id) const;
  AdmissionController& admission_slice(std::size_t slice) const {
    return *admission_[slice];
  }
  /// Flushes every slice's per-device deny histogram (slice order).
  void flush_admission_metrics() const;

  /// The stream detector owning a device's suspicion state (same slice
  /// routing as admission). Inert when options().detector.enabled is false.
  StreamDetector& detector_slice(std::size_t slice) const {
    return *detectors_[slice];
  }
  /// The device's current escalation-ladder level (0 = unsuspected).
  std::uint32_t suspicion_level(std::uint64_t device_id) const;

  /// Drains the re-enrollment queue (arrival order, deduplicated). A
  /// drained device re-queues only after fail_threshold *new* consecutive
  /// rejects. Empty when the loop is disabled.
  std::vector<std::uint64_t> take_reenroll_queue() const;
  /// Devices currently queued (not yet taken).
  std::size_t reenroll_backlog() const;

 private:
  /// Target of the legacy Registry* constructor's delegation: adopts the
  /// owned single-epoch head after the main constructor ran.
  AuthService(std::unique_ptr<registry::EpochRegistry> owned,
              AuthServiceOptions options);

  /// verify() against an explicitly pinned snapshot — the batch hot path.
  AuthVerdict verify_pinned(const registry::RegistrySnapshot& snapshot,
                            const AuthRequest& request) const;
  /// verify_proof() against an explicitly pinned snapshot.
  AuthVerdict verify_proof_pinned(const registry::RegistrySnapshot& snapshot,
                                  const ProofRequest& request) const;
  /// The shared lookup-and-cache step behind both verify paths.
  EnrollmentCache::Entry resolve_lookup(const registry::RegistrySnapshot& snapshot,
                                        std::uint64_t device_id) const;
  /// Serial post-pass: walks a batch's verdicts in arrival order and feeds
  /// the re-enrollment streak tracker. Never changes a verdict.
  void track_reenrollment(const std::vector<AuthRequest>& requests,
                          const std::vector<AuthVerdict>& verdicts) const;

  const registry::EpochRegistry* epochs_;
  /// Engaged by the legacy Registry* constructor; epochs_ points into it.
  std::unique_ptr<registry::EpochRegistry> owned_epochs_;
  AuthServiceOptions options_;
  mutable EnrollmentCache cache_;
  mutable EnrollmentCache unknown_cache_;
  /// One controller per admission slice, device-id-hash routed.
  mutable std::vector<std::unique_ptr<AdmissionController>> admission_;
  /// One stream detector per admission slice (detector.h): the admission
  /// pre-pass reads penalties from it, a serial post-pass feeds it the
  /// batch's (challenge, guess-weight, verdict-distance) observations in
  /// arrival order. Like re-enrollment tracking it never alters a verdict.
  mutable std::vector<std::unique_ptr<StreamDetector>> detectors_;

  /// Re-enrollment streak tracker + queue (serial post-pass state; the
  /// mutex covers concurrent verify_batch callers, e.g. server shards).
  struct ReenrollState {
    std::mutex mutex;
    std::list<std::pair<std::uint64_t, std::size_t>> lru;  ///< front = MRU
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, std::size_t>>::iterator>
        streaks;
    std::vector<std::uint64_t> queue;          ///< arrival order
    std::unordered_set<std::uint64_t> queued;  ///< dedup for queue
  };
  mutable ReenrollState reenroll_;
  obs::Counter* reenroll_queued_ = nullptr;
  obs::Counter* reenroll_overflow_ = nullptr;
  obs::Counter* reenroll_taken_ = nullptr;
};

/// Produces a fresh enrollment for a device queued for re-enrollment —
/// operationally, re-measuring the physical chip at its current operating
/// point and re-running enrollment. nullopt when the device cannot be
/// re-measured (not owned here, offline); it simply stays un-refreshed.
using ReenrollOracle =
    std::function<std::optional<puf::ConfigurableEnrollment>(std::uint64_t)>;

/// Closes the re-enrollment loop: drains the service's queue through the
/// oracle, packs the fresh enrollments into one delta segment and publishes
/// it on `epochs` (one epoch bump). Returns the number of devices
/// re-enrolled; 0 publishes nothing. Counted under service.reenroll_applied.
std::size_t apply_reenrollments(const AuthService& service,
                                registry::EpochRegistry& epochs,
                                const ReenrollOracle& oracle);

/// Deterministic request-mix generator for benches, tests and the CLI's
/// auth-batch command: a fraction of forged, unknown-device and degraded
/// requests on top of legitimate responses with per-bit flip noise.
struct WorkloadSpec {
  std::size_t requests = 1024;
  double flip_rate = 0.01;     ///< per-bit noise on legitimate responses
  double forge_rate = 0.05;    ///< fraction answered with random bits
  double unknown_rate = 0.02;  ///< fraction claiming an unenrolled id
  std::uint64_t seed = 0x570ca57;
  /// Optional prover-side fault source (non-owning; nullptr = fault-free).
  /// Faulty reads corrupt response bits; a dropped read makes the prover's
  /// hardened readout give up (MeasurementFault, kRetryExhausted) and the
  /// request degrade to an empty response — which the service then answers
  /// with kMalformedRequest instead of failing the batch.
  sil::FaultInjector* injector = nullptr;
};

/// Generates spec.requests requests against the registry's population.
/// Serial and deterministic: same (registry, options, spec) — same requests.
std::vector<AuthRequest> synthesize_workload(const registry::Registry& registry,
                                             const AuthServiceOptions& options,
                                             const WorkloadSpec& spec);

/// One planned protocol-v2 attempt: the ids the client will send and the
/// key the prover recovered (or failed to recover — a keyless prover sends
/// an all-zeros tag, which an HMAC output can never equal). The tag itself
/// cannot be precomputed: it binds the server's nonce, which only exists
/// once the exchange starts.
struct ProofIntent {
  std::uint64_t request_id = 0;
  std::uint64_t device_id = 0;
  bool has_key = false;
  crypto::Sha256Digest key{};
};

/// The v2 counterpart of synthesize_workload: unknown-device, forged
/// (keyless) and legitimate attempts in spec's proportions. Legitimate
/// provers re-derive their key by running Rep over the enrollment response
/// with per-bit flips at spec.flip_rate — within the code's radius the
/// enrolled key comes back, beyond it the prover is keyless and fails
/// closed. Request ids are sequential from 1. Serial and deterministic;
/// consumes its own RNG stream, so v1 workloads are untouched.
std::vector<ProofIntent> synthesize_proof_workload(const registry::Registry& registry,
                                                   const WorkloadSpec& spec);

/// FNV-1a digest over the verdict sequence (order-sensitive); the CLI prints it
/// so thread-budget sweeps can assert bit-identical batch results cheaply.
std::uint64_t verdict_digest(const std::vector<AuthVerdict>& verdicts);

}  // namespace ropuf::service

// Per-device admission control for the CRP authentication service.
//
// PR 5 hardened the serving layer against *dumb* abuse (flooding, cache
// spray, fd exhaustion); this layer defends against *smart* abuse. A freely
// queryable CRP interface leaks statistics an attacker can model the device
// from ("Statistic-Based Security Analysis of Ring Oscillator PUFs"), and
// the verdict's Hamming distance is an outright oracle: probing one
// challenge with single-bit guesses recovers the reference bits one query
// at a time. Two deterministic per-device defenses bound that leakage:
//
//  * Token-bucket rate limiting. Each device owns a bucket of
//    `rate_burst` tokens refilled one token per `rate_interval` ticks of
//    the admission clock. The clock is *logical*: it advances once per
//    request the controller sees, never off the wall clock, so the same
//    arrival sequence always produces the same admit/deny sequence — the
//    property every digest-parity test in this repo is built on. Logical
//    time also makes the limiter a fair-share scheme: under an attack
//    flood the clock races ahead, so legitimate devices refill *faster*
//    relative to the abuser.
//
//  * CRP-reuse/exhaustion budgets. A bounded per-device sketch of
//    recently seen challenges splits traffic into *fresh* challenges
//    (consume the `crp_budget` of distinct challenges the device may ever
//    be asked — the modeling surface) and *repeats* (consume the much
//    smaller `reuse_budget` — repeats are how the distance oracle is
//    mined, and a legitimate prover re-asks a challenge only on a bounded
//    retry). Either budget spent answers kBudgetExhausted.
//
// Per-device state lives in a capacity-bounded LRU (an attacker spraying
// device ids must not grow server memory); evicting a state forgets its
// budgets, which is the standard sketch trade-off and is why the capacity
// default is fleet-sized. All checks are O(sketch) with no allocation on
// the admit path beyond first contact with a device.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace ropuf::service {

/// Admission knobs. Everything defaults to off (0), so a default-constructed
/// service admits every request and behaves exactly like the pre-admission
/// service. Rate limiting needs both rate_burst and rate_interval > 0.
struct AdmissionOptions {
  /// Token bucket capacity in requests; 0 disables rate limiting.
  std::uint64_t rate_burst = 0;
  /// Admission-clock ticks (requests observed, any device) per refilled
  /// token; 0 disables rate limiting.
  std::uint64_t rate_interval = 0;
  /// Max *distinct* challenges a device may ever be asked; 0 disables.
  std::uint64_t crp_budget = 0;
  /// Max repeated-challenge queries per device; 0 disables the reuse check.
  std::uint64_t reuse_budget = 0;
  /// Per-device seen-challenge sketch entries (repeat detection window).
  std::size_t challenge_sketch = 64;
  /// Bound on tracked per-device states (LRU eviction past it).
  std::size_t device_capacity = 4096;

  /// True when any check is configured; an all-off controller admits
  /// everything without touching per-device state.
  bool enabled() const {
    return (rate_burst > 0 && rate_interval > 0) || crp_budget > 0 ||
           reuse_budget > 0;
  }
};

/// What admission decided for one request, in check order: rate first
/// (cheapest, protects everything behind it), budgets second.
enum class Admission {
  kAdmit,
  kRateLimited,      ///< token bucket empty — retry later
  kBudgetExhausted,  ///< distinct-challenge or reuse budget spent
};

/// A per-device penalty the stream detector (service/detector.h) escalates
/// onto suspicious devices. Neutral (the default) reproduces the static
/// admission decision exactly; a penalized device refills `interval_factor`
/// times slower and keeps only `reuse_budget >> reuse_shift` of its repeat
/// budget. Both act per decision, so a decayed penalty restores the static
/// knobs without touching stored state.
struct AdmissionPenalty {
  /// Multiplies the effective rate_interval (saturating — an absurd ladder
  /// level must freeze refills, not wrap into a fast one).
  std::uint64_t interval_factor = 1;
  /// Right-shift applied to reuse_budget. Shrinking a *configured* budget
  /// to zero denies every repeat (it does not disable the check: 0 means
  /// "off" only for the static knob, never for a penalty).
  std::uint32_t reuse_shift = 0;

  bool neutral() const { return interval_factor <= 1 && reuse_shift == 0; }
};

/// a*b clamped to the uint64 range instead of wrapping.
std::uint64_t saturating_mul_u64(std::uint64_t a, std::uint64_t b);

/// The token-bucket refill arithmetic, exposed as a pure function so the
/// overflow edges are unit-testable at near-max clock values (driving the
/// controller's logical clock there would take 2^64 admit() calls).
/// Guards two uint64 overflows a naive implementation hits when a device
/// re-appears after an enormous tick gap: `tokens + earned` (earned can be
/// ~2^64 at interval 1) and the `earned * interval` tick advance.
struct RefillResult {
  std::uint64_t tokens = 0;
  std::uint64_t last_refill_tick = 0;
};
RefillResult refill_tokens(std::uint64_t tokens, std::uint64_t last_refill_tick,
                           std::uint64_t now_tick, std::uint64_t burst,
                           std::uint64_t interval);

/// Deterministic per-device admission state machine. admit() must be called
/// in request arrival order (the service's serial pre-pass does); calls are
/// mutex-serialized so concurrent batches stay safe, but determinism is a
/// property of the *call order*, not the lock.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Decides one request and advances the admission clock by one tick.
  Admission admit(std::uint64_t device_id, std::uint64_t challenge) {
    return admit(device_id, challenge, AdmissionPenalty{});
  }

  /// Penalty-aware form: the detector's escalation ladder tightens this
  /// one device's effective knobs for this one decision. A neutral penalty
  /// is byte-identical to the two-argument overload.
  Admission admit(std::uint64_t device_id, std::uint64_t challenge,
                  const AdmissionPenalty& penalty);

  /// Records the per-device deny-count histogram *delta* accumulated since
  /// the previous flush for every still-tracked device (evicted devices
  /// record their pending delta at eviction time). Safe to call repeatedly
  /// — checkpoint flushes, a shutdown flush and a later eviction together
  /// record each deny exactly once. The counters are live continuously.
  void flush_metrics();

  /// Devices currently tracked (bounded by device_capacity).
  std::size_t tracked_devices() const;
  /// Requests observed (the admission clock).
  std::uint64_t ticks() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct DeviceState {
    std::uint64_t device_id = 0;
    std::uint64_t tokens = 0;
    std::uint64_t last_refill_tick = 0;
    std::uint64_t distinct_used = 0;
    std::uint64_t reuse_used = 0;
    std::uint64_t denied = 0;
    /// Denies already recorded into the histogram; record_denies() emits
    /// only `denied - denied_flushed`, so repeated flushes never re-count.
    std::uint64_t denied_flushed = 0;
    /// Ring of recently seen challenges; eviction re-classifies an old
    /// challenge as fresh, which *charges the attacker again* — safe-side.
    std::vector<std::uint64_t> sketch;
    std::size_t sketch_next = 0;
  };

  DeviceState& state_for(std::uint64_t device_id);
  void refill(DeviceState& state, std::uint64_t interval) const;
  bool sketch_contains(const DeviceState& state, std::uint64_t challenge) const;
  void sketch_insert(DeviceState& state, std::uint64_t challenge);
  void record_denies(DeviceState& state);

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::uint64_t tick_ = 0;
  std::list<DeviceState> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<DeviceState>::iterator> index_;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* rate_limited_ = nullptr;
  obs::Counter* budget_exhausted_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Histogram* denies_per_device_ = nullptr;
};

}  // namespace ropuf::service

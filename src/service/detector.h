// Online model-building detection for the CRP authentication service.
//
// The admission layer (service/admission.h) bounds the *volume* of CRP
// leakage with static per-device budgets; this layer recognizes its *shape*.
// The distance-oracle attack (attack/harvest.h) has a distinctive stream
// signature no legitimate prover produces:
//
//  * repeat-probe runs — the same challenge re-asked far past the bounded
//    retry a real prover ever needs (the oracle needs b+1 asks per
//    challenge);
//  * single-bit guesses — non-accepted probes whose claimed response has
//    popcount <= 1 (the all-zeros baseline and the one-hot probes), where
//    a genuine response sits near popcount b/2 — and the rare genuine
//    device whose reference is itself near-zero gets *accepted* for its
//    low-weight responses, so those are exempt;
//  * distance staircases — a weight-0 baseline for challenge c answered
//    with distance d0, followed by weight-1 probes for the *same* c whose
//    distances step to exactly d0 +/- 1, the arithmetic the oracle mines.
//
// StreamDetector scores a sliding window of per-device observations for
// those signatures and drives an escalation ladder: enough suspicion bumps
// the device's level, and each level stretches its effective admission
// rate_interval (2^level) and halves its reuse_budget (>> level) via
// AdmissionPenalty — so a flagged device starves while everyone else keeps
// the loose static knobs. Clean traffic decays the score and eventually
// steps the level back down, so a false positive is a slowdown, never a
// permanent ban.
//
// Signatures are *window-count* based, not consecutive-run based, on
// purpose: an evasive harvester (attack::EvasiveHarvester) that interleaves
// plausible-looking decoy queries between oracle probes dilutes any
// consecutive-run rule, but its oracle probes still accumulate in the
// window. The window just needs to out-span the decoy spacing.
//
// Like admission, the detector is deterministic in observation order and
// never touches verdicts: it only changes *which* requests the admission
// pre-pass admits, so the admitted subsequence keeps digest parity with an
// admission-free offline batch at any thread budget or shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/admission.h"

namespace ropuf::service {

/// Detector knobs. Defaults are tuned for the soak contract: the plain and
/// evasive harvesters escalate within their first challenge while the
/// legit prover mix never flags at all.
struct DetectorOptions {
  /// Master switch; everything below is inert when false.
  bool enabled = false;
  /// Sliding observation window per device (newest `window` observations).
  std::size_t window = 32;
  /// Same-challenge asks tolerated inside the window before the repeat
  /// signature fires (a legitimate prover retries a challenge at most once
  /// or twice; the oracle asks it bits+1 times).
  std::size_t repeat_tolerance = 2;
  /// Non-accepted popcount<=1 guesses inside the window before the
  /// single-bit signature fires. A real b-bit response has expected weight
  /// b/2, and the rare genuine device whose reference sits near all-zeros
  /// gets *accepted* for its low-weight responses — so legit traffic never
  /// contributes, while oracle probes (rejected or denied) always do.
  std::size_t low_weight_run = 4;
  /// Same-challenge baseline/probe distance-step chain length before the
  /// staircase signature fires.
  std::size_t staircase_run = 3;
  /// Score added per flagged signature, per observation.
  std::uint32_t repeat_score = 2;
  std::uint32_t low_weight_score = 1;
  std::uint32_t staircase_score = 3;
  /// Accumulated score that bumps the escalation ladder one level.
  std::uint32_t escalate_threshold = 8;
  /// Ladder ceiling (penalties saturate here).
  std::uint32_t max_level = 4;
  /// Clean (unflagged) observations per decay step: each step halves the
  /// score, and a zero score steps the level back down.
  std::uint64_t decay_window = 64;
  /// Bound on tracked per-device states (LRU eviction past it, same sketch
  /// trade-off as admission: an id-spray must not grow server memory).
  std::size_t device_capacity = 4096;
};

/// One observation of a device's request stream, in arrival order: what was
/// asked, what shape the claimed response had, and what the verifier said.
struct StreamObservation {
  std::uint64_t challenge = 0;
  /// popcount of the submitted response bits.
  std::size_t guess_weight = 0;
  /// True for a real accept/reject verdict (distance is meaningful); false
  /// for degradations (denied, unknown, malformed — no distance oracle).
  bool answered = false;
  /// True for kAccept. An *accepted* low-weight response is a genuine
  /// device whose reference happens to sit near all-zeros — not an oracle
  /// probe (those miss by ~reference-popcount) — so the single-bit
  /// signature skips it; the false-positive the first soak tuning caught.
  bool accepted = false;
  /// Verdict Hamming distance when answered.
  std::size_t distance = 0;
};

/// Deterministic per-device stream classifier + escalation ladder. Feed
/// observations in arrival order via observe() (the service's serial
/// post-pass does); read the current penalty in the admission pre-pass.
/// Calls are mutex-serialized for concurrent batches, but — exactly like
/// AdmissionController — determinism is a property of the call order.
class StreamDetector {
 public:
  explicit StreamDetector(DetectorOptions options);

  /// Classifies one observation and advances the device's score/ladder.
  /// No-op when the detector is disabled.
  void observe(std::uint64_t device_id, const StreamObservation& observation);

  /// The device's current escalation level (0 = unsuspected or untracked).
  std::uint32_t level(std::uint64_t device_id) const;

  /// The admission penalty for the device's current level.
  AdmissionPenalty penalty(std::uint64_t device_id) const;

  /// The ladder: level L stretches the refill interval 2^L times and
  /// halves the reuse budget L times. Saturates instead of wrapping.
  static AdmissionPenalty penalty_for_level(std::uint32_t level);

  /// Devices currently tracked (bounded by device_capacity).
  std::size_t tracked_devices() const;

  const DetectorOptions& options() const { return options_; }

 private:
  struct WindowEntry {
    std::uint64_t challenge = 0;
    std::size_t weight = 0;
    bool accepted = false;
  };
  struct DeviceState {
    std::uint64_t device_id = 0;
    /// Ring of the newest `window` observations.
    std::vector<WindowEntry> window;
    std::size_t window_next = 0;
    /// Staircase tracking: the newest answered weight-0 baseline and how
    /// many same-challenge weight-1 probes have stepped off it by exactly 1.
    bool baseline_valid = false;
    std::uint64_t baseline_challenge = 0;
    std::size_t baseline_distance = 0;
    std::size_t staircase_length = 0;
    /// Suspicion accumulator and ladder position.
    std::uint32_t score = 0;
    std::uint32_t level = 0;
    std::uint64_t clean_streak = 0;
  };

  DeviceState& state_for(std::uint64_t device_id);

  DetectorOptions options_;
  mutable std::mutex mutex_;
  std::list<DeviceState> lru_;  ///< front = most recently observed
  std::unordered_map<std::uint64_t, std::list<DeviceState>::iterator> index_;
  obs::Counter* observations_ = nullptr;
  obs::Counter* repeat_flags_ = nullptr;
  obs::Counter* low_weight_flags_ = nullptr;
  obs::Counter* staircase_flags_ = nullptr;
  obs::Counter* escalations_ = nullptr;
  obs::Counter* deescalations_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Histogram* escalated_level_ = nullptr;
};

}  // namespace ropuf::service

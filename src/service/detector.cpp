#include "service/detector.h"

#include <algorithm>

#include "common/error.h"

namespace ropuf::service {
namespace {

/// Escalation-level buckets: the ladder is short, so one bucket per level.
const std::vector<double>& level_bounds() {
  static const std::vector<double> bounds = {1, 2, 3, 4, 5, 6, 7, 8};
  return bounds;
}

}  // namespace

StreamDetector::StreamDetector(DetectorOptions options) : options_(options) {
  if (options_.enabled) {
    ROPUF_REQUIRE(options_.window > 0, "detector window must be positive");
    ROPUF_REQUIRE(options_.repeat_tolerance > 0,
                  "repeat_tolerance must be positive (1 = flag the first repeat)");
    ROPUF_REQUIRE(options_.low_weight_run > 0, "low_weight_run must be positive");
    ROPUF_REQUIRE(options_.staircase_run > 0, "staircase_run must be positive");
    ROPUF_REQUIRE(options_.escalate_threshold > 0,
                  "escalate_threshold must be positive");
    ROPUF_REQUIRE(options_.max_level > 0, "max_level must be positive");
    ROPUF_REQUIRE(options_.decay_window > 0, "decay_window must be positive");
    ROPUF_REQUIRE(options_.device_capacity > 0, "device_capacity must be positive");
  }
  obs::Registry& registry = obs::Registry::instance();
  observations_ = &registry.counter("service.detector.observations");
  repeat_flags_ = &registry.counter("service.detector.repeat_flags");
  low_weight_flags_ = &registry.counter("service.detector.low_weight_flags");
  staircase_flags_ = &registry.counter("service.detector.staircase_flags");
  escalations_ = &registry.counter("service.detector.escalations");
  deescalations_ = &registry.counter("service.detector.deescalations");
  evictions_ = &registry.counter("service.detector.evictions");
  escalated_level_ =
      &registry.histogram("service.detector.escalated_level", level_bounds());
}

AdmissionPenalty StreamDetector::penalty_for_level(std::uint32_t level) {
  AdmissionPenalty penalty;
  penalty.interval_factor =
      level >= 64 ? ~0ull : (1ull << level);
  penalty.reuse_shift = level;
  return penalty;
}

StreamDetector::DeviceState& StreamDetector::state_for(std::uint64_t device_id) {
  const auto it = index_.find(device_id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  if (lru_.size() >= options_.device_capacity) {
    // Evicting forgets the victim's suspicion — the standard bounded-sketch
    // trade-off, and why device_capacity defaults fleet-sized.
    index_.erase(lru_.back().device_id);
    lru_.pop_back();
    evictions_->add(1);
  }
  DeviceState state;
  state.device_id = device_id;
  lru_.push_front(std::move(state));
  index_[device_id] = lru_.begin();
  return lru_.front();
}

void StreamDetector::observe(std::uint64_t device_id,
                             const StreamObservation& observation) {
  if (!options_.enabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  observations_->add(1);
  DeviceState& state = state_for(device_id);

  // Slide the window first, so every signature sees the newest observation.
  const WindowEntry newest{observation.challenge, observation.guess_weight,
                           observation.accepted};
  if (state.window.size() < options_.window) {
    state.window.push_back(newest);
  } else {
    state.window[state.window_next] = newest;
    state.window_next = (state.window_next + 1) % state.window.size();
  }

  // Repeat-probe signature: the same challenge asked more than a plausible
  // retry count of times inside the window. Counted over the whole window
  // (not consecutively) so decoy interleaving cannot wash it out.
  std::size_t same_challenge = 0;
  std::size_t low_weight = 0;
  for (const WindowEntry& entry : state.window) {
    if (entry.challenge == observation.challenge) ++same_challenge;
    if (entry.weight <= 1 && !entry.accepted) ++low_weight;
  }
  const bool repeat_flag = same_challenge > options_.repeat_tolerance;

  // Single-bit-guess signature: a run of non-accepted popcount<=1 claimed
  // responses. A genuine response carries ~b/2 set bits, and the rare
  // device whose reference really is near-zero gets *accepted* for its
  // low-weight responses — so these only come from oracle probing (or a
  // broken prover, which the decay path forgives).
  const bool low_weight_flag = low_weight >= options_.low_weight_run;

  // Distance-staircase signature: answered weight-1 probes stepping exactly
  // +/-1 off the answered weight-0 baseline of the *same* challenge — the
  // bit-recovery arithmetic itself. The baseline is keyed to its challenge
  // and survives unrelated observations, so interleaved decoys don't reset
  // the chain.
  bool staircase_flag = false;
  if (observation.answered) {
    if (observation.guess_weight == 0) {
      state.baseline_valid = true;
      state.baseline_challenge = observation.challenge;
      state.baseline_distance = observation.distance;
      state.staircase_length = 0;
    } else if (observation.guess_weight == 1 && state.baseline_valid &&
               observation.challenge == state.baseline_challenge &&
               (observation.distance + 1 == state.baseline_distance ||
                observation.distance == state.baseline_distance + 1)) {
      ++state.staircase_length;
      staircase_flag = state.staircase_length >= options_.staircase_run;
    }
  }

  std::uint32_t delta = 0;
  if (repeat_flag) {
    delta += options_.repeat_score;
    repeat_flags_->add(1);
  }
  if (low_weight_flag) {
    delta += options_.low_weight_score;
    low_weight_flags_->add(1);
  }
  if (staircase_flag) {
    delta += options_.staircase_score;
    staircase_flags_->add(1);
  }

  if (delta == 0) {
    // Clean observation: decay. Every decay_window clean observations halve
    // the score; once it reaches zero the ladder steps back down, so a
    // false positive costs a bounded slowdown, never a permanent ban.
    ++state.clean_streak;
    if (state.clean_streak >= options_.decay_window) {
      state.clean_streak = 0;
      if (state.score > 0) {
        state.score /= 2;
      } else if (state.level > 0) {
        --state.level;
        deescalations_->add(1);
      }
    }
    return;
  }

  state.clean_streak = 0;
  state.score += delta;
  if (state.score >= options_.escalate_threshold) {
    state.score = 0;
    if (state.level < options_.max_level) {
      ++state.level;
      escalations_->add(1);
      escalated_level_->record(static_cast<double>(state.level));
    }
  }
}

std::uint32_t StreamDetector::level(std::uint64_t device_id) const {
  if (!options_.enabled) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(device_id);
  // A read never promotes in the LRU: penalty lookups on the admission
  // pre-pass must not keep an otherwise-idle device resident.
  return it == index_.end() ? 0 : it->second->level;
}

AdmissionPenalty StreamDetector::penalty(std::uint64_t device_id) const {
  return penalty_for_level(level(device_id));
}

std::size_t StreamDetector::tracked_devices() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace ropuf::service

#include "service/admission.h"

#include <algorithm>

#include "common/error.h"

namespace ropuf::service {
namespace {

/// Per-device deny-count buckets: powers of two up to "clearly abusive".
const std::vector<double>& deny_bounds() {
  static const std::vector<double> bounds = {1,  2,   4,   8,    16,  32,
                                             64, 128, 256, 1024, 4096};
  return bounds;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  ROPUF_REQUIRE((options_.rate_burst > 0) == (options_.rate_interval > 0),
                "rate_burst and rate_interval enable rate limiting together "
                "(both zero or both positive)");
  ROPUF_REQUIRE(options_.challenge_sketch > 0,
                "challenge_sketch must be positive");
  ROPUF_REQUIRE(!options_.enabled() || options_.device_capacity > 0,
                "device_capacity must be positive when admission is enabled");
  obs::Registry& registry = obs::Registry::instance();
  admitted_ = &registry.counter("service.admitted");
  rate_limited_ = &registry.counter("service.rate_limited");
  budget_exhausted_ = &registry.counter("service.budget_exhausted");
  evictions_ = &registry.counter("service.admission_evictions");
  denies_per_device_ =
      &registry.histogram("service.admission_denies_per_device", deny_bounds());
}

void AdmissionController::refill(DeviceState& state) const {
  if (options_.rate_interval == 0) return;
  const std::uint64_t elapsed = tick_ - state.last_refill_tick;
  const std::uint64_t earned = elapsed / options_.rate_interval;
  if (earned == 0) return;
  if (state.tokens + earned >= options_.rate_burst) {
    state.tokens = options_.rate_burst;
    // A full bucket restarts the refill clock: unspent surplus must not
    // bank up beyond the burst.
    state.last_refill_tick = tick_;
  } else {
    state.tokens += earned;
    state.last_refill_tick += earned * options_.rate_interval;
  }
}

bool AdmissionController::sketch_contains(const DeviceState& state,
                                          std::uint64_t challenge) const {
  return std::find(state.sketch.begin(), state.sketch.end(), challenge) !=
         state.sketch.end();
}

void AdmissionController::sketch_insert(DeviceState& state, std::uint64_t challenge) {
  if (state.sketch.size() < options_.challenge_sketch) {
    state.sketch.push_back(challenge);
    return;
  }
  // Ring replacement: the oldest entry is forgotten, so a far-past
  // challenge re-presented later counts as fresh again (charging the
  // distinct budget once more — the safe direction).
  state.sketch[state.sketch_next] = challenge;
  state.sketch_next = (state.sketch_next + 1) % state.sketch.size();
}

void AdmissionController::record_denies(const DeviceState& state) {
  if (state.denied > 0) {
    denies_per_device_->record(static_cast<double>(state.denied));
  }
}

AdmissionController::DeviceState& AdmissionController::state_for(
    std::uint64_t device_id) {
  const auto it = index_.find(device_id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  if (lru_.size() >= options_.device_capacity) {
    DeviceState& victim = lru_.back();
    record_denies(victim);
    index_.erase(victim.device_id);
    lru_.pop_back();
    evictions_->add(1);
  }
  DeviceState state;
  state.device_id = device_id;
  state.tokens = options_.rate_burst;
  state.last_refill_tick = tick_;
  lru_.push_front(std::move(state));
  index_[device_id] = lru_.begin();
  return lru_.front();
}

Admission AdmissionController::admit(std::uint64_t device_id, std::uint64_t challenge) {
  if (!options_.enabled()) {
    admitted_->add(1);
    return Admission::kAdmit;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  DeviceState& state = state_for(device_id);

  // Rate first: an empty bucket denies before any budget state is touched,
  // so a flood cannot burn the device's budgets or churn its sketch.
  if (options_.rate_interval > 0) {
    refill(state);
    if (state.tokens == 0) {
      ++state.denied;
      rate_limited_->add(1);
      return Admission::kRateLimited;
    }
  }

  const bool repeat = sketch_contains(state, challenge);
  if (repeat) {
    if (options_.reuse_budget > 0 && state.reuse_used >= options_.reuse_budget) {
      ++state.denied;
      budget_exhausted_->add(1);
      return Admission::kBudgetExhausted;
    }
    ++state.reuse_used;
  } else {
    if (options_.crp_budget > 0 && state.distinct_used >= options_.crp_budget) {
      ++state.denied;
      budget_exhausted_->add(1);
      return Admission::kBudgetExhausted;
    }
    ++state.distinct_used;
    sketch_insert(state, challenge);
  }

  if (options_.rate_interval > 0) --state.tokens;
  admitted_->add(1);
  return Admission::kAdmit;
}

void AdmissionController::flush_metrics() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const DeviceState& state : lru_) record_denies(state);
}

std::size_t AdmissionController::tracked_devices() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t AdmissionController::ticks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tick_;
}

}  // namespace ropuf::service

#include "service/admission.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ropuf::service {
namespace {

/// Per-device deny-count buckets: powers of two up to "clearly abusive".
const std::vector<double>& deny_bounds() {
  static const std::vector<double> bounds = {1,   2,   4,   8,    16,   32,
                                             64,  128, 256, 512,  1024, 4096};
  return bounds;
}

}  // namespace

std::uint64_t saturating_mul_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::uint64_t>::max() / b) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

RefillResult refill_tokens(std::uint64_t tokens, std::uint64_t last_refill_tick,
                           std::uint64_t now_tick, std::uint64_t burst,
                           std::uint64_t interval) {
  if (interval == 0) return RefillResult{tokens, last_refill_tick};
  const std::uint64_t elapsed = now_tick - last_refill_tick;
  const std::uint64_t earned = elapsed / interval;
  if (earned == 0) return RefillResult{tokens, last_refill_tick};
  // `tokens + earned >= burst` rearranged so it cannot wrap: earned can be
  // close to 2^64 when a device re-appears after an enormous tick gap (the
  // naive sum wraps and the bucket refills to almost nothing).
  if (earned >= burst || tokens >= burst - earned) {
    // A full bucket restarts the refill clock: unspent surplus must not
    // bank up beyond the burst.
    return RefillResult{burst, now_tick};
  }
  // Partial refill: tokens + earned < burst, so the sum fits; and
  // earned * interval <= elapsed by integer division, so the tick advance
  // stays behind now_tick and cannot wrap either.
  return RefillResult{tokens + earned, last_refill_tick + earned * interval};
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  ROPUF_REQUIRE((options_.rate_burst > 0) == (options_.rate_interval > 0),
                "rate_burst and rate_interval enable rate limiting together "
                "(both zero or both positive)");
  ROPUF_REQUIRE(options_.challenge_sketch > 0,
                "challenge_sketch must be positive");
  ROPUF_REQUIRE(!options_.enabled() || options_.device_capacity > 0,
                "device_capacity must be positive when admission is enabled");
  obs::Registry& registry = obs::Registry::instance();
  admitted_ = &registry.counter("service.admitted");
  rate_limited_ = &registry.counter("service.rate_limited");
  budget_exhausted_ = &registry.counter("service.budget_exhausted");
  evictions_ = &registry.counter("service.admission_evictions");
  denies_per_device_ =
      &registry.histogram("service.admission_denies_per_device", deny_bounds());
}

void AdmissionController::refill(DeviceState& state, std::uint64_t interval) const {
  const RefillResult refilled = refill_tokens(
      state.tokens, state.last_refill_tick, tick_, options_.rate_burst, interval);
  state.tokens = refilled.tokens;
  state.last_refill_tick = refilled.last_refill_tick;
}

bool AdmissionController::sketch_contains(const DeviceState& state,
                                          std::uint64_t challenge) const {
  return std::find(state.sketch.begin(), state.sketch.end(), challenge) !=
         state.sketch.end();
}

void AdmissionController::sketch_insert(DeviceState& state, std::uint64_t challenge) {
  if (state.sketch.size() < options_.challenge_sketch) {
    state.sketch.push_back(challenge);
    return;
  }
  // Ring replacement: the oldest entry is forgotten, so a far-past
  // challenge re-presented later counts as fresh again (charging the
  // distinct budget once more — the safe direction).
  state.sketch[state.sketch_next] = challenge;
  state.sketch_next = (state.sketch_next + 1) % state.sketch.size();
}

void AdmissionController::record_denies(DeviceState& state) {
  // Delta since the previous flush only: a run that flushes at checkpoints,
  // flushes again at shutdown, and then evicts the state must count each
  // deny exactly once across all three.
  const std::uint64_t delta = state.denied - state.denied_flushed;
  if (delta > 0) {
    denies_per_device_->record(static_cast<double>(delta));
    state.denied_flushed = state.denied;
  }
}

AdmissionController::DeviceState& AdmissionController::state_for(
    std::uint64_t device_id) {
  const auto it = index_.find(device_id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  if (lru_.size() >= options_.device_capacity) {
    DeviceState& victim = lru_.back();
    record_denies(victim);
    index_.erase(victim.device_id);
    lru_.pop_back();
    evictions_->add(1);
  }
  DeviceState state;
  state.device_id = device_id;
  state.tokens = options_.rate_burst;
  state.last_refill_tick = tick_;
  lru_.push_front(std::move(state));
  index_[device_id] = lru_.begin();
  return lru_.front();
}

Admission AdmissionController::admit(std::uint64_t device_id, std::uint64_t challenge,
                                     const AdmissionPenalty& penalty) {
  if (!options_.enabled()) {
    admitted_->add(1);
    return Admission::kAdmit;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  DeviceState& state = state_for(device_id);

  // Rate first: an empty bucket denies before any budget state is touched,
  // so a flood cannot burn the device's budgets or churn its sketch.
  if (options_.rate_interval > 0) {
    // The penalty stretches this device's refill interval (saturating: a
    // deep ladder level freezes refills rather than wrapping to fast ones).
    refill(state, saturating_mul_u64(options_.rate_interval, penalty.interval_factor));
    if (state.tokens == 0) {
      ++state.denied;
      rate_limited_->add(1);
      return Admission::kRateLimited;
    }
  }

  const bool repeat = sketch_contains(state, challenge);
  if (repeat) {
    // The penalty halves the configured reuse budget per ladder level. A
    // budget shrunk to zero denies every repeat; only the *static* knob at
    // zero means the check is off.
    const std::uint64_t effective_reuse =
        penalty.reuse_shift >= 64 ? 0 : options_.reuse_budget >> penalty.reuse_shift;
    if (options_.reuse_budget > 0 && state.reuse_used >= effective_reuse) {
      ++state.denied;
      budget_exhausted_->add(1);
      return Admission::kBudgetExhausted;
    }
    ++state.reuse_used;
  } else {
    if (options_.crp_budget > 0 && state.distinct_used >= options_.crp_budget) {
      ++state.denied;
      budget_exhausted_->add(1);
      return Admission::kBudgetExhausted;
    }
    ++state.distinct_used;
    sketch_insert(state, challenge);
  }

  if (options_.rate_interval > 0) --state.tokens;
  admitted_->add(1);
  return Admission::kAdmit;
}

void AdmissionController::flush_metrics() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (DeviceState& state : lru_) record_denies(state);
}

std::size_t AdmissionController::tracked_devices() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t AdmissionController::ticks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tick_;
}

}  // namespace ropuf::service

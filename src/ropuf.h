// Umbrella header: the library's full public API.
//
// Fine-grained includes are preferred inside the repository; this header
// exists for downstream consumers who want everything with one include.
#pragma once

#include "common/bitvec.h"           // packed bit vectors
#include "common/error.h"            // ropuf::Error / ROPUF_REQUIRE
#include "common/rng.h"              // deterministic RNG
#include "common/table.h"            // text tables

#include "numeric/berlekamp_massey.h"
#include "numeric/fft.h"
#include "numeric/gf2.h"
#include "numeric/linear_solver.h"
#include "numeric/matrix.h"
#include "numeric/polyfit.h"
#include "numeric/special_functions.h"

#include "silicon/chip.h"            // fabricated chips
#include "silicon/dataset_io.h"      // CSV measurement-table interchange
#include "silicon/environment.h"     // V/T model
#include "silicon/fabrication.h"     // process variation
#include "silicon/fleet.h"           // dataset-substitute fleets

#include "ro/configurable_ro.h"      // the paper's Fig. 1 structure
#include "ro/delay_extractor.h"      // Section III.B
#include "ro/frequency_counter.h"    // measurement harness

#include "puf/chip_puf.h"            // the full-circuit device
#include "puf/cooperative.h"         // baseline [2]
#include "puf/crp.h"                 // challenge-response oracle
#include "puf/distiller.h"           // reference [18]
#include "puf/kary_configurable.h"   // baseline [15]
#include "puf/maiti_schaumont.h"     // baseline [14]
#include "puf/majority.h"            // temporal voting
#include "puf/measurement.h"         // dataset-mode snapshots
#include "puf/schemes.h"             // traditional / 1-of-8 / threshold / configurable
#include "puf/selection.h"           // Section III.D
#include "puf/serialization.h"       // enrollment records

#include "nist/basic_tests.h"
#include "nist/complexity_tests.h"
#include "nist/excursion_tests.h"
#include "nist/pattern_tests.h"
#include "nist/report.h"
#include "nist/spectral_tests.h"
#include "nist/suite.h"

#include "crypto/cyclic_code.h"      // ECC comparator
#include "crypto/fuzzy_extractor.h"  // code-offset construction [11]
#include "crypto/sha256.h"

#include "arbiter/arbiter_puf.h"     // strong-PUF contrast [1]/[13]
#include "sram/sram_puf.h"           // memory-family context [3]

#include "attack/logistic.h"         // modeling attacks
#include "attack/predictors.h"

#include "analysis/entropy.h"
#include "analysis/experiments.h"
#include "analysis/flip_model.h"
#include "analysis/hamming_stats.h"
#include "analysis/hardware_cost.h"
#include "analysis/metrics.h"
#include "analysis/reliability.h"

// Fleet key provisioning with randomness screening.
//
// Secret-key generation is the paper's other motivating application. A
// provisioning flow has to guarantee two properties the paper evaluates:
//   * randomness  — key bits must pass NIST SP 800-22 (Section IV.A), which
//                   requires distilling the systematic process variation;
//   * reliability — key bits must survive the field environment, which the
//                   margin threshold (Section IV.E) enforces.
//
// The demo provisions keys over a simulated board fleet twice — with and
// without the distiller — and prints the NIST verdict for both, then shows
// the margin-screened yield. A final act re-provisions one device under an
// injected 2% per-read hardware-fault campaign (docs/fault_model.md): the
// hardened readout masks the pairs it cannot stabilise and the BCH(15,7)
// fuzzy extractor still recovers the enrolled key.
#include <cstdio>
#include <exception>

#include "analysis/experiments.h"
#include "analysis/hamming_stats.h"
#include "crypto/cyclic_code.h"
#include "crypto/fuzzy_extractor.h"
#include "nist/report.h"
#include "nist/suite.h"
#include "puf/chip_puf.h"
#include "silicon/faults.h"
#include "silicon/fleet.h"

int main() {
  try {
    using namespace ropuf;

    // A modest fleet so the example runs in a second; the bench binaries run
    // the paper's full 194 boards.
    sil::VtFleetSpec fleet_spec;
    fleet_spec.nominal_boards = 64;
    fleet_spec.env_boards = 0;
    const sil::VtFleet fleet = sil::make_vt_fleet(fleet_spec);
    std::printf("provisioning %zu boards, 48-bit keys (n=5 stages, Case-2)\n\n",
                fleet.nominal.size());

    analysis::DatasetOptions opts;
    opts.mode = puf::SelectionCase::kIndependent;
    opts.stages = 5;

    const auto nist_verdict = [&](bool distill) {
      analysis::DatasetOptions o = opts;
      o.distill = distill;
      const auto responses = analysis::board_responses(fleet.nominal, o);
      const auto streams = analysis::combine_board_pairs(responses);
      nist::FinalAnalysisReport report;
      for (const auto& s : streams) {
        report.add_sequence(nist::run_suite(s, nist::paper_config()));
      }
      std::printf("--- NIST report, distiller %s ---\n%s\n", distill ? "ON" : "OFF",
                  report.render().c_str());
      return report.all_pass();
    };

    const bool raw_pass = nist_verdict(false);
    const bool distilled_pass = nist_verdict(true);
    std::printf("raw keys pass NIST:       %s (paper: fail)\n", raw_pass ? "yes" : "no");
    std::printf("distilled keys pass NIST: %s (paper: pass)\n\n",
                distilled_pass ? "yes" : "no");

    // Uniqueness check on the distilled keys.
    analysis::DatasetOptions distilled = opts;
    distilled.distill = true;
    const auto responses = analysis::board_responses(fleet.nominal, distilled);
    const auto stats = analysis::pairwise_hd(responses);
    std::printf("key uniqueness: mean inter-chip HD %.2f / 48 bits (sd %.2f), %zu duplicates\n",
                stats.mean, stats.stddev, stats.duplicates);

    // Act 3: provisioning must also survive faulty hardware. Re-provision
    // one full-circuit device with a 2% per-read fault campaign attached:
    // hardened enrollment dark-bit-masks the pairs it cannot stabilise,
    // and the code-offset fuzzy extractor absorbs what slips through.
    std::printf("\n--- fault-injected provisioning (2%% per-read fault rate) ---\n");
    const auto inhouse = sil::make_inhouse_fleet(sil::InHouseFleetSpec{});
    puf::DeviceSpec spec;
    spec.stages = 7;
    spec.pair_count = 30;  // 2 BCH(15,7) blocks
    spec.mode = puf::SelectionCase::kIndependent;
    spec.hardened = true;
    sil::FaultInjector injector(sil::FaultPlan::uniform(0.02), 0xfa017);
    Rng rng(0x6e9);
    puf::ConfigurableRoPufDevice device(&inhouse.front(), spec, rng);
    device.set_fault_injector(&injector);
    device.enroll(sil::nominal_op(), rng);

    const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
    const crypto::FuzzyExtractor extractor(&code);
    const auto enrollment = extractor.generate(device.enrolled_response(), rng);
    const BitVec field = device.respond(sil::nominal_op(), rng);
    const auto key = extractor.reproduce(field, enrollment.helper);
    const bool key_recovered = key.has_value() && *key == enrollment.key;

    const sil::FaultCounts& faults = injector.counts();
    std::printf("fault campaign: %llu reads, %llu dropped, %llu glitched, %llu stuck\n",
                static_cast<unsigned long long>(faults.reads),
                static_cast<unsigned long long>(faults.dropped),
                static_cast<unsigned long long>(faults.glitched),
                static_cast<unsigned long long>(faults.stuck));
    std::printf("degraded capacity: %zu of %zu pairs usable (%zu dark-bit-masked)\n",
                device.effective_bit_count(), device.bit_count(), device.masked_count());
    std::printf("key recovered through fuzzy extractor: %s\n", key_recovered ? "yes" : "NO");

    return (!raw_pass && distilled_pass && stats.duplicates == 0 && key_recovered) ? 0
                                                                                  : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Challenge-response authentication over the CRP oracle.
//
// Unlike examples/authentication.cpp (which compares one fixed response),
// this protocol never reuses a challenge: the verifier keeps the enrollment
// record, draws a fresh random challenge per session, and expects the
// device to answer with the bits of the challenged pair subset. Because the
// challenge only permutes *which fixed-configuration pairs* are read, the
// CRP surface leaks no model (see bench_modeling_attack).
#include <cstdio>
#include <exception>

#include "analysis/experiments.h"
#include "common/rng.h"
#include "puf/crp.h"
#include "silicon/fleet.h"

int main() {
  try {
    using namespace ropuf;

    // One provisioned board; the verifier stores its enrollment record.
    sil::VtFleetSpec fleet_spec;
    fleet_spec.nominal_boards = 2;  // device + an impostor of the same design
    fleet_spec.env_boards = 0;
    const sil::VtFleet fleet = sil::make_vt_fleet(fleet_spec);

    analysis::DatasetOptions opts;
    opts.mode = puf::SelectionCase::kIndependent;
    opts.stages = 7;
    opts.distill = true;
    Rng rng(2024);

    const auto enroll_values =
        analysis::board_unit_values(fleet.nominal[0], sil::nominal_op(), opts, rng);
    const puf::BoardLayout layout = puf::paper_layout(7);
    const auto enrollment = puf::configurable_enroll(enroll_values, layout, opts.mode);
    const puf::CrpOracle oracle(&enrollment, /*response_bits=*/16);
    std::printf("enrolled device: %zu pairs, 16-bit responses per challenge\n\n",
                enrollment.selections.size());

    // --- sessions: fresh challenge, fresh measurement, fresh corner -------
    std::printf("session  challenge         corner         HD  verdict\n");
    std::size_t accepted = 0;
    const int sessions = 8;
    for (int s = 0; s < sessions; ++s) {
      const std::uint64_t challenge = rng.next_u64();
      const sil::OperatingPoint op{rng.uniform(0.98, 1.44), rng.uniform(25.0, 65.0)};
      const auto values = analysis::board_unit_values(fleet.nominal[0], op, opts, rng);
      const BitVec answer = oracle.respond(challenge, values);
      const std::size_t hd = answer.hamming_distance(oracle.reference(challenge));
      const bool ok = hd <= 3;
      accepted += ok ? 1 : 0;
      std::printf("%7d  %016llx  %.2fV/%5.1fC  %2zu  %s\n", s,
                  static_cast<unsigned long long>(challenge), op.voltage_v,
                  op.temperature_c, hd, ok ? "ACCEPT" : "reject");
    }

    // --- an impostor device answering the same challenges ------------------
    std::printf("\nimpostor (same design, different silicon):\n");
    std::size_t rejected = 0;
    for (int s = 0; s < sessions; ++s) {
      const std::uint64_t challenge = rng.next_u64();
      const auto values =
          analysis::board_unit_values(fleet.nominal[1], sil::nominal_op(), opts, rng);
      // The impostor measures its own silicon against the victim's stored
      // configurations (the best physical attack without cloning).
      const BitVec answer = oracle.respond(challenge, values);
      const std::size_t hd = answer.hamming_distance(oracle.reference(challenge));
      if (hd > 3) ++rejected;
      std::printf("  challenge %016llx: HD %zu -> %s\n",
                  static_cast<unsigned long long>(challenge), hd,
                  hd > 3 ? "reject" : "ACCEPT (!)");
    }
    std::printf("\naccepted %zu/%d genuine sessions, rejected %zu/%d impostor sessions\n",
                accepted, sessions, rejected, sessions);
    return (accepted == static_cast<std::size_t>(sessions) &&
            rejected == static_cast<std::size_t>(sessions))
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

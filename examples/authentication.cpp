// Device authentication with the configurable RO PUF.
//
// The classic PUF deployment (paper Section I): at manufacturing time the
// verifier enrolls every device and stores its reference response; in the
// field, a device proves its identity by regenerating the response at
// whatever voltage/temperature it happens to run at. Authentication accepts
// when the Hamming distance to the reference is below a threshold that
// separates environmental noise (a few bits at worst) from the inter-chip
// distance (~50% of the bits).
//
// The demo enrolls a small fleet, authenticates every device at randomized
// corners, and then confirms that impostor chips are rejected.
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "puf/chip_puf.h"
#include "silicon/fabrication.h"

namespace {

struct EnrolledDevice {
  std::unique_ptr<ropuf::puf::ConfigurableRoPufDevice> device;
  ropuf::BitVec reference;
};

}  // namespace

int main() {
  try {
    using namespace ropuf;

    constexpr std::size_t kFleetSize = 8;
    constexpr std::size_t kAcceptThreshold = 8;  // bits of 32 (25%)

    sil::Fab fab(sil::ProcessParams{}, /*seed=*/77);
    std::vector<sil::Chip> chips;
    for (std::size_t i = 0; i < kFleetSize; ++i) chips.push_back(fab.fabricate(16, 32));

    puf::DeviceSpec spec;
    spec.stages = 7;
    spec.pair_count = 32;  // 32-bit identifiers
    // Distillation is what makes responses unique across chips: without it
    // the fleet-shared systematic variation correlates every chip's bits
    // (try flipping this to false — impostors start matching).
    spec.distill = true;

    // --- enrollment at the factory ------------------------------------------
    Rng rng(123);
    std::vector<EnrolledDevice> fleet;
    for (const sil::Chip& chip : chips) {
      EnrolledDevice e;
      e.device = std::make_unique<puf::ConfigurableRoPufDevice>(&chip, spec, rng);
      e.device->enroll(sil::nominal_op(), rng);
      e.reference = e.device->enrolled_response();
      fleet.push_back(std::move(e));
    }
    std::printf("enrolled %zu devices, 32-bit responses\n\n", fleet.size());

    // --- field authentication at random corners -----------------------------
    std::printf("genuine devices:\n");
    std::printf("device  corner          HD  verdict\n");
    std::size_t accepted = 0;
    for (std::size_t d = 0; d < fleet.size(); ++d) {
      const sil::OperatingPoint op{rng.uniform(0.98, 1.44), rng.uniform(25.0, 65.0)};
      const BitVec response = fleet[d].device->respond(op, rng);
      const std::size_t hd = response.hamming_distance(fleet[d].reference);
      const bool ok = hd <= kAcceptThreshold;
      accepted += ok ? 1 : 0;
      std::printf("%6zu  %.2fV/%5.1fC  %2zu  %s\n", d, op.voltage_v, op.temperature_c,
                  hd, ok ? "ACCEPT" : "reject");
    }
    std::printf("accepted %zu / %zu genuine attempts\n\n", accepted, fleet.size());

    // --- impostor chips claiming enrolled identities -------------------------
    std::printf("impostor chips (fresh silicon, same design):\n");
    std::printf("claims  HD  verdict\n");
    std::size_t rejected = 0;
    for (std::size_t trial = 0; trial < fleet.size(); ++trial) {
      const sil::Chip impostor_chip = fab.fabricate(16, 32);
      puf::ConfigurableRoPufDevice impostor(&impostor_chip, spec, rng);
      impostor.enroll(sil::nominal_op(), rng);
      const BitVec response = impostor.respond(sil::nominal_op(), rng);
      const std::size_t hd = response.hamming_distance(fleet[trial].reference);
      const bool ok = hd <= kAcceptThreshold;
      rejected += ok ? 0 : 1;
      std::printf("%6zu  %2zu  %s\n", trial, hd, ok ? "ACCEPT (!)" : "reject");
    }
    std::printf("rejected %zu / %zu impostor attempts\n", rejected, fleet.size());
    return (accepted == fleet.size() && rejected == fleet.size()) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

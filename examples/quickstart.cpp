// Quickstart: mint a chip, enroll a configurable RO PUF on it, and read the
// response back across voltage/temperature corners.
//
// This walks the whole public API surface in ~60 lines:
//   silicon: fabricate a chip with process variation
//   device:  enroll (measure -> select -> store configs) and respond
#include <cstdio>
#include <exception>

#include "common/rng.h"
#include "puf/chip_puf.h"
#include "silicon/fabrication.h"

int main() {
  try {
    using namespace ropuf;

    // Fabricate one chip: a 16x16 grid of configurable delay units.
    sil::Fab fab(sil::ProcessParams{}, /*seed=*/2014);
    const sil::Chip chip = fab.fabricate(16, 16);
    std::printf("fabricated chip: %zu delay units\n", chip.unit_count());

    // A 16-bit PUF: 16 RO pairs of 7 stages each (224 of 256 units).
    puf::DeviceSpec spec;
    spec.stages = 7;
    spec.pair_count = 16;
    spec.mode = puf::SelectionCase::kIndependent;  // the paper's Case-2
    Rng rng(1);
    puf::ConfigurableRoPufDevice device(&chip, spec, rng);

    // Chip-test phase: measure unit delays, solve the selection problem.
    device.enroll(sil::nominal_op(), rng);
    const BitVec reference = device.enrolled_response();
    std::printf("enrolled response: %s\n", reference.to_string().c_str());

    std::printf("\npair  top config  bottom config  margin(ps)\n");
    for (std::size_t p = 0; p < 4; ++p) {
      const puf::Selection& sel = device.selections()[p];
      std::printf("%4zu  %s  %s  %+9.2f\n", p, sel.top_config.to_string().c_str(),
                  sel.bottom_config.to_string().c_str(), sel.margin);
    }
    std::printf("(... %zu more pairs)\n", device.selections().size() - 4);

    // Field phase: regenerate the response at every VT corner.
    std::printf("\ncorner           response          flips\n");
    for (const double v : sil::vt_voltages()) {
      for (const double t : {25.0, 65.0}) {
        const sil::OperatingPoint op{v, t};
        const BitVec response = device.respond(op, rng);
        std::printf("%.2fV / %4.1fC   %s  %zu\n", v, t, response.to_string().c_str(),
                    response.hamming_distance(reference));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// End-to-end stable key generation: configurable RO PUF + fuzzy extractor.
//
// The belt-and-braces deployment: even though the configurable PUF's
// margin-maximized bits are already stable across the VT corner grid
// (Fig. 4), a key-grade deployment still wraps them in a code-offset fuzzy
// extractor so that a single surprise flip cannot change the derived key.
// The demo enrolls a device, derives a 256-bit key via SHA-256, and
// reproduces it at every corner of the VT grid.
#include <cstdio>
#include <exception>

#include "common/rng.h"
#include "crypto/fuzzy_extractor.h"
#include "puf/chip_puf.h"
#include "silicon/fabrication.h"

int main() {
  try {
    using namespace ropuf;

    sil::Fab fab(sil::ProcessParams{}, /*seed=*/555);
    const sil::Chip chip = fab.fabricate(16, 32);  // 512 units

    puf::DeviceSpec spec;
    spec.stages = 7;
    spec.pair_count = 30;  // 30 response bits -> 2 BCH(15,7) blocks
    spec.mode = puf::SelectionCase::kIndependent;
    spec.distill = true;
    Rng rng(99);
    puf::ConfigurableRoPufDevice device(&chip, spec, rng);
    device.enroll(sil::nominal_op(), rng);
    const BitVec reference = device.enrolled_response();

    const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
    const crypto::FuzzyExtractor extractor(&code);
    const crypto::FuzzyEnrollment enrollment = extractor.generate(reference, rng);
    std::printf("enrolled %zu-bit response -> %zu helper blocks of %zu bits\n",
                reference.size(), enrollment.helper.size(), code.n());
    std::printf("derived key: %s\n\n", crypto::to_hex(enrollment.key).c_str());

    std::printf("corner           response flips  key reproduced\n");
    int failures = 0;
    for (const double v : sil::vt_voltages()) {
      for (const double t : sil::vt_temperatures()) {
        const sil::OperatingPoint op{v, t};
        const BitVec response = device.respond(op, rng);
        const auto key = extractor.reproduce(response, enrollment.helper);
        const bool ok = key.has_value() && *key == enrollment.key;
        if (!ok) ++failures;
        std::printf("%.2fV / %4.1fC   %zu               %s\n", v, t,
                    response.hamming_distance(reference), ok ? "yes" : "NO");
      }
    }
    std::printf("\nkey failures across %zu corners: %d\n",
                sil::vt_voltages().size() * sil::vt_temperatures().size(), failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Dataset explorer: inspect the synthetic stand-in for the Virginia Tech
// RO PUF dataset.
//
// Prints the fleet-level statistics that motivate the paper's pipeline: the
// per-board delay spread, the spatial systematic trend (the reason raw PUF
// bits fail NIST), and how the environment shifts the whole population.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <vector>

#include "common/rng.h"
#include "puf/measurement.h"
#include "silicon/fleet.h"

namespace {

/// Tiny ASCII heat map of per-unit values over the die grid.
void print_heatmap(const ropuf::sil::Chip& chip, const std::vector<double>& values) {
  static const char kShades[] = " .:-=+*#%@";
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (std::size_t r = 0; r < chip.grid_rows(); r += 2) {  // halve rows for aspect
    for (std::size_t c = 0; c < chip.grid_cols(); ++c) {
      const double v = values[r * chip.grid_cols() + c];
      const int shade = static_cast<int>((v - lo) / (hi - lo + 1e-12) * 9.0);
      std::putchar(kShades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  try {
    using namespace ropuf;

    sil::VtFleetSpec spec;
    spec.nominal_boards = 16;
    spec.env_boards = 1;
    const sil::VtFleet fleet = sil::make_vt_fleet(spec);
    Rng rng(5);
    const puf::UnitMeasurementSpec meas;

    std::printf("synthetic VT-style fleet: %zu nominal + %zu env boards, %zu units each\n\n",
                fleet.nominal.size(), fleet.env.size(), fleet.nominal[0].unit_count());

    // Per-board spread at the nominal corner.
    std::printf("board  mean ddiff(ps)  sd(ps)  min     max\n");
    for (std::size_t b = 0; b < 6; ++b) {
      const auto v = puf::measure_unit_ddiffs(fleet.nominal[b], sil::nominal_op(), meas, rng);
      double sum = 0.0, sum2 = 0.0, lo = v[0], hi = v[0];
      for (const double x : v) {
        sum += x;
        sum2 += x * x;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      const double mean = sum / static_cast<double>(v.size());
      const double sd = std::sqrt(sum2 / static_cast<double>(v.size()) - mean * mean);
      std::printf("%5zu  %14.1f  %6.2f  %.1f  %.1f\n", b, mean, sd, lo, hi);
    }

    // The spatial systematic trend of board 0 (reason raw bits fail NIST).
    std::printf("\nspatial ddiff heat map, board 0 (16 cols x 32 rows, rows halved):\n");
    const auto values =
        puf::measure_unit_ddiffs(fleet.nominal[0], sil::nominal_op(), meas, rng);
    print_heatmap(fleet.nominal[0], values);

    // Environment sweep of the env board's mean delay.
    std::printf("\nenvironment response of board e0 (mean unit ddiff, ps):\n");
    std::printf("        ");
    for (const double t : sil::vt_temperatures()) std::printf("%7.0fC", t);
    std::printf("\n");
    for (const double volt : sil::vt_voltages()) {
      std::printf("%.2fV  ", volt);
      for (const double t : sil::vt_temperatures()) {
        const auto v = puf::measure_unit_ddiffs(fleet.env[0], {volt, t}, meas, rng);
        double sum = 0.0;
        for (const double x : v) sum += x;
        std::printf("%8.1f", sum / static_cast<double>(v.size()));
      }
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

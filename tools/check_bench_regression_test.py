#!/usr/bin/env python3
"""CLI tests for tools/check_bench_regression (wired into ctest).

Each case builds a synthetic baseline/candidate pair of google-benchmark
JSON captures in a temp dir and runs the gate as a subprocess, asserting
on exit status and diagnostics — the same contract CI relies on. Uses
stdlib unittest so the suite needs nothing beyond the python3 that ships
with the toolchain image.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression")


def bench_doc(rates, build_type="release", num_cpus=8):
    """A minimal google-benchmark JSON document: name -> items_per_second."""
    return {
        "context": {"library_build_type": build_type, "num_cpus": num_cpus},
        "benchmarks": [
            {"name": name, "items_per_second": ips}
            for name, ips in sorted(rates.items())
        ],
    }


class GateCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = self._tmp.name
        self.baseline_dir = os.path.join(root, "baselines")
        self.candidate_dir = os.path.join(root, "candidate")
        os.mkdir(self.baseline_dir)
        os.mkdir(self.candidate_dir)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, dirname, filename, doc):
        with open(os.path.join(dirname, filename), "w") as f:
            json.dump(doc, f)

    def run_gate(self, *extra_args):
        return subprocess.run(
            [sys.executable, GATE, self.candidate_dir, self.baseline_dir,
             *extra_args],
            capture_output=True,
            text=True,
        )

    def test_clean_run_passes(self):
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify/threads:2": 1000.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify/threads:2": 990.0}))
        result = self.run_gate()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("PASS", result.stdout)

    def test_within_tolerance_passes(self):
        # 30% down is inside the default 35% tolerance.
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 700.0}))
        result = self.run_gate()
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_regression_beyond_tolerance_fails(self):
        # 40% down breaches the default 35% floor.
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 600.0}))
        result = self.run_gate()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSED", result.stdout)
        self.assertIn("regressed", result.stderr)

    def test_tolerance_flag_is_honoured(self):
        # The same 10% dip passes by default but fails at --tolerance 0.05.
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 900.0}))
        self.assertEqual(self.run_gate().returncode, 0)
        self.assertEqual(self.run_gate("--tolerance", "0.05").returncode, 1)

    def test_missing_benchmark_in_candidate_fails(self):
        # Dropping a benchmark is how regressions hide; the gate treats a
        # baseline name absent from the candidate as a failure.
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0, "bm_decode": 500.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        result = self.run_gate()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing from candidate run", result.stderr)

    def test_candidate_only_benchmarks_are_fine(self):
        # New benchmarks land before their baselines do.
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0, "bm_new_thing": 1.0}))
        self.assertEqual(self.run_gate().returncode, 0)

    def test_build_type_mismatch_fails_even_when_faster(self):
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}, build_type="release"))
        self.write(self.candidate_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 5000.0}, build_type="debug"))
        result = self.run_gate()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("build-type mismatch", result.stderr)

    def test_missing_candidate_file_fails(self):
        self.write(self.baseline_dir, "BENCH_bench_verify.json",
                   bench_doc({"bm_verify": 1000.0}))
        result = self.run_gate()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing from candidate dir", result.stderr)

    def test_empty_baseline_dir_is_a_setup_error(self):
        # No baselines means the gate checked nothing: exit 2, not a pass.
        result = self.run_gate()
        self.assertEqual(result.returncode, 2, result.stdout)
        self.assertIn("no BENCH_", result.stderr)

    def test_scaling_family_skips_on_narrow_hosts(self):
        # The shard-scaling floor only applies on >= 4-CPU hosts; a 1-CPU
        # candidate with terrible scaling must still pass.
        rates = {
            "bm_online_round_trips/shards:1/real_time": 1000.0,
            "bm_online_round_trips/shards:4/real_time": 1000.0,
        }
        self.write(self.baseline_dir, "BENCH_bench_auth_server.json",
                   bench_doc(rates))
        self.write(self.candidate_dir, "BENCH_bench_auth_server.json",
                   bench_doc(rates, num_cpus=1))
        result = self.run_gate()
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("SKIPPED", result.stdout)

    def test_scaling_floor_fails_flat_scaling_on_wide_hosts(self):
        rates = {
            "bm_online_round_trips/shards:1/real_time": 1000.0,
            "bm_online_round_trips/shards:4/real_time": 1100.0,
        }
        self.write(self.baseline_dir, "BENCH_bench_auth_server.json",
                   bench_doc(rates))
        self.write(self.candidate_dir, "BENCH_bench_auth_server.json",
                   bench_doc(rates, num_cpus=8))
        result = self.run_gate()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("4-shard throughput only", result.stderr)


if __name__ == "__main__":
    unittest.main()

# Byte-for-byte golden-file comparison of a pinned CLI command's stdout.
#
# The golden commands pin every source of variation: the seed, the workload
# size and --threads 2 (the metrics summary's parallel.* counters depend on
# whether regions run inline or pooled, which the thread budget decides; any
# budget >= 2 produces identical tables). After an *intended* output change,
# regenerate a golden with the exact command recorded at the top of the
# golden file, e.g.:
#
#   build/tools/ropuf_cli stats --seed 42 --threads 2 > tools/golden/stats.txt
#
# (the regeneration command is also documented in docs/observability.md).
#
# Usage:
#   cmake -DCLI=<binary> -DGOLDEN=<golden file> -DARGS="<cli args>"
#         -DWORKDIR=<scratch dir> -P golden_test.cmake
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
get_filename_component(name "${GOLDEN}" NAME_WE)
set(actual "${WORKDIR}/golden_${name}_actual.txt")

execute_process(COMMAND ${CLI} ${arg_list}
                OUTPUT_FILE ${actual}
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "golden command '${CLI} ${ARGS}' failed (rc=${rc}): ${err}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${actual} ${GOLDEN}
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ ${actual} actual_text)
  file(READ ${GOLDEN} golden_text)
  message(FATAL_ERROR "stdout of '${CLI} ${ARGS}' diverged from ${GOLDEN}.\n"
                      "If the change is intended, regenerate with:\n"
                      "  build/tools/ropuf_cli ${ARGS} > ${GOLDEN}\n"
                      "--- expected ---\n${golden_text}\n"
                      "--- actual ---\n${actual_text}")
endif()

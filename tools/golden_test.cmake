# Golden-file comparison of a pinned CLI command's stdout.
#
# The golden commands pin every source of variation: the seed, the workload
# size and --threads 2 (the metrics summary's parallel.* counters depend on
# whether regions run inline or pooled, which the thread budget decides; any
# budget >= 2 produces identical tables). After an *intended* output change,
# regenerate a golden with the exact command recorded at the top of the
# golden file, e.g.:
#
#   build/tools/ropuf_cli stats --seed 42 --threads 2 > tools/golden/stats.txt
#
# (the regeneration command is also documented in docs/observability.md).
#
# By default the comparison is byte-for-byte. Goldens whose output includes
# printf-formatted doubles (sums through libm / FP contraction can differ in
# the last ulp across platforms, which occasionally moves the last printed
# digit) pass FLOAT_TOL: decimal tokens then compare within that absolute
# tolerance and everything else stays byte-exact.
#
# Usage:
#   cmake -DCLI=<binary> -DGOLDEN=<golden file> -DARGS="<cli args>"
#         -DWORKDIR=<scratch dir> [-DFLOAT_TOL=<abs tolerance>]
#         -P golden_test.cmake
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
get_filename_component(name "${GOLDEN}" NAME_WE)
set(actual "${WORKDIR}/golden_${name}_actual.txt")

execute_process(COMMAND ${CLI} ${arg_list}
                OUTPUT_FILE ${actual}
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "golden command '${CLI} ${ARGS}' failed (rc=${rc}): ${err}")
endif()

# Parses a non-negative decimal literal into an integer scaled by 10^scale.
# Script-mode CMake has no floating-point arithmetic, so tolerance compares
# run in fixed point.
function(scaled_decimal text scale out)
  if(text MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac_part "${CMAKE_MATCH_2}")
  elseif(text MATCHES "^([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac_part "")
  else()
    message(FATAL_ERROR "'${text}' is not a decimal literal")
  endif()
  string(LENGTH "${frac_part}" frac_len)
  if(frac_len GREATER ${scale})
    message(FATAL_ERROR "'${text}' has more than ${scale} fraction digits")
  endif()
  math(EXPR pad "${scale} - ${frac_len}")
  string(REPEAT "0" ${pad} zeros)
  string(APPEND frac_part "${zeros}")
  # Strip leading zeros so math(EXPR) never sees an octal-looking literal.
  string(REGEX REPLACE "^0+" "" value "${int_part}${frac_part}")
  if(value STREQUAL "")
    set(value 0)
  endif()
  set(${out} ${value} PARENT_SCOPE)
endfunction()

function(compare_with_float_tol)
  file(STRINGS ${GOLDEN} golden_lines)
  file(STRINGS ${actual} actual_lines)
  list(LENGTH golden_lines golden_count)
  list(LENGTH actual_lines actual_count)
  if(NOT golden_count EQUAL actual_count)
    set(ok NO PARENT_SCOPE)
    return()
  endif()
  # Fixed-point scale: enough for FLOAT_TOL and the goldens' printf precision.
  set(scale 6)
  scaled_decimal("${FLOAT_TOL}" ${scale} tol)
  set(number "-?[0-9]+\\.[0-9]+")
  math(EXPR last "${golden_count} - 1")
  foreach(i RANGE 0 ${last})
    list(GET golden_lines ${i} golden_line)
    list(GET actual_lines ${i} actual_line)
    separate_arguments(golden_toks UNIX_COMMAND "${golden_line}")
    separate_arguments(actual_toks UNIX_COMMAND "${actual_line}")
    list(LENGTH golden_toks golden_tok_count)
    list(LENGTH actual_toks actual_tok_count)
    if(NOT golden_tok_count EQUAL actual_tok_count)
      set(ok NO PARENT_SCOPE)
      return()
    endif()
    if(golden_tok_count EQUAL 0)
      continue()
    endif()
    math(EXPR tok_last "${golden_tok_count} - 1")
    foreach(t RANGE 0 ${tok_last})
      list(GET golden_toks ${t} g)
      list(GET actual_toks ${t} a)
      # A decimal literal, optionally with a trailing unit glued on (e.g.
      # "29.49%"): units must match exactly, values within tolerance. Each
      # MATCHES rewrites CMAKE_MATCH_*, so capture right after each match
      # and keep one regex per if().
      if(g MATCHES "^(${number})([^0-9].*)?$")
        set(g_value "${CMAKE_MATCH_1}")
        set(g_unit "${CMAKE_MATCH_2}")
        if(NOT a MATCHES "^(${number})([^0-9].*)?$")
          set(ok NO PARENT_SCOPE)
          return()
        endif()
        set(a_value "${CMAKE_MATCH_1}")
        set(a_unit "${CMAKE_MATCH_2}")
        if(NOT g_unit STREQUAL a_unit)
          set(ok NO PARENT_SCOPE)
          return()
        endif()
        set(g_sign 1)
        set(a_sign 1)
        if(g_value MATCHES "^-(.*)$")
          set(g_sign -1)
          set(g_value "${CMAKE_MATCH_1}")
        endif()
        if(a_value MATCHES "^-(.*)$")
          set(a_sign -1)
          set(a_value "${CMAKE_MATCH_1}")
        endif()
        scaled_decimal("${g_value}" ${scale} g_scaled)
        scaled_decimal("${a_value}" ${scale} a_scaled)
        math(EXPR diff "${g_sign} * ${g_scaled} - ${a_sign} * ${a_scaled}")
        if(diff LESS 0)
          math(EXPR diff "-${diff}")
        endif()
        if(diff GREATER ${tol})
          set(ok NO PARENT_SCOPE)
          return()
        endif()
      elseif(NOT g STREQUAL a)
        set(ok NO PARENT_SCOPE)
        return()
      endif()
    endforeach()
  endforeach()
  set(ok YES PARENT_SCOPE)
endfunction()

if(FLOAT_TOL)
  compare_with_float_tol()
  if(ok)
    set(diff_rc 0)
  else()
    set(diff_rc 1)
  endif()
else()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${actual} ${GOLDEN}
                  RESULT_VARIABLE diff_rc)
endif()
if(NOT diff_rc EQUAL 0)
  file(READ ${actual} actual_text)
  file(READ ${GOLDEN} golden_text)
  message(FATAL_ERROR "stdout of '${CLI} ${ARGS}' diverged from ${GOLDEN}.\n"
                      "If the change is intended, regenerate with:\n"
                      "  build/tools/ropuf_cli ${ARGS} > ${GOLDEN}\n"
                      "--- expected ---\n${golden_text}\n"
                      "--- actual ---\n${actual_text}")
endif()

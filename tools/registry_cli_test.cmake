# End-to-end registry/service CLI test:
#  1. registry-build mints a fleet to a file; registry-stats on the file must
#     match registry-stats on the equivalent in-memory mint (same spec).
#  2. Text conversion: enroll writes v1 records, registry-build --enrollments
#     packs them, and registry-stats sees the right population.
#  3. auth-batch over the file-backed registry must print the same verdict
#     digest at thread budgets 1, 2 and 8 (the determinism contract).
set(reg ${CMAKE_CURRENT_BINARY_DIR}/cli_test_fleet.ropufreg)

execute_process(COMMAND ${CLI} registry-build --out ${reg} --devices 48 --seed 911
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "registry-build failed: ${out}${err}")
endif()
if(NOT out MATCHES "minted 48 devices")
  message(FATAL_ERROR "unexpected registry-build output: ${out}")
endif()

execute_process(COMMAND ${CLI} registry-stats --registry ${reg}
                RESULT_VARIABLE rc OUTPUT_VARIABLE stats_file ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "registry-stats --registry failed: ${err}")
endif()
execute_process(COMMAND ${CLI} registry-stats --devices 48 --seed 911
                RESULT_VARIABLE rc OUTPUT_VARIABLE stats_mem ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "registry-stats (in-memory mint) failed: ${err}")
endif()
if(NOT stats_file STREQUAL stats_mem)
  message(FATAL_ERROR "file-backed and in-memory registry-stats diverged:\n"
                      "--- file ---\n${stats_file}\n--- memory ---\n${stats_mem}")
endif()
if(NOT stats_file MATCHES "registry: 48 devices")
  message(FATAL_ERROR "unexpected registry-stats output: ${stats_file}")
endif()

# --- text-to-binary conversion -------------------------------------------
set(e1 ${CMAKE_CURRENT_BINARY_DIR}/cli_test_conv1.ropuf)
set(e2 ${CMAKE_CURRENT_BINARY_DIR}/cli_test_conv2.ropuf)
foreach(pair "5;${e1}" "6;${e2}")
  list(GET pair 0 seed)
  list(GET pair 1 path)
  execute_process(COMMAND ${CLI} enroll --seed ${seed} --stages 5 --pairs 8 --out ${path}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "enroll --seed ${seed} failed: ${out}${err}")
  endif()
endforeach()
set(conv ${CMAKE_CURRENT_BINARY_DIR}/cli_test_converted.ropufreg)
execute_process(COMMAND ${CLI} registry-build --out ${conv} --enrollments ${e1},${e2}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "registry-build --enrollments failed: ${out}${err}")
endif()
execute_process(COMMAND ${CLI} registry-stats --registry ${conv}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "registry: 2 devices")
  message(FATAL_ERROR "converted registry has the wrong population: ${out}${err}")
endif()

# --- auth-batch thread-budget determinism --------------------------------
set(reference "")
foreach(threads 1 2 8)
  execute_process(COMMAND ${CLI} auth-batch --registry ${reg} --requests 400
                          --threads ${threads}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "auth-batch --threads ${threads} failed: ${err}")
  endif()
  string(REGEX MATCH "verdict digest: 0x[0-9a-f]+" digest "${out}")
  if(digest STREQUAL "")
    message(FATAL_ERROR "auth-batch printed no verdict digest: ${out}")
  endif()
  if(reference STREQUAL "")
    set(reference "${out}")
  elseif(NOT out STREQUAL reference)
    message(FATAL_ERROR "auth-batch output diverged at --threads ${threads}:\n"
                        "--- threads 1 ---\n${reference}\n"
                        "--- threads ${threads} ---\n${out}")
  endif()
endforeach()

# End-to-end checks of the observability CLI surface:
#  * --metrics-out writes a structurally valid ropuf.metrics.v1 document
#    whose counters reflect the workload,
#  * --trace-out writes Chrome trace_event JSON (ph/ts/dur/pid/tid),
#  * unwritable or suspicious paths are rejected loudly before any work runs
#    (never silently ignored).
set(metrics ${WORKDIR}/obs_cli_metrics.json)
set(trace ${WORKDIR}/obs_cli_trace.json)

execute_process(COMMAND ${CLI} stats --seed 5 --threads 2
                        --metrics-out ${metrics} --trace-out ${trace}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stats with --metrics-out/--trace-out failed: ${err}")
endif()

file(READ ${metrics} metrics_text)
if(NOT metrics_text MATCHES "\"schema\": \"ropuf\\.metrics\\.v1\"")
  message(FATAL_ERROR "metrics JSON lacks the schema marker: ${metrics_text}")
endif()
foreach(section counters gauges histograms)
  if(NOT metrics_text MATCHES "\"${section}\"")
    message(FATAL_ERROR "metrics JSON lacks the ${section} section")
  endif()
endforeach()
# The workload enrolls exactly one device over 30 pairs; the snapshot's
# counters must report the experiment's totals exactly.
if(NOT metrics_text MATCHES "\"puf\\.enrollments\": 1")
  message(FATAL_ERROR "metrics JSON missing puf.enrollments = 1: ${metrics_text}")
endif()
if(NOT metrics_text MATCHES "\"puf\\.pairs_enrolled\": 30")
  message(FATAL_ERROR "metrics JSON missing puf.pairs_enrolled = 30: ${metrics_text}")
endif()

file(READ ${trace} trace_text)
foreach(field "\"traceEvents\"" "\"ph\": \"X\"" "\"ts\": " "\"dur\": " "\"pid\": 0" "\"tid\": ")
  if(NOT trace_text MATCHES "${field}")
    message(FATAL_ERROR "trace JSON lacks ${field}: ${trace_text}")
  endif()
endforeach()

# Negative path: an unwritable --metrics-out must fail the command up front.
execute_process(COMMAND ${CLI} stats --seed 5 --threads 2
                        --metrics-out /nonexistent-dir/metrics.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "stats accepted an unwritable --metrics-out path: ${out}")
endif()
if(NOT err MATCHES "cannot open .*nonexistent-dir")
  message(FATAL_ERROR "missing unwritable-path diagnostic: ${err}")
endif()

# Negative path: a value that looks like a swallowed option is rejected.
execute_process(COMMAND ${CLI} fleet-stats --boards 8 --metrics-out --trace-out
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "fleet-stats accepted '--metrics-out --trace-out': ${out}")
endif()
if(NOT err MATCHES "suspicious path '--trace-out' for --metrics-out")
  message(FATAL_ERROR "missing suspicious-path diagnostic: ${err}")
endif()

# Regression test for option parsing: numeric options with trailing junk
# must be rejected loudly, not silently truncated (e.g. "1.2abc" -> 1.2).
execute_process(COMMAND ${CLI} fleet-stats --boards 8abc
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "fleet-stats accepted '--boards 8abc': ${out}")
endif()
if(NOT err MATCHES "trailing junk in value '8abc' for --boards")
  message(FATAL_ERROR "missing trailing-junk diagnostic: ${err}")
endif()

execute_process(COMMAND ${CLI} enroll --seed 42 --pairs 1.2abc
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "enroll accepted '--pairs 1.2abc': ${out}")
endif()
if(NOT err MATCHES "trailing junk in value '1.2abc' for --pairs")
  message(FATAL_ERROR "missing trailing-junk diagnostic: ${err}")
endif()

execute_process(COMMAND ${CLI} nist --streams nope
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "nist accepted '--streams nope': ${out}")
endif()
if(NOT err MATCHES "non-numeric value 'nope' for --streams")
  message(FATAL_ERROR "missing non-numeric diagnostic: ${err}")
endif()

# --threads regression test: every thread count must produce bit-identical
# output, and malformed values must be rejected before any work runs.

# fleet-stats stdout must match exactly between --threads 1 and --threads 2.
execute_process(COMMAND ${CLI} fleet-stats --boards 8 --threads 1
                RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "fleet-stats --threads 1 failed: ${out1}")
endif()
execute_process(COMMAND ${CLI} fleet-stats --boards 8 --threads 2
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "fleet-stats --threads 2 failed: ${out2}")
endif()
if(NOT out1 STREQUAL out2)
  message(FATAL_ERROR "fleet-stats output differs between --threads 1 and 2:\n"
                      "--- threads 1 ---\n${out1}\n--- threads 2 ---\n${out2}")
endif()

# Enrollment records (with a fault campaign attached) must also be identical.
set(record1 ${CMAKE_CURRENT_BINARY_DIR}/cli_threads_t1.ropuf)
set(record2 ${CMAKE_CURRENT_BINARY_DIR}/cli_threads_t2.ropuf)
execute_process(COMMAND ${CLI} enroll --seed 42 --fault-rate 0.01 --threads 1 --out ${record1}
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${CLI} enroll --seed 42 --fault-rate 0.01 --threads 2 --out ${record2}
                RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "enroll --threads failed (rc ${rc1} / ${rc2})")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${record1} ${record2}
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "enrollment records differ between --threads 1 and 2")
endif()

# Strict parsing: non-positive and non-numeric values must fail.
foreach(bad 0 -3 2x 1.5 "")
  execute_process(COMMAND ${CLI} fleet-stats --boards 8 --threads ${bad}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "--threads '${bad}' was accepted; expected an error")
  endif()
  if(NOT "${out}${err}" MATCHES "threads")
    message(FATAL_ERROR "--threads '${bad}' error does not mention threads: ${out}${err}")
  endif()
endforeach()

# The ROPUF_THREADS environment variable follows the same rules.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ROPUF_THREADS=2
                ${CLI} fleet-stats --boards 8
                RESULT_VARIABLE rc OUTPUT_VARIABLE out_env)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ROPUF_THREADS=2 failed: ${out_env}")
endif()
if(NOT out_env STREQUAL out1)
  message(FATAL_ERROR "ROPUF_THREADS=2 output differs from --threads 1")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E env ROPUF_THREADS=banana
                ${CLI} fleet-stats --boards 8
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "ROPUF_THREADS=banana was accepted; expected an error")
endif()

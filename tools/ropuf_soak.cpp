// ropuf_soak — closed-loop attack soak harness (see docs/attack_soak.md).
//
// Drives the real serving stack (ropuf_serve's AuthServer, bound to an
// ephemeral loopback port in-process) with mixed traffic: legitimate
// pipelined provers re-measuring their minted silicon while the operating
// corner walks the F4/F5 voltage/temperature schedule, plus a live
// distance-oracle adversary (src/attack/harvest.h) training a logistic
// clone of one device from whatever the admission layer admits. Prints
// attacker accuracy vs. admitted queries and legitimate availability.
//
//   ropuf_soak [--devices N] [--stages N] [--pairs P] [--seed S] [--noise PS]
//              [--bits B] [--max-hd D] [--cache C] [--unknown-cache C]
//              [--rate-burst N --rate-interval T] [--crp-budget N]
//              [--reuse-budget N] [--challenge-sketch N] [--admission-devices N]
//              [--detector on|off] [--detector-window N] [--detector-threshold N]
//              [--detector-max-level N] [--detector-decay N] [--detector-devices N]
//              [--attacker-decoys N]
//              [--slots N] [--burst N] [--probes N] [--checkpoints N]
//              [--eval-challenges N] [--protocol 1|2] [--compare on|off]
//              [--require-defense on|off] [--require-detector on|off]
//              [--shards N] [--threads N]
//              [--metrics-out F.json] [--trace-out F.json]
//
// --compare on runs the identical soak twice — admission as configured,
// then admission disabled — and prints the accuracy gap the defense buys.
// --require-defense on (implies --compare on) exits nonzero unless the
// defended run measurably beats the undefended one while legitimate
// availability stays >= 99% and online/offline digests agree — the CI
// smoke contract.
// --require-detector on runs the soak three ways — detector + admission,
// static admission alone, undefended — and exits nonzero unless the
// detector strictly widens the clone-accuracy gap over static admission at
// >= 99% availability with digest parity, the attacked device escalated,
// and no legitimate prover did. --attacker-decoys N arms the evasive
// low-and-slow harvester for any of these modes.
#include <cstdio>

#include "cli_common.h"
#include "common/error.h"
#include "soak/soak.h"

namespace {

using namespace ropuf;
using namespace ropuf::cli;

soak::SoakOptions soak_options_from_args(const Args& args) {
  soak::SoakOptions options;
  options.fleet = fleet_spec_from_args(args);
  // A soak-sized fleet by default: big enough to rotate legit traffic,
  // small enough that a short mode runs in seconds.
  if (!args.has("devices")) options.fleet.devices = 24;
  options.service = auth_options_from_args(args);
  options.slots = static_cast<std::size_t>(count_arg(args, "slots", 32));
  options.burst_requests = static_cast<std::size_t>(count_arg(args, "burst", 8));
  options.attacker_probes_per_slot =
      static_cast<std::size_t>(count_arg(args, "probes", 8));
  options.attacker_decoys =
      static_cast<std::size_t>(count_arg(args, "attacker-decoys", 0));
  options.checkpoints = static_cast<std::size_t>(count_arg(args, "checkpoints", 8));
  options.eval_challenges =
      static_cast<std::size_t>(count_arg(args, "eval-challenges", 64));
  options.readout_noise_ps = args.number("noise", 0.5);
  options.seed = static_cast<std::uint64_t>(args.number("soak-seed", 0x50a4));
  options.protocol = static_cast<std::uint16_t>(count_arg(args, "protocol", 1));
  // Sharded serving must preserve the whole defense contract, so the soak
  // takes the same --shards knob as ropuf_serve. The driver's closed loop
  // (next event waits for the previous answer) keeps the global arrival
  // order deterministic whichever shard owns each connection, and admission
  // slices by device hash — so the report must not change with the shard
  // count. Round-robin dispatch keeps connection placement deterministic
  // too, independent of kernel reuseport hashing.
  options.server.shards = static_cast<std::size_t>(count_arg(args, "shards", 1));
  ROPUF_REQUIRE(options.server.shards > 0, "--shards must be positive");
  options.server.dispatch = net::DispatchMode::kRoundRobin;
  options.service.admission_shards = options.server.shards;
  return options;
}

void print_report(const char* label, const soak::SoakReport& report) {
  std::printf("%s:\n", label);
  std::printf("  legit requests     %zu (answered %zu, denied %zu, accepted %zu)\n",
              report.legit_requests, report.legit_answered, report.legit_denied,
              report.legit_accepted);
  std::printf("  availability       %.4f\n", report.availability);
  std::printf("  digest parity      %s (online 0x%016llx)\n",
              report.digest_parity ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(report.online_digest));
  std::printf("  attacker probes    %zu (admitted %zu, deferred %zu, abandoned %zu)\n",
              report.attacker_probes, report.attacker_admitted,
              report.attacker_deferred, report.attacker_abandoned);
  std::printf("  harvested          %zu bits over %zu challenges\n",
              report.bits_recovered, report.challenges_recovered);
  if (report.attacker_decoys > 0) {
    std::printf("  attacker decoys    %zu\n", report.attacker_decoys);
  }
  if (report.target_suspicion > 0 || report.max_legit_suspicion > 0) {
    std::printf("  suspicion          target level %u, worst legit level %u\n",
                report.target_suspicion, report.max_legit_suspicion);
  }
  if (report.replay_probes > 0) {
    std::printf("  replays rejected   %zu/%zu\n", report.replay_rejected,
                report.replay_probes);
  }
  for (const soak::SoakCheckpoint& checkpoint : report.checkpoints) {
    std::printf("  slot %-4zu admitted %-6zu bits %-5zu accuracy %.4f\n",
                checkpoint.slot, checkpoint.attacker_admitted,
                checkpoint.bits_recovered, checkpoint.clone_accuracy);
  }
  std::printf("  clone accuracy     %.4f\n", report.final_accuracy);
}

int run(const Args& args) {
  const bool require_defense = args.get("require-defense", "off") == "on";
  const bool require_detector = args.get("require-detector", "off") == "on";
  const bool compare = require_defense || args.get("compare", "off") == "on";

  const soak::SoakOptions defended = soak_options_from_args(args);
  std::printf("soak: %zu devices, %zu slots x (%zu probes + %zu legit), "
              "protocol v%u, admission %s, detector %s\n",
              defended.fleet.devices, defended.slots,
              defended.attacker_probes_per_slot, defended.burst_requests,
              defended.protocol,
              defended.service.admission.enabled() ? "on" : "off",
              defended.service.detector.enabled ? "on" : "off");

  if (require_detector) {
    // The detector contract is a three-way comparison: the detector must
    // widen the defended-vs-undefended clone-accuracy gap *beyond* what the
    // same static admission knobs buy alone, at equal (>= 99%) legitimate
    // availability — adaptive escalation has to pay for itself.
    ROPUF_REQUIRE(defended.protocol == net::kWireVersion,
                  "--require-detector is a v1 (CRP wire) contract; v2 has no "
                  "distance oracle to detect");
    ROPUF_REQUIRE(defended.service.admission.enabled(),
                  "--require-detector needs admission knobs configured");
    ROPUF_REQUIRE(defended.service.detector.enabled,
                  "--require-detector needs --detector on");

    const soak::SoakReport detected = soak::run_soak(defended);
    print_report("detector", detected);

    soak::SoakOptions static_only = defended;
    static_only.service.detector.enabled = false;
    const soak::SoakReport statics = soak::run_soak(static_only);
    print_report("static admission", statics);

    soak::SoakOptions undefended = defended;
    undefended.service.admission = service::AdmissionOptions{};
    undefended.service.detector.enabled = false;
    const soak::SoakReport baseline = soak::run_soak(undefended);
    print_report("undefended", baseline);

    const double gap_detector = baseline.final_accuracy - detected.final_accuracy;
    const double gap_static = baseline.final_accuracy - statics.final_accuracy;
    std::printf("defense gaps: detector %.4f vs static %.4f "
                "(undefended %.4f, static %.4f, detector %.4f)\n",
                gap_detector, gap_static, baseline.final_accuracy,
                statics.final_accuracy, detected.final_accuracy);

    ROPUF_REQUIRE(gap_detector > gap_static,
                  "the detector did not widen the clone-accuracy gap beyond "
                  "static admission alone");
    ROPUF_REQUIRE(detected.availability >= 0.99 && statics.availability >= 0.99,
                  "legitimate availability under attack fell below 99%");
    ROPUF_REQUIRE(detected.digest_parity && statics.digest_parity &&
                      baseline.digest_parity,
                  "online/offline verdict digest mismatch");
    ROPUF_REQUIRE(detected.target_suspicion > 0,
                  "the detector never escalated the attacking device");
    ROPUF_REQUIRE(detected.max_legit_suspicion == 0,
                  "a legitimate prover was escalated (false positive)");
    return 0;
  }

  const soak::SoakReport report = soak::run_soak(defended);

  if (defended.protocol == net::kWireVersionV2) {
    // v2's defense is cryptographic, not admission throttling, so there is
    // no defended/undefended pair to compare: the contract is that the
    // harvester never leaves the coin flip, every replayed proof dies, and
    // the legit fleet keeps authenticating.
    print_report("soak", report);
    if (require_defense) {
      ROPUF_REQUIRE(report.final_accuracy <= 0.52,
                    "v2 clone accuracy above chance + 0.02: the wire is "
                    "leaking an oracle");
      ROPUF_REQUIRE(report.replay_probes > 0 &&
                        report.replay_rejected == report.replay_probes,
                    "a replayed proof was not rejected");
      ROPUF_REQUIRE(report.availability >= 0.99,
                    "legitimate availability under attack fell below 99%");
      ROPUF_REQUIRE(report.digest_parity,
                    "online/offline verdict digest mismatch");
    }
    return 0;
  }

  print_report(compare ? "defended" : "soak", report);

  if (!compare) return 0;

  soak::SoakOptions undefended = defended;
  undefended.service.admission = service::AdmissionOptions{};
  const soak::SoakReport baseline = soak::run_soak(undefended);
  print_report("undefended", baseline);

  const double gap = baseline.final_accuracy - report.final_accuracy;
  std::printf("defense gap: %.4f (undefended %.4f -> defended %.4f)\n", gap,
              baseline.final_accuracy, report.final_accuracy);

  if (require_defense) {
    ROPUF_REQUIRE(defended.service.admission.enabled(),
                  "--require-defense needs admission knobs configured");
    ROPUF_REQUIRE(gap >= 0.15,
                  "defense gap below 0.15: admission is not measurably "
                  "slowing the modeling attack");
    ROPUF_REQUIRE(report.availability >= 0.99,
                  "legitimate availability under attack fell below 99%");
    ROPUF_REQUIRE(report.digest_parity && baseline.digest_parity,
                  "online/offline verdict digest mismatch");
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ropuf_soak [--devices N] [--stages N] [--pairs P] [--seed S]\n"
               "                  [--noise PS] [--bits B] [--max-hd D]\n"
               "                  [--rate-burst N --rate-interval T]\n"
               "                  [--crp-budget N] [--reuse-budget N]\n"
               "                  [--challenge-sketch N] [--admission-devices N]\n"
               "                  [--detector on|off] [--detector-window N]\n"
               "                  [--detector-threshold N] [--detector-max-level N]\n"
               "                  [--detector-decay N] [--detector-devices N]\n"
               "                  [--attacker-decoys N]\n"
               "                  [--slots N] [--burst N] [--probes N]\n"
               "                  [--checkpoints N] [--eval-challenges N]\n"
               "                  [--soak-seed S] [--protocol 1|2] [--compare on|off]\n"
               "                  [--require-defense on|off] [--require-detector on|off]\n"
               "                  [--shards N] [--threads N]\n"
               "                  [--metrics-out F.json] [--trace-out F.json]\n"
               "closed-loop attack soak against the real loopback server;\n"
               "see docs/attack_soak.md.\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv, 1);
    if (args.has("help")) return usage();
    apply_thread_budget(args);
    const ObsSession obs_session(args);
    const int rc = run(args);
    obs_session.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

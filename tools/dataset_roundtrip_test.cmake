# Export a synthetic dataset, then run the dataset-stats pipeline on it; the
# distilled 40-board snapshot must pass NIST.
set(csv ${CMAKE_CURRENT_BINARY_DIR}/cli_test_dataset.csv)
execute_process(COMMAND ${CLI} export-dataset --boards 40 --out ${csv}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "export-dataset failed: ${out}")
endif()
execute_process(COMMAND ${CLI} dataset-stats --dataset ${csv}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dataset-stats failed: ${out}")
endif()
if(NOT out MATCHES "NIST verdict: PASS")
  message(FATAL_ERROR "expected NIST PASS on distilled snapshot: ${out}")
endif()

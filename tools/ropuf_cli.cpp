// ropuf_cli — command-line front end for the library's main workflows.
//
// Chips are simulated, so a (seed, grid) pair fully identifies a chip; the
// enroll/respond pair below demonstrates the deployment split: enrollment
// writes a portable record, response evaluation needs only that record plus
// access to the (same) chip.
//
//   ropuf_cli fleet-stats --boards N [--seed S]
//   ropuf_cli enroll --seed S [--stages N] [--pairs P] [--mode case1|case2]
//                    [--out FILE]
//   ropuf_cli respond --seed S --enrollment FILE [--voltage V] [--temp T]
//   ropuf_cli nist --streams N --bits B [--bias P]
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/metrics.h"
#include "common/error.h"
#include "nist/report.h"
#include "nist/suite.h"
#include "puf/serialization.h"
#include "silicon/dataset_io.h"
#include "silicon/fleet.h"

namespace {

using namespace ropuf;

/// Minimal --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      ROPUF_REQUIRE(key.rfind("--", 0) == 0, "expected --option, got '" + key + "'");
      ROPUF_REQUIRE(i + 1 < argc, "missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::istringstream is(it->second);
    double value = 0.0;
    is >> value;
    ROPUF_REQUIRE(!is.fail(), "non-numeric value for --" + key);
    return value;
  }

 private:
  std::map<std::string, std::string> values_;
};

sil::Chip chip_for_seed(std::uint64_t seed) {
  sil::Fab fab(sil::ProcessParams{}, seed);
  return fab.fabricate(16, 32);  // 512 units, the paper's board size
}

int cmd_fleet_stats(const Args& args) {
  const std::size_t boards = static_cast<std::size_t>(args.number("boards", 20));
  sil::VtFleetSpec spec;
  spec.nominal_boards = boards;
  spec.env_boards = 0;
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 0x20140601));
  const sil::VtFleet fleet = sil::make_vt_fleet(spec);

  analysis::DatasetOptions opts;
  opts.distill = true;
  const auto responses = analysis::board_responses(fleet.nominal, opts);
  std::printf("boards: %zu   bits/board: %zu\n", boards, responses[0].size());
  std::printf("uniqueness: %.2f%% (ideal 50)\n", analysis::uniqueness_percent(responses));
  std::printf("uniformity: %.2f%% (ideal 50)\n", analysis::uniformity_percent(responses));
  return 0;
}

int cmd_enroll(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const std::size_t stages = static_cast<std::size_t>(args.number("stages", 7));
  const std::size_t pairs = static_cast<std::size_t>(args.number("pairs", 32));
  const std::string mode_name = args.get("mode", "case2");
  ROPUF_REQUIRE(mode_name == "case1" || mode_name == "case2", "mode must be case1|case2");
  const puf::SelectionCase mode = mode_name == "case1" ? puf::SelectionCase::kSameConfig
                                                       : puf::SelectionCase::kIndependent;

  const sil::Chip chip = chip_for_seed(seed);
  Rng rng(seed ^ 0xe40011);
  analysis::DatasetOptions opts;
  opts.distill = true;
  const auto values = analysis::board_unit_values(chip, sil::nominal_op(), opts, rng);
  const puf::BoardLayout layout{stages, pairs};
  const auto enrollment = puf::configurable_enroll(values, layout, mode);

  const std::string out = args.get("out", "enrollment.ropuf");
  std::ofstream file(out);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + out);
  file << puf::serialize_enrollment(enrollment);
  std::printf("enrolled chip seed=%llu: %zu bits -> %s\n",
              static_cast<unsigned long long>(seed), pairs, out.c_str());
  std::printf("response: %s\n", enrollment.response().to_string().c_str());
  return 0;
}

int cmd_respond(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const std::string path = args.get("enrollment", "enrollment.ropuf");
  std::ifstream file(path);
  ROPUF_REQUIRE(file.good(), "cannot open enrollment file " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto enrollment = puf::parse_enrollment(buffer.str());

  const sil::OperatingPoint op{args.number("voltage", 1.20), args.number("temp", 25.0)};
  const sil::Chip chip = chip_for_seed(seed);
  Rng rng(seed ^ 0x4e590);
  analysis::DatasetOptions opts;
  opts.distill = true;
  const auto values = analysis::board_unit_values(chip, op, opts, rng);
  const BitVec response = puf::configurable_respond(values, enrollment);
  std::printf("corner %.2fV / %.1fC\n", op.voltage_v, op.temperature_c);
  std::printf("response:  %s\n", response.to_string().c_str());
  std::printf("reference: %s\n", enrollment.response().to_string().c_str());
  std::printf("flips: %zu of %zu\n", response.hamming_distance(enrollment.response()),
              response.size());
  return 0;
}

int cmd_nist(const Args& args) {
  const std::size_t streams = static_cast<std::size_t>(args.number("streams", 97));
  const std::size_t bits = static_cast<std::size_t>(args.number("bits", 96));
  const double bias = args.number("bias", 0.5);
  ROPUF_REQUIRE(bias > 0.0 && bias < 1.0, "bias must be in (0, 1)");

  Rng rng(static_cast<std::uint64_t>(args.number("seed", 7)));
  nist::FinalAnalysisReport report;
  const nist::SuiteConfig config =
      bits <= 256 ? nist::paper_config() : nist::SuiteConfig{};
  for (std::size_t s = 0; s < streams; ++s) {
    BitVec stream(bits);
    for (std::size_t i = 0; i < bits; ++i) stream.set(i, rng.uniform() < bias);
    report.add_sequence(nist::run_suite(stream, config));
  }
  std::printf("%s\nverdict: %s\n", report.render().c_str(),
              report.all_pass() ? "PASS" : "FAIL");
  return report.all_pass() ? 0 : 2;
}

int cmd_export_dataset(const Args& args) {
  const std::size_t boards = static_cast<std::size_t>(args.number("boards", 20));
  sil::VtFleetSpec spec;
  spec.nominal_boards = boards;
  spec.env_boards = 0;
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 0x20140601));
  const sil::VtFleet fleet = sil::make_vt_fleet(spec);
  Rng rng(spec.seed ^ 0xdada);
  const sil::MeasurementTable table =
      sil::snapshot_fleet(fleet.nominal, sil::nominal_op(), args.number("noise", 0.5), rng);

  const std::string out = args.get("out", "dataset.csv");
  std::ofstream file(out);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + out);
  file << sil::to_csv(table);
  std::printf("exported %zu boards x %zu units -> %s\n", boards,
              table.units_per_board(), out.c_str());
  return 0;
}

int cmd_dataset_stats(const Args& args) {
  // Works on any table in the CSV format — including the real VT dataset
  // converted to it — so the paper's IV.A pipeline can run on real data.
  const std::string path = args.get("dataset", "dataset.csv");
  std::ifstream file(path);
  ROPUF_REQUIRE(file.good(), "cannot open dataset file " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const sil::MeasurementTable table = sil::from_csv(buffer.str());

  analysis::DatasetOptions opts;
  opts.distill = args.get("distill", "on") != "off";
  opts.stages = static_cast<std::size_t>(args.number("stages", 5));
  const auto responses = analysis::table_responses(table, opts);
  std::printf("boards: %zu   bits/board: %zu   distiller: %s\n", responses.size(),
              responses[0].size(), opts.distill ? "on" : "off");
  if (responses.size() >= 2) {
    std::printf("uniqueness: %.2f%%   uniformity: %.2f%%\n",
                analysis::uniqueness_percent(responses),
                analysis::uniformity_percent(responses));
  }
  nist::FinalAnalysisReport report;
  for (const auto& stream : analysis::combine_board_pairs(responses)) {
    report.add_sequence(nist::run_suite(stream, nist::paper_config()));
  }
  std::printf("%sNIST verdict: %s\n", report.render().c_str(),
              report.all_pass() ? "PASS" : "FAIL");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ropuf_cli <command> [--option value ...]\n"
               "commands:\n"
               "  fleet-stats --boards N [--seed S]\n"
               "  enroll  --seed S [--stages N] [--pairs P] [--mode case1|case2] [--out F]\n"
               "  respond --seed S --enrollment F [--voltage V] [--temp T]\n"
               "  nist    [--streams N] [--bits B] [--bias P] [--seed S]\n"
               "  export-dataset [--boards N] [--seed S] [--noise PS] [--out F]\n"
               "  dataset-stats --dataset F [--stages N] [--distill on|off]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "fleet-stats") return cmd_fleet_stats(args);
    if (command == "enroll") return cmd_enroll(args);
    if (command == "respond") return cmd_respond(args);
    if (command == "nist") return cmd_nist(args);
    if (command == "export-dataset") return cmd_export_dataset(args);
    if (command == "dataset-stats") return cmd_dataset_stats(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// ropuf_cli — command-line front end for the library's main workflows.
//
// Chips are simulated, so a (seed, grid) pair fully identifies a chip; the
// enroll/respond pair below demonstrates the deployment split: enrollment
// writes a portable record, response evaluation needs only that record plus
// access to the (same) chip.
//
//   ropuf_cli fleet-stats --boards N [--seed S]
//   ropuf_cli enroll --seed S [--stages N] [--pairs P] [--mode case1|case2]
//                    [--out FILE]
//   ropuf_cli respond --seed S --enrollment FILE [--voltage V] [--temp T]
//   ropuf_cli nist --streams N --bits B [--bias P]
//
// The registry/service commands (registry-build, registry-stats, auth-batch)
// operate on the binary enrollment registry of src/registry/ and the batched
// CRP authentication engine of src/service/; see docs/registry.md.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiments.h"
#include "auth/auth.h"
#include "cli_common.h"
#include "net/client.h"
#include "analysis/metrics.h"
#include "common/error.h"
#include "common/parallel.h"
#include "crypto/cyclic_code.h"
#include "crypto/fuzzy_extractor.h"
#include "nist/report.h"
#include "nist/suite.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "puf/chip_puf.h"
#include "puf/serialization.h"
#include "registry/epoch.h"
#include "registry/registry.h"
#include "service/auth_service.h"
#include "silicon/dataset_io.h"
#include "silicon/faults.h"
#include "silicon/fleet.h"

namespace {

using namespace ropuf;
using namespace ropuf::cli;

sil::Chip chip_for_seed(std::uint64_t seed) {
  sil::Fab fab(sil::ProcessParams{}, seed);
  return fab.fabricate(16, 32);  // 512 units, the paper's board size
}

/// Shared --fault-rate / --fault-seed handling: an engaged injector when a
/// positive rate was requested. The caller keeps the returned optional
/// alive and wires its address into the readout options.
std::optional<sil::FaultInjector> fault_injector_from_args(const Args& args) {
  const double rate = args.number("fault-rate", 0.0);
  if (rate <= 0.0) return std::nullopt;
  const auto seed = static_cast<std::uint64_t>(args.number("fault-seed", 0xfa017));
  return sil::FaultInjector(sil::FaultPlan::uniform(rate), seed);
}

void print_fault_report(const sil::FaultInjector& injector) {
  const sil::FaultCounts& c = injector.counts();
  std::printf("fault report: %llu reads (%llu dropped, %llu glitched, %llu stuck, "
              "%llu browned-out)\n",
              static_cast<unsigned long long>(c.reads),
              static_cast<unsigned long long>(c.dropped),
              static_cast<unsigned long long>(c.glitched),
              static_cast<unsigned long long>(c.stuck),
              static_cast<unsigned long long>(c.browned_out));
}

int cmd_fleet_stats(const Args& args) {
  const std::size_t boards = static_cast<std::size_t>(args.number("boards", 20));
  sil::VtFleetSpec spec;
  spec.nominal_boards = boards;
  spec.env_boards = 0;
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 0x20140601));
  const sil::VtFleet fleet = sil::make_vt_fleet(spec);

  analysis::DatasetOptions opts;
  opts.distill = true;
  const auto responses = analysis::board_responses(fleet.nominal, opts);
  std::printf("boards: %zu   bits/board: %zu\n", boards, responses[0].size());
  std::printf("uniqueness: %.2f%% (ideal 50)\n", analysis::uniqueness_percent(responses));
  std::printf("uniformity: %.2f%% (ideal 50)\n", analysis::uniformity_percent(responses));
  return 0;
}

int cmd_enroll(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const std::size_t stages = static_cast<std::size_t>(args.number("stages", 7));
  const std::size_t pairs = static_cast<std::size_t>(args.number("pairs", 32));
  const std::string mode_name = args.get("mode", "case2");
  ROPUF_REQUIRE(mode_name == "case1" || mode_name == "case2", "mode must be case1|case2");
  const puf::SelectionCase mode = mode_name == "case1" ? puf::SelectionCase::kSameConfig
                                                       : puf::SelectionCase::kIndependent;

  const sil::Chip chip = chip_for_seed(seed);
  Rng rng(seed ^ 0xe40011);
  analysis::DatasetOptions opts;
  opts.distill = true;
  auto injector = fault_injector_from_args(args);
  if (injector.has_value()) {
    opts.injector = &*injector;
    opts.hardened = true;
  }
  const auto values = analysis::board_unit_values(chip, sil::nominal_op(), opts, rng);
  const puf::BoardLayout layout{stages, pairs};
  const auto enrollment = puf::configurable_enroll(values, layout, mode);

  const std::string out = args.get("out", "enrollment.ropuf");
  std::ofstream file(out);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + out);
  file << puf::serialize_enrollment(enrollment);
  std::printf("enrolled chip seed=%llu: %zu bits -> %s\n",
              static_cast<unsigned long long>(seed), pairs, out.c_str());
  std::printf("response: %s\n", enrollment.response().to_string().c_str());
  if (injector.has_value()) print_fault_report(*injector);
  return 0;
}

int cmd_respond(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const std::string path = args.get("enrollment", "enrollment.ropuf");
  std::ifstream file(path);
  ROPUF_REQUIRE(file.good(), "cannot open enrollment file " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto enrollment = puf::parse_enrollment(buffer.str());

  const sil::OperatingPoint op{args.number("voltage", 1.20), args.number("temp", 25.0)};
  const sil::Chip chip = chip_for_seed(seed);
  Rng rng(seed ^ 0x4e590);
  analysis::DatasetOptions opts;
  opts.distill = true;
  auto injector = fault_injector_from_args(args);
  if (injector.has_value()) {
    opts.injector = &*injector;
    opts.hardened = true;
  }
  const auto values = analysis::board_unit_values(chip, op, opts, rng);
  const BitVec response = puf::configurable_respond(values, enrollment);
  std::printf("corner %.2fV / %.1fC\n", op.voltage_v, op.temperature_c);
  std::printf("response:  %s\n", response.to_string().c_str());
  std::printf("reference: %s\n", enrollment.response().to_string().c_str());
  std::printf("flips: %zu of %zu\n", response.hamming_distance(enrollment.response()),
              response.size());
  if (injector.has_value()) print_fault_report(*injector);
  return 0;
}

int cmd_fault_sweep(const Args& args) {
  // End-to-end key-recovery sweep over the full-circuit device: enroll at
  // nominal under an injected fault campaign, derive a key through the
  // code-offset fuzzy extractor, re-measure under the same campaign, and
  // check the key reproduces — hardened pipeline vs. the naive one.
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const std::uint64_t fault_seed =
      static_cast<std::uint64_t>(args.number("fault-seed", 0xfa017));
  const int trials = static_cast<int>(args.number("trials", 5));
  ROPUF_REQUIRE(trials >= 1, "trials must be >= 1");
  const double max_rate = args.number("max-rate", 0.02);
  ROPUF_REQUIRE(max_rate >= 0.0 && max_rate < 1.0, "max-rate must be in [0, 1)");

  const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
  const crypto::FuzzyExtractor extractor(&code);

  const std::vector<double> rates = {0.0, 0.25 * max_rate, 0.5 * max_rate, max_rate};
  std::printf("%-12s %-14s %-14s %-12s\n", "fault rate", "naive keys", "hardened keys",
              "masked/30");
  for (const double rate : rates) {
    // Trials are fully independent (per-trial chip, injector and RNG seeds),
    // so they run across the thread budget; per-trial outcomes land in
    // index-addressed slots and are reduced in trial order.
    struct TrialOutcome {
      bool naive_ok = false;
      bool hardened_ok = false;
      double masked = 0.0;
    };
    const auto outcomes = parallel_transform<TrialOutcome>(
        static_cast<std::size_t>(trials), ThreadBudget(), [&](std::size_t t) {
          const auto trial = static_cast<std::uint64_t>(t);
          const sil::Chip chip = chip_for_seed(seed + trial);
          TrialOutcome outcome;
          for (const bool hardened : {false, true}) {
            puf::DeviceSpec spec;
            spec.stages = 7;
            spec.pair_count = 30;  // 2 BCH(15,7) blocks
            spec.mode = puf::SelectionCase::kIndependent;
            spec.hardened = hardened;
            sil::FaultInjector injector(sil::FaultPlan::uniform(rate),
                                        fault_seed + trial);
            Rng rng(seed ^ (0x6e75ull + trial));
            bool ok = false;
            try {
              puf::ConfigurableRoPufDevice device(&chip, spec, rng);
              device.set_fault_injector(&injector);
              device.enroll(sil::nominal_op(), rng);
              const auto enrollment = extractor.generate(device.enrolled_response(), rng);
              const BitVec response = device.respond(sil::nominal_op(), rng);
              const auto key = extractor.reproduce(response, enrollment.helper);
              ok = key.has_value() && *key == enrollment.key;
              if (hardened) outcome.masked = static_cast<double>(device.masked_count());
            } catch (const ropuf::Error&) {
              ok = false;  // naive pipeline: an unhandled fault kills the trial
            }
            (hardened ? outcome.hardened_ok : outcome.naive_ok) = ok;
          }
          return outcome;
        });
    int naive_ok = 0, hardened_ok = 0;
    double masked_total = 0.0;
    for (const TrialOutcome& outcome : outcomes) {
      naive_ok += outcome.naive_ok ? 1 : 0;
      hardened_ok += outcome.hardened_ok ? 1 : 0;
      masked_total += outcome.masked;
    }
    std::printf("%-12.4f %3d/%-10d %3d/%-10d %-12.1f\n", rate, naive_ok, trials,
                hardened_ok, trials, masked_total / trials);
  }
  return 0;
}

int cmd_nist(const Args& args) {
  const std::size_t streams = static_cast<std::size_t>(args.number("streams", 97));
  const std::size_t bits = static_cast<std::size_t>(args.number("bits", 96));
  const double bias = args.number("bias", 0.5);
  ROPUF_REQUIRE(bias > 0.0 && bias < 1.0, "bias must be in (0, 1)");

  Rng rng(static_cast<std::uint64_t>(args.number("seed", 7)));
  nist::FinalAnalysisReport report;
  const nist::SuiteConfig config =
      bits <= 256 ? nist::paper_config() : nist::SuiteConfig{};
  for (std::size_t s = 0; s < streams; ++s) {
    BitVec stream(bits);
    for (std::size_t i = 0; i < bits; ++i) stream.set(i, rng.uniform() < bias);
    report.add_sequence(nist::run_suite(stream, config));
  }
  std::printf("%s\nverdict: %s\n", report.render().c_str(),
              report.all_pass() ? "PASS" : "FAIL");
  return report.all_pass() ? 0 : 2;
}

int cmd_stats(const Args& args) {
  // Deterministic observability demo: run a pinned mini-workload that
  // exercises every instrumented layer (fab minting, hardened readout under
  // faults, dark-bit masking, the parallel pool, the pairwise-HD kernel and
  // the NIST battery), then print the registry's deterministic projection.
  // With a pinned --threads the table is byte-for-byte reproducible, which
  // the golden-file test relies on.
  obs::set_metrics_enabled(true);
  obs::Registry::instance().reset();
  const std::uint64_t seed = static_cast<std::uint64_t>(args.number("seed", 42));

  // 1) Full-circuit device: hardened enroll + respond under a mild fault
  //    campaign (exercises robust_measure, dark-bit masking, the counter).
  const sil::Chip chip = chip_for_seed(seed);
  puf::DeviceSpec spec;
  spec.stages = 7;
  spec.pair_count = 30;
  spec.mode = puf::SelectionCase::kIndependent;
  spec.hardened = true;
  sil::FaultInjector injector(sil::FaultPlan::uniform(0.01), seed ^ 0xfa017);
  Rng rng(seed ^ 0x57a75);
  puf::ConfigurableRoPufDevice device(&chip, spec, rng);
  device.set_fault_injector(&injector);
  device.enroll(sil::nominal_op(), rng);
  const BitVec response = device.respond(sil::nominal_op(), rng);
  const std::size_t flips = response.hamming_distance(device.enrolled_response());

  // 2) Mini-fleet uniqueness (exercises the row-blocked HD kernel and the
  //    parallel pool across boards).
  sil::VtFleetSpec fleet_spec;
  fleet_spec.nominal_boards = 6;
  fleet_spec.env_boards = 0;
  fleet_spec.seed = seed;
  const sil::VtFleet fleet = sil::make_vt_fleet(fleet_spec);
  analysis::DatasetOptions opts;
  opts.distill = true;
  const auto responses = analysis::board_responses(fleet.nominal, opts);
  const double uniqueness = analysis::uniqueness_percent(responses);

  // 3) A short NIST battery (per-test timing histograms).
  Rng nist_rng(seed ^ 0x715);
  nist::FinalAnalysisReport report;
  for (std::size_t s = 0; s < 4; ++s) {
    BitVec stream(96);
    for (std::size_t i = 0; i < 96; ++i) stream.set(i, nist_rng.uniform() < 0.5);
    report.add_sequence(nist::run_suite(stream, nist::paper_config()));
  }

  std::printf("stats workload: seed=%llu  flips=%zu/%zu  masked=%zu  "
              "uniqueness=%.2f%%\n\n",
              static_cast<unsigned long long>(seed), flips, response.size(),
              device.masked_count(), uniqueness);
  std::printf("%s", obs::metrics_summary_table(obs::Registry::instance().snapshot()).c_str());
  return 0;
}

int cmd_export_dataset(const Args& args) {
  const std::size_t boards = static_cast<std::size_t>(args.number("boards", 20));
  sil::VtFleetSpec spec;
  spec.nominal_boards = boards;
  spec.env_boards = 0;
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 0x20140601));
  const sil::VtFleet fleet = sil::make_vt_fleet(spec);
  Rng rng(spec.seed ^ 0xdada);
  const sil::MeasurementTable table =
      sil::snapshot_fleet(fleet.nominal, sil::nominal_op(), args.number("noise", 0.5), rng);

  const std::string out = args.get("out", "dataset.csv");
  std::ofstream file(out);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + out);
  file << sil::to_csv(table);
  std::printf("exported %zu boards x %zu units -> %s\n", boards,
              table.units_per_board(), out.c_str());
  return 0;
}

int cmd_dataset_stats(const Args& args) {
  // Works on any table in the CSV format — including the real VT dataset
  // converted to it — so the paper's IV.A pipeline can run on real data.
  const std::string path = args.get("dataset", "dataset.csv");
  std::ifstream file(path);
  ROPUF_REQUIRE(file.good(), "cannot open dataset file " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const sil::MeasurementTable table = sil::from_csv(buffer.str());

  analysis::DatasetOptions opts;
  opts.distill = args.get("distill", "on") != "off";
  opts.stages = static_cast<std::size_t>(args.number("stages", 5));
  const auto responses = analysis::table_responses(table, opts);
  std::printf("boards: %zu   bits/board: %zu   distiller: %s\n", responses.size(),
              responses[0].size(), opts.distill ? "on" : "off");
  if (responses.size() >= 2) {
    std::printf("uniqueness: %.2f%%   uniformity: %.2f%%\n",
                analysis::uniqueness_percent(responses),
                analysis::uniformity_percent(responses));
  }
  nist::FinalAnalysisReport report;
  for (const auto& stream : analysis::combine_board_pairs(responses)) {
    report.add_sequence(nist::run_suite(stream, nist::paper_config()));
  }
  std::printf("%sNIST verdict: %s\n", report.render().c_str(),
              report.all_pass() ? "PASS" : "FAIL");
  return 0;
}

int cmd_registry_build(const Args& args) {
  const std::string out = args.get("out", "fleet.ropufreg");
  if (args.has("enrollments")) {
    // Conversion path: pack existing v1 text enrollments into one registry.
    registry::RegistryBuilder builder;
    std::uint64_t id = static_cast<std::uint64_t>(args.number("base-id", 1));
    std::stringstream list(args.get("enrollments", ""));
    std::string path;
    while (std::getline(list, path, ',')) {
      ROPUF_REQUIRE(!path.empty(), "empty path in --enrollments list");
      std::ifstream file(path);
      ROPUF_REQUIRE(file.good(), "cannot open enrollment file " + path);
      std::stringstream buffer;
      buffer << file.rdbuf();
      builder.add(id++, puf::parse_enrollment(buffer.str()));
    }
    ROPUF_REQUIRE(builder.device_count() > 0, "--enrollments named no files");
    builder.write_file(out);
    std::printf("converted %zu v1 enrollments -> %s\n", builder.device_count(),
                out.c_str());
    return 0;
  }
  // Minting path: fabricate and enroll a synthetic fleet on the pool.
  const registry::FleetSpec spec = fleet_spec_from_args(args);
  const std::string bytes = registry::build_fleet_registry(spec);
  std::ofstream file(out, std::ios::binary);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + out);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ROPUF_REQUIRE(file.good(), "failed writing " + out);
  std::printf("minted %zu devices -> %s (%zu bytes)\n", spec.devices, out.c_str(),
              bytes.size());
  return 0;
}

/// Writes registry/delta bytes with the strict error handling the other
/// file-producing commands use.
void write_binary_file(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary);
  ROPUF_REQUIRE(file.good(), "cannot open output file " + path);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ROPUF_REQUIRE(file.good(), "failed writing " + path);
}

/// Strict u64 parse for the comma-separated --retire list.
std::uint64_t parse_device_id(const std::string& token) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception&) {
    ROPUF_REQUIRE(false, "non-numeric device id '" + token + "' in --retire");
  }
  ROPUF_REQUIRE(consumed == token.size(),
                "trailing junk in device id '" + token + "' in --retire");
  return static_cast<std::uint64_t>(value);
}

int cmd_registry_append(const Args& args) {
  ROPUF_REQUIRE(args.has("registry"), "--registry is required");
  const std::string base_path = args.get("registry", "");
  // Validate the whole current generation before appending to it: a corrupt
  // base or delta should fail here, not at the server's next reload.
  registry::EpochFileSet files = registry::load_epoch_files(base_path);

  registry::DeltaBuilder builder;
  if (args.has("devices")) {
    // Minted with the same knobs as registry-build, the records are
    // bit-identical to the base generation's — the "refresh" idiom: a
    // re-enrolled fleet slice whose verdicts cannot drift. A different
    // --seed mints genuinely new devices.
    for (registry::DeviceRecord& record : registry::mint_fleet(fleet_spec_from_args(args))) {
      builder.upsert(record.device_id, std::move(record.enrollment));
    }
  }
  if (args.has("retire")) {
    std::stringstream list(args.get("retire", ""));
    std::string token;
    while (std::getline(list, token, ',')) {
      ROPUF_REQUIRE(!token.empty(), "empty id in --retire list");
      builder.retire(parse_device_id(token));
    }
  }
  ROPUF_REQUIRE(builder.entry_count() > 0,
                "nothing to append: give --devices and/or --retire");

  std::string out = args.get("out", "");
  if (out.empty()) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".delta-%04zu", files.deltas.size() + 1);
    out = base_path + suffix;
  }
  builder.write_file(out);

  const registry::DeltaSegment delta = registry::DeltaSegment::load_file(out);
  files.deltas.push_back(delta);
  // The epoch count must be taken before the call: argument evaluation
  // order is unspecified, so reading files.deltas.size() in the same call
  // that moves the vector away could observe the moved-from state.
  const std::uint64_t epoch = 1 + files.deltas.size();
  const registry::RegistrySnapshot snapshot(epoch, std::move(files.base),
                                            std::move(files.deltas));
  std::printf("appended %zu upserts, %zu tombstones -> %s (%zu bytes)\n",
              delta.upsert_count(), delta.tombstone_count(), out.c_str(),
              delta.byte_size());
  std::printf("epoch %llu: %zu live devices\n",
              static_cast<unsigned long long>(snapshot.epoch()),
              snapshot.device_count());
  return 0;
}

int cmd_registry_compact(const Args& args) {
  ROPUF_REQUIRE(args.has("registry"), "--registry is required");
  const std::string base_path = args.get("registry", "");
  registry::EpochFileSet files = registry::load_epoch_files(base_path);
  const std::string out = args.get("out", base_path);
  const std::vector<std::string> merged_paths = std::move(files.delta_paths);

  const std::size_t delta_count = files.deltas.size();
  const registry::RegistrySnapshot snapshot(1 + delta_count, std::move(files.base),
                                            std::move(files.deltas));
  const std::string bytes = registry::compact_snapshot(snapshot);
  write_binary_file(out, bytes);
  // Compacting in place retires the merged deltas — they are now folded
  // into the base. (Re-reading them against the compacted base would be
  // harmless anyway: re-applying a merged delta is the identity.) With
  // --out elsewhere the original generation stays untouched.
  if (out == base_path) {
    for (const std::string& path : merged_paths) std::filesystem::remove(path);
  }
  std::printf("compacted %zu deltas into %zu devices -> %s (%zu bytes)\n",
              delta_count, snapshot.device_count(), out.c_str(), bytes.size());
  return 0;
}

int cmd_registry_epochs(const Args& args) {
  ROPUF_REQUIRE(args.has("registry"), "--registry is required");
  const std::string base_path = args.get("registry", "");
  registry::EpochFileSet files = registry::load_epoch_files(base_path);
  std::printf("base:    %s (%zu devices, %zu bytes)\n", base_path.c_str(),
              files.base.device_count(), files.base.byte_size());
  for (std::size_t i = 0; i < files.deltas.size(); ++i) {
    const registry::DeltaSegment& delta = files.deltas[i];
    std::printf("delta %zu: %s (%zu upserts, %zu tombstones, %zu bytes)\n", i + 1,
                files.delta_paths[i].c_str(), delta.upsert_count(),
                delta.tombstone_count(), delta.byte_size());
  }
  const std::uint64_t epoch = 1 + files.deltas.size();  // before the move below
  const registry::RegistrySnapshot snapshot(epoch, std::move(files.base),
                                            std::move(files.deltas));
  std::printf("epoch %llu: %zu live devices\n",
              static_cast<unsigned long long>(snapshot.epoch()),
              snapshot.device_count());
  return 0;
}

int cmd_registry_stats(const Args& args) {
  const registry::Registry reg = registry_from_args(args);
  const registry::RegistryStats stats = reg.stats();
  std::printf("registry: %zu devices, %zu bytes, format v%u\n", stats.devices,
              reg.byte_size(), registry::kFormatVersion);
  std::printf("stages: %zu..%zu   pairs: %zu..%zu   total pairs: %zu\n",
              stats.min_stages, stats.max_stages, stats.min_pairs, stats.max_pairs,
              stats.total_pairs);
  std::printf("modes: case1=%zu case2=%zu   helper records: %zu\n",
              stats.case1_devices, stats.case2_devices, stats.helper_devices);
  std::printf("bit bias: %.2f%% (ideal 50)   mean |margin|: %.4f ps\n",
              stats.bias_percent(), stats.mean_abs_margin());
  std::printf("masked pairs: %zu\n", stats.masked_pairs);
  return 0;
}

/// Shared workload knobs for auth-batch and auth-client, so both paths can
/// synthesize the identical request stream and compare verdict digests.
service::WorkloadSpec workload_from_args(const Args& args) {
  service::WorkloadSpec workload;
  workload.requests = static_cast<std::size_t>(args.number("requests", 1024));
  workload.flip_rate = args.number("flip-rate", 0.01);
  workload.forge_rate = args.number("forge-rate", 0.05);
  workload.unknown_rate = args.number("unknown-rate", 0.02);
  workload.seed = static_cast<std::uint64_t>(args.number("workload-seed", 0x570ca57));
  return workload;
}

/// Offline v2 workload: proof intents, turned into verifiable ProofRequests
/// with deterministic verifier-side nonces. Verdicts depend only on whether
/// each tag matches its nonce — which it does exactly when the intent
/// recovered the enrollment key — so the digest is nonce-seed-independent
/// and byte-comparable with the online auth-client v2 path.
std::vector<service::ProofRequest> proof_requests_from_intents(
    const std::vector<service::ProofIntent>& intents, std::uint64_t nonce_seed) {
  auth::NonceFactory nonces(nonce_seed);
  std::vector<service::ProofRequest> requests;
  requests.reserve(intents.size());
  for (const service::ProofIntent& intent : intents) {
    service::ProofRequest request;
    request.request_id = intent.request_id;
    request.device_id = intent.device_id;
    request.nonce = nonces.next(intent.device_id, intent.request_id);
    request.tag = intent.has_key
                      ? auth::prove(intent.key, request.nonce, intent.request_id,
                                    intent.device_id)
                      : auth::Tag{};
    requests.push_back(request);
  }
  return requests;
}

int cmd_auth_batch(const Args& args) {
  const registry::Registry reg = registry_from_args(args);
  const service::AuthServiceOptions opts = auth_options_from_args(args);
  const service::AuthService svc(&reg, opts);
  const std::uint64_t protocol = count_arg(args, "protocol", 1);
  ROPUF_REQUIRE(protocol == 1 || protocol == 2, "--protocol must be 1 or 2");

  service::WorkloadSpec workload = workload_from_args(args);

  if (protocol == 2) {
    const auto intents = service::synthesize_proof_workload(reg, workload);
    const auto requests = proof_requests_from_intents(intents, workload.seed);
    const auto verdicts = svc.verify_proof_batch(requests);
    std::printf("auth batch: %zu proof requests against %zu devices (protocol v2)\n",
                verdicts.size(), reg.device_count());
    print_verdict_stats(verdicts);
    return 0;
  }

  auto injector = fault_injector_from_args(args);
  if (injector.has_value()) workload.injector = &*injector;

  const auto requests = service::synthesize_workload(reg, opts, workload);
  const auto verdicts = svc.verify_batch(requests);

  std::printf("auth batch: %zu requests against %zu devices (bits=%zu max-hd=%zu)\n",
              verdicts.size(), reg.device_count(), opts.response_bits,
              opts.max_distance);
  print_verdict_stats(verdicts);
  if (injector.has_value()) print_fault_report(*injector);
  return 0;
}

int cmd_auth_client(const Args& args) {
  ROPUF_REQUIRE(args.has("port"), "--port is required");
  const registry::Registry reg = registry_from_args(args);
  const service::AuthServiceOptions opts = auth_options_from_args(args);
  const std::uint64_t protocol = count_arg(args, "protocol", 1);
  ROPUF_REQUIRE(protocol == 1 || protocol == 2, "--protocol must be 1 or 2");

  net::ClientOptions client_opts;
  client_opts.host = args.get("host", "127.0.0.1");
  client_opts.port = static_cast<std::uint16_t>(args.number("port", 0));
  client_opts.window = static_cast<std::size_t>(args.number("window", 128));
  net::AuthClient client(client_opts);
  client.connect();

  bool v2 = false;
  if (protocol == 2) {
    // Negotiate; a pre-v2 server answers the hello with kBadFrame and the
    // client falls back to the v1 CRP workload below.
    v2 = client.negotiate() == net::kWireVersionV2;
    if (!v2) std::printf("auth client: server speaks v1; falling back\n");
  }

  if (v2) {
    const auto intents =
        service::synthesize_proof_workload(reg, workload_from_args(args));
    const std::vector<net::WireResponse> responses = client.send_proof_batch(intents);
    std::vector<service::AuthVerdict> verdicts;
    verdicts.reserve(responses.size());
    std::size_t degraded = 0;
    for (const net::WireResponse& response : responses) {
      if (net::wire_status_is_transport(response.status)) {
        ++degraded;
        continue;
      }
      verdicts.push_back(net::auth_verdict(response));
    }
    std::printf("auth client: %zu proof requests to %s:%u (protocol v2)\n",
                intents.size(), client_opts.host.c_str(), client_opts.port);
    if (degraded > 0) {
      std::printf("  degraded answers  %zu (bad-frame/overloaded; digest omits them)\n",
                  degraded);
    }
    print_verdict_stats(verdicts);
    return 0;
  }

  const auto requests =
      service::synthesize_workload(reg, opts, workload_from_args(args));
  const std::vector<net::WireResponse> responses = client.send_batch(requests);

  // Split transport degradations (kBadFrame/kOverloaded) from real
  // verdicts; admission denials (rate-limited/budget-exhausted) ARE
  // verdicts and tally like any other status. The digest is only
  // comparable to offline auth-batch when the whole stream was verified.
  std::vector<service::AuthVerdict> verdicts;
  verdicts.reserve(responses.size());
  std::size_t degraded = 0;
  for (const net::WireResponse& response : responses) {
    if (net::wire_status_is_transport(response.status)) {
      ++degraded;
      continue;
    }
    verdicts.push_back(net::auth_verdict(response));
  }
  std::printf("auth client: %zu requests to %s:%u (bits=%zu max-hd=%zu)\n",
              requests.size(), client_opts.host.c_str(), client_opts.port,
              opts.response_bits, opts.max_distance);
  if (degraded > 0) {
    std::printf("  degraded answers  %zu (bad-frame/overloaded; digest omits them)\n",
                degraded);
  }
  print_verdict_stats(verdicts);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ropuf_cli <command> [--option value ...]\n"
               "commands (alphabetical):\n"
               "  auth-batch [--registry F | --devices N --seed S ...] [--requests N]\n"
               "          [--bits B] [--max-hd D] [--cache C] [--unknown-cache C]\n"
               "          [--flip-rate R]\n"
               "          [--forge-rate R] [--unknown-rate R] [--workload-seed S]\n"
               "          [--fault-rate R] [--fault-seed S]\n"
               "          [--rate-burst N --rate-interval T] [--crp-budget N]\n"
               "          [--reuse-budget N] [--challenge-sketch N]\n"
               "          [--admission-devices N] [--detector on|off]\n"
               "          [--detector-window N] [--detector-threshold N]\n"
               "          [--detector-max-level N] [--detector-decay N]\n"
               "          [--detector-devices N] [--protocol 1|2]\n"
               "  auth-client --port P [--host A] [--window W] [--protocol 1|2]\n"
               "          [--registry F | --devices N --seed S ...] [--requests N]\n"
               "          [--bits B] [--max-hd D] [--flip-rate R] [--forge-rate R]\n"
               "          [--unknown-rate R] [--workload-seed S]\n"
               "  dataset-stats --dataset F [--stages N] [--distill on|off]\n"
               "  enroll  --seed S [--stages N] [--pairs P] [--mode case1|case2] [--out F]\n"
               "          [--fault-rate R] [--fault-seed S]\n"
               "  export-dataset [--boards N] [--seed S] [--noise PS] [--out F]\n"
               "  fault-sweep [--seed S] [--trials N] [--max-rate R] [--fault-seed S]\n"
               "  fleet-stats --boards N [--seed S]\n"
               "  nist    [--streams N] [--bits B] [--bias P] [--seed S]\n"
               "  registry-append --registry F [--out D] [--devices N [--seed S]\n"
               "          [--stages N] [--pairs P] [--mode case1|case2] [--noise PS]]\n"
               "          [--retire id1,id2,...]\n"
               "  registry-build --out F (--devices N [--seed S] [--stages N] [--pairs P]\n"
               "          [--mode case1|case2] [--noise PS] | --enrollments F1,F2,...\n"
               "          [--base-id N])\n"
               "  registry-compact --registry F [--out F2]\n"
               "  registry-epochs --registry F\n"
               "  registry-stats [--registry F | --devices N --seed S ...]\n"
               "  respond --seed S --enrollment F [--voltage V] [--temp T]\n"
               "          [--fault-rate R] [--fault-seed S]\n"
               "  stats   [--seed S]\n"
               "a positive --fault-rate attaches the fault injector and switches the\n"
               "readout to the hardened (retrying, outlier-rejecting) pipeline.\n"
               "every command accepts --threads N (or the ROPUF_THREADS env var) to\n"
               "bound the worker pool; outputs are bit-identical for every N.\n"
               "every command accepts --metrics-out F.json (metrics snapshot) and\n"
               "--trace-out F.json (Chrome trace_event timeline for chrome://tracing).\n"
               "`stats` runs a pinned mini-workload, prints a one-line workload summary\n"
               "(seed, response flips, masked pairs, uniqueness %%), then the metrics\n"
               "summary table in two aligned columns per section: `counter value`\n"
               "(monotonic event counts) and `histogram records` (samples recorded per\n"
               "latency histogram). see docs/observability.md.\n"
               "registry-build/registry-stats/auth-batch operate on the binary fleet\n"
               "registry; registry-append writes a `<base>.delta-NNNN` segment\n"
               "(upserts and/or tombstones) that overlays the base newest-first, and\n"
               "registry-compact folds base+deltas back into one base file; see\n"
               "docs/registry.md. auth-client sends the same synthetic\n"
               "workload to a running ropuf_serve over the framed wire protocol and\n"
               "prints the identical stats block; see docs/serving.md.\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    apply_thread_budget(args);
    const ObsSession obs_session(args);
    int rc = -1;
    {
      // Scoped so the command-level span completes before the trace is
      // serialized by finish().
      const obs::TraceSpan span("cli.command");
      if (command == "auth-batch") rc = cmd_auth_batch(args);
      else if (command == "auth-client") rc = cmd_auth_client(args);
      else if (command == "dataset-stats") rc = cmd_dataset_stats(args);
      else if (command == "enroll") rc = cmd_enroll(args);
      else if (command == "export-dataset") rc = cmd_export_dataset(args);
      else if (command == "fault-sweep") rc = cmd_fault_sweep(args);
      else if (command == "fleet-stats") rc = cmd_fleet_stats(args);
      else if (command == "nist") rc = cmd_nist(args);
      else if (command == "registry-append") rc = cmd_registry_append(args);
      else if (command == "registry-build") rc = cmd_registry_build(args);
      else if (command == "registry-compact") rc = cmd_registry_compact(args);
      else if (command == "registry-epochs") rc = cmd_registry_epochs(args);
      else if (command == "registry-stats") rc = cmd_registry_stats(args);
      else if (command == "respond") rc = cmd_respond(args);
      else if (command == "stats") rc = cmd_stats(args);
      else return usage();
    }
    obs_session.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#!/usr/bin/env bash
# Server smoke test (wired into ctest; see tools/CMakeLists.txt).
#
# Spawns ropuf_serve on an ephemeral loopback port, points ropuf_cli
# auth-client at it with a pinned synthetic workload, and requires:
#   1. the online verdict digest matches offline `auth-batch` byte-for-byte
#      (same registry, same workload, same thread budget),
#   2. the startup banner reports the same registry epoch in every phase
#      (a fresh server over the same fleet must always come up at epoch 1),
#   3. SIGINT triggers a graceful drain: the server exits 0 on its own.
#
# Runs four phases: single-reactor (--shards 1, the PR-5 shape),
# multi-reactor (--shards 2, which also exercises the --port-file handshake
# contract: the port file must not appear until EVERY shard listener is
# bound), a v1/v2 interop phase (one v2-capable server serving a v1 client
# and a `--protocol 2` client concurrently — the v1 digest must stay
# byte-identical and the v2 digest must match offline
# `auth-batch --protocol 2`), and a reload phase that serves from an
# on-disk registry, appends a delta segment with ropuf_cli registry-append,
# sends SIGHUP, and requires the server to report the new epoch while
# verdicts for the untouched base devices stay byte-identical across the
# swap.
#
# Usage: server_smoke_test.sh <ropuf_serve> <ropuf_cli> <workdir>
set -euo pipefail

SERVE=$1
CLI=$2
WORKDIR=$3

cd "$WORKDIR"

FLEET="--devices 24 --seed 42"
WORKLOAD="--requests 256 --bits 16 --max-hd 2 --threads 2"

OFFLINE=$("$CLI" auth-batch $FLEET $WORKLOAD)
OFFLINE_DIGEST=$(printf '%s\n' "$OFFLINE" | grep 'verdict digest')
[ -n "$OFFLINE_DIGEST" ] || { echo "FAIL: auth-batch printed no digest"; exit 1; }

# Epoch reported by each phase's startup banner, appended by run_client's
# caller; all entries must agree (a fresh server always starts at epoch 1).
EPOCHS_SEEN=""

# start_server <label> <extra ropuf_serve flags...>
# Starts the server with stdout captured to smoke_log_<label>.txt, waits
# for the port file, and sets SRV (pid), PORT and LOG.
start_server() {
  local LABEL=$1
  shift

  local PORT_FILE="smoke_port_${LABEL}.txt"
  LOG="smoke_log_${LABEL}.txt"
  rm -f "$PORT_FILE" "$LOG"

  "$SERVE" --port 0 --port-file "$PORT_FILE" --threads 2 "$@" >"$LOG" &
  SRV=$!
  trap 'kill -9 $SRV 2>/dev/null || true' EXIT

  # Wait for the port file, but notice a server that died on startup (bad
  # flags, bind failure) instead of burning the full wait on a corpse.
  for _ in $(seq 100); do
    [ -s "$PORT_FILE" ] && break
    if ! kill -0 "$SRV" 2>/dev/null; then
      RC=0
      wait "$SRV" || RC=$?
      echo "FAIL($LABEL): server died before writing its port file (exit status $RC)"
      cat "$LOG" || true
      exit 1
    fi
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || { echo "FAIL($LABEL): server never wrote its port file"; exit 1; }
  PORT=$(cat "$PORT_FILE")
}

# run_client <label>: auth-client against $PORT; digest must match offline.
run_client() {
  local LABEL=$1
  local ONLINE
  ONLINE=$("$CLI" auth-client --port "$PORT" $FLEET $WORKLOAD)

  local ONLINE_DIGEST
  ONLINE_DIGEST=$(printf '%s\n' "$ONLINE" | grep 'verdict digest')
  [ -n "$ONLINE_DIGEST" ] || { echo "FAIL($LABEL): client printed no digest"; exit 1; }
  if [ "$ONLINE_DIGEST" != "$OFFLINE_DIGEST" ]; then
    echo "FAIL($LABEL): online/offline digest mismatch"
    echo "  online:  $ONLINE_DIGEST"
    echo "  offline: $OFFLINE_DIGEST"
    exit 1
  fi
  if printf '%s\n' "$ONLINE" | grep -q 'degraded answers'; then
    echo "FAIL($LABEL): client saw degraded answers on an idle server"
    exit 1
  fi
  LAST_DIGEST=$ONLINE_DIGEST
}

# stop_server <label>: SIGINT, graceful drain, exit 0.
stop_server() {
  local LABEL=$1
  kill -INT "$SRV"
  for _ in $(seq 100); do
    kill -0 "$SRV" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$SRV" 2>/dev/null; then
    echo "FAIL($LABEL): server did not drain after SIGINT"
    exit 1
  fi
  RC=0
  wait "$SRV" || RC=$?
  [ "$RC" -eq 0 ] || { echo "FAIL($LABEL): server exited rc=$RC"; cat "$LOG"; exit 1; }
  trap - EXIT
}

# note_epoch <label>: record the startup banner's epoch for cross-phase
# comparison. The banner is flushed before the port file is readable, so
# the log always has it by the time the client has run.
note_epoch() {
  local LABEL=$1
  local EPOCH
  EPOCH=$(grep -o 'epoch [0-9]*' "$LOG" | head -1 | grep -o '[0-9]*' || true)
  [ -n "$EPOCH" ] || { echo "FAIL($LABEL): startup banner reported no epoch"; cat "$LOG"; exit 1; }
  EPOCHS_SEEN="${EPOCHS_SEEN}${LABEL}=${EPOCH} "
  STARTUP_EPOCH="epoch $EPOCH"
}

run_phase() {
  local LABEL=$1
  shift
  start_server "$LABEL" $FLEET "$@"
  run_client "$LABEL"
  note_epoch "$LABEL"
  stop_server "$LABEL"
  echo "PASS($LABEL): $LAST_DIGEST (online == offline, $STARTUP_EPOCH, graceful drain)"
}

run_phase single
run_phase sharded --shards 2

# -------------------------------------------------------------- interop phase
# One v2-capable sharded server; a v1 client and a v2 client run
# CONCURRENTLY against it. The v1 digest must stay byte-identical to the
# offline v1 digest (the protocol upgrade is invisible to old clients), and
# the v2 digest must match offline `auth-batch --protocol 2` (proof verdicts
# are nonce-independent, so online and offline digests compare directly).
V2WORKLOAD="--requests 256 --threads 2 --protocol 2"

OFFLINE_V2=$("$CLI" auth-batch $FLEET $V2WORKLOAD)
OFFLINE_V2_DIGEST=$(printf '%s\n' "$OFFLINE_V2" | grep 'verdict digest')
[ -n "$OFFLINE_V2_DIGEST" ] || { echo "FAIL(interop): v2 auth-batch printed no digest"; exit 1; }

start_server interop $FLEET --shards 2
"$CLI" auth-client --port "$PORT" $FLEET $WORKLOAD >smoke_interop_v1.txt &
CLIENT_V1=$!
"$CLI" auth-client --port "$PORT" $FLEET $V2WORKLOAD >smoke_interop_v2.txt &
CLIENT_V2=$!
wait "$CLIENT_V1" || { echo "FAIL(interop): v1 client exited nonzero"; exit 1; }
wait "$CLIENT_V2" || { echo "FAIL(interop): v2 client exited nonzero"; exit 1; }

if ! grep -q 'protocol v2' smoke_interop_v2.txt; then
  echo "FAIL(interop): v2 client fell back to v1 against a v2 server"
  cat smoke_interop_v2.txt
  exit 1
fi
V1_DIGEST=$(grep 'verdict digest' smoke_interop_v1.txt)
if [ "$V1_DIGEST" != "$OFFLINE_DIGEST" ]; then
  echo "FAIL(interop): v1 client digest drifted against a v2 server"
  echo "  online:  $V1_DIGEST"
  echo "  offline: $OFFLINE_DIGEST"
  exit 1
fi
V2_DIGEST=$(grep 'verdict digest' smoke_interop_v2.txt)
if [ "$V2_DIGEST" != "$OFFLINE_V2_DIGEST" ]; then
  echo "FAIL(interop): v2 online/offline digest mismatch"
  echo "  online:  $V2_DIGEST"
  echo "  offline: $OFFLINE_V2_DIGEST"
  exit 1
fi
note_epoch interop
stop_server interop
echo "PASS(interop): v1 $V1_DIGEST / v2 $V2_DIGEST (concurrent clients, one server)"

# --------------------------------------------------------------- reload phase
# Serve from an on-disk registry minted with the SAME fleet knobs (so the
# offline digest still applies), append a delta of brand-new devices, SIGHUP,
# and require: the server reports the bumped epoch, and verdicts for the
# untouched base devices are byte-identical before and after the swap.
REG="smoke_fleet.ropufreg"
rm -f "$REG" "$REG".delta-*
"$CLI" registry-build --out "$REG" $FLEET >/dev/null

start_server reload --registry "$REG"
run_client reload_before
note_epoch reload

"$CLI" registry-append --registry "$REG" --devices 3 --seed 777 >/dev/null
kill -HUP "$SRV"
for _ in $(seq 100); do
  grep -q 'reloaded: epoch' "$LOG" && break
  sleep 0.1
done
if ! grep -q 'reloaded: epoch 2' "$LOG"; then
  echo "FAIL(reload): server never reported the new epoch after SIGHUP"
  cat "$LOG"
  exit 1
fi

run_client reload_after
stop_server reload
echo "PASS(reload): $LAST_DIGEST (digest stable across SIGHUP epoch swap)"

# ------------------------------------------------- cross-phase epoch parity
for ENTRY in $EPOCHS_SEEN; do
  if [ "${ENTRY#*=}" != "1" ]; then
    echo "FAIL: startup epoch drifted across phases: $EPOCHS_SEEN"
    exit 1
  fi
done
echo "PASS(epochs): startup epoch stable across phases ($EPOCHS_SEEN)"

#!/usr/bin/env bash
# Server smoke test (wired into ctest; see tools/CMakeLists.txt).
#
# Spawns ropuf_serve on an ephemeral loopback port, points ropuf_cli
# auth-client at it with a pinned synthetic workload, and requires:
#   1. the online verdict digest matches offline `auth-batch` byte-for-byte
#      (same registry, same workload, same thread budget), and
#   2. SIGINT triggers a graceful drain: the server exits 0 on its own.
#
# Runs twice: once single-reactor (--shards 1, the PR-5 shape) and once
# multi-reactor (--shards 2). The sharded phase also exercises the
# --port-file handshake contract for multi-shard startup: the port file
# must not appear until EVERY shard listener is bound, so the first
# connection a client makes after reading it cannot race a half-started
# server.
#
# Usage: server_smoke_test.sh <ropuf_serve> <ropuf_cli> <workdir>
set -euo pipefail

SERVE=$1
CLI=$2
WORKDIR=$3

cd "$WORKDIR"

FLEET="--devices 24 --seed 42"
WORKLOAD="--requests 256 --bits 16 --max-hd 2 --threads 2"

OFFLINE=$("$CLI" auth-batch $FLEET $WORKLOAD)
OFFLINE_DIGEST=$(printf '%s\n' "$OFFLINE" | grep 'verdict digest')
[ -n "$OFFLINE_DIGEST" ] || { echo "FAIL: auth-batch printed no digest"; exit 1; }

# run_phase <label> <extra ropuf_serve flags...>
run_phase() {
  local LABEL=$1
  shift

  local PORT_FILE="smoke_port_${LABEL}.txt"
  rm -f "$PORT_FILE"

  "$SERVE" $FLEET --port 0 --port-file "$PORT_FILE" --threads 2 "$@" &
  SRV=$!
  trap 'kill -9 $SRV 2>/dev/null || true' EXIT

  # Wait for the port file, but notice a server that died on startup (bad
  # flags, bind failure) instead of burning the full wait on a corpse.
  for _ in $(seq 100); do
    [ -s "$PORT_FILE" ] && break
    if ! kill -0 "$SRV" 2>/dev/null; then
      RC=0
      wait "$SRV" || RC=$?
      echo "FAIL($LABEL): server died before writing its port file (exit status $RC)"
      exit 1
    fi
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || { echo "FAIL($LABEL): server never wrote its port file"; exit 1; }
  PORT=$(cat "$PORT_FILE")

  local ONLINE
  ONLINE=$("$CLI" auth-client --port "$PORT" $FLEET $WORKLOAD)

  local ONLINE_DIGEST
  ONLINE_DIGEST=$(printf '%s\n' "$ONLINE" | grep 'verdict digest')
  [ -n "$ONLINE_DIGEST" ] || { echo "FAIL($LABEL): client printed no digest"; exit 1; }
  if [ "$ONLINE_DIGEST" != "$OFFLINE_DIGEST" ]; then
    echo "FAIL($LABEL): online/offline digest mismatch"
    echo "  online:  $ONLINE_DIGEST"
    echo "  offline: $OFFLINE_DIGEST"
    exit 1
  fi
  if printf '%s\n' "$ONLINE" | grep -q 'degraded answers'; then
    echo "FAIL($LABEL): client saw degraded answers on an idle server"
    exit 1
  fi

  kill -INT "$SRV"
  for _ in $(seq 100); do
    kill -0 "$SRV" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$SRV" 2>/dev/null; then
    echo "FAIL($LABEL): server did not drain after SIGINT"
    exit 1
  fi
  RC=0
  wait "$SRV" || RC=$?
  [ "$RC" -eq 0 ] || { echo "FAIL($LABEL): server exited rc=$RC"; exit 1; }
  trap - EXIT

  echo "PASS($LABEL): $ONLINE_DIGEST (online == offline, graceful drain)"
}

run_phase single
run_phase sharded --shards 2

# Round-trip smoke test: enroll writes a record, respond reads it back and
# must report zero flips at the enrollment corner.
set(record ${CMAKE_CURRENT_BINARY_DIR}/cli_test_enrollment.ropuf)
execute_process(COMMAND ${CLI} enroll --seed 42 --stages 5 --pairs 16 --out ${record}
                RESULT_VARIABLE enroll_rc OUTPUT_VARIABLE enroll_out)
if(NOT enroll_rc EQUAL 0)
  message(FATAL_ERROR "enroll failed: ${enroll_out}")
endif()

execute_process(COMMAND ${CLI} respond --seed 42 --enrollment ${record}
                RESULT_VARIABLE respond_rc OUTPUT_VARIABLE respond_out)
if(NOT respond_rc EQUAL 0)
  message(FATAL_ERROR "respond failed: ${respond_out}")
endif()
if(NOT respond_out MATCHES "flips: 0 of 16")
  message(FATAL_ERROR "expected zero flips at the enrollment corner: ${respond_out}")
endif()

// ropuf_serve — online authentication server (see docs/serving.md).
//
// Puts net::AuthServer in front of a service::AuthService over a registry
// that is either loaded from disk (--registry F) or minted in memory from
// the same fleet knobs as ropuf_cli registry-build. Serves the framed wire
// protocol of net/wire.h until SIGINT/SIGTERM, then drains gracefully and
// prints a one-line service summary.
//
//   ropuf_serve [--registry F | --devices N --seed S ...]
//               [--registry-watch on|off]
//               [--bind A] [--port P] [--port-file F]
//               [--bits B] [--max-hd D] [--cache C] [--unknown-cache C]
//               [--rate-burst N --rate-interval T] [--crp-budget N]
//               [--reuse-budget N] [--challenge-sketch N]
//               [--admission-devices N] [--reenroll-threshold N]
//               [--detector on|off] [--detector-window N]
//               [--detector-threshold N] [--detector-max-level N]
//               [--detector-decay N] [--detector-devices N]
//               [--threads N]
//               [--shards N] [--dispatch auto|reuseport|roundrobin]
//               [--max-connections N] [--max-pending N] [--max-batch N]
//               [--max-read-per-sweep N] [--read-deadline-ms N]
//               [--accept-backoff-ms N] [--drain-timeout-ms N]
//               [--nonce-seed S] [--max-sessions N]
//               [--metrics-out F.json] [--trace-out F.json]
//
// --port 0 (the default) binds a kernel-assigned ephemeral port;
// --port-file writes the resolved port as a single decimal line once the
// server is listening, so scripted callers (the ctest smoke test) can wait
// for the file instead of parsing stdout.
//
// --registry-watch on (the default whenever --registry is given) installs a
// SIGHUP handler: on signal, the base file and its `<base>.delta-*` siblings
// are re-read and installed as a new epoch without dropping a connection or
// splitting an in-flight batch (registry/epoch.h). A failed reload — file
// missing or corrupt mid-rewrite — keeps the current epoch serving and is
// reported on stdout and in net.reload_failures.
#include <csignal>
#include <cstdio>
#include <fstream>

#include "cli_common.h"
#include "common/error.h"
#include "net/server.h"
#include "registry/epoch.h"

namespace {

using namespace ropuf;
using namespace ropuf::cli;

/// Signal handling: each handler performs exactly one relaxed atomic store
/// (AuthServer::request_stop / request_reload), which is async-signal-safe.
/// The pointer is published before the handlers are installed and never
/// changes afterward.
net::AuthServer* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void handle_reload_signal(int) {
  if (g_server != nullptr) g_server->request_reload();
}

int serve(const Args& args) {
  const std::size_t shards = static_cast<std::size_t>(count_arg(args, "shards", 1));
  ROPUF_REQUIRE(shards > 0, "--shards must be positive");

  const bool from_file = args.has("registry");
  const std::string registry_path = args.get("registry", "");
  const std::string watch = args.get("registry-watch", from_file ? "on" : "off");
  ROPUF_REQUIRE(watch == "on" || watch == "off", "--registry-watch must be on or off");
  ROPUF_REQUIRE(watch == "off" || from_file, "--registry-watch on requires --registry");

  registry::EpochRegistry epochs = [&]() -> registry::EpochRegistry {
    if (from_file) {
      registry::EpochFileSet files = registry::load_epoch_files(registry_path);
      return registry::EpochRegistry(std::move(files.base), std::move(files.deltas));
    }
    return registry::EpochRegistry(registry::Registry::from_bytes(
        registry::build_fleet_registry(fleet_spec_from_args(args))));
  }();
  service::AuthServiceOptions svc_opts = auth_options_from_args(args);
  // Admission state partitions by device-id hash, one slice per reactor
  // shard, so concurrent shards rarely contend on one admission mutex while
  // every device still lands on one deterministic token bucket.
  svc_opts.admission_shards = shards;
  const service::AuthService svc(&epochs, svc_opts);

  net::ServerOptions opts;
  opts.shards = shards;
  const std::string dispatch = args.get("dispatch", "auto");
  if (dispatch == "auto") {
    opts.dispatch = net::DispatchMode::kAuto;
  } else if (dispatch == "reuseport") {
    opts.dispatch = net::DispatchMode::kReusePort;
  } else if (dispatch == "roundrobin") {
    opts.dispatch = net::DispatchMode::kRoundRobin;
  } else {
    ROPUF_REQUIRE(false, "--dispatch must be auto, reuseport, or roundrobin");
  }
  opts.bind_address = args.get("bind", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.number("port", 0));
  // count_arg rejects negative values eagerly; a negative bound must fail
  // the flag parse, never wrap through an unsigned cast into a huge limit.
  opts.max_connections = static_cast<std::size_t>(count_arg(args, "max-connections", 256));
  opts.max_pending = static_cast<std::size_t>(count_arg(args, "max-pending", 1024));
  opts.max_batch = static_cast<std::size_t>(count_arg(args, "max-batch", 256));
  opts.max_read_per_sweep =
      static_cast<std::size_t>(count_arg(args, "max-read-per-sweep", 64 << 10));
  opts.read_deadline_ms = static_cast<int>(args.number("read-deadline-ms", 5000));
  opts.accept_backoff_ms = static_cast<int>(args.number("accept-backoff-ms", 100));
  opts.drain_timeout_ms = static_cast<int>(args.number("drain-timeout-ms", 2000));
  // v2 challenge nonces; the deterministic default serves reproducible test
  // harnesses, a production operator passes something unpredictable.
  if (args.has("nonce-seed")) {
    opts.nonce_seed = count_arg(args, "nonce-seed", 0);
  }
  opts.max_sessions = static_cast<std::size_t>(count_arg(args, "max-sessions", 1024));

  net::AuthServer server(&svc, opts);
  const std::uint16_t port = server.bind_and_listen();

  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  if (watch == "on") {
    // The reload handler runs on shard 0's reactor thread between poll
    // sweeps, never in signal context — ordinary I/O and exceptions are
    // fine here. AuthServer swallows what we rethrow (after printing) into
    // net.reload_failures, so a bad file never kills the server.
    server.set_reload_handler([&epochs, registry_path]() {
      try {
        registry::EpochFileSet files = registry::load_epoch_files(registry_path);
        const std::size_t delta_count = files.deltas.size();
        epochs.install(std::move(files.base), std::move(files.deltas));
        std::printf("reloaded: epoch %llu (%zu devices, %zu deltas)\n",
                    static_cast<unsigned long long>(epochs.epoch()),
                    epochs.device_count(), delta_count);
        std::fflush(stdout);
      } catch (const std::exception& e) {
        std::printf("reload failed: %s\n", e.what());
        std::fflush(stdout);
        throw;
      }
    });
    struct sigaction reload {};
    reload.sa_handler = handle_reload_signal;
    ::sigaction(SIGHUP, &reload, nullptr);
  }

  if (args.has("port-file")) {
    const std::string path = args.get("port-file", "");
    std::ofstream file(path);
    ROPUF_REQUIRE(file.good(), "cannot open port file " + path);
    file << port << "\n";
    ROPUF_REQUIRE(file.flush().good(), "failed writing port file " + path);
  }
  if (server.shard_count() > 1) {
    std::printf("serving %zu devices on %s:%u (%zu shards, %s dispatch, epoch %llu)\n",
                epochs.device_count(), opts.bind_address.c_str(), port,
                server.shard_count(),
                server.dispatch() == net::DispatchMode::kReusePort ? "reuseport"
                                                                   : "roundrobin",
                static_cast<unsigned long long>(epochs.epoch()));
  } else {
    std::printf("serving %zu devices on %s:%u (epoch %llu)\n", epochs.device_count(),
                opts.bind_address.c_str(), port,
                static_cast<unsigned long long>(epochs.epoch()));
  }
  std::fflush(stdout);

  server.run();
  // Record the per-device deny histograms for states still resident in the
  // admission slices, so --metrics-out sees the full abuse profile.
  svc.flush_admission_metrics();
  std::printf("drained: %llu requests served\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ropuf_serve [--registry F | --devices N --seed S ...]\n"
               "                   [--registry-watch on|off]\n"
               "                   [--bind A] [--port P] [--port-file F]\n"
               "                   [--bits B] [--max-hd D] [--cache C]\n"
               "                   [--unknown-cache C] [--threads N]\n"
               "                   [--rate-burst N --rate-interval T]\n"
               "                   [--crp-budget N] [--reuse-budget N]\n"
               "                   [--challenge-sketch N] [--admission-devices N]\n"
               "                   [--detector on|off] [--detector-window N]\n"
               "                   [--detector-threshold N] [--detector-max-level N]\n"
               "                   [--detector-decay N] [--detector-devices N]\n"
               "                   [--reenroll-threshold N]\n"
               "                   [--shards N] [--dispatch auto|reuseport|roundrobin]\n"
               "                   [--max-connections N] [--max-pending N]\n"
               "                   [--max-batch N] [--max-read-per-sweep N]\n"
               "                   [--read-deadline-ms N] [--accept-backoff-ms N]\n"
               "                   [--drain-timeout-ms N]\n"
               "                   [--nonce-seed S] [--max-sessions N]\n"
               "                   [--metrics-out F.json] [--trace-out F.json]\n"
               "serves the framed authentication protocol until SIGINT/SIGTERM,\n"
               "then drains gracefully; SIGHUP re-reads --registry and its\n"
               "delta segments as a new epoch (see docs/serving.md).\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv, 1);
    if (args.has("help")) return usage();
    apply_thread_budget(args);
    const ObsSession obs_session(args);
    const int rc = serve(args);
    obs_session.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Option handling shared by the command-line front ends (ropuf_cli,
// ropuf_serve): the strict --key value argument map, the process-wide
// --threads budget, the --metrics-out/--trace-out observability session,
// and the registry/fleet minting knobs the serving and batch commands have
// in common. Header-only so each tool stays a single translation unit.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "registry/registry.h"
#include "service/auth_service.h"

namespace ropuf::cli {

/// Minimal --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      ROPUF_REQUIRE(key.rfind("--", 0) == 0, "expected --option, got '" + key + "'");
      ROPUF_REQUIRE(i + 1 < argc, "missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    // Require the whole token to parse: "1.2abc" must be rejected, not
    // silently read as 1.2.
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(it->second, &consumed);
    } catch (const std::exception&) {
      ROPUF_REQUIRE(false, "non-numeric value '" + it->second + "' for --" + key);
    }
    ROPUF_REQUIRE(consumed == it->second.size(),
                  "trailing junk in value '" + it->second + "' for --" + key);
    return value;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Shared --threads handling: a positive integer sets the process-wide
/// thread budget (overriding ROPUF_THREADS); outputs are bit-identical for
/// every value. Parsed with the same strict numeric policy as every other
/// option.
inline void apply_thread_budget(const Args& args) {
  if (!args.has("threads")) return;
  const double threads = args.number("threads", 0.0);
  ROPUF_REQUIRE(threads >= 1.0 && threads == std::floor(threads),
                "--threads must be a positive integer");
  set_thread_budget_override(static_cast<std::size_t>(threads));
}

/// Shared --metrics-out / --trace-out handling, available on every command.
/// Paths are validated strictly up front: an empty value or one that looks
/// like a swallowed option ("--...") is a usage error, and an unwritable
/// path fails the command *before* any work runs (an empty placeholder is
/// written eagerly, then overwritten with the real document at the end) —
/// never silently ignored.
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_path_(validated_path(args, "metrics-out")),
        trace_path_(validated_path(args, "trace-out")) {
    if (!metrics_path_.empty()) {
      obs::write_text_file(metrics_path_, "");
      obs::set_metrics_enabled(true);
    }
    if (!trace_path_.empty()) {
      obs::write_text_file(trace_path_, "");
      obs::set_tracing_enabled(true);
    }
  }

  /// Writes the collected documents. Called once, after the command ran to
  /// completion; a failed command leaves the eager placeholders behind.
  void finish() const {
    if (!metrics_path_.empty()) {
      obs::write_text_file(metrics_path_,
                           obs::metrics_to_json(obs::Registry::instance().snapshot()));
    }
    if (!trace_path_.empty()) {
      obs::write_text_file(
          trace_path_, obs::trace_to_chrome_json(obs::TraceRecorder::instance().events()));
    }
  }

 private:
  static std::string validated_path(const Args& args, const std::string& key) {
    if (!args.has(key)) return {};
    const std::string path = args.get(key, "");
    ROPUF_REQUIRE(!path.empty(), "empty path for --" + key);
    ROPUF_REQUIRE(path.rfind("--", 0) != 0,
                  "suspicious path '" + path + "' for --" + key +
                      " (looks like an option; missing value?)");
    return path;
  }

  std::string metrics_path_;
  std::string trace_path_;
};

/// Shared fleet-minting knobs for the registry/service commands. The spec
/// identifies its fleet exactly, so the same options always reproduce the
/// same registry bytes regardless of --threads.
inline registry::FleetSpec fleet_spec_from_args(const Args& args) {
  registry::FleetSpec spec;
  spec.devices = static_cast<std::size_t>(args.number("devices", 256));
  ROPUF_REQUIRE(spec.devices >= 1, "--devices must be >= 1");
  spec.stages = static_cast<std::size_t>(args.number("stages", 5));
  spec.pairs = static_cast<std::size_t>(args.number("pairs", 16));
  const std::string mode_name = args.get("mode", "case2");
  ROPUF_REQUIRE(mode_name == "case1" || mode_name == "case2", "mode must be case1|case2");
  spec.mode = mode_name == "case1" ? puf::SelectionCase::kSameConfig
                                   : puf::SelectionCase::kIndependent;
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 0x5ca1ab1e));
  spec.noise_sigma_ps = args.number("noise", 0.5);
  return spec;
}

/// Either loads --registry F or mints an in-memory fleet from the minting
/// knobs, so the registry/service commands work without a file on disk.
inline registry::Registry registry_from_args(const Args& args) {
  if (args.has("registry")) {
    return registry::Registry::load_file(args.get("registry", ""));
  }
  return registry::Registry::from_bytes(
      registry::build_fleet_registry(fleet_spec_from_args(args)));
}

/// Strict non-negative-integer option (admission knobs, bounds): rejects
/// negative and fractional values eagerly instead of wrapping them through
/// an unsigned cast.
inline std::uint64_t count_arg(const Args& args, const std::string& key,
                               double fallback) {
  const double value = args.number(key, fallback);
  ROPUF_REQUIRE(value >= 0.0 && value == std::floor(value),
                "--" + key + " must be a non-negative integer");
  return static_cast<std::uint64_t>(value);
}

/// Strict on|off option.
inline bool switch_arg(const Args& args, const std::string& key, bool fallback) {
  const std::string value = args.get(key, fallback ? "on" : "off");
  ROPUF_REQUIRE(value == "on" || value == "off", "--" + key + " must be on|off");
  return value == "on";
}

/// Shared --bits/--max-hd/--cache handling for the verification commands,
/// plus the admission knobs (--rate-burst/--rate-interval/--crp-budget/
/// --reuse-budget, all default 0 = off; see service/admission.h) and the
/// stream-detector knobs (--detector on|off and --detector-* tuning; see
/// service/detector.h — suspicion escalates the admission penalties, so the
/// detector only bites when admission knobs are configured too).
inline service::AuthServiceOptions auth_options_from_args(const Args& args) {
  service::AuthServiceOptions opts;
  opts.response_bits = static_cast<std::size_t>(args.number("bits", 16));
  opts.max_distance = static_cast<std::size_t>(args.number("max-hd", 2));
  opts.cache_capacity = static_cast<std::size_t>(args.number("cache", 4096));
  opts.unknown_cache_capacity =
      static_cast<std::size_t>(args.number("unknown-cache", 256));
  opts.admission.rate_burst = count_arg(args, "rate-burst", 0);
  opts.admission.rate_interval = count_arg(args, "rate-interval", 0);
  opts.admission.crp_budget = count_arg(args, "crp-budget", 0);
  opts.admission.reuse_budget = count_arg(args, "reuse-budget", 0);
  opts.admission.challenge_sketch =
      static_cast<std::size_t>(count_arg(args, "challenge-sketch", 64));
  opts.admission.device_capacity =
      static_cast<std::size_t>(count_arg(args, "admission-devices", 4096));
  opts.detector.enabled = switch_arg(args, "detector", false);
  opts.detector.window =
      static_cast<std::size_t>(count_arg(args, "detector-window", 32));
  opts.detector.escalate_threshold =
      static_cast<std::uint32_t>(count_arg(args, "detector-threshold", 8));
  opts.detector.max_level =
      static_cast<std::uint32_t>(count_arg(args, "detector-max-level", 4));
  opts.detector.decay_window = count_arg(args, "detector-decay", 64);
  opts.detector.device_capacity =
      static_cast<std::size_t>(count_arg(args, "detector-devices", 4096));
  opts.reenroll.fail_threshold =
      static_cast<std::size_t>(count_arg(args, "reenroll-threshold", 0));
  return opts;
}

/// The verdict tally block shared by auth-batch and auth-client, so the
/// offline and online paths print byte-comparable stats: per-status counts,
/// accepted mean Hamming distance, and the order-sensitive verdict digest.
inline void print_verdict_stats(const std::vector<service::AuthVerdict>& verdicts) {
  std::size_t counts[service::kAuthStatusCount] = {};
  std::size_t accepted_distance = 0;
  for (const service::AuthVerdict& v : verdicts) {
    counts[static_cast<std::size_t>(v.status)] += 1;
    if (v.accepted()) accepted_distance += v.distance;
  }
  for (std::size_t s = 0; s < service::kAuthStatusCount; ++s) {
    std::printf("  %-17s %zu\n",
                service::auth_status_name(static_cast<service::AuthStatus>(s)),
                counts[s]);
  }
  const std::size_t accepted = counts[0];
  std::printf("accepted mean HD: %.4f\n",
              accepted == 0 ? 0.0
                            : static_cast<double>(accepted_distance) /
                                  static_cast<double>(accepted));
  std::printf("verdict digest: 0x%016llx\n",
              static_cast<unsigned long long>(service::verdict_digest(verdicts)));
}

}  // namespace ropuf::cli

# Hardened-pipeline smoke test: enroll and respond under a 2% per-read
# fault campaign must complete (exit 0) and report the fault campaign.
set(record ${CMAKE_CURRENT_BINARY_DIR}/cli_fault_enrollment.ropuf)
execute_process(COMMAND ${CLI} enroll --seed 42 --stages 5 --pairs 16
                        --fault-rate 0.02 --out ${record}
                RESULT_VARIABLE enroll_rc OUTPUT_VARIABLE enroll_out)
if(NOT enroll_rc EQUAL 0)
  message(FATAL_ERROR "faulted enroll failed: ${enroll_out}")
endif()
if(NOT enroll_out MATCHES "fault report:")
  message(FATAL_ERROR "missing fault report: ${enroll_out}")
endif()

execute_process(COMMAND ${CLI} respond --seed 42 --enrollment ${record}
                        --fault-rate 0.02
                RESULT_VARIABLE respond_rc OUTPUT_VARIABLE respond_out)
if(NOT respond_rc EQUAL 0)
  message(FATAL_ERROR "faulted respond failed: ${respond_out}")
endif()
if(NOT respond_out MATCHES "fault report:")
  message(FATAL_ERROR "missing fault report: ${respond_out}")
endif()

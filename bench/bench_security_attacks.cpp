// Security experiments behind the paper's design arguments.
//
//  1. Popcount guessing (Section III.D): with physical positive delays, an
//     unconstrained selection loads the slow RO with many inverters — the
//     configuration itself gives the bit away. The equal-popcount rule of
//     Case-2 (and trivially Case-1) closes the channel.
//  2. Cross-chip majority vote (Section IV.A): the systematic process
//     component correlates chips of one design; the distiller removes it.
// Accuracies are reported against the coin-flip baseline.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "attack/predictors.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

void popcount_attack_experiment() {
  std::printf("--- configuration-size (popcount) guessing attack ---\n");
  Rng rng(1);
  TextTable table({"selection regime", "bits attacked", "guess accuracy"});

  auto run_attack = [&](const char* label, auto&& select_fn, int trials) {
    std::vector<puf::Selection> selections;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> top(6), bottom(6);
      for (auto& v : top) v = rng.gaussian(1050.0, 15.0);
      for (auto& v : bottom) v = rng.gaussian(1050.0, 15.0);
      selections.push_back(select_fn(top, bottom));
    }
    const attack::PredictionStats stats = attack::popcount_predictor(selections, rng);
    table.add_row({label, std::to_string(stats.total),
                   TextTable::num(100.0 * stats.accuracy(), 1) + "%"});
  };

  run_attack("unconstrained selection", [](const auto& a, const auto& b) {
    return puf::select_exhaustive_unconstrained(a, b);
  }, 400);
  run_attack("Case-2 (equal popcount)", [](const auto& a, const auto& b) {
    return puf::select_case2(a, b);
  }, 4000);
  run_attack("Case-1 (shared config)", [](const auto& a, const auto& b) {
    return puf::select_case1(a, b);
  }, 4000);
  std::printf("%s\n", table.render().c_str());
}

void majority_vote_experiment() {
  std::printf("--- cross-chip majority-vote attack (20 reference chips) ---\n");
  TextTable table({"pipeline", "prediction accuracy", "ideal"});
  Rng rng(2);

  for (const bool distill : {false, true}) {
    analysis::DatasetOptions opts;
    opts.mode = puf::SelectionCase::kSameConfig;
    opts.stages = 5;
    opts.distill = distill;
    const std::vector<sil::Chip>& all = bench::vt_fleet().nominal;
    const std::vector<sil::Chip> subset(all.begin(), all.begin() + 21);
    const auto responses = analysis::board_responses(subset, opts);

    // Attack every chip with the other 20 and average.
    double total_acc = 0.0;
    for (std::size_t target = 0; target < responses.size(); ++target) {
      std::vector<BitVec> refs;
      for (std::size_t i = 0; i < responses.size(); ++i) {
        if (i != target) refs.push_back(responses[i]);
      }
      total_acc +=
          attack::majority_vote_predictor(refs, responses[target], rng).accuracy();
    }
    table.add_row({distill ? "distilled (paper IV.A)" : "raw measurements",
                   TextTable::num(100.0 * total_acc / static_cast<double>(responses.size()),
                                  1) +
                       "%",
                   "50.0%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: at the default calibration the per-position cross-chip leak is\n"
              "mild; the stream-level structure is what fails NIST in bench_table1.\n"
              "Stronger systematic processes push the raw attack far above 50%%\n"
              "(see attack_predictors_test).\n");
}

void run() {
  bench::banner("bench_security_attacks",
                "security arguments of Sections III.D and IV.A, quantified");
  popcount_attack_experiment();
  majority_vote_experiment();
}

void bm_popcount_attack(benchmark::State& state) {
  Rng rng(3);
  std::vector<puf::Selection> selections;
  for (int t = 0; t < 1000; ++t) {
    std::vector<double> top(9), bottom(9);
    for (auto& v : top) v = rng.gaussian(1050.0, 15.0);
    for (auto& v : bottom) v = rng.gaussian(1050.0, 15.0);
    selections.push_back(puf::select_case2(top, bottom));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::popcount_predictor(selections, rng));
  }
}
BENCHMARK(bm_popcount_attack)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

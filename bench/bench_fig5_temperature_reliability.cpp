// Fig. 5 / Section IV.D closing paragraph: bit flips under temperature
// variation (25..65 C at the nominal 1.20 V).
//
// The paper reports "little impact of temperature variation ... only the
// traditional RO PUF has bit flips", i.e. the configurable PUF (and
// 1-out-of-8) are flip-free over the temperature sweep.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_fig5_temperature_reliability",
                "Section IV.D temperature experiment - % bit flips, 25..65 C");

  std::vector<sil::OperatingPoint> corners;
  for (const double t : sil::vt_temperatures()) corners.push_back({1.20, t});

  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kSameConfig;
  opts.distill = false;
  const auto cells = analysis::environment_reliability(
      bench::vt_fleet().env, {3, 5, 7, 9}, corners, /*baseline=*/0, opts);

  TextTable table({"board", "n", "bits", "cfg@25C", "cfg@35C", "cfg@45C", "cfg@55C",
                   "cfg@65C", "traditional", "1-of-8"});
  double conf_total = 0.0, trad_total = 0.0, one8_total = 0.0;
  for (const auto& cell : cells) {
    table.add_row({std::to_string(cell.board_index), std::to_string(cell.stages),
                   std::to_string(cell.bits),
                   TextTable::num(cell.configurable_flip_pct[0], 1),
                   TextTable::num(cell.configurable_flip_pct[1], 1),
                   TextTable::num(cell.configurable_flip_pct[2], 1),
                   TextTable::num(cell.configurable_flip_pct[3], 1),
                   TextTable::num(cell.configurable_flip_pct[4], 1),
                   TextTable::num(cell.traditional_flip_pct, 1),
                   TextTable::num(cell.one_of_eight_flip_pct, 1)});
    conf_total += cell.configurable_flip_pct[0];
    trad_total += cell.traditional_flip_pct;
    one8_total += cell.one_of_eight_flip_pct;
  }
  std::printf("%s\n", table.render().c_str());

  const double n_cells = static_cast<double>(cells.size());
  std::printf("averages: configurable@25C %.2f%%  traditional %.2f%%  1-of-8 %.2f%%\n",
              conf_total / n_cells, trad_total / n_cells, one8_total / n_cells);
  std::printf("paper claim (only traditional flips under temperature): %s\n",
              (conf_total == 0.0 && one8_total == 0.0 && trad_total > 0.0)
                  ? "HOLDS"
                  : (conf_total <= trad_total ? "HOLDS (weak: configurable <= traditional)"
                                              : "VIOLATED"));
}

void bm_temperature_scaling(benchmark::State& state) {
  const sil::Chip& board = bench::vt_fleet().env[0];
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < board.unit_count(); ++i) {
      acc += board.unit_ddiff_ps(i, {1.20, 65.0});
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * board.unit_count());
}
BENCHMARK(bm_temperature_scaling)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Table V: total number of bits per board for n = 3/5/7/9.
//
// Accounting over the 512-unit board: configurable and traditional PUFs
// yield 80/48/32/24 bits; 1-out-of-8 exactly one quarter (20/12/8/6). The
// bench also verifies the yields empirically by generating the responses.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "common/table.h"
#include "puf/schemes.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_table5_bits_per_board",
                "Table V - total number of bits per board (512 units)");

  TextTable table({"scheme", "n=3", "n=5", "n=7", "n=9", "paper"});
  std::vector<std::string> configurable{"configurable PUFs"};
  std::vector<std::string> traditional{"traditional PUFs"};
  std::vector<std::string> one8{"1-out-of-8 PUFs"};
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    const puf::BoardLayout layout = puf::paper_layout(n);
    configurable.push_back(std::to_string(layout.pair_count));
    traditional.push_back(std::to_string(layout.pair_count));
    one8.push_back(std::to_string(puf::one_of_eight_bits(layout)));
  }
  configurable.push_back("80/48/32/24");
  traditional.push_back("80/48/32/24");
  one8.push_back("20/12/8/6");
  table.add_row(configurable);
  table.add_row(traditional);
  table.add_row(one8);
  std::printf("%s\n", table.render().c_str());

  // Empirical confirmation: actually generate responses on one board.
  const sil::Chip& board = bench::vt_fleet().nominal[0];
  Rng rng(4);
  const auto values =
      puf::measure_unit_ddiffs(board, sil::nominal_op(), puf::UnitMeasurementSpec{}, rng);
  std::printf("empirical check on board 0:\n");
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    const puf::BoardLayout layout = puf::paper_layout(n);
    const auto enrollment =
        puf::configurable_enroll(values, layout, puf::SelectionCase::kSameConfig);
    const auto one8_enrollment = puf::one_of_eight_enroll(values, layout);
    std::printf("  n=%zu: configurable %zu bits, 1-of-8 %zu bits\n", n,
                enrollment.response().size(),
                puf::one_of_eight_respond(values, one8_enrollment).size());
  }
}

void bm_enroll_full_board(benchmark::State& state) {
  const sil::Chip& board = bench::vt_fleet().nominal[0];
  Rng rng(5);
  const auto values =
      puf::measure_unit_ddiffs(board, sil::nominal_op(), puf::UnitMeasurementSpec{}, rng);
  const puf::BoardLayout layout = puf::paper_layout(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        puf::configurable_enroll(values, layout, puf::SelectionCase::kSameConfig));
  }
  state.SetItemsProcessed(state.iterations() * layout.pair_count);
}
BENCHMARK(bm_enroll_full_board)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Scoreboard: the standard PUF metric trio for every scheme in the library.
//
// Uniqueness (ideal 50%), reliability across the full VT corner grid
// (ideal 100%), and uniformity (ideal 50%) — the vocabulary in which RO PUF
// papers, including this one implicitly, compare designs. Uniqueness and
// uniformity use the distilled pipeline over nominal boards (the paper's
// IV.A setting); reliability uses raw measurements on the env boards
// (IV.D setting).
#include "bench_common.h"

#include "analysis/experiments.h"
#include "analysis/metrics.h"
#include "common/table.h"
#include "puf/schemes.h"
#include "sram/sram_puf.h"

namespace {

using namespace ropuf;

constexpr std::size_t kStages = 7;

struct SchemeMetrics {
  std::string name;
  double uniqueness = 0.0;
  double reliability = 0.0;
  double uniformity = 0.0;
};

/// Uniqueness/uniformity over the first `board_count` nominal boards.
template <typename RespondFn>
void population_metrics(SchemeMetrics& out, std::size_t board_count, bool distill,
                        RespondFn&& respond) {
  analysis::DatasetOptions opts;
  opts.distill = distill;
  Rng master(0x9e7);
  std::vector<BitVec> responses;
  const auto& boards = bench::vt_fleet().nominal;
  for (std::size_t b = 0; b < board_count; ++b) {
    Rng rng = master.fork();
    const auto values = analysis::board_unit_values(boards[b], sil::nominal_op(), opts, rng);
    responses.push_back(respond(values));
  }
  out.uniqueness = analysis::uniqueness_percent(responses);
  out.uniformity = analysis::uniformity_percent(responses);
}

/// Reliability: enroll at nominal, re-evaluate at all 25 VT corners.
template <typename EnrollFn, typename RespondFn>
double corner_reliability(EnrollFn&& enroll, RespondFn&& respond) {
  analysis::DatasetOptions opts;
  opts.distill = false;
  Rng master(0x9e8);
  double total = 0.0;
  const auto& boards = bench::vt_fleet().env;
  for (const sil::Chip& board : boards) {
    Rng rng = master.fork();
    const auto nominal_values =
        analysis::board_unit_values(board, sil::nominal_op(), opts, rng);
    auto enrollment = enroll(nominal_values);
    const BitVec reference = respond(nominal_values, enrollment);
    std::vector<BitVec> samples;
    for (const double v : sil::vt_voltages()) {
      for (const double t : sil::vt_temperatures()) {
        const auto values = analysis::board_unit_values(board, {v, t}, opts, rng);
        samples.push_back(respond(values, enrollment));
      }
    }
    total += analysis::reliability_percent(reference, samples);
  }
  return total / static_cast<double>(boards.size());
}

void run() {
  bench::banner("bench_puf_metrics",
                "uniqueness / reliability / uniformity scoreboard, all schemes");
  const puf::BoardLayout layout = puf::paper_layout(kStages);
  constexpr std::size_t kBoards = 60;

  std::vector<SchemeMetrics> rows;

  {
    SchemeMetrics m{"traditional", 0, 0, 0};
    population_metrics(m, kBoards, true, [&](const std::vector<double>& v) {
      return puf::traditional_respond(v, layout).response;
    });
    m.reliability = corner_reliability(
        [&](const std::vector<double>&) { return 0; },
        [&](const std::vector<double>& v, int) {
          return puf::traditional_respond(v, layout).response;
        });
    rows.push_back(m);
  }
  {
    SchemeMetrics m{"1-out-of-8 [1]", 0, 0, 0};
    population_metrics(m, kBoards, true, [&](const std::vector<double>& v) {
      return puf::one_of_eight_respond(v, puf::one_of_eight_enroll(v, layout));
    });
    m.reliability = corner_reliability(
        [&](const std::vector<double>& v) { return puf::one_of_eight_enroll(v, layout); },
        [&](const std::vector<double>& v, const puf::OneOutOfEightEnrollment& e) {
          return puf::one_of_eight_respond(v, e);
        });
    rows.push_back(m);
  }
  for (const auto mode : {puf::SelectionCase::kSameConfig, puf::SelectionCase::kIndependent}) {
    SchemeMetrics m{mode == puf::SelectionCase::kSameConfig ? "configurable Case-1"
                                                            : "configurable Case-2",
                    0, 0, 0};
    population_metrics(m, kBoards, true, [&](const std::vector<double>& v) {
      return puf::configurable_enroll(v, layout, mode).response();
    });
    m.reliability = corner_reliability(
        [&](const std::vector<double>& v) {
          return puf::configurable_enroll(v, layout, mode);
        },
        [&](const std::vector<double>& v, const puf::ConfigurableEnrollment& e) {
          return puf::configurable_respond(v, e);
        });
    rows.push_back(m);
  }

  // Cross-family context (intro reference [3]): SRAM power-up PUF with a
  // 32-bit-equivalent budget — uniqueness across chips, reliability across
  // power-ups (it has no V/T-configured margin to defend).
  {
    SchemeMetrics m{"SRAM power-up [3] (context)", 0, 0, 0};
    Rng rng(0x5ea);
    sram::SramSpec spec;
    spec.cells = layout.pair_count;
    std::vector<BitVec> states;
    for (std::size_t c = 0; c < kBoards; ++c) {
      const sram::SramPuf puf(spec, rng);
      states.push_back(puf.reference());
    }
    m.uniqueness = analysis::uniqueness_percent(states);
    m.uniformity = analysis::uniformity_percent(states);
    const sram::SramPuf one(spec, rng);
    std::vector<BitVec> powerups;
    for (int s = 0; s < 25; ++s) powerups.push_back(one.power_up(rng));
    m.reliability = analysis::reliability_percent(one.reference(), powerups);
    rows.push_back(m);
  }

  TextTable table({"scheme", "uniqueness % (ideal 50)", "reliability % (ideal 100)",
                   "uniformity % (ideal 50)", "bits/board"});
  for (const auto& m : rows) {
    table.add_row({m.name, TextTable::num(m.uniqueness, 2),
                   TextTable::num(m.reliability, 2), TextTable::num(m.uniformity, 2),
                   std::to_string(m.name.find("1-out") != std::string::npos
                                      ? puf::one_of_eight_bits(layout)
                                      : layout.pair_count)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected ordering: configurable reliability >= 1-of-8 ~ 100 >>\n"
              "traditional, at 4x the 1-of-8 bit yield (paper abstract).\n");
}

void bm_metrics_population(benchmark::State& state) {
  Rng rng(1);
  std::vector<BitVec> responses;
  for (int c = 0; c < 60; ++c) {
    BitVec v(32);
    for (std::size_t i = 0; i < 32; ++i) v.set(i, rng.flip());
    responses.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::uniqueness_percent(responses));
  }
}
BENCHMARK(bm_metrics_population)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Table IV: pairwise HD of the Case-2 best configurations.
//
// As Table III but with independent top/bottom configurations: each RO pair
// contributes a 30-bit vector (top | bottom); 3104 vectors total. The paper
// finds the mass between HD 12 and 18 and zero pairs at HD 0 or 30.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "analysis/hamming_stats.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_table4_config_hd_case2",
                "Table IV - intra-chip HD of best configuration, Case-2 (3104 x 30-bit)");

  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kIndependent;
  opts.distill = true;
  const auto streams = analysis::configuration_streams(bench::vt_fleet().nominal, opts);
  std::printf("configuration vectors: %zu x %zu bits\n\n", streams.size(),
              streams[0].size());

  const auto stats = analysis::pairwise_hd(streams);
  TextTable table({"HD", "% of pairs", "paper %"});
  const double paper[] = {0.0,  0.0,   0.015, 0.213, 1.64,  6.87, 17.2, 26.3,
                          25.4, 15.3,  5.68,  1.25,  0.153, 0.0,  0.0,  0.0};
  for (std::size_t hd = 0; hd <= 30; hd += 2) {
    table.add_row({std::to_string(hd), TextTable::num(stats.percent_at(hd), 3),
                   TextTable::num(paper[hd / 2], 3)});
  }
  std::printf("%s\n", table.render().c_str());
  const std::size_t at0 = stats.histogram.count(0) ? stats.histogram.at(0) : 0;
  const std::size_t at30 = stats.histogram.count(30) ? stats.histogram.at(30) : 0;
  std::printf("pairs at HD 0 or 30: %zu   (paper: 0)\n", at0 + at30);
  std::printf("mean HD %.2f of 30 bits\n", stats.mean);
}

void bm_case2_config_streams(benchmark::State& state) {
  const auto& boards = bench::vt_fleet().nominal;
  const std::vector<sil::Chip> subset(boards.begin(), boards.begin() + 8);
  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kIndependent;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::configuration_streams(subset, opts));
  }
}
BENCHMARK(bm_case2_config_streams)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Extension experiment: analytical flip model vs simulated flips.
//
// The first-order theory (analysis/flip_model.h) predicts each scheme's
// flip rate from nothing but the enrollment margin population and the
// fitted (scale, sigma) of the corner transition. Agreement with the
// simulated flips validates both the simulator's mechanism and the
// mechanism story told in docs/simulation_model.md.
#include "bench_common.h"

#include <cmath>

#include "analysis/experiments.h"
#include "analysis/flip_model.h"
#include "common/table.h"
#include "puf/schemes.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_ext_flip_model",
                "extension: analytical flip prediction vs simulated flips");

  analysis::DatasetOptions opts;
  opts.distill = false;
  Rng master(0xf11b);
  const sil::OperatingPoint stress{0.98, 25.0};

  TextTable table({"board", "n", "sigma_env (ps)", "trad predicted %", "trad simulated %",
                   "conf predicted %", "conf simulated %"});
  double pred_trad_total = 0.0, sim_trad_total = 0.0;
  double pred_conf_total = 0.0, sim_conf_total = 0.0;
  std::size_t cells = 0;

  for (std::size_t b = 0; b < bench::vt_fleet().env.size(); ++b) {
    const sil::Chip& board = bench::vt_fleet().env[b];
    Rng rng = master.fork();
    const auto enroll_values =
        analysis::board_unit_values(board, sil::nominal_op(), opts, rng);
    const auto stress_values = analysis::board_unit_values(board, stress, opts, rng);

    for (const std::size_t n : {5u, 7u}) {
      const puf::BoardLayout layout = puf::paper_layout(n);

      // Traditional: margins and paired comparison values per pair.
      const auto trad_enroll = puf::traditional_respond(enroll_values, layout);
      const auto trad_stress = puf::traditional_respond(stress_values, layout);
      const auto env = analysis::estimate_perturbation(trad_enroll.margins,
                                                       trad_stress.margins);
      const double trad_pred =
          analysis::predicted_flip_percent(trad_enroll.margins, env);
      const double trad_sim =
          100.0 *
          static_cast<double>(
              trad_enroll.response.hamming_distance(trad_stress.response)) /
          static_cast<double>(layout.pair_count);

      // Configurable: same perturbation model (the configured subsets see
      // the same physics), margins from enrollment.
      const auto conf =
          puf::configurable_enroll(enroll_values, layout, puf::SelectionCase::kSameConfig);
      const double conf_pred = analysis::predicted_flip_percent(conf.margins(), env);
      const BitVec conf_stress = puf::configurable_respond(stress_values, conf);
      const double conf_sim =
          100.0 * static_cast<double>(conf.response().hamming_distance(conf_stress)) /
          static_cast<double>(layout.pair_count);

      table.add_row({std::to_string(b), std::to_string(n), TextTable::num(env.sigma, 1),
                     TextTable::num(trad_pred, 1), TextTable::num(trad_sim, 1),
                     TextTable::num(conf_pred, 2), TextTable::num(conf_sim, 2)});
      pred_trad_total += trad_pred;
      sim_trad_total += trad_sim;
      pred_conf_total += conf_pred;
      sim_conf_total += conf_sim;
      ++cells;
    }
  }
  std::printf("%s\n", table.render().c_str());
  const double n_cells = static_cast<double>(cells);
  std::printf("averages: traditional predicted %.1f%% vs simulated %.1f%%;"
              " configurable predicted %.2f%% vs simulated %.2f%%\n",
              pred_trad_total / n_cells, sim_trad_total / n_cells,
              pred_conf_total / n_cells, sim_conf_total / n_cells);
  std::printf("the Gaussian first-order model tracks the simulation for both schemes,\n"
              "confirming the margin-over-sigma mechanism behind Fig. 4.\n");
}

void bm_flip_prediction(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> margins(1000);
  for (auto& m : margins) m = rng.gaussian(0.0, 40.0);
  const analysis::EnvPerturbation env{1.4, 10.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::predicted_flip_percent(margins, env));
  }
}
BENCHMARK(bm_flip_prediction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

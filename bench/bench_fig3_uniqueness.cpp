// Fig. 3: inter-chip Hamming distance of the configurable PUF outputs.
//
// 97 streams of 96 bits (two boards each); all C(97,2) = 4656 pairwise
// Hamming distances are histogrammed. The paper reports bell shapes with
// mean 46.88 / sd 4.89 (Case-1) and mean 46.79 / sd 4.95 (Case-2).
#include "bench_common.h"

#include "analysis/experiments.h"
#include "analysis/hamming_stats.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

analysis::HdStats stats_for(puf::SelectionCase mode) {
  analysis::DatasetOptions opts;
  opts.mode = mode;
  opts.stages = 5;
  opts.distill = true;
  const auto responses = analysis::board_responses(bench::vt_fleet().nominal, opts);
  return analysis::pairwise_hd(analysis::combine_board_pairs(responses));
}

void print_histogram(const analysis::HdStats& stats) {
  // ASCII rendition of the Fig. 3 histogram, 4-bit-wide bins.
  std::printf("  HD range   pairs\n");
  for (std::size_t lo = 24; lo < 72; lo += 4) {
    std::size_t count = 0;
    for (std::size_t hd = lo; hd < lo + 4; ++hd) {
      const auto it = stats.histogram.find(hd);
      if (it != stats.histogram.end()) count += it->second;
    }
    std::printf("  [%2zu,%2zu)  %5zu  ", lo, lo + 4, count);
    for (std::size_t star = 0; star < count / 20; ++star) std::printf("*");
    std::printf("\n");
  }
}

void run() {
  bench::banner("bench_fig3_uniqueness",
                "Fig. 3 - histogram of inter-chip HD, Case-1 (left) / Case-2 (right)");

  const auto case1 = stats_for(puf::SelectionCase::kSameConfig);
  std::printf("Case-1: mean HD %.2f bits, sd %.2f (paper: 46.88 / 4.89), duplicates %zu\n",
              case1.mean, case1.stddev, case1.duplicates);
  print_histogram(case1);

  const auto case2 = stats_for(puf::SelectionCase::kIndependent);
  std::printf("\nCase-2: mean HD %.2f bits, sd %.2f (paper: 46.79 / 4.95), duplicates %zu\n",
              case2.mean, case2.stddev, case2.duplicates);
  print_histogram(case2);

  std::printf("\nnormalized uniqueness: Case-1 %.1f%%, Case-2 %.1f%% of 96 bits"
              " (ideal 50%%)\n",
              100.0 * case1.mean / 96.0, 100.0 * case2.mean / 96.0);
}

void bm_pairwise_hd_97x96(benchmark::State& state) {
  Rng rng(3);
  std::vector<BitVec> population;
  for (int i = 0; i < 97; ++i) {
    BitVec v(96);
    for (std::size_t b = 0; b < 96; ++b) v.set(b, rng.flip());
    population.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::pairwise_hd(population));
  }
}
BENCHMARK(bm_pairwise_hd_97x96)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Robustness extension: key recovery under injected hardware faults.
//
// Sweeps the per-read fault rate (stuck counters, dropped reads, glitches,
// aging drift, brown-outs — silicon/faults.h) and measures end-to-end key
// recovery through the BCH(15,7) code-offset fuzzy extractor, with the
// readout pipeline hardened (median-of-k + MAD rejection + retries + dark-
// bit masking) and naive. The hardened pipeline must recover at least as
// often at every rate and strictly more often once faults are common
// (>= 1% per read), at the price of masked (dark) response bits.
#include "bench_common.h"

#include "common/table.h"
#include "crypto/cyclic_code.h"
#include "crypto/fuzzy_extractor.h"
#include "puf/chip_puf.h"
#include "silicon/faults.h"

namespace {

using namespace ropuf;

constexpr std::size_t kPairs = 30;  // 2 BCH(15,7) blocks
constexpr int kTrials = 5;

puf::DeviceSpec device_spec(bool hardened) {
  puf::DeviceSpec spec;
  spec.stages = 7;
  spec.pair_count = kPairs;
  spec.mode = puf::SelectionCase::kIndependent;
  spec.hardened = hardened;
  return spec;
}

struct SweepCell {
  int recovered = 0;   ///< trials whose reproduced key matched
  double masked = 0.0; ///< mean dark-bit-masked pairs per trial
};

SweepCell run_cell(double rate, bool hardened) {
  const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
  const crypto::FuzzyExtractor extractor(&code);
  SweepCell cell;
  for (int trial = 0; trial < kTrials; ++trial) {
    const sil::Chip& board = bench::inhouse_fleet()[static_cast<std::size_t>(trial)];
    sil::FaultInjector injector(sil::FaultPlan::uniform(rate),
                                0xfa017 + static_cast<std::uint64_t>(trial));
    Rng rng(0xb0175 + static_cast<std::uint64_t>(trial));
    bool ok = false;
    try {
      puf::ConfigurableRoPufDevice device(&board, device_spec(hardened), rng);
      device.set_fault_injector(&injector);
      device.enroll(sil::nominal_op(), rng);
      const auto enrollment = extractor.generate(device.enrolled_response(), rng);
      const BitVec response = device.respond(sil::nominal_op(), rng);
      const auto key = extractor.reproduce(response, enrollment.helper);
      ok = key.has_value() && *key == enrollment.key;
      cell.masked += static_cast<double>(device.masked_count());
    } catch (const Error&) {
      ok = false;  // the naive pipeline dies on the first unhandled fault
    }
    if (ok) ++cell.recovered;
  }
  cell.masked /= kTrials;
  return cell;
}

void run() {
  bench::banner("bench_fault_injection",
                "robustness extension - key recovery vs per-read fault rate");

  const std::vector<double> rates = {0.0, 0.005, 0.01, 0.02, 0.05};
  TextTable table({"fault rate", "naive keys", "hardened keys", "masked pairs"});
  bool monotone_ok = true, strict_ok = true;
  for (const double rate : rates) {
    const SweepCell naive = run_cell(rate, false);
    const SweepCell hardened = run_cell(rate, true);
    table.add_row({TextTable::num(rate, 3),
                   std::to_string(naive.recovered) + "/" + std::to_string(kTrials),
                   std::to_string(hardened.recovered) + "/" + std::to_string(kTrials),
                   TextTable::num(hardened.masked, 1)});
    if (hardened.recovered < naive.recovered) monotone_ok = false;
    if (rate >= 0.01 && hardened.recovered <= naive.recovered) strict_ok = false;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check (hardened >= naive at every rate): %s\n",
              monotone_ok ? "HOLDS" : "VIOLATED");
  std::printf("shape check (hardened strictly better at rates >= 1%%): %s\n",
              strict_ok ? "HOLDS" : "VIOLATED");
}

void bm_respond(benchmark::State& state) {
  const sil::Chip& board = bench::inhouse_fleet()[0];
  Rng rng(9);
  puf::ConfigurableRoPufDevice device(&board, device_spec(false), rng);
  device.enroll(sil::nominal_op(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.respond(sil::nominal_op(), rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kPairs));
}
BENCHMARK(bm_respond)->Unit(benchmark::kMillisecond);

void bm_hardened_respond(benchmark::State& state) {
  const sil::Chip& board = bench::inhouse_fleet()[0];
  Rng rng(9);
  puf::ConfigurableRoPufDevice device(&board, device_spec(true), rng);
  sil::FaultInjector injector(sil::FaultPlan::uniform(0.02), 0xfa017);
  device.set_fault_injector(&injector);
  device.enroll(sil::nominal_op(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.respond(sil::nominal_op(), rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kPairs));
}
BENCHMARK(bm_hardened_respond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

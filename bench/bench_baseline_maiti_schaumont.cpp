// Baseline comparison against the Maiti-Schaumont configurable RO PUF [14]
// (Related Work, Section II).
//
// Both schemes are configurable; the difference is granularity. At an equal
// silicon budget (4s delay elements per pair), the paper's inverter-level
// selection achieves a larger configured margin than [14]'s 1-of-2-per-stage
// choice, and correspondingly fewer bit flips under voltage stress.
#include "bench_common.h"

#include <cmath>

#include "analysis/experiments.h"
#include "analysis/reliability.h"
#include "common/table.h"
#include "puf/kary_configurable.h"
#include "puf/maiti_schaumont.h"
#include "puf/schemes.h"

namespace {

using namespace ropuf;

void margin_comparison() {
  std::printf("--- mean |margin| at equal silicon budget (ps) ---\n");
  Rng rng(1);
  TextTable table({"elements/pair", "MS [14] (s stages)", "paper Case-1 (n=2s)",
                   "paper Case-2 (n=2s)", "Case-2 advantage"});
  for (const std::size_t s : {3u, 5u, 8u}) {
    double ms_total = 0.0, case1_total = 0.0, case2_total = 0.0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> units(4 * s);
      for (auto& v : units) v = rng.gaussian(0.0, 10.0);
      const auto pairs = puf::ms_pairs_from_units(units, s, 1);
      ms_total += std::fabs(puf::ms_select_greedy(pairs[0]).margin);
      const std::vector<double> top(units.begin(), units.begin() + 2 * s);
      const std::vector<double> bottom(units.begin() + 2 * s, units.end());
      case1_total += std::fabs(puf::select_case1(top, bottom).margin);
      case2_total += std::fabs(puf::select_case2(top, bottom).margin);
    }
    table.add_row({std::to_string(4 * s), TextTable::num(ms_total / trials, 1),
                   TextTable::num(case1_total / trials, 1),
                   TextTable::num(case2_total / trials, 1),
                   TextTable::num(case2_total / ms_total, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
}

void reliability_comparison() {
  std::printf("--- bit flips under voltage stress, equal silicon (s=5 / n=10) ---\n");
  const auto& boards = bench::vt_fleet().env;
  analysis::DatasetOptions opts;
  opts.distill = false;

  TextTable table({"board", "MS [14] flip %", "paper Case-2 flip %"});
  Rng master(2);
  for (std::size_t b = 0; b < boards.size(); ++b) {
    Rng rng = master.fork();
    std::vector<std::vector<double>> values;
    for (const double v : sil::vt_voltages()) {
      values.push_back(analysis::board_unit_values(boards[b], {v, 25.0}, opts, rng));
    }
    constexpr std::size_t kNominal = 2;
    constexpr std::size_t kStagesMs = 5;
    const std::size_t pair_budget = boards[b].unit_count() / (4 * kStagesMs);

    // Maiti-Schaumont: enroll configs at nominal, re-evaluate margins.
    const auto ms_pairs = puf::ms_pairs_from_units(values[kNominal], kStagesMs, pair_budget);
    std::vector<puf::MsSelection> ms_sel;
    for (const auto& pair : ms_pairs) ms_sel.push_back(puf::ms_select_greedy(pair));
    BitVec ms_base(pair_budget);
    for (std::size_t p = 0; p < pair_budget; ++p) ms_base.set(p, ms_sel[p].bit);
    std::vector<BitVec> ms_stress;
    for (std::size_t c = 0; c < values.size(); ++c) {
      if (c == kNominal) continue;
      const auto pairs_c = puf::ms_pairs_from_units(values[c], kStagesMs, pair_budget);
      BitVec response(pair_budget);
      for (std::size_t p = 0; p < pair_budget; ++p) {
        response.set(p, puf::ms_margin(pairs_c[p], ms_sel[p].config) > 0.0);
      }
      ms_stress.push_back(response);
    }
    const double ms_flips = analysis::flip_percentage(ms_base, ms_stress);

    // Paper Case-2 at n = 10 over the same units.
    const puf::BoardLayout layout{2 * kStagesMs, pair_budget};
    const auto enrollment = puf::configurable_enroll(values[kNominal], layout,
                                                     puf::SelectionCase::kIndependent);
    const BitVec conf_base = enrollment.response();
    std::vector<BitVec> conf_stress;
    for (std::size_t c = 0; c < values.size(); ++c) {
      if (c == kNominal) continue;
      conf_stress.push_back(puf::configurable_respond(values[c], enrollment));
    }
    const double conf_flips = analysis::flip_percentage(conf_base, conf_stress);

    table.add_row({std::to_string(b), TextTable::num(ms_flips, 1),
                   TextTable::num(conf_flips, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("context (Section II): [14] packs a 3-stage configurable RO per CLB with\n"
              "8 configurations; [15] reaches 256. The paper's delay-unit design adds a\n"
              "MUX per inverter but selects at inverter granularity post-silicon.\n");
}

void kary_comparison() {
  std::printf("--- configuration granularity ladder (equal silicon, mean |margin|) ---\n");
  // [14] = 2 options/stage, [15] ~ more options/stage, the paper = per-unit
  // in/out decisions. Budget: 24 delay elements per pair throughout.
  Rng rng(5);
  TextTable table({"design", "structure", "mean |margin| (ps)"});
  const int trials = 2000;
  double ms2 = 0.0, k4 = 0.0, k6 = 0.0, paper = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> units(24);
    for (auto& v : units) v = rng.gaussian(0.0, 10.0);
    // 2 options x 6 stages (MS [14]).
    ms2 += std::fabs(puf::kary_select(puf::kary_pairs_from_units(units, 6, 2, 1)[0]).margin);
    // 4 options x 3 stages ([15]-style richer stage).
    k4 += std::fabs(puf::kary_select(puf::kary_pairs_from_units(units, 3, 4, 1)[0]).margin);
    // 6 options x 2 stages.
    k6 += std::fabs(puf::kary_select(puf::kary_pairs_from_units(units, 2, 6, 1)[0]).margin);
    // The paper: 12 units per RO, in/out per unit, Case-2.
    const std::vector<double> top(units.begin(), units.begin() + 12);
    const std::vector<double> bottom(units.begin() + 12, units.end());
    paper += std::fabs(puf::select_case2(top, bottom).margin);
  }
  table.add_row({"Maiti-Schaumont [14]", "6 stages x 2 options", TextTable::num(ms2 / trials, 1)});
  table.add_row({"Xin et al. [15] style", "3 stages x 4 options", TextTable::num(k4 / trials, 1)});
  table.add_row({"Xin et al. [15] style", "2 stages x 6 options", TextTable::num(k6 / trials, 1)});
  table.add_row({"this paper (Case-2)", "12 units, in/out each", TextTable::num(paper / trials, 1)});
  std::printf("%s\n", table.render().c_str());
}

void run() {
  bench::banner("bench_baseline_maiti_schaumont",
                "comparison baselines: Maiti-Schaumont [14] and Xin et al. [15]");
  margin_comparison();
  kary_comparison();
  reliability_comparison();
}

void bm_ms_select(benchmark::State& state) {
  Rng rng(3);
  puf::MsPair pair;
  pair.top.resize(16);
  pair.bottom.resize(16);
  for (std::size_t s = 0; s < 16; ++s) {
    pair.top[s] = puf::MsStage{rng.gaussian(0, 10), rng.gaussian(0, 10)};
    pair.bottom[s] = puf::MsStage{rng.gaussian(0, 10), rng.gaussian(0, 10)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf::ms_select_greedy(pair));
  }
}
BENCHMARK(bm_ms_select);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Serving extension: end-to-end wire-protocol load generation.
//
// Stands up the net/ authentication server (poll event loop + framed wire
// protocol) on a loopback ephemeral port and drives it with the pipelined
// client, measuring what the offline bench_auth_service cannot: the full
// request path — frame encode, TCP, frame extract, queue, verify_batch,
// response encode, TCP back. The offline batch engine is measured alongside
// so the table shows the serving overhead directly.
//
// Shape checks: online verdict digests must equal the offline digest for
// the same workload (the wire adds transport, never semantics), and every
// pipelined request must receive exactly one answer.
#include "bench_common.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "net/client.h"
#include "net/server.h"
#include "registry/registry.h"
#include "service/auth_service.h"

namespace {

using namespace ropuf;

constexpr std::size_t kDevices = 512;
constexpr std::size_t kRequests = 8192;

const registry::Registry& fleet_registry() {
  static const registry::Registry reg = [] {
    registry::FleetSpec spec;
    spec.devices = kDevices;
    spec.stages = 5;
    spec.pairs = 64;
    spec.seed = 0x5ca1ab1e;
    return registry::Registry::from_bytes(registry::build_fleet_registry(spec));
  }();
  return reg;
}

service::AuthServiceOptions service_options() {
  service::AuthServiceOptions options;
  options.response_bits = 32;
  options.max_distance = 4;
  options.cache_capacity = 4096;
  return options;
}

const std::vector<service::AuthRequest>& workload() {
  static const std::vector<service::AuthRequest> requests = [] {
    service::WorkloadSpec spec;
    spec.requests = kRequests;
    return service::synthesize_workload(fleet_registry(), service_options(), spec);
  }();
  return requests;
}

/// Server on its own thread for the duration of one measurement; run()
/// spawns the extra reactors itself when options ask for shards.
class ScopedServer {
 public:
  explicit ScopedServer(const service::AuthService* service,
                        net::ServerOptions options = fast_options())
      : server_(service, std::move(options)) {
    port_ = server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ScopedServer() {
    server_.request_stop();
    thread_.join();
  }
  std::uint16_t port() const { return port_; }

  static net::ServerOptions fast_options() {
    net::ServerOptions options;
    options.poll_interval_ms = 1;
    return options;
  }
  /// Round-robin pins connection placement (connection k -> shard k % N),
  /// so the scaling family measures N busy reactors, not kernel hash luck.
  static net::ServerOptions sharded_options(std::size_t shards) {
    net::ServerOptions options = fast_options();
    options.shards = shards;
    options.dispatch = net::DispatchMode::kRoundRobin;
    return options;
  }

 private:
  net::AuthServer server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// A service whose verify path runs inline (thread budget 1): in the shard
/// scaling family the reactor threads ARE the parallelism, and an inline
/// budget keeps them off the shared pool's one-region-at-a-time mutex.
service::AuthServiceOptions inline_service_options() {
  service::AuthServiceOptions options = service_options();
  options.threads = ThreadBudget(1);
  return options;
}

std::vector<net::WireResponse> drive(std::uint16_t port, std::size_t window) {
  net::ClientOptions options;
  options.port = port;
  options.window = window;
  net::AuthClient client(options);
  client.connect();
  return client.send_batch(workload());
}

/// Splits the workload over `connections` concurrent pipelined clients and
/// reassembles the responses into workload order (contiguous slices, so
/// concatenation in connection order restores it). Fresh connections every
/// call keep round-robin placement identical across iterations.
std::vector<net::WireResponse> drive_many(std::uint16_t port, std::size_t window,
                                          std::size_t connections) {
  const std::vector<service::AuthRequest>& all = workload();
  const std::size_t per = (all.size() + connections - 1) / connections;
  std::vector<std::vector<net::WireResponse>> parts(connections);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t begin = std::min(all.size(), c * per);
      const std::size_t end = std::min(all.size(), begin + per);
      if (begin == end) return;
      net::ClientOptions options;
      options.port = port;
      options.window = window;
      net::AuthClient client(options);
      client.connect();
      parts[c] = client.send_batch({all.begin() + static_cast<std::ptrdiff_t>(begin),
                                    all.begin() + static_cast<std::ptrdiff_t>(end)});
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<net::WireResponse> out;
  out.reserve(all.size());
  for (const std::vector<net::WireResponse>& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

constexpr std::size_t kScalingConnections = 4;
constexpr std::size_t kScalingWindow = 128;

void run() {
  bench::banner("bench_auth_server",
                "serving extension - end-to-end wire-protocol throughput");

  std::printf("registry: %zu devices   workload: %zu requests   transport: "
              "loopback TCP\n\n",
              fleet_registry().device_count(), workload().size());

  const service::AuthService service(&fleet_registry(), service_options());
  const std::uint64_t offline_digest =
      service::verdict_digest(service.verify_batch(workload()));

  const auto offline_start = std::chrono::steady_clock::now();
  service.verify_batch(workload());
  const std::chrono::duration<double> offline_elapsed =
      std::chrono::steady_clock::now() - offline_start;
  const double offline_rate = static_cast<double>(kRequests) / offline_elapsed.count();

  TextTable table({"window", "online req/s", "offline req/s", "wire overhead"});
  bool digests_match = true;
  bool every_request_answered = true;
  for (const std::size_t window : {16u, 128u, 512u}) {
    const ScopedServer server(&service);
    drive(server.port(), window);  // warm-up: fills the enrollment cache
    const auto start = std::chrono::steady_clock::now();
    const std::vector<net::WireResponse> responses = drive(server.port(), window);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(responses.size()) / elapsed.count();

    if (responses.size() != workload().size()) every_request_answered = false;
    std::vector<service::AuthVerdict> verdicts;
    verdicts.reserve(responses.size());
    for (const net::WireResponse& response : responses) {
      if (response.status > net::WireStatus::kMalformedRequest) continue;
      verdicts.push_back(net::auth_verdict(response));
    }
    if (verdicts.size() != responses.size() ||
        service::verdict_digest(verdicts) != offline_digest) {
      digests_match = false;
    }
    table.add_row({std::to_string(window), TextTable::num(rate / 1000.0, 1) + "k",
                   TextTable::num(offline_rate / 1000.0, 1) + "k",
                   TextTable::num(offline_rate / rate, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check (online digest == offline digest): %s\n",
              digests_match ? "HOLDS" : "VIOLATED");
  std::printf("shape check (every pipelined request answered once): %s\n",
              every_request_answered ? "HOLDS" : "VIOLATED");

  // Multi-reactor scaling: N shards, inline verification, 4 concurrent
  // pipelined connections placed round-robin.
  TextTable shard_table({"shards", "online req/s", "speedup"});
  bool shard_digests_match = true;
  double one_shard_rate = 0.0;
  double four_shard_rate = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const service::AuthService sharded_service(&fleet_registry(), inline_service_options());
    const ScopedServer server(&sharded_service, ScopedServer::sharded_options(shards));
    drive_many(server.port(), kScalingWindow, kScalingConnections);  // warm-up
    const auto start = std::chrono::steady_clock::now();
    const std::vector<net::WireResponse> responses =
        drive_many(server.port(), kScalingWindow, kScalingConnections);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(responses.size()) / elapsed.count();
    if (shards == 1) one_shard_rate = rate;
    if (shards == 4) four_shard_rate = rate;

    std::vector<service::AuthVerdict> verdicts;
    verdicts.reserve(responses.size());
    for (const net::WireResponse& response : responses) {
      if (response.status > net::WireStatus::kMalformedRequest) continue;
      verdicts.push_back(net::auth_verdict(response));
    }
    if (responses.size() != workload().size() ||
        verdicts.size() != responses.size() ||
        service::verdict_digest(verdicts) != offline_digest) {
      shard_digests_match = false;
    }
    shard_table.add_row({std::to_string(shards), TextTable::num(rate / 1000.0, 1) + "k",
                         TextTable::num(rate / one_shard_rate, 2) + "x"});
  }
  std::printf("%s\n", shard_table.render().c_str());
  std::printf("shape check (sharded digests == offline digest at 1/2/4 shards): %s\n",
              shard_digests_match ? "HOLDS" : "VIOLATED");
  // The scaling check needs the cores to exist: with fewer than 4 hardware
  // threads four reactors time-slice instead of running in parallel, so the
  // check reports the measured ratio without asserting (the CI perf gate
  // applies the same hardware awareness via the JSON context's num_cpus).
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    std::printf("shape check (4-shard throughput >= 2.5x single shard): %s (%.2fx)\n",
                four_shard_rate >= 2.5 * one_shard_rate ? "HOLDS" : "VIOLATED",
                four_shard_rate / one_shard_rate);
  } else {
    std::printf("shape check (4-shard throughput >= 2.5x single shard): "
                "SKIPPED (%u hardware threads, measured %.2fx)\n",
                cores, four_shard_rate / one_shard_rate);
  }
}

void bm_online_round_trips(benchmark::State& state) {
  static const service::AuthService service(&fleet_registry(), service_options());
  const ScopedServer server(&service);
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drive(server.port(), window));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_online_round_trips)->Arg(16)->Arg(128)->Unit(benchmark::kMillisecond);

/// The shard scaling family: 4 concurrent connections split the workload
/// over an N-shard server with inline verification. Names land in the
/// baseline JSON as bm_online_round_trips/shards:N; the CI perf gate checks
/// the 4-shard / 1-shard ratio when the host has the cores for it.
void bm_online_round_trips(benchmark::State& state, std::size_t shards) {
  const service::AuthService service(&fleet_registry(), inline_service_options());
  const ScopedServer server(&service, ScopedServer::sharded_options(shards));
  drive_many(server.port(), kScalingWindow, kScalingConnections);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        drive_many(server.port(), kScalingWindow, kScalingConnections));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRequests));
}
// UseRealTime: the bench thread only joins the sender threads, so CPU-time
// rates would be meaningless — throughput is a wall-clock property here.
BENCHMARK_CAPTURE(bm_online_round_trips, shards:1, 1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(bm_online_round_trips, shards:2, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(bm_online_round_trips, shards:4, 4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void bm_frame_encode_decode(benchmark::State& state) {
  // The pure wire cost per request: encode, extract, decode.
  const service::AuthRequest& request = workload().front();
  for (auto _ : state) {
    const std::string frame = net::encode_request_frame(request);
    const net::ExtractResult result = net::try_extract_frame(frame);
    benchmark::DoNotOptimize(net::decode_request_payload(result.frame.payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_frame_encode_decode);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

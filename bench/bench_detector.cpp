// Serving-layer extension: stream-detector overhead.
//
// The detector (src/service/detector.h) adds two costs to every served
// request: a penalty lookup in the admission pre-pass and a window-scan
// observation in the serial post-pass. Both sit on the batch path of every
// request — suspicious or not — so the clean-traffic cost is the one that
// matters for capacity planning. Measured here:
//
//   observe/clean   — distinct-challenge, genuine-shaped observations (the
//                     steady state: window scan, no flags, decay ticks)
//   observe/attack  — the distance-oracle shape (repeat + single-bit flags,
//                     staircase chains, ladder escalations)
//   penalty lookup  — the admission pre-pass read for a tracked device
//   verify_batch    — end-to-end service throughput, detector off vs on
//
// Shape checks: a clean stream must end at level 0 and the attack stream at
// the ladder cap, and enabling the detector (without admission) must not
// change a single verdict (digest equality — the parity contract).
#include "bench_common.h"

#include <chrono>

#include "common/rng.h"
#include "common/table.h"
#include "registry/registry.h"
#include "service/auth_service.h"
#include "service/detector.h"

namespace {

using namespace ropuf;

constexpr std::size_t kObservations = 16384;
constexpr std::size_t kDevices = 256;
constexpr std::size_t kRequests = 8192;

service::DetectorOptions detector_options() {
  service::DetectorOptions options;
  options.enabled = true;
  return options;
}

/// Genuine-shaped stream: fresh random challenges, ~half-weight accepted
/// responses, spread over a device population.
std::vector<std::pair<std::uint64_t, service::StreamObservation>> clean_stream() {
  std::vector<std::pair<std::uint64_t, service::StreamObservation>> stream;
  stream.reserve(kObservations);
  Rng rng(0xc1ea9);
  for (std::size_t i = 0; i < kObservations; ++i) {
    service::StreamObservation observation;
    observation.challenge = rng.next_u64();
    observation.guess_weight = 8 + rng.next_u64() % 9;
    observation.answered = true;
    observation.accepted = true;
    observation.distance = rng.next_u64() % 3;
    stream.emplace_back(i % kDevices, observation);
  }
  return stream;
}

/// The distance-oracle shape against one device: an answered weight-0
/// baseline then answered weight-1 probes of the same challenge stepping
/// +/-1 off its distance — every flag the classifier owns fires.
std::vector<std::pair<std::uint64_t, service::StreamObservation>> attack_stream() {
  std::vector<std::pair<std::uint64_t, service::StreamObservation>> stream;
  stream.reserve(kObservations);
  for (std::size_t i = 0; i < kObservations; ++i) {
    const std::size_t phase = i % 17;
    service::StreamObservation observation;
    observation.challenge = 9000 + i / 17;
    observation.guess_weight = phase == 0 ? 0 : 1;
    observation.answered = true;
    observation.accepted = false;
    observation.distance = phase == 0 ? 8 : (phase % 2 == 0 ? 9 : 7);
    stream.emplace_back(7, observation);
  }
  return stream;
}

const registry::Registry& fleet_registry() {
  static const registry::Registry reg = [] {
    registry::FleetSpec spec;
    spec.devices = kDevices;
    spec.stages = 5;
    spec.pairs = 32;
    spec.seed = 0x5ca1ab1e;
    return registry::Registry::from_bytes(registry::build_fleet_registry(spec));
  }();
  return reg;
}

service::AuthServiceOptions service_options(bool detect) {
  service::AuthServiceOptions options;
  options.response_bits = 16;
  options.detector.enabled = detect;
  return options;
}

const std::vector<service::AuthRequest>& workload() {
  static const std::vector<service::AuthRequest> requests = [] {
    service::WorkloadSpec spec;
    spec.requests = kRequests;
    return service::synthesize_workload(fleet_registry(), service_options(false),
                                        spec);
  }();
  return requests;
}

double measure_observations_per_sec(
    const std::vector<std::pair<std::uint64_t, service::StreamObservation>>& stream) {
  service::StreamDetector detector{detector_options()};
  const auto start = std::chrono::steady_clock::now();
  for (const auto& [device, observation] : stream) {
    detector.observe(device, observation);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(stream.size()) / elapsed.count();
}

void run() {
  bench::banner("bench_detector",
                "serving extension - stream-detector observation overhead");

  const auto clean = clean_stream();
  const auto attack = attack_stream();

  // Shape checks first: the classifier must separate the two streams.
  service::StreamDetector clean_detector{detector_options()};
  for (const auto& [device, observation] : clean) {
    clean_detector.observe(device, observation);
  }
  service::StreamDetector attack_detector{detector_options()};
  for (const auto& [device, observation] : attack) {
    attack_detector.observe(device, observation);
  }
  std::uint32_t worst_clean = 0;
  for (std::uint64_t device = 0; device < kDevices; ++device) {
    worst_clean = std::max(worst_clean, clean_detector.level(device));
  }

  TextTable table({"stream", "observations/s", "final level"});
  table.add_row({"clean", TextTable::num(measure_observations_per_sec(clean) / 1e6, 2) + "M",
                 std::to_string(worst_clean)});
  table.add_row({"attack", TextTable::num(measure_observations_per_sec(attack) / 1e6, 2) + "M",
                 std::to_string(attack_detector.level(7))});
  std::printf("%s\n", table.render().c_str());

  std::printf("shape check (clean stream never escalates): %s\n",
              worst_clean == 0 ? "HOLDS" : "VIOLATED");
  std::printf("shape check (attack stream hits the ladder cap): %s\n",
              attack_detector.level(7) == detector_options().max_level ? "HOLDS"
                                                                       : "VIOLATED");

  // Verdict parity: detection alone (no admission) must change nothing.
  const service::AuthService plain(&fleet_registry(), service_options(false));
  const service::AuthService watched(&fleet_registry(), service_options(true));
  const bool parity = service::verdict_digest(plain.verify_batch(workload())) ==
                      service::verdict_digest(watched.verify_batch(workload()));
  std::printf("shape check (detector-on verdict digest unchanged): %s\n",
              parity ? "HOLDS" : "VIOLATED");
}

void bm_observe_clean(benchmark::State& state) {
  const auto stream = clean_stream();
  for (auto _ : state) {
    service::StreamDetector detector{detector_options()};
    for (const auto& [device, observation] : stream) {
      detector.observe(device, observation);
    }
    benchmark::DoNotOptimize(detector.tracked_devices());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kObservations));
}
BENCHMARK(bm_observe_clean)->Unit(benchmark::kMillisecond);

void bm_observe_attack(benchmark::State& state) {
  const auto stream = attack_stream();
  for (auto _ : state) {
    service::StreamDetector detector{detector_options()};
    for (const auto& [device, observation] : stream) {
      detector.observe(device, observation);
    }
    benchmark::DoNotOptimize(detector.level(7));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kObservations));
}
BENCHMARK(bm_observe_attack)->Unit(benchmark::kMillisecond);

void bm_penalty_lookup(benchmark::State& state) {
  // The admission pre-pass read: one mutex acquire + hash lookup per
  // request, against a populated device table.
  service::StreamDetector detector{detector_options()};
  for (const auto& [device, observation] : clean_stream()) {
    detector.observe(device, observation);
  }
  std::uint64_t device = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.penalty(device++ % kDevices));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_penalty_lookup);

void bm_verify_batch(benchmark::State& state) {
  // End-to-end: the detector's pre+post passes riding the real batch path.
  const service::AuthService service(&fleet_registry(),
                                     service_options(state.range(0) != 0));
  service.verify_batch(workload());  // warm the enrollment cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.verify_batch(workload()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_verify_batch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

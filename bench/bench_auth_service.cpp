// Serving-layer extension: batched authentication throughput.
//
// Builds a fleet-scale registry (src/registry/), stands up the auth service
// (src/service/) and measures batched challenge-response verification
// throughput at thread budgets 1, 2 and 8 — the deployment knob a verifier
// operator actually turns. Two paths are measured:
//
//   warm  — the enrollment cache holds every requested device, so a request
//           costs one shard lookup plus the CRP comparison
//   cold  — the cache is disabled, so every request pays the full binary
//           record decode (the cost the LRU exists to elide)
//
// Shape checks: verdicts must be bit-identical across budgets (the
// determinism contract), and the warm path at 8 threads must clear 3x the
// single-thread throughput.
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "common/table.h"
#include "registry/registry.h"
#include "service/auth_service.h"

namespace {

using namespace ropuf;

constexpr std::size_t kDevices = 2048;
constexpr std::size_t kRequests = 16384;

const registry::Registry& fleet_registry() {
  static const registry::Registry reg = [] {
    registry::FleetSpec spec;
    spec.devices = kDevices;
    spec.stages = 5;
    spec.pairs = 64;
    spec.seed = 0x5ca1ab1e;
    return registry::Registry::from_bytes(registry::build_fleet_registry(spec));
  }();
  return reg;
}

service::AuthServiceOptions service_options(std::size_t threads, bool cached) {
  service::AuthServiceOptions options;
  options.response_bits = 32;
  options.max_distance = 4;
  options.cache_capacity = cached ? 4096 : 0;
  options.threads = ThreadBudget(threads);
  return options;
}

const std::vector<service::AuthRequest>& workload() {
  static const std::vector<service::AuthRequest> requests = [] {
    service::WorkloadSpec spec;
    spec.requests = kRequests;
    return service::synthesize_workload(fleet_registry(), service_options(1, true),
                                        spec);
  }();
  return requests;
}

double measure_verifications_per_sec(const service::AuthService& service) {
  const auto start = std::chrono::steady_clock::now();
  const auto verdicts = service.verify_batch(workload());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(verdicts.size()) / elapsed.count();
}

void run() {
  bench::banner("bench_auth_service",
                "serving extension - batched CRP verification throughput");

  std::printf("registry: %zu devices, %zu bytes   workload: %zu requests\n\n",
              fleet_registry().device_count(), fleet_registry().byte_size(),
              workload().size());

  TextTable table({"threads", "warm verif/s", "cold verif/s", "speedup (warm)"});
  double warm_single = 0.0, warm_eight = 0.0;
  std::uint64_t reference_digest = 0;
  bool deterministic = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const service::AuthService warm(&fleet_registry(), service_options(threads, true));
    const service::AuthService cold(&fleet_registry(), service_options(threads, false));
    // Warm-up pass fills the LRU (and surfaces first-touch costs once).
    const auto verdicts = warm.verify_batch(workload());
    const std::uint64_t digest = service::verdict_digest(verdicts);
    if (threads == 1) reference_digest = digest;
    if (digest != reference_digest) deterministic = false;

    const double warm_rate = measure_verifications_per_sec(warm);
    const double cold_rate = measure_verifications_per_sec(cold);
    if (threads == 1) warm_single = warm_rate;
    if (threads == 8) warm_eight = warm_rate;
    table.add_row({std::to_string(threads), TextTable::num(warm_rate / 1000.0, 1) + "k",
                   TextTable::num(cold_rate / 1000.0, 1) + "k",
                   TextTable::num(warm_rate / warm_single, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check (verdicts bit-identical across budgets): %s\n",
              deterministic ? "HOLDS" : "VIOLATED");
  // The scaling check needs the cores to exist: on a machine with fewer
  // than 8 hardware threads an 8-thread budget cannot beat wall-clock, so
  // the check reports the measured ratio without asserting.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 8) {
    std::printf("shape check (warm path >= 3x single-thread at 8 threads): %s "
                "(%.2fx)\n",
                warm_eight >= 3.0 * warm_single ? "HOLDS" : "VIOLATED",
                warm_eight / warm_single);
  } else {
    std::printf("shape check (warm path >= 3x single-thread at 8 threads): "
                "SKIPPED (%u hardware threads, measured %.2fx)\n",
                cores, warm_eight / warm_single);
  }
}

void bm_verify_batch_warm(benchmark::State& state) {
  const service::AuthService service(
      &fleet_registry(),
      service_options(static_cast<std::size_t>(state.range(0)), true));
  service.verify_batch(workload());  // fill the cache outside the timing loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.verify_batch(workload()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_verify_batch_warm)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_verify_batch_cold(benchmark::State& state) {
  const service::AuthService service(
      &fleet_registry(),
      service_options(static_cast<std::size_t>(state.range(0)), false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.verify_batch(workload()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_verify_batch_cold)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_registry_lookup(benchmark::State& state) {
  // The cold path's unit cost: binary search + one record decode.
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t id = fleet_registry().device_id_at(i++ % kDevices);
    benchmark::DoNotOptimize(fleet_registry().lookup(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_registry_lookup);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

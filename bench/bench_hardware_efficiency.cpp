// Hardware-efficiency comparison (abstract + Sections I/II claims).
//
// "Our approach ... is 4X more hardware efficient than the robust
// 1-out-of-8 RO PUF": 2 ROs per bit against 8. The table also carries the
// per-stage MUX overhead of the configurable design and the related-work
// yield context.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "analysis/hardware_cost.h"
#include "common/table.h"
#include "puf/cooperative.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_hardware_efficiency",
                "hardware-cost accounting behind the abstract's 4X claim");

  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    std::printf("RO length n = %zu:\n", n);
    TextTable table({"scheme", "ROs/bit", "inverters/bit", "MUXes/bit",
                     "bits per 512-unit board", "efficiency vs 1-of-8"});
    for (const auto& cost : analysis::hardware_cost_table(n)) {
      table.add_row({cost.scheme, TextTable::num(cost.ros_per_bit, 0),
                     TextTable::num(cost.inverters_per_bit, 0),
                     TextTable::num(cost.muxes_per_bit, 0),
                     TextTable::num(cost.bits_per_512_units, 0),
                     TextTable::num(cost.efficiency_vs_one8, 1) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Utilization comparison against the cooperative scheme of [2] (Section
  // II: "80% higher hardware utilization than the 1-out-of-8 scheme", at
  // the cost of a temperature sensor). Enroll per temperature region on an
  // env board and report bits per 8-RO group.
  {
    const sil::Chip& board = bench::vt_fleet().env[0];
    const puf::BoardLayout layout = puf::paper_layout(5);
    analysis::DatasetOptions opts;
    opts.distill = false;
    Rng rng(0xc0);
    std::vector<std::vector<double>> region_values;
    for (const double t : sil::vt_temperatures()) {
      region_values.push_back(analysis::board_unit_values(board, {1.20, t}, opts, rng));
    }
    // [2]'s utilization depends on its reliability threshold; sweep it and
    // report the curve (the paper quotes ~80% higher than 1-out-of-8, i.e.
    // ~1.8 bits per group, at their reliability target).
    std::printf("cooperative RO PUF [2] (needs temperature sensor):\n");
    std::printf("  gap threshold (ps)   bits per 8-RO group   vs 1-out-of-8\n");
    for (const double th : {0.0, 45.0, 75.0, 105.0, 135.0}) {
      const auto coop = puf::cooperative_enroll(region_values, layout, 8, th);
      const double bits_per_group = puf::cooperative_bits_per_group(coop);
      std::printf("  %18.0f   %19.2f   %+.0f%%\n", th, bits_per_group,
                  100.0 * (bits_per_group - 1.0));
    }
    std::printf("  configurable PUF: 4.00 bits per 8-RO group at any threshold it\n"
                "  can clear by selection, with no sensor\n\n");
  }

  std::printf("related-work context (Section II):\n");
  std::printf("  Maiti-Schaumont configurable RO [14]: 3-stage RO per CLB, 8 configs/RO\n");
  std::printf("  Xin et al. [15]: 256 configs in the same CLB budget\n");
  std::printf("  this paper: per-inverter selection, 2^n - ... distinct odd subsets per RO,\n");
  std::printf("  post-silicon configured, no temperature sensor or ECC circuitry\n");
}

void bm_cost_table(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::hardware_cost_table(5));
  }
}
BENCHMARK(bm_cost_table);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// ECC-elimination ablation (paper Section III.C, third advantage).
//
// "When we cannot find a subset of inverters to generate a large delay
//  difference ... we don't have to use the PUF bit generated from this
//  pair. This can eliminate the cost of ECC circuitry."
//
// This bench makes the claim concrete by building stable keys from the
// environment-swept boards two ways:
//   * traditional RO PUF + code-offset fuzzy extractor over several codes
//     (repetition, Hamming(7,4), BCH(15,7)) — the classic pipeline [10-12];
//   * configurable RO PUF bare (no ECC), enrolled at the nominal corner.
// Reported per scheme: key-failure rate across all stress voltages, key
// bits per board, helper-data storage, and response bits burned per key bit.
#include "bench_common.h"

#include <optional>

#include "analysis/experiments.h"
#include "common/table.h"
#include "crypto/fuzzy_extractor.h"
#include "puf/schemes.h"

namespace {

using namespace ropuf;

constexpr std::size_t kStages = 7;

struct SchemeOutcome {
  std::string name;
  std::size_t key_bits = 0;
  std::size_t helper_bits = 0;
  std::size_t failures = 0;
  std::size_t trials = 0;
  double response_bits_per_key_bit = 0.0;
};

void run() {
  bench::banner("bench_ablation_ecc",
                "key stability: traditional + ECC vs configurable without ECC");

  const auto& boards = bench::vt_fleet().env;
  const puf::BoardLayout layout = puf::paper_layout(kStages);
  std::printf("setup: %zu boards, n=%zu stages, %zu raw bits per board, enrollment "
              "at 1.20V, stress at the other four VT voltages\n\n",
              boards.size(), kStages, layout.pair_count);

  const crypto::CyclicCode rep5 = crypto::CyclicCode::repetition(5);
  const crypto::CyclicCode rep7 = crypto::CyclicCode::repetition(7);
  const crypto::CyclicCode hamming = crypto::CyclicCode::hamming_7_4();
  const crypto::CyclicCode bch = crypto::CyclicCode::bch_15_7();
  const crypto::CyclicCode golay = crypto::CyclicCode::golay_23_12();
  struct CodeEntry {
    const char* label;
    const crypto::CyclicCode* code;
  };
  const CodeEntry codes[] = {
      {"repetition(5)", &rep5}, {"repetition(7)", &rep7},
      {"Hamming(7,4)", &hamming}, {"BCH(15,7)", &bch},
      {"Golay(23,12)", &golay}};

  std::vector<SchemeOutcome> outcomes;
  SchemeOutcome trad_bare{"traditional, no ECC", layout.pair_count, 0, 0, 0, 1.0};
  SchemeOutcome conf_bare{"configurable, no ECC (paper)", layout.pair_count, 0, 0, 0, 1.0};
  std::vector<SchemeOutcome> trad_ecc;
  for (const auto& entry : codes) {
    const std::size_t blocks = layout.pair_count / entry.code->n();
    SchemeOutcome o;
    o.name = std::string("traditional + ") + entry.label;
    o.key_bits = blocks * entry.code->k();
    o.helper_bits = blocks * entry.code->n();
    o.response_bits_per_key_bit =
        static_cast<double>(entry.code->n()) / static_cast<double>(entry.code->k());
    trad_ecc.push_back(o);
  }

  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kSameConfig;
  opts.distill = false;
  Rng master(0xecc);

  for (std::uint64_t repeat = 0; repeat < 3; ++repeat) {
    for (const sil::Chip& board : boards) {
      Rng rng = master.fork();
      // Snapshots at every voltage corner.
      std::vector<std::vector<double>> values;
      for (const double v : sil::vt_voltages()) {
        values.push_back(analysis::board_unit_values(board, {v, 25.0}, opts, rng));
      }
      constexpr std::size_t kNominalIdx = 2;

      // Enrollment at nominal.
      const puf::TraditionalResult trad_base =
          puf::traditional_respond(values[kNominalIdx], layout);
      const auto conf_enrollment = puf::configurable_enroll(
          values[kNominalIdx], layout, puf::SelectionCase::kSameConfig);
      const BitVec conf_base = conf_enrollment.response();

      std::vector<crypto::FuzzyEnrollment> fuzzy_enrollments;
      for (const auto& entry : codes) {
        const crypto::FuzzyExtractor extractor(entry.code);
        fuzzy_enrollments.push_back(extractor.generate(trad_base.response, rng));
      }

      // Field reproduction at each stress corner.
      for (std::size_t c = 0; c < values.size(); ++c) {
        if (c == kNominalIdx) continue;
        const BitVec trad_stress = puf::traditional_respond(values[c], layout).response;
        const BitVec conf_stress = puf::configurable_respond(values[c], conf_enrollment);

        ++trad_bare.trials;
        if (trad_stress != trad_base.response) ++trad_bare.failures;
        ++conf_bare.trials;
        if (conf_stress != conf_base) ++conf_bare.failures;

        for (std::size_t k = 0; k < trad_ecc.size(); ++k) {
          const crypto::FuzzyExtractor extractor(codes[k].code);
          const std::optional<crypto::Sha256Digest> key =
              extractor.reproduce(trad_stress, fuzzy_enrollments[k].helper);
          ++trad_ecc[k].trials;
          if (!key.has_value() || *key != fuzzy_enrollments[k].key) {
            ++trad_ecc[k].failures;
          }
        }
      }
    }
  }

  outcomes.push_back(trad_bare);
  for (const auto& o : trad_ecc) outcomes.push_back(o);
  outcomes.push_back(conf_bare);

  TextTable table({"scheme", "key bits/board", "helper bits", "resp.bits per key bit",
                   "key failure rate"});
  for (const auto& o : outcomes) {
    table.add_row({o.name, std::to_string(o.key_bits), std::to_string(o.helper_bits),
                   TextTable::num(o.response_bits_per_key_bit, 2),
                   TextTable::num(100.0 * static_cast<double>(o.failures) /
                                      static_cast<double>(o.trials),
                                  1) +
                       "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: the configurable PUF reaches (or beats) the ECC pipelines'\n"
              "key stability while keeping every response bit as key material and\n"
              "storing no helper data — the paper's 'eliminate ECC' argument.\n");
}

void bm_fuzzy_reproduce(benchmark::State& state) {
  const crypto::CyclicCode code = crypto::CyclicCode::bch_15_7();
  const crypto::FuzzyExtractor extractor(&code);
  Rng rng(9);
  BitVec response(60);
  for (std::size_t i = 0; i < 60; ++i) response.set(i, rng.flip());
  const auto enrollment = extractor.generate(response, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.reproduce(response, enrollment.helper));
  }
}
BENCHMARK(bm_fuzzy_reproduce)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

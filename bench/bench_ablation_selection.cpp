// Ablations of the design choices DESIGN.md section 7 calls out.
//
//  A. Selection quality: Case-1 vs Case-2 vs the unconstrained oracle —
//     what the shared-configuration and equal-popcount constraints cost in
//     achievable margin.
//  B. Distiller degree vs NIST outcome: how much systematic removal the
//     randomness result actually needs.
//  C. Measurement scheme: paper's minimal leave-one-out extraction vs
//     redundant least-squares under counter noise.
//  D. Margin vs RO length n: the mechanism behind Fig. 4's observation 3.
//  E. Circuit-level refinements (DESIGN.md sec. 6a): base-aware direction
//     choice and interleaved pair placement, on a full-circuit device.
#include "bench_common.h"

#include <cmath>

#include "analysis/experiments.h"
#include "common/table.h"
#include "nist/report.h"
#include "nist/suite.h"
#include "puf/chip_puf.h"
#include "puf/measurement.h"
#include "puf/schemes.h"
#include "ro/delay_extractor.h"

namespace {

using namespace ropuf;

void ablation_selection_margin() {
  std::printf("--- A. mean |margin| by selection strategy (1000 random pairs) ---\n");
  TextTable table({"n", "traditional", "Case-1", "Case-2", "unconstrained oracle"});
  Rng rng(1);
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    double trad = 0.0, case1 = 0.0, case2 = 0.0, oracle = 0.0;
    const int trials = 1000;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> top(n), bottom(n);
      for (auto& v : top) v = rng.gaussian(0.0, 10.0);
      for (auto& v : bottom) v = rng.gaussian(0.0, 10.0);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += top[i] - bottom[i];
      trad += std::fabs(sum);
      case1 += std::fabs(puf::select_case1(top, bottom).margin);
      case2 += std::fabs(puf::select_case2(top, bottom).margin);
      oracle += std::fabs(puf::select_exhaustive_unconstrained(top, bottom).margin);
    }
    table.add_row({std::to_string(n), TextTable::num(trad / trials, 1),
                   TextTable::num(case1 / trials, 1), TextTable::num(case2 / trials, 1),
                   TextTable::num(oracle / trials, 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_distiller_degree() {
  std::printf("--- B. distiller degree vs NIST verdict (Case-1 pipeline, 97 streams) ---\n");
  TextTable table({"distiller", "NIST verdict", "rows failing"});
  for (int degree = -1; degree <= 3; ++degree) {
    analysis::DatasetOptions opts;
    opts.mode = puf::SelectionCase::kSameConfig;
    opts.stages = 5;
    opts.distill = degree >= 0;
    opts.distiller_degree = degree < 0 ? 0 : static_cast<std::size_t>(degree);
    const auto responses = analysis::board_responses(bench::vt_fleet().nominal, opts);
    nist::FinalAnalysisReport report;
    for (const auto& s : analysis::combine_board_pairs(responses)) {
      report.add_sequence(nist::run_suite(s, nist::paper_config()));
    }
    std::size_t failing = 0;
    for (const auto& row : report.rows()) {
      if (!row.proportion_ok || !row.uniformity_ok) ++failing;
    }
    table.add_row({degree < 0 ? "off" : "degree " + std::to_string(degree),
                   report.all_pass() ? "PASS" : "FAIL", std::to_string(failing)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_measurement() {
  std::printf("--- C. extraction accuracy vs measurement redundancy (noisy counter) ---\n");
  sil::Fab fab(sil::ProcessParams{}, 11);
  const sil::Chip chip = fab.fabricate(8, 8);
  const ro::ConfigurableRo ring(&chip, {0, 1, 2, 3, 4, 5, 6});
  const auto truth = ring.true_ddiffs_ps(sil::nominal_op());

  ro::FrequencyCounterSpec noisy;
  noisy.gate_time_s = 5e-5;
  noisy.jitter_sigma_rel = 2e-4;
  noisy.aux_calibration_error_rel = 0.0;

  TextTable table({"scheme", "measurements/RO", "RMS error (ps)"});
  auto rms = [&](auto&& extract) {
    Rng rng(12);
    const ro::FrequencyCounter counter(noisy, rng);
    const ro::DelayExtractor extractor(&counter);
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      const std::vector<double> est = extract(extractor, rng);
      for (std::size_t i = 0; i < truth.size(); ++i) {
        total += (est[i] - truth[i]) * (est[i] - truth[i]);
      }
    }
    return std::sqrt(total / (trials * static_cast<double>(truth.size())));
  };

  const double loo = rms([&](const ro::DelayExtractor& ex, Rng& rng) {
    return ex.extract_leave_one_out(ring, sil::nominal_op(), rng);
  });
  table.add_row({"leave-one-out (paper III.B)", "8", TextTable::num(loo, 3)});

  const double loo4 = rms([&](const ro::DelayExtractor& ex, Rng& rng) {
    return ex.extract_leave_one_out(ring, sil::nominal_op(), rng, 4);
  });
  table.add_row({"leave-one-out, 4x averaged", "32", TextTable::num(loo4, 3)});

  const double ls = rms([&](const ro::DelayExtractor& ex, Rng& rng) {
    const auto configs = ex.design_configs(7, 16, rng);
    return ex.extract_least_squares(ring, configs, sil::nominal_op(), rng).ddiff_ps;
  });
  table.add_row({"least squares, +16 random configs", "24", TextTable::num(ls, 3)});
  std::printf("%s\n", table.render().c_str());
}

void ablation_margin_vs_n() {
  std::printf("--- D. configured margin vs RO length (board 0, Case-1, raw) ---\n");
  const sil::Chip& board = bench::vt_fleet().nominal[0];
  Rng rng(13);
  const auto values =
      puf::measure_unit_ddiffs(board, sil::nominal_op(), puf::UnitMeasurementSpec{}, rng);
  TextTable table({"n", "bits", "mean |margin| (ps)", "min |margin| (ps)"});
  for (const std::size_t n : {3u, 5u, 7u, 9u, 13u}) {
    const puf::BoardLayout layout = puf::paper_layout(n);
    const auto enrollment =
        puf::configurable_enroll(values, layout, puf::SelectionCase::kSameConfig);
    double mean = 0.0, min = 1e300;
    for (const auto& sel : enrollment.selections) {
      mean += std::fabs(sel.margin);
      min = std::min(min, std::fabs(sel.margin));
    }
    mean /= static_cast<double>(enrollment.selections.size());
    table.add_row({std::to_string(n), std::to_string(layout.pair_count),
                   TextTable::num(mean, 1), TextTable::num(min, 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_circuit_refinements() {
  std::printf("--- E. circuit-level refinements: base awareness x pair placement ---\n");
  // Full-circuit devices on one in-house board; enroll at nominal, count
  // flips against the lowest VT voltage. Margins are the stored effective
  // ones (incl. the bypass mismatch dB).
  const sil::Chip& board = bench::inhouse_fleet()[0];
  TextTable table({"placement", "base-aware", "mean |margin| (ps)", "min |margin| (ps)",
                   "flips @0.98V (of 32)"});
  for (const auto placement :
       {ro::PairPlacement::kAdjacentBlocks, ro::PairPlacement::kInterleaved}) {
    for (const bool base_aware : {false, true}) {
      puf::DeviceSpec spec;
      spec.stages = 13;
      spec.pair_count = 32;
      spec.placement = placement;
      spec.base_aware = base_aware;
      Rng rng(0xab1a);
      puf::ConfigurableRoPufDevice device(&board, spec, rng);
      device.enroll(sil::nominal_op(), rng);
      double mean = 0.0, min = 1e300;
      for (const auto& sel : device.selections()) {
        mean += std::fabs(sel.margin);
        min = std::min(min, std::fabs(sel.margin));
      }
      mean /= static_cast<double>(device.selections().size());
      const std::size_t flips = device.enrolled_response().hamming_distance(
          device.respond({0.98, 25.0}, rng));
      table.add_row({placement == ro::PairPlacement::kInterleaved ? "interleaved"
                                                                  : "adjacent blocks",
                     base_aware ? "on" : "off", TextTable::num(mean, 1),
                     TextTable::num(min, 1), std::to_string(flips)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("block placement exposes the pair to the spatial trend (larger raw\n"
              "margins, but systematic — see Section IV.E calibration notes);\n"
              "base awareness recovers margin lost to the bypass mismatch dB.\n");
}

void run() {
  bench::banner("bench_ablation_selection", "design-choice ablations (DESIGN.md sec. 7)");
  ablation_selection_margin();
  ablation_distiller_degree();
  ablation_measurement();
  ablation_margin_vs_n();
  ablation_circuit_refinements();
}

void bm_case1_vs_case2(benchmark::State& state) {
  Rng rng(14);
  std::vector<double> top(63), bottom(63);
  for (auto& v : top) v = rng.gaussian(0.0, 10.0);
  for (auto& v : bottom) v = rng.gaussian(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf::select_case1(top, bottom));
    benchmark::DoNotOptimize(puf::select_case2(top, bottom));
  }
}
BENCHMARK(bm_case1_vs_case2);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md section 5): it prints the reproduced artifact to stdout, then
// runs its registered google-benchmark timings. The experiment inputs are
// the synthetic fleets of silicon/fleet.h with the default (published)
// seeds, so every bench is exactly reproducible.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "silicon/fleet.h"

namespace ropuf::bench {

/// The full paper-scale VT fleet (194 nominal + 5 environment boards).
inline const sil::VtFleet& vt_fleet() {
  static const sil::VtFleet fleet = sil::make_vt_fleet(sil::VtFleetSpec{});
  return fleet;
}

/// The in-house Virtex-5 stand-in (9 boards x 1024 inverters).
inline const std::vector<sil::Chip>& inhouse_fleet() {
  static const std::vector<sil::Chip> fleet =
      sil::make_inhouse_fleet(sil::InHouseFleetSpec{});
  return fleet;
}

/// Prints the experiment header banner.
inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("================================================================\n\n");
}

/// The --benchmark_out= path, read before benchmark::Initialize strips the
/// flag from argv. Empty when no JSON output was requested.
inline std::string benchmark_out_path(int argc, char** argv) {
  const std::string prefix = "--benchmark_out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return {};
}

/// Splices the current metrics snapshot into the google-benchmark JSON file
/// as a top-level "ropuf_metrics" key, so every BENCH_*.json carries the
/// workload counters alongside the timings (tools/run_benches relies on
/// this). The benchmark library owns the file format, so the snapshot is
/// inserted before the document's final brace rather than parsed in.
inline void embed_metrics_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return;  // benchmark library reported its own error
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string doc = buffer.str();
  const std::size_t close = doc.rfind('}');
  if (close == std::string::npos) return;
  const std::string snapshot = obs::metrics_to_json(obs::Registry::instance().snapshot());
  doc.insert(close, ",\n  \"ropuf_metrics\": " + snapshot + "\n");
  obs::write_text_file(path, doc);
}

/// Runs the experiment body, then google-benchmark. Usage:
///   int main(int argc, char** argv) { return bench_main(argc, argv, run); }
/// Metrics collection is on for the whole run; when --benchmark_out=F.json
/// was passed the final snapshot is embedded into F.json.
template <typename Fn>
int bench_main(int argc, char** argv, Fn&& experiment) {
  // ROPUF_BENCH_METRICS=off gives an uninstrumented A/B reference for
  // measuring the (sub-percent) overhead of the always-on collection.
  const char* metrics_env = std::getenv("ROPUF_BENCH_METRICS");
  obs::set_metrics_enabled(metrics_env == nullptr ||
                           std::strcmp(metrics_env, "off") != 0);
  const std::string out_path = benchmark_out_path(argc, argv);
  try {
    experiment();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!out_path.empty()) embed_metrics_snapshot(out_path);
  return 0;
}

}  // namespace ropuf::bench

// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md section 5): it prints the reproduced artifact to stdout, then
// runs its registered google-benchmark timings. The experiment inputs are
// the synthetic fleets of silicon/fleet.h with the default (published)
// seeds, so every bench is exactly reproducible.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <exception>

#include "silicon/fleet.h"

namespace ropuf::bench {

/// The full paper-scale VT fleet (194 nominal + 5 environment boards).
inline const sil::VtFleet& vt_fleet() {
  static const sil::VtFleet fleet = sil::make_vt_fleet(sil::VtFleetSpec{});
  return fleet;
}

/// The in-house Virtex-5 stand-in (9 boards x 1024 inverters).
inline const std::vector<sil::Chip>& inhouse_fleet() {
  static const std::vector<sil::Chip> fleet =
      sil::make_inhouse_fleet(sil::InHouseFleetSpec{});
  return fleet;
}

/// Prints the experiment header banner.
inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("================================================================\n\n");
}

/// Runs the experiment body, then google-benchmark. Usage:
///   int main(int argc, char** argv) { return bench_main(argc, argv, run); }
template <typename Fn>
int bench_main(int argc, char** argv, Fn&& experiment) {
  try {
    experiment();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ropuf::bench

// Section IV.E: reliability threshold sweep on the in-house fleet.
//
// 9 Virtex-5-class boards, 1024 inverters each; 64 ROs of up to 13
// inverters form 32 pairs -> 32 potential bits. The traditional RO PUF
// keeps a pair only when its delay difference exceeds Rth; the paper
// reports 32 bits at Rth=0 dropping to 13 at Rth=3, while the configurable
// PUF still yields all 32 reliable bits at Rth=3.
//
// The paper's Rth is in counter units of its measurement setup; this
// reproduction expresses Rth in picoseconds and reports the paper-unit
// mapping that matches the traditional PUF's 32 -> 13 drop.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "common/table.h"
#include "puf/chip_puf.h"

namespace {

using namespace ropuf;

puf::DeviceSpec device_spec() {
  puf::DeviceSpec spec;
  spec.stages = 13;
  spec.pair_count = 32;  // 64 ROs x 13 units = 832 of 1024 inverters
  spec.mode = puf::SelectionCase::kSameConfig;
  return spec;
}

void run() {
  bench::banner("bench_sec4e_threshold",
                "Section IV.E - reliable bits vs reliability threshold Rth");

  // A fine sweep to locate the paper's operating points.
  std::vector<double> rths;
  for (double r = 0.0; r <= 90.0; r += 7.5) rths.push_back(r);
  const auto sweep =
      analysis::threshold_sweep(bench::inhouse_fleet(), device_spec(), rths, 0x4e);

  TextTable table({"Rth (ps)", "Rth (paper units)", "traditional bits", "configurable bits"});
  // Calibrate the paper-unit scale: paper Rth=3 is where the traditional
  // PUF drops to ~13 of 32 bits.
  double rth_at_13 = rths.back();
  for (const auto& point : sweep) {
    if (point.traditional_reliable_bits <= 13.0) {
      rth_at_13 = point.rth_ps;
      break;
    }
  }
  const double ps_per_paper_unit = rth_at_13 / 3.0;
  for (const auto& point : sweep) {
    table.add_row({TextTable::num(point.rth_ps, 1),
                   TextTable::num(point.rth_ps / ps_per_paper_unit, 2),
                   TextTable::num(point.traditional_reliable_bits, 1),
                   TextTable::num(point.configurable_reliable_bits, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto at0 = sweep.front();
  std::printf("paper row Rth=0: traditional %.1f bits (paper 32), configurable %.1f (paper 32)\n",
              at0.traditional_reliable_bits, at0.configurable_reliable_bits);
  double conf_at_3 = 0.0, trad_at_3 = 0.0;
  for (const auto& point : sweep) {
    if (point.rth_ps <= rth_at_13) {
      conf_at_3 = point.configurable_reliable_bits;
      trad_at_3 = point.traditional_reliable_bits;
    }
  }
  std::printf("paper row Rth=3 (= %.1f ps): traditional %.1f bits (paper 13), "
              "configurable %.1f (paper 32)\n",
              rth_at_13, trad_at_3, conf_at_3);
  std::printf("shape check (configurable holds full yield where traditional halves): %s\n",
              conf_at_3 >= 30.0 && trad_at_3 <= 16.0 ? "HOLDS" : "VIOLATED");
}

void bm_device_enroll(benchmark::State& state) {
  const sil::Chip& board = bench::inhouse_fleet()[0];
  Rng rng(6);
  puf::ConfigurableRoPufDevice device(&board, device_spec(), rng);
  for (auto _ : state) {
    device.enroll(sil::nominal_op(), rng);
    benchmark::DoNotOptimize(device.selections());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(bm_device_enroll)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

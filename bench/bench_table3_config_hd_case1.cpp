// Table III: pairwise HD of the Case-1 best configurations.
//
// Section IV.C: n = 15 stages -> 16 RO pairs per board; each pair's optimal
// shared configuration is a 15-bit vector; 194 boards give 3104 vectors.
// The paper finds no duplicates and most pairs at HD 6 or 8.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "analysis/hamming_stats.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

void run() {
  bench::banner("bench_table3_config_hd_case1",
                "Table III - intra-chip HD of best configuration, Case-1 (3104 x 15-bit)");

  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kSameConfig;
  opts.distill = true;
  const auto streams = analysis::configuration_streams(bench::vt_fleet().nominal, opts);
  std::printf("configuration vectors: %zu x %zu bits\n\n", streams.size(),
              streams[0].size());

  const auto stats = analysis::pairwise_hd(streams);
  TextTable table({"HD", "% of pairs", "paper %"});
  const double paper[] = {0.0, 0.822, 9.80, 32.8, 38.3, 16.1, 2.15, 0.061};
  for (std::size_t hd = 0; hd <= 14; hd += 2) {
    table.add_row({std::to_string(hd), TextTable::num(stats.percent_at(hd), 3),
                   TextTable::num(paper[hd / 2], 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("duplicates (HD 0 pairs): %zu   (paper: none)\n", stats.duplicates);
  std::printf("mean HD %.2f of 15 bits\n", stats.mean);
}

void bm_configuration_streams(benchmark::State& state) {
  const auto& boards = bench::vt_fleet().nominal;
  const std::vector<sil::Chip> subset(boards.begin(), boards.begin() + 8);
  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kSameConfig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::configuration_streams(subset, opts));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 16);
}
BENCHMARK(bm_configuration_streams)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

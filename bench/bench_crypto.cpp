// Protocol-v2 cryptographic pipeline: fuzzy-extractor Gen/Rep, HMAC-SHA256
// and the v2 challenge-response wire exchange, measured side by side with
// the v1 CRP round trip.
//
// The v2 exchange costs two wire round trips (request -> challenge,
// proof -> response) plus one HMAC verification per request where v1 costs
// one round trip plus a Hamming-distance compare — this bench prints that
// overhead directly, next to the enrollment-time Gen cost and the
// prover-side Rep cost that amortize it.
//
// Shape checks: the online v2 verdict digest must equal the offline
// verify_proof_batch digest for the same intents (the wire adds transport,
// never semantics), every intent must be answered exactly once, and a
// replayed proof transcript must reject.
#include "bench_common.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "auth/auth.h"
#include "common/rng.h"
#include "common/table.h"
#include "crypto/hmac.h"
#include "net/client.h"
#include "net/server.h"
#include "registry/registry.h"
#include "service/auth_service.h"

namespace {

using namespace ropuf;

constexpr std::size_t kDevices = 512;
constexpr std::size_t kRequests = 2048;

const registry::Registry& fleet_registry() {
  static const registry::Registry reg = [] {
    registry::FleetSpec spec;
    spec.devices = kDevices;
    spec.stages = 5;
    spec.pairs = 64;
    spec.seed = 0x5ca1ab1e;
    return registry::Registry::from_bytes(registry::build_fleet_registry(spec));
  }();
  return reg;
}

service::AuthServiceOptions service_options() {
  service::AuthServiceOptions options;
  options.response_bits = 32;
  options.max_distance = 4;
  options.cache_capacity = 4096;
  return options;
}

service::WorkloadSpec workload_spec() {
  service::WorkloadSpec spec;
  spec.requests = kRequests;
  return spec;
}

const std::vector<service::ProofIntent>& proof_workload() {
  static const std::vector<service::ProofIntent> intents =
      service::synthesize_proof_workload(fleet_registry(), workload_spec());
  return intents;
}

const std::vector<service::AuthRequest>& crp_workload() {
  static const std::vector<service::AuthRequest> requests =
      service::synthesize_workload(fleet_registry(), service_options(),
                                   workload_spec());
  return requests;
}

/// The offline reference for the online v2 exchange: the same intents
/// through verify_proof_batch with locally minted nonces. A proof verdict
/// is a pure function of (record, nonce, ids, tag) with the tag bound to
/// the nonce, so the nonce values drop out of the digest.
std::vector<service::ProofRequest> reference_proofs() {
  auth::NonceFactory nonces(0x0ff11e);
  std::vector<service::ProofRequest> proofs;
  proofs.reserve(proof_workload().size());
  for (const service::ProofIntent& intent : proof_workload()) {
    service::ProofRequest request;
    request.request_id = intent.request_id;
    request.device_id = intent.device_id;
    request.nonce = nonces.next(intent.device_id, intent.request_id);
    if (intent.has_key) {
      request.tag = auth::prove(intent.key, request.nonce, intent.request_id,
                                intent.device_id);
    }
    proofs.push_back(request);
  }
  return proofs;
}

/// An un-provisioned copy of one fleet enrollment — the Gen bench input.
puf::ConfigurableEnrollment bare_enrollment() {
  puf::ConfigurableEnrollment enrollment =
      fleet_registry().lookup(fleet_registry().device_id_at(0));
  enrollment.auth_code_id = auth::kCodeNone;
  enrollment.auth_helper.clear();
  enrollment.auth_key_check = {};
  return enrollment;
}

/// Server on its own thread for the duration of one measurement.
class ScopedServer {
 public:
  explicit ScopedServer(const service::AuthService* service)
      : server_(service, fast_options()) {
    port_ = server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ScopedServer() {
    server_.request_stop();
    thread_.join();
  }
  std::uint16_t port() const { return port_; }

  static net::ServerOptions fast_options() {
    net::ServerOptions options;
    options.poll_interval_ms = 1;
    return options;
  }

 private:
  net::AuthServer server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

net::AuthClient v2_client(std::uint16_t port, std::size_t window = 128) {
  net::ClientOptions options;
  options.port = port;
  options.window = window;
  net::AuthClient client(options);
  client.connect();
  client.negotiate();
  return client;
}

std::vector<net::WireResponse> drive_v2(std::uint16_t port) {
  net::AuthClient client = v2_client(port);
  return client.send_proof_batch(proof_workload());
}

std::vector<net::WireResponse> drive_v1(std::uint16_t port) {
  net::ClientOptions options;
  options.port = port;
  options.window = 128;
  net::AuthClient client(options);
  client.connect();
  return client.send_batch(crp_workload());
}

/// Times one call and returns items/second.
template <typename Fn>
double rate_of(std::size_t items, const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(items) / elapsed.count();
}

void run() {
  bench::banner("bench_crypto",
                "protocol v2 crypto pipeline - fuzzy Gen/Rep, HMAC, wire exchange");

  std::printf("registry: %zu devices   workload: %zu requests   transport: "
              "loopback TCP\n\n",
              fleet_registry().device_count(), proof_workload().size());

  // Primitive rates: enrollment-time Gen, prover-side Rep, one HMAC tag.
  const puf::ConfigurableEnrollment bare = bare_enrollment();
  constexpr std::size_t kPrimitiveIters = 2000;
  const double gen_rate = rate_of(kPrimitiveIters, [&] {
    for (std::size_t i = 0; i < kPrimitiveIters; ++i) {
      puf::ConfigurableEnrollment e = bare;
      Rng rng(0x6e6 + i);
      auth::provision_auth(e, rng);
      benchmark::DoNotOptimize(e.auth_helper.size());
    }
  });
  puf::ConfigurableEnrollment provisioned = bare;
  {
    Rng rng(0x6e6);
    auth::provision_auth(provisioned, rng);
  }
  BitVec noisy = provisioned.response();
  noisy.set(1, !noisy.get(1));  // one in-radius flip: the common Rep input
  const double rep_rate = rate_of(kPrimitiveIters, [&] {
    for (std::size_t i = 0; i < kPrimitiveIters; ++i) {
      benchmark::DoNotOptimize(auth::recover_key(noisy, provisioned));
    }
  });
  const std::string message(32, 'm');
  const std::string key(32, 'k');
  constexpr std::size_t kHmacIters = 200000;
  const double hmac_rate = rate_of(kHmacIters, [&] {
    for (std::size_t i = 0; i < kHmacIters; ++i) {
      benchmark::DoNotOptimize(crypto::hmac_sha256(key, message));
    }
  });

  TextTable primitive_table({"primitive", "ops/s"});
  primitive_table.add_row({"fuzzy Gen (provision, 64 pairs)",
                           TextTable::num(gen_rate / 1000.0, 1) + "k"});
  primitive_table.add_row({"fuzzy Rep (recover, 1 flip)",
                           TextTable::num(rep_rate / 1000.0, 1) + "k"});
  primitive_table.add_row({"HMAC-SHA256 (32-byte message)",
                           TextTable::num(hmac_rate / 1000.0, 1) + "k"});
  std::printf("%s\n", primitive_table.render().c_str());

  // v1 CRP round trip vs the v2 challenge-response exchange, same fleet,
  // same request count, one pipelined connection each.
  const service::AuthService service(&fleet_registry(), service_options());
  const std::uint64_t offline_digest = [&] {
    std::vector<service::AuthVerdict> verdicts =
        service.verify_proof_batch(reference_proofs());
    return service::verdict_digest(verdicts);
  }();

  TextTable wire_table({"protocol", "online req/s", "round trips/req"});
  bool v2_digest_matches = true;
  bool every_intent_answered = true;
  double v1_rate = 0.0;
  double v2_rate = 0.0;
  {
    const ScopedServer server(&service);
    drive_v1(server.port());  // warm-up: fills the enrollment cache
    v1_rate = rate_of(kRequests, [&] { drive_v1(server.port()); });
    wire_table.add_row({"v1 CRP", TextTable::num(v1_rate / 1000.0, 1) + "k", "1"});
  }
  {
    const ScopedServer server(&service);
    std::vector<net::WireResponse> responses;
    drive_v2(server.port());  // warm-up
    v2_rate = rate_of(kRequests, [&] { responses = drive_v2(server.port()); });
    wire_table.add_row({"v2 challenge-response",
                        TextTable::num(v2_rate / 1000.0, 1) + "k", "2"});

    if (responses.size() != proof_workload().size()) every_intent_answered = false;
    std::vector<service::AuthVerdict> verdicts;
    verdicts.reserve(responses.size());
    for (const net::WireResponse& response : responses) {
      if (response.status > net::WireStatus::kMalformedRequest) continue;
      verdicts.push_back(net::auth_verdict(response));
    }
    if (verdicts.size() != responses.size() ||
        service::verdict_digest(verdicts) != offline_digest) {
      v2_digest_matches = false;
    }
  }
  std::printf("%s\n", wire_table.render().c_str());
  std::printf("v2/v1 round-trip cost: %.2fx\n\n", v1_rate / v2_rate);

  // Replay shape check: a recorded proof transcript must be worthless.
  bool replay_rejected = false;
  {
    const ScopedServer server(&service);
    net::AuthClient client = v2_client(server.port());
    const service::ProofIntent* legit = nullptr;
    for (const service::ProofIntent& intent : proof_workload()) {
      if (intent.has_key) { legit = &intent; break; }
    }
    client.send_raw(net::encode_request_frame_v2(legit->request_id, legit->device_id));
    net::AuthClient::RawFrame frame = client.recv_frame();
    const net::ChallengePayload challenge =
        net::decode_challenge_payload(frame.payload);
    const std::string proof_bytes = net::encode_proof_frame(
        legit->request_id, auth::prove(legit->key, challenge.nonce,
                                       legit->request_id, legit->device_id));
    client.send_raw(proof_bytes);
    const net::V2Response first =
        net::decode_response_payload_v2(client.recv_frame().payload);
    client.send_raw(proof_bytes);  // verbatim replay
    const net::V2Response replay =
        net::decode_response_payload_v2(client.recv_frame().payload);
    replay_rejected = first.response.status == net::WireStatus::kAccept &&
                      replay.response.status == net::WireStatus::kReject;
  }

  std::printf("shape check (v2 online digest == offline proof digest): %s\n",
              v2_digest_matches ? "HOLDS" : "VIOLATED");
  std::printf("shape check (every proof intent answered once): %s\n",
              every_intent_answered ? "HOLDS" : "VIOLATED");
  std::printf("shape check (replayed proof transcript rejects): %s\n",
              replay_rejected ? "HOLDS" : "VIOLATED");
}

void bm_hmac_sha256(benchmark::State& state) {
  const std::string key(32, 'k');
  const std::string message(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, message));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_hmac_sha256)->Arg(32)->Arg(1024);

void bm_fuzzy_gen(benchmark::State& state) {
  const puf::ConfigurableEnrollment bare = bare_enrollment();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    puf::ConfigurableEnrollment e = bare;
    Rng rng(0x6e6 + seed++);
    auth::provision_auth(e, rng);
    benchmark::DoNotOptimize(e.auth_helper.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_fuzzy_gen);

void bm_fuzzy_rep(benchmark::State& state) {
  puf::ConfigurableEnrollment enrollment = bare_enrollment();
  Rng rng(0x6e6);
  auth::provision_auth(enrollment, rng);
  BitVec noisy = enrollment.response();
  noisy.set(1, !noisy.get(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::recover_key(noisy, enrollment));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_fuzzy_rep);

void bm_proof_verify(benchmark::State& state) {
  static const service::AuthService service(&fleet_registry(), service_options());
  static const std::vector<service::ProofRequest> proofs = reference_proofs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.verify_proof(proofs[i++ % proofs.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_proof_verify);

void bm_online_v1_round_trips(benchmark::State& state) {
  static const service::AuthService service(&fleet_registry(), service_options());
  const ScopedServer server(&service);
  drive_v1(server.port());  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(drive_v1(server.port()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_online_v1_round_trips)->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_online_v2_round_trips(benchmark::State& state) {
  static const service::AuthService service(&fleet_registry(), service_options());
  const ScopedServer server(&service);
  drive_v2(server.port());  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(drive_v2(server.port()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRequests));
}
BENCHMARK(bm_online_v2_round_trips)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

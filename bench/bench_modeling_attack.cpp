// Machine-learning modeling attack (paper Section II).
//
// "Although these approaches can achieve more challenge-response pairs,
//  they also expose more information and thus are vulnerable to attacks
//  such as modeling and machine learning [16]. Our configurable RO PUF is
//  completely different ... once a RO PUF is configured it will remain
//  unchanged."
//
// The experiment: train the same logistic learner on CRPs from (a) a
// 64-stage arbiter PUF — the canonical strong PUF with a linear delay
// model — and (b) the configurable RO PUF exposed through its CRP oracle.
// The arbiter curve climbs to ~99%; the RO oracle stays at the coin flip.
#include "bench_common.h"

#include "arbiter/arbiter_puf.h"
#include "attack/logistic.h"
#include "common/table.h"
#include "puf/crp.h"

namespace {

using namespace ropuf;

constexpr std::size_t kStages = 64;

attack::Dataset arbiter_crps(const arb::ArbiterPuf& puf, std::size_t count, Rng& rng) {
  attack::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    BitVec challenge(kStages);
    for (std::size_t b = 0; b < kStages; ++b) challenge.set(b, rng.flip());
    data.features.push_back(arb::ArbiterPuf::features(challenge));
    data.labels.push_back(puf.respond(challenge, rng));
  }
  return data;
}

attack::Dataset oracle_crps(const puf::CrpOracle& oracle, std::size_t count,
                            std::uint64_t base) {
  attack::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t challenge = base + i * 0x9e3779b9ULL;
    BitVec bits(kStages);
    for (std::size_t b = 0; b < kStages; ++b) bits.set(b, (challenge >> (b % 64)) & 1u);
    data.features.push_back(arb::ArbiterPuf::features(bits));
    data.labels.push_back(oracle.reference(challenge).get(0));
  }
  return data;
}

void run() {
  bench::banner("bench_modeling_attack",
                "ML modeling attack: arbiter PUF vs configurable RO PUF CRPs");

  Rng rng(0xa77ac);
  arb::ArbiterSpec spec;
  spec.stages = kStages;
  const arb::ArbiterPuf arbiter(spec, rng);

  const puf::BoardLayout layout{7, 32};
  std::vector<double> values(layout.units_required());
  for (auto& v : values) v = rng.gaussian(0.0, 10.0);
  const auto enrollment =
      puf::configurable_enroll(values, layout, puf::SelectionCase::kIndependent);
  const puf::CrpOracle oracle(&enrollment, 1);

  const attack::Dataset arbiter_test = arbiter_crps(arbiter, 2000, rng);
  const attack::Dataset oracle_test = oracle_crps(oracle, 2000, 1u << 20);

  arb::ArbiterSpec xor_spec = spec;
  xor_spec.noise_sigma_ps = 0.0;
  const arb::XorArbiterPuf xor_puf(xor_spec, 4, rng);
  auto xor_crps = [&](std::size_t count) {
    attack::Dataset data;
    for (std::size_t i = 0; i < count; ++i) {
      BitVec challenge(kStages);
      for (std::size_t b = 0; b < kStages; ++b) challenge.set(b, rng.flip());
      data.features.push_back(arb::ArbiterPuf::features(challenge));
      data.labels.push_back(xor_puf.respond(challenge, rng));
    }
    return data;
  };
  const attack::Dataset xor_test = xor_crps(2000);

  TextTable table({"training CRPs", "arbiter PUF accuracy", "4-XOR arbiter accuracy",
                   "configurable RO accuracy"});
  attack::LogisticModel::FitOptions options;
  options.epochs = 60;
  for (const std::size_t budget : {100u, 500u, 2000u, 8000u}) {
    attack::LogisticModel arbiter_model;
    arbiter_model.fit(arbiter_crps(arbiter, budget, rng), options, rng);
    attack::LogisticModel xor_model;
    xor_model.fit(xor_crps(budget), options, rng);
    attack::LogisticModel oracle_model;
    oracle_model.fit(oracle_crps(oracle, budget, 0), options, rng);
    table.add_row({std::to_string(budget),
                   TextTable::num(100.0 * arbiter_model.accuracy(arbiter_test), 1) + "%",
                   TextTable::num(100.0 * xor_model.accuracy(xor_test), 1) + "%",
                   TextTable::num(100.0 * oracle_model.accuracy(oracle_test), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the arbiter column reproduces the classic modeling-attack result;\n"
              "the configurable RO PUF's fixed post-silicon configuration leaves the\n"
              "learner at the coin flip (Section II's distinction).\n");
}

void bm_logistic_fit(benchmark::State& state) {
  Rng rng(1);
  arb::ArbiterSpec spec;
  spec.stages = kStages;  // arbiter_crps generates kStages-bit challenges
  const arb::ArbiterPuf puf(spec, rng);
  const attack::Dataset data = arbiter_crps(puf, 500, rng);
  attack::LogisticModel::FitOptions options;
  options.epochs = 10;
  for (auto _ : state) {
    attack::LogisticModel model;
    model.fit(data, options, rng);
    benchmark::DoNotOptimize(model.weights());
  }
}
BENCHMARK(bm_logistic_fit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

// Table II: NIST SP 800-22 results of the Case-2 configurable PUF outputs.
//
// Same pipeline as Table I with independent top/bottom configurations
// (equal popcount). See bench_table1_nist_case1.cpp for the pipeline notes.
#include "bench_common.h"

#include "analysis/experiments.h"
#include "nist/report.h"
#include "nist/suite.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

nist::FinalAnalysisReport build_report(bool distill) {
  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kIndependent;
  opts.stages = 5;
  opts.distill = distill;
  const auto responses = analysis::board_responses(bench::vt_fleet().nominal, opts);
  const auto streams = analysis::combine_board_pairs(responses);
  nist::FinalAnalysisReport report;
  for (const auto& stream : streams) {
    report.add_sequence(nist::run_suite(stream, nist::paper_config()));
  }
  return report;
}

void run() {
  bench::banner("bench_table2_nist_case2",
                "Table II - NIST test results, Case-2 configurable PUF (97 x 96-bit)");

  const auto raw = build_report(false);
  std::printf("--- raw (no distiller), expected to FAIL ---\n%s\n", raw.render().c_str());
  std::printf("raw verdict: %s   (paper: FAIL)\n\n", raw.all_pass() ? "PASS" : "FAIL");

  const auto distilled = build_report(true);
  std::printf("--- distilled [18], expected to PASS ---\n%s\n", distilled.render().c_str());
  std::printf("distilled verdict: %s   (paper: PASS on all tests)\n",
              distilled.all_pass() ? "PASS" : "FAIL");
}

void bm_case2_selection(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> top(15), bottom(15);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& v : top) v = rng.gaussian(0.0, 10.0);
    for (auto& v : bottom) v = rng.gaussian(0.0, 10.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(puf::select_case2(top, bottom));
  }
}
BENCHMARK(bm_case2_selection);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }

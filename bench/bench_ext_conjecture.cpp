// Extension experiment: the Section III.D conjecture.
//
// "Due to the unpredictable behavior of manufacture variation, we
//  conjecture that the optimal configuration will have about n/2 inverters
//  selected in the ROs."
//
// This bench measures the popcount distribution of the optimal Case-1 and
// Case-2 configurations over many random pairs and over the synthetic VT
// fleet, and connects it to Table III (whose HD mass at 6-8 of 15 is the
// pairwise signature of ~n/2-weight vectors).
#include "bench_common.h"

#include <cmath>

#include "analysis/experiments.h"
#include "common/table.h"
#include "puf/selection.h"

namespace {

using namespace ropuf;

void popcount_distribution() {
  std::printf("--- popcount of the optimal configuration (10000 random pairs) ---\n");
  TextTable table({"n", "case", "mean popcount", "mean / n", "sd"});
  Rng rng(1);
  for (const std::size_t n : {7u, 15u, 31u}) {
    for (const auto mode : {puf::SelectionCase::kSameConfig, puf::SelectionCase::kIndependent}) {
      double sum = 0.0, sum2 = 0.0;
      const int trials = 10000;
      for (int t = 0; t < trials; ++t) {
        std::vector<double> top(n), bottom(n);
        for (auto& v : top) v = rng.gaussian(0.0, 10.0);
        for (auto& v : bottom) v = rng.gaussian(0.0, 10.0);
        const double pc =
            static_cast<double>(puf::select(mode, top, bottom).top_config.popcount());
        sum += pc;
        sum2 += pc * pc;
      }
      const double mean = sum / trials;
      const double sd = std::sqrt(sum2 / trials - mean * mean);
      table.add_row({std::to_string(n),
                     mode == puf::SelectionCase::kSameConfig ? "Case-1" : "Case-2",
                     TextTable::num(mean, 2), TextTable::num(mean / static_cast<double>(n), 3),
                     TextTable::num(sd, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("verdict: 'about half' holds with a consistent tilt to ~0.55-0.60 n —\n"
              "the winning sign class is slightly larger than half *because* it wins.\n\n");
}

void fleet_histogram() {
  std::printf("--- popcount histogram on the VT fleet (n = 15, Case-1, distilled) ---\n");
  analysis::DatasetOptions opts;
  opts.mode = puf::SelectionCase::kSameConfig;
  opts.distill = true;
  const auto streams =
      analysis::configuration_streams(bench::vt_fleet().nominal, opts);
  std::vector<std::size_t> histogram(16, 0);
  for (const auto& config : streams) ++histogram[config.popcount()];
  std::printf("  popcount  configs\n");
  for (std::size_t k = 0; k <= 15; ++k) {
    std::printf("  %8zu  %6zu  ", k, histogram[k]);
    for (std::size_t star = 0; star < histogram[k] / 12; ++star) std::printf("*");
    std::printf("\n");
  }
  double mean = 0.0;
  for (std::size_t k = 0; k <= 15; ++k) {
    mean += static_cast<double>(k * histogram[k]);
  }
  mean /= static_cast<double>(streams.size());
  std::printf("mean %.2f of 15 (conjecture: ~7.5); Table III's HD mode at 6-8 is the\n"
              "pairwise distance signature of this weight distribution.\n",
              mean);
}

void run() {
  bench::banner("bench_ext_conjecture",
                "Section III.D conjecture: optimal configurations select ~n/2 units");
  popcount_distribution();
  fleet_histogram();
}

void bm_conjecture_sample(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> top(15), bottom(15);
  for (auto _ : state) {
    for (auto& v : top) v = rng.gaussian(0.0, 10.0);
    for (auto& v : bottom) v = rng.gaussian(0.0, 10.0);
    benchmark::DoNotOptimize(puf::select_case1(top, bottom).top_config.popcount());
  }
}
BENCHMARK(bm_conjecture_sample);

}  // namespace

int main(int argc, char** argv) { return ropuf::bench::bench_main(argc, argv, run); }
